"""Table 4-7: contention for the single central task queue.

Shape criteria: spins-per-acquisition start at ~1 for 1+1 and grow
steeply with the process count for Weaver and Rubik, mildly for Tourney
(whose processes are stalled on the hash line instead of hammering the
queue).
"""

from repro.harness import experiments


def test_table_4_7(benchmark, emit):
    result = benchmark.pedantic(experiments.table_4_7, rounds=1, iterations=1)
    emit("table_4_7", result.report)

    for prog, entry in result.data.items():
        spins = entry["spins"]
        # No contention with a single match process.
        assert spins[0] < 1.2, prog
        # Contention grows monotonically (within 5% noise) with processes.
        for a, b in zip(spins, spins[1:]):
            assert b > a * 0.95, (prog, spins)
        # And is substantial by 1+13.
        assert spins[-1] > 3.0, prog
