"""Table 4-5: speed-up with a single task queue and simple line locks.

Shape criteria: every program saturates well below linear speed-up —
Rubik highest (paper 6.3×), Weaver mid (3.9×), Tourney lowest (2.4×);
adding processes beyond 1+7 buys Tourney nothing.
"""

from repro.harness import experiments
from repro.harness.paperdata import PROCS


def test_table_4_5(benchmark, emit):
    result = benchmark.pedantic(experiments.table_4_5, rounds=1, iterations=1)
    emit("table_4_5", result.report)

    sp = {prog: entry["speedups"] for prog, entry in result.data.items()}

    for prog in sp:
        # 1+1 is within a few percent of the uniprocessor run.
        assert 0.9 <= sp[prog][0] <= 1.2, prog
        # Speed-ups grow through 1+5 ...
        assert sp[prog][2] > sp[prog][1] > sp[prog][0], prog

    # Saturation: the 1+13 single-queue speed-up is far below 13.
    for prog in sp:
        assert sp[prog][-1] < 8.0, prog

    # Program ordering at 1+13 matches the paper: Rubik > Weaver > Tourney.
    assert sp["rubik"][-1] > sp["weaver"][-1] > sp["tourney"][-1]

    # Rubik lands in the paper's neighbourhood (6.30).
    assert 5.0 < sp["rubik"][-1] < 8.0
    # Tourney is stuck near the paper's ~2.4 plateau.
    assert sp["tourney"][-1] < 4.0
    # Tourney gains essentially nothing past 1+5 (paper: 2.70 -> 2.41).
    assert sp["tourney"][-1] < sp["tourney"][2] * 1.35
