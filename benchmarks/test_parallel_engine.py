"""The real threaded engine: correctness under actual interleavings,
plus measured lock contention.

CPython's GIL makes wall-clock speed-up unobservable (DESIGN.md), so
this bench validates what the threads *can* demonstrate: identical
program behaviour to the sequential matcher at every worker count, and
live spin/contention counters from the PSM-E synchronization design.

The workloads here use shallow-chain rules on purpose: processing a
deep-chain rule's modify burst out of order lets a join transiently see
both the old and the new WME of an in-flight modify, multiplying token
combinations at every level of the chain — a real transient-work
explosion of parallel Rete on long chains (see EXPERIMENTS.md).  Rubik's
22-CE rotation rules are the pathological case, so the threaded bench
exercises Tourney and the classics instead.
"""

import pytest

from repro.harness.tables import render_table
from repro.ops5.interpreter import Interpreter
from repro.ops5.parser import parse_program
from repro.parallel.engine import ParallelMatcher
from repro.programs import blocks, tourney
from repro.rete.network import ReteNetwork


def _run_parallel(source: str, n_workers: int, n_queues: int, lock_scheme: str):
    program = parse_program(source)
    network = ReteNetwork.compile(program)
    matcher = ParallelMatcher(
        network,
        n_workers=n_workers,
        n_queues=n_queues,
        lock_scheme=lock_scheme,
        n_lines=128,
    )
    with Interpreter(program, matcher=matcher) as interp:
        result = interp.run(max_cycles=5000)
        return result, matcher.queue_lock_stats(), matcher.line_lock_stats()


@pytest.mark.parametrize("lock_scheme", ["simple", "mrsw"])
def test_parallel_engine_matches_sequential(benchmark, emit, lock_scheme):
    source = tourney.source(n_teams=8, n_rounds=10)
    sequential = Interpreter(source).run(max_cycles=5000)

    def run():
        return _run_parallel(source, n_workers=3, n_queues=2, lock_scheme=lock_scheme)

    result, qstats, lstats = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.output[-1] == sequential.output[-1] == "scheduled 28 matches"
    assert result.halted
    emit(
        f"parallel_engine_{lock_scheme}",
        render_table(
            f"Threaded engine, Tourney (3 workers, 2 queues, {lock_scheme} locks)",
            ["metric", "value"],
            [
                ["queue-lock acquisitions", qstats.acquisitions],
                ["queue-lock mean spins", qstats.mean_spins],
                ["line-lock acquisitions", lstats.acquisitions],
                ["line-lock mean spins", lstats.mean_spins],
                ["line-lock requeues", lstats.requeues],
            ],
        ),
    )
    assert qstats.acquisitions > 100


def test_parallel_engine_blocks_world(benchmark):
    """A multi-goal blocks world under real threads reaches the same
    final plan as the sequential engine."""
    source = blocks.source(
        blocks=(("a", "table"), ("b", "a"), ("c", "b"), ("d", "table")),
        goals=(("c", "d"), ("a", "c")),
    )
    sequential = Interpreter(source).run(max_cycles=500)

    def run():
        return _run_parallel(source, n_workers=4, n_queues=2, lock_scheme="simple")

    result, _q, _l = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.output == sequential.output
    assert not any(line.startswith("error") for line in result.output)
