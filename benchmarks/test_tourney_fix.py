"""§4.2: rewriting Tourney's two cross-product productions.

The paper: pairing on domain knowledge (pools) lifted the 1+13
speed-up from 2.7× to 5.1× — roughly doubling it.  Shape criterion:
the fixed variant beats the original by a clear margin at 1+13 with 8
queues.
"""

from repro.harness import experiments


def test_tourney_fix(benchmark, emit):
    result = benchmark.pedantic(experiments.tourney_fix, rounds=1, iterations=1)
    emit("tourney_fix", result.report)

    assert result.data["after"] > result.data["before"] * 1.1
    # The fixed variant escapes the low-speed-up regime.
    assert result.data["after"] > 4.0


def test_task_durations(benchmark, emit):
    """§4.1/§5: mean task length lands in the 100-700 instruction band."""
    result = benchmark.pedantic(experiments.task_durations, rounds=1, iterations=1)
    emit("task_durations", result.report)

    for prog, entry in result.data.items():
        assert 40 <= entry["mean_instr"] <= 700, (prog, entry)
    # Tourney's tasks are the longest, as in the paper (1300µs vs
    # 230/175µs).
    means = {p: e["mean_instr"] for p, e in result.data.items()}
    assert means["tourney"] >= max(means["weaver"], means["rubik"]) * 0.8
