"""Shared fixtures for the benchmark suite.

Reports are printed (visible with ``-s``) and also written to
``benchmarks/reports/`` so a plain ``python -m pytest benchmarks/ -q``
run leaves the paper-vs-measured tables on disk.  (There is no
``--benchmark-only`` flag — that belongs to the pytest-benchmark
plugin, which this repo does not use.)  For machine-readable history
with regression gating, use ``repro bench run`` instead — see
docs/PERF.md.
"""

from __future__ import annotations

import pathlib

import pytest

REPORT_DIR = pathlib.Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def report_dir() -> pathlib.Path:
    REPORT_DIR.mkdir(exist_ok=True)
    return REPORT_DIR


@pytest.fixture()
def emit(report_dir):
    """Print a report and persist it under ``benchmarks/reports/``.

    Writes are atomic (temp file + rename) so an interrupted run can't
    leave a truncated report behind.
    """

    def _emit(name: str, text: str) -> None:
        print()
        print(text)
        final = report_dir / f"{name}.txt"
        tmp = report_dir / f"{name}.txt.tmp"
        tmp.write_text(text + "\n", encoding="utf-8")
        tmp.replace(final)

    return _emit
