"""Shared fixtures for the benchmark suite.

Reports are printed (visible with ``-s``) and also written to
``benchmarks/reports/`` so a plain ``pytest benchmarks/ --benchmark-only``
run leaves the paper-vs-measured tables on disk.
"""

from __future__ import annotations

import pathlib

import pytest

REPORT_DIR = pathlib.Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def report_dir() -> pathlib.Path:
    REPORT_DIR.mkdir(exist_ok=True)
    return REPORT_DIR


@pytest.fixture()
def emit(report_dir):
    """Print a report and persist it under ``benchmarks/reports/``."""

    def _emit(name: str, text: str) -> None:
        print()
        print(text)
        (report_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return _emit
