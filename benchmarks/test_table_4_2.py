"""Table 4-2: tokens examined in the opposite memory, linear vs hash.

Shape criteria: hashing reduces the examined counts wherever linear
scans are long; Tourney is the extreme case in at least one direction
(the cross-product memories).
"""

from repro.harness import experiments


def test_table_4_2(benchmark, emit):
    result = benchmark.pedantic(experiments.table_4_2, rounds=1, iterations=1)
    emit("table_4_2", result.report)

    for prog, entry in result.data.items():
        m = entry["measured"]
        # Hashing never makes the scans longer on the left side, where
        # the long chains live in all three programs.
        assert m["hash_left"] <= m["lin_left"] + 0.5, prog

    tourney = result.data["tourney"]["measured"]
    weaver = result.data["weaver"]["measured"]
    # Tourney's linear scans dwarf everyone else's (cross-products).
    assert tourney["lin_left"] > weaver["lin_left"]
    assert tourney["lin_left"] > 5 * tourney["hash_left"]


def test_table_4_3(benchmark, emit):
    result = benchmark.pedantic(experiments.table_4_3, rounds=1, iterations=1)
    emit("table_4_3", result.report)

    for prog, entry in result.data.items():
        m = entry["measured"]
        assert m["hash_left"] <= m["lin_left"] + 0.5, prog
        assert m["hash_right"] <= m["lin_right"] + 0.5, prog
