"""Ablation benches for the design choices DESIGN.md calls out.

These sweep axes the paper fixed (or never varied) to show *why* the
system is built the way it is:

* task-queue count beyond the paper's 8,
* constant-test grouping granularity (the paper: 3-instruction
  activations are "too fine"),
* hash-table size (lines) vs contention,
* the TTAS handoff-storm penalty (what the declining Tourney columns
  cost),
* pipelining match with RHS evaluation (§3.1's design).
"""

from repro.harness.tables import render_table
from repro.harness.workloads import baseline, sim, traced_run
from repro.simulator.machine import DEFAULT_CONFIG
from repro.simulator.engine import simulate


def test_ablation_queue_count(benchmark, emit):
    """Sweeping 1..16 queues at 1+13: gains saturate near the paper's 8."""

    def run():
        rows = []
        for prog in ("weaver", "rubik", "tourney"):
            base = baseline(prog)
            speedups = []
            for q in (1, 2, 4, 8, 16):
                r = sim(prog, n_match=13, n_queues=q)
                speedups.append(base.match_instr / r.match_instr)
            rows.append([prog] + speedups)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_queue_count",
        render_table(
            "Ablation: task-queue count at 1+13 processes",
            ["program", "1q", "2q", "4q", "8q", "16q"],
            rows,
        ),
    )
    by_prog = {row[0]: row[1:] for row in rows}
    # More queues never hurt badly, and 8 captures most of the gain.
    for prog, sp in by_prog.items():
        assert sp[3] > sp[0] * 0.95, prog
        assert sp[4] < sp[3] * 1.3, (prog, "16q should not beat 8q by much")
    assert by_prog["rubik"][3] > by_prog["rubik"][0] * 1.4


def test_ablation_alpha_granularity(benchmark, emit):
    """Constant-test grouping: very fine groups drown in scheduling
    overhead; very coarse groups serialize the alpha fan-out."""

    def run():
        trace = traced_run("rubik").trace
        rows = []
        for group in (1, 4, 16, 64, 1024):
            cfg = DEFAULT_CONFIG.with_overrides(alpha_group_size=group)
            base = simulate(trace, n_match=1, pipelined=False, config=cfg)
            run13 = simulate(trace, n_match=13, n_queues=8, config=cfg)
            rows.append([group, base.match_seconds, base.match_instr / run13.match_instr])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_alpha_granularity",
        render_table(
            "Ablation: constant-test group size (Rubik, 1+13, 8 queues)",
            ["group size", "uniproc (s)", "speed-up"],
            rows,
        ),
    )
    by_group = {row[0]: row for row in rows}
    # Group size 1 pays the most uniprocessor overhead (one task per
    # 3-instruction test — the paper's "too fine a granularity").
    assert by_group[1][1] > by_group[16][1]


def test_ablation_hash_lines(benchmark, emit):
    """Fewer hash lines force unrelated buckets onto shared locks."""

    def run():
        from repro.ops5.interpreter import Interpreter
        from repro.rete.trace import TraceRecorder
        from repro.harness.workloads import program_source

        rows = []
        for n_lines in (16, 64, 1024):
            recorder = TraceRecorder()
            interp = Interpreter(
                program_source("rubik"), recorder=recorder, n_lines=n_lines
            )
            interp.run(max_cycles=50000)
            trace = recorder.trace
            base = simulate(trace, n_match=1, pipelined=False)
            r = simulate(trace, n_match=13, n_queues=8)
            rows.append(
                [n_lines, base.match_instr / r.match_instr, r.line_left.mean_spins]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_hash_lines",
        render_table(
            "Ablation: hash-table lines (Rubik, 1+13, 8 queues)",
            ["lines", "speed-up", "left-line spins"],
            rows,
        ),
    )
    # A 16-line table suffers more line contention than a 1024-line one.
    assert rows[0][2] >= rows[-1][2] * 0.9


def test_ablation_pipelining(benchmark, emit):
    """§3.1's control/match pipelining: disabling the overlap costs
    elapsed time at every process count."""

    def run():
        rows = []
        for prog in ("rubik", "weaver"):
            trace = traced_run(prog).trace
            over = simulate(trace, n_match=5, n_queues=4, pipelined=True)
            serial = simulate(trace, n_match=5, n_queues=4, pipelined=False)
            rows.append([prog, over.total_instr, serial.total_instr])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_pipelining",
        render_table(
            "Ablation: pipelined vs serial RHS evaluation (1+5, 4 queues)",
            ["program", "pipelined (instr)", "serial (instr)"],
            rows,
        ),
    )
    for _prog, pipelined, serial in rows:
        assert pipelined <= serial * 1.02


def test_ablation_handoff_storm(benchmark, emit):
    """The TTAS handoff penalty is what degrades contended lines; with
    it disabled, Tourney's ceiling rises."""

    def run():
        trace = traced_run("tourney").trace
        rows = []
        for handoff in (0, 8, 24):
            cfg = DEFAULT_CONFIG.with_overrides(ttas_handoff=handoff)
            base = simulate(trace, n_match=1, pipelined=False, config=cfg)
            r = simulate(trace, n_match=13, n_queues=8, config=cfg)
            rows.append([handoff, base.match_instr / r.match_instr])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_handoff",
        render_table(
            "Ablation: TTAS handoff-storm penalty (Tourney, 1+13, 8 queues)",
            ["handoff (instr/waiter)", "speed-up"],
            rows,
        ),
    )
    assert rows[0][1] >= rows[-1][1]
