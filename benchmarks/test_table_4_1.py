"""Table 4-1: uniprocessor vs1 (linear memories) vs vs2 (hash memories).

Shape criteria (DESIGN.md): vs2 is at least as fast as vs1 for every
program, and the vs1/vs2 ratio is largest for Tourney and smallest for
Weaver — the paper's ordering (3.46 > 2.43 > 1.18).
"""

from repro.harness import experiments


def test_table_4_1(benchmark, emit):
    result = benchmark.pedantic(experiments.table_4_1, rounds=1, iterations=1)
    emit("table_4_1", result.report)

    ratios = {}
    for prog, entry in result.data.items():
        assert entry["vs2_s"] > 0
        ratios[prog] = entry["vs1_s"] / entry["vs2_s"]
        # vs2 (hash) must not lose to vs1 (linear) by more than noise.
        assert ratios[prog] > 0.95, f"{prog}: hash memories slower than linear"
        # Counters are populated and identical across memory systems.
        assert entry["wm_changes"] > 500
        assert entry["activations"] > 10000

    # Tourney benefits most from hashing, Weaver least (paper ordering).
    assert ratios["tourney"] > ratios["weaver"]
    assert ratios["tourney"] > 1.2


def test_activation_counts_match_between_memories():
    """vs1 and vs2 perform the same logical match: identical change and
    activation counts (the memory system changes *scan lengths* only —
    total two-input activations are equal by construction)."""
    from repro.harness.workloads import timed_run

    for prog in ("tourney", "rubik"):
        _s1, lin = timed_run(prog, memory="linear", mode="compiled")
        _s2, hsh = timed_run(prog, memory="hash", mode="compiled")
        assert lin.wme_changes == hsh.wme_changes
        assert lin.node_activations == hsh.node_activations
