"""Table 4-6: speed-up with multiple task queues (1/2/4/8) and simple locks.

Shape criteria: multiple queues lift Weaver and Rubik substantially at
high process counts (paper: Weaver 3.9→8.2, Rubik 6.3→11.4) while
Tourney barely moves (2.4→2.3) — its bottleneck is the hash-table line,
not the queue.
"""

from repro.harness import experiments


def test_table_4_6(benchmark, emit):
    result = benchmark.pedantic(experiments.table_4_6, rounds=1, iterations=1)
    emit("table_4_6", result.report)

    multi = {prog: entry["speedups"] for prog, entry in result.data.items()}
    single = {
        prog: entry["speedups"]
        for prog, entry in experiments.table_4_5().data.items()
    }

    # Multiple queues help Rubik and Weaver a lot at 1+13 ...
    assert multi["rubik"][-1] > single["rubik"][-1] * 1.5
    assert multi["weaver"][-1] > single["weaver"][-1] * 1.2
    # ... and Tourney much less (its serialization is the hash line).
    tourney_gain = multi["tourney"][-1] / single["tourney"][-1]
    rubik_gain = multi["rubik"][-1] / single["rubik"][-1]
    assert tourney_gain < rubik_gain

    # Rubik approaches the paper's 11.4x at 1+13 with 8 queues.
    assert multi["rubik"][-1] > 9.0
    # Ordering preserved.
    assert multi["rubik"][-1] > multi["weaver"][-1] > multi["tourney"][-1]


def test_queue_contention_drops_with_multiple_queues():
    """The paper's narrative: going 1→8 queues slashes queue-lock
    contention (24.6→4.9 spins for Weaver at 13 processes)."""
    from repro.harness.workloads import sim

    for prog in ("weaver", "rubik"):
        one = sim(prog, n_match=13, n_queues=1).queue_stats.mean_spins
        eight = sim(prog, n_match=13, n_queues=8).queue_stats.mean_spins
        assert eight < one, prog
