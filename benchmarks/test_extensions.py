"""Extensions the paper proposed but never implemented.

* §3.2: "Gupta [4] proposed a hardware task scheduler for scheduling
  the fine-grained tasks.  So far we have not implemented the hardware
  scheduler" — implemented here as a zero-contention dispatch unit in
  the simulator.
* Footnote 3: "it is possible to overlap conflict-resolution with
  match" — implemented as the ``overlap_cr`` option.
"""

from repro.harness.tables import render_table
from repro.harness.workloads import traced_run
from repro.simulator.engine import EncoreSimulator, SimOptions, simulate


def _speedup(trace, **opts):
    base = simulate(trace, n_match=1, pipelined=False)
    run = EncoreSimulator(trace, SimOptions(n_match=13, **opts)).run()
    return base.match_instr / run.match_instr


def test_hardware_task_scheduler(benchmark, emit):
    """The hardware scheduler removes queue-lock contention entirely:
    with one (hardware) queue it must beat the 1-queue software
    configuration and approach the 8-queue one."""

    def run():
        rows = []
        for prog in ("weaver", "rubik", "tourney"):
            trace = traced_run(prog).trace
            sw1 = _speedup(trace, n_queues=1)
            sw8 = _speedup(trace, n_queues=8)
            hw = _speedup(trace, n_queues=1, hardware_scheduler=True)
            rows.append([prog, sw1, sw8, hw])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "extension_hardware_scheduler",
        render_table(
            "Extension: hardware task scheduler (1+13 processes)",
            ["program", "software 1q", "software 8q", "hardware"],
            rows,
        ),
    )
    by_prog = {r[0]: r[1:] for r in rows}
    for prog, (sw1, sw8, hw) in by_prog.items():
        assert hw > sw1, prog                     # beats the contended queue
    # For the queue-bound programs it should reach (or beat) 8 queues.
    assert by_prog["rubik"][2] > by_prog["rubik"][1] * 0.9


def test_overlapped_conflict_resolution(benchmark, emit):
    """Footnote 3's CR overlap shortens total elapsed time (match time
    is untouched — CR runs on the control process)."""

    def run():
        rows = []
        for prog in ("rubik", "tourney"):
            trace = traced_run(prog).trace
            serial = EncoreSimulator(trace, SimOptions(n_match=5, n_queues=4)).run()
            overlap = EncoreSimulator(
                trace, SimOptions(n_match=5, n_queues=4, overlap_cr=True)
            ).run()
            rows.append([prog, serial.total_instr, overlap.total_instr])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "extension_overlap_cr",
        render_table(
            "Extension: overlapped conflict resolution (1+5, 4 queues)",
            ["program", "serial CR (instr)", "overlapped CR (instr)"],
            rows,
        ),
    )
    for _prog, serial, overlapped in rows:
        assert overlapped < serial
        assert overlapped > serial * 0.5   # CR is not the dominant cost
