"""Table 4-9: contention for the token hash-table line locks.

Shape criteria: Tourney's left-side contention dominates everything
else (the cross-product line); contention grows from 6 to 12 processes;
left-side contention exceeds right-side for every program (the paper's
table shows the same asymmetry: beta tokens churn more than WMEs).
"""

from repro.harness import experiments


def test_table_4_9(benchmark, emit):
    result = benchmark.pedantic(experiments.table_4_9, rounds=1, iterations=1)
    emit("table_4_9", result.report)

    data = result.data

    for prog in data:
        simple6 = data[prog][("simple", 6)]
        simple12 = data[prog][("simple", 12)]
        # Contention grows with processes.
        assert simple12["left"] >= simple6["left"] * 0.9, prog
        # Left dominates right under simple locks.
        assert simple12["left"] >= simple12["right"], prog

    # Tourney is the contention outlier, as in the paper (377.7 vs
    # 51.2/23.0 at 12 processes).
    t12 = data["tourney"][("simple", 12)]["left"]
    assert t12 > data["weaver"][("simple", 12)]["left"]
    assert t12 > data["rubik"][("simple", 12)]["left"]


def test_mrsw_requeues_concentrate_in_tourney():
    """Only contended, both-sided lines force MRSW requeues; Tourney's
    cross-product line is where they show up."""
    from repro.harness.workloads import sim

    tourney = sim("tourney", n_match=12, n_queues=8, lock_scheme="mrsw").requeues
    rubik = sim("rubik", n_match=12, n_queues=8, lock_scheme="mrsw").requeues
    assert tourney >= rubik
