"""Table 4-8: multiple task queues + MRSW hash-table line locks.

Shape criteria: the MRSW scheme costs uniprocessor time (paper: +3-13%)
but keeps the high-end speed-ups in the same band as simple locks —
the paper's conclusion is that the added complexity was *not* worth it
("trying to handle rare cases efficiently can slow down the normal
case").
"""

from repro.harness import experiments
from repro.harness.workloads import baseline


def test_table_4_8(benchmark, emit):
    result = benchmark.pedantic(experiments.table_4_8, rounds=1, iterations=1)
    emit("table_4_8", result.report)

    sp = {prog: entry["speedups"] for prog, entry in result.data.items()}

    # MRSW raises the uniprocessor execution time for every program
    # (Table 4-8's uniproc column vs Table 4-6's).
    for prog in sp:
        simple_s = baseline(prog, lock_scheme="simple").match_instr
        mrsw_s = baseline(prog, lock_scheme="mrsw").match_instr
        assert mrsw_s > simple_s, prog
        overhead = mrsw_s / simple_s - 1.0
        assert overhead < 0.35, (prog, overhead)

    # Speed-up ordering preserved under MRSW.
    assert sp["rubik"][-1] > sp["weaver"][-1] >= sp["tourney"][-1]
    # Rubik stays in the paper's ~11-12.4x neighbourhood.
    assert sp["rubik"][-1] > 9.0
    # Divergence note (EXPERIMENTS.md): our synthetic Tourney's hash
    # buckets are shorter than the real program's, so MRSW's reader
    # concurrency helps it here where it did not on the Multimax; it
    # still trails the other programs.
    assert sp["tourney"][-1] < sp["rubik"][-1] * 0.75
