"""Table 4-4: interpreted ('Franz Lisp') vs compiled ('C / vs2') matcher.

Our substitution compresses the gap (Python closures vs Python
descriptor dispatch, instead of NS32032 machine code vs a Lisp
interpreter — see DESIGN.md), so the asserted shape is: the compiled
matcher wins overall, and Tourney — the program the paper reports the
largest factor for (24.6×) — shows the largest factor here too.
"""

from repro.harness import experiments


def test_table_4_4(benchmark, emit):
    result = benchmark.pedantic(experiments.table_4_4, rounds=1, iterations=1)
    emit("table_4_4", result.report)

    factors = {prog: entry["speedup"] for prog, entry in result.data.items()}
    # Compiled+hash wins on the programs with real token populations.
    assert factors["tourney"] > 1.3
    assert factors["weaver"] > 1.0
    # Tourney gains the most, as in the paper.
    assert factors["tourney"] >= max(factors.values()) - 1e-9
    # And the overall direction holds on average.
    assert sum(factors.values()) / len(factors) > 1.15
