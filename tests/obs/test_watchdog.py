"""The stall watchdog: trip decision, bundle schema, engine wiring.

The trip-evaluation core is synchronous (``evaluate(now_s, sample)``),
so most tests drive it with a fabricated clock — no sleeping, no
timing flake.  One integration test exercises the real daemon thread
against a synthetically stuck probe (the "forced stall" fixture).
"""

import json
import time

import pytest

from repro.obs import flight
from repro.obs.watchdog import (
    ProbeSample,
    StallWatchdog,
    WATCHDOG_SCHEMA,
    validate_bundle,
)


def stuck_sample(done=5, depth=7):
    return ProbeSample(
        tasks_done=done,
        queues=[("queue[0]", 0), ("queue[1]", depth)],
        lock_holders={"queue[1]": "match-1"},
        extra={"workers_alive": 2},
    )


class TestProbeSample:
    def test_pending_sums_depths(self):
        assert stuck_sample(depth=7).pending == 7

    def test_negative_depth_counts_as_one_pending(self):
        # The mp backend's OS pipes expose no length; -1 means
        # "unknown but non-empty" and must still count as pending work.
        sample = ProbeSample(tasks_done=0, queues=[("pipe", -1)])
        assert sample.pending == 1


class TestTripDecision:
    def test_synthetic_stall_fires_once(self):
        dog = StallWatchdog(lambda: None, engine="unit", stall_after_s=1.0)
        assert dog.evaluate(0.0, stuck_sample()) is None  # first sample
        assert dog.evaluate(0.5, stuck_sample()) is None  # under threshold
        bundle = dog.evaluate(1.5, stuck_sample())        # over: trip
        assert bundle is not None
        assert dog.trips == 1 and dog.tripped
        # Same episode: no re-trip no matter how long it drags on.
        assert dog.evaluate(2.5, stuck_sample()) is None
        assert dog.evaluate(99.0, stuck_sample()) is None
        assert dog.trips == 1

    def test_bundle_is_schema_valid_and_names_stuck_queue(self):
        dog = StallWatchdog(lambda: None, engine="unit", stall_after_s=1.0)
        dog.evaluate(0.0, stuck_sample())
        bundle = dog.evaluate(2.0, stuck_sample())
        assert validate_bundle(bundle) == []
        assert bundle["schema"] == WATCHDOG_SCHEMA
        assert bundle["engine"] == "unit"
        assert bundle["stuck_queue"] == "queue[1]"
        assert bundle["lock_holders"] == {"queue[1]": "match-1"}
        assert bundle["stalled_for_s"] >= 1.0
        assert len(bundle["history"]) == 2
        json.dumps(bundle)  # must be JSON-serializable as-is

    def test_no_false_positive_when_idle_but_quiescent(self):
        """tasks_done frozen forever is fine as long as nothing is
        pending — an idle engine is not a stalled engine."""
        dog = StallWatchdog(lambda: None, engine="unit", stall_after_s=0.5)
        idle = ProbeSample(tasks_done=42, queues=[("queue[0]", 0)])
        for t in range(100):
            assert dog.evaluate(float(t), idle) is None
        assert not dog.tripped

    def test_progress_resets_the_stall_clock(self):
        dog = StallWatchdog(lambda: None, engine="unit", stall_after_s=1.0)
        dog.evaluate(0.0, stuck_sample(done=1))
        dog.evaluate(0.9, stuck_sample(done=2))  # progress
        assert dog.evaluate(1.8, stuck_sample(done=2)) is None  # only 0.9s stuck
        assert not dog.tripped

    def test_rearms_after_progress_for_a_second_episode(self):
        dog = StallWatchdog(lambda: None, engine="unit", stall_after_s=1.0)
        dog.evaluate(0.0, stuck_sample(done=1))
        assert dog.evaluate(2.0, stuck_sample(done=1)) is not None
        dog.evaluate(3.0, stuck_sample(done=2))  # progress: re-arm
        assert dog.evaluate(3.5, stuck_sample(done=2)) is None  # under threshold
        assert dog.evaluate(5.0, stuck_sample(done=2)) is not None
        assert dog.trips == 2

    def test_on_trip_callback_and_dump_path(self, tmp_path):
        path = tmp_path / "stall.json"
        seen = []
        dog = StallWatchdog(
            lambda: None, engine="unit", stall_after_s=1.0,
            on_trip=seen.append, dump_path=str(path),
        )
        dog.evaluate(0.0, stuck_sample())
        dog.evaluate(2.0, stuck_sample())
        assert len(seen) == 1
        doc = json.loads(path.read_text())
        assert validate_bundle(doc) == []
        assert doc["stuck_queue"] == "queue[1]"

    def test_bundle_embeds_worker_flight_tails(self):
        tails = {"match-0": [{"t_ns": 1, "engine": "mp.worker",
                              "event": "start", "detail": None}]}
        dog = StallWatchdog(
            lambda: None, engine="mp", stall_after_s=1.0,
            worker_tails=lambda: tails,
        )
        dog.evaluate(0.0, stuck_sample())
        bundle = dog.evaluate(2.0, stuck_sample())
        assert bundle["worker_flight"] == tails
        assert validate_bundle(bundle) == []

    def test_rejects_non_positive_threshold(self):
        with pytest.raises(ValueError):
            StallWatchdog(lambda: None, stall_after_s=0.0)


class TestValidateBundle:
    def test_catches_problems(self):
        assert validate_bundle([]) == ["document is not a JSON object"]
        assert any("schema" in p for p in validate_bundle({}))
        dog = StallWatchdog(lambda: None, engine="unit", stall_after_s=1.0)
        dog.evaluate(0.0, stuck_sample())
        bundle = dog.evaluate(2.0, stuck_sample())
        broken = dict(bundle, stuck_queue=None)
        assert any("stuck_queue" in p for p in validate_bundle(broken))


class TestForcedStall:
    def test_daemon_thread_trips_on_stuck_probe(self):
        """The acceptance fixture: a probe that forever reports pending
        work and a frozen done-counter must trip the real watchdog
        thread within ~stall_after_s, emitting one schema-valid bundle
        naming the stuck queue."""
        trips = []
        dog = StallWatchdog(
            lambda: stuck_sample(),
            engine="forced",
            stall_after_s=0.05,
            on_trip=trips.append,
        ).start()
        try:
            deadline = time.monotonic() + 5.0
            while not trips and time.monotonic() < deadline:
                time.sleep(0.01)
        finally:
            dog.stop()
        assert len(trips) == 1
        assert validate_bundle(trips[0]) == []
        assert trips[0]["stuck_queue"] == "queue[1]"

    def test_trip_lands_in_the_flight_ring(self):
        flight.configure(flight.DEFAULT_RING_SIZE)
        try:
            dog = StallWatchdog(lambda: None, engine="unit", stall_after_s=1.0)
            dog.evaluate(0.0, stuck_sample())
            dog.evaluate(2.0, stuck_sample())
            events = [e for e in flight.tail() if e["event"] == "watchdog.trip"]
            assert events
            assert events[-1]["detail"]["stuck_queue"] == "queue[1]"
        finally:
            flight.configure(flight.DEFAULT_RING_SIZE)

    def test_probe_exception_is_survivable(self):
        """A probe racing engine teardown may raise; the sampling loop
        must skip the tick, not die."""
        calls = []

        def flaky():
            calls.append(1)
            raise RuntimeError("engine mid-teardown")

        dog = StallWatchdog(flaky, engine="unit", stall_after_s=0.05).start()
        try:
            deadline = time.monotonic() + 5.0
            while len(calls) < 3 and time.monotonic() < deadline:
                time.sleep(0.01)
        finally:
            dog.stop()
        assert len(calls) >= 3
        assert not dog.tripped
