"""Unit tests for the structured event bus."""

import threading

from repro.obs import events


class TestFlag:
    def test_disabled_by_default(self):
        assert events.ENABLED is False
        assert events.enabled() is False

    def test_enable_disable(self, obs):
        assert events.enabled() is True
        events.disable()
        assert events.enabled() is False

    def test_snapshot_empty_when_nothing_recorded(self, obs):
        snap = events.snapshot()
        assert snap.n_spans == 0
        assert snap.nodes == {}
        assert snap.locks == {}
        assert snap.counters == {}


class TestRecording:
    def test_span_round_trip(self, obs):
        t0 = events.now()
        t1 = t0 + 1500
        events.span("match", "wm_change", t0, t1, args={"sign": 1})
        snap = events.snapshot()
        assert snap.n_spans == 1
        (start, dur, cat, name, args) = snap.spans_by_cat("match")[0]
        assert (start, dur, cat, name) == (t0, 1500, "match", "wm_change")
        assert args == {"sign": 1}

    def test_counters_accumulate(self, obs):
        events.count("queue.pop")
        events.count("queue.pop")
        events.count("queue.push", 5)
        snap = events.snapshot()
        assert snap.counters == {"queue.pop": 2, "queue.push": 5}

    def test_node_hits_aggregate_per_node(self, obs):
        events.node_hit(7, "join", 100, 3, 1)
        events.node_hit(7, "join", 50, 2, 0)
        events.node_hit(9, "not", 10, 0, 0)
        snap = events.snapshot()
        assert snap.nodes[7] == ["join", 2, 150, 5, 1]
        assert snap.nodes[9] == ["not", 1, 10, 0, 0]

    def test_lock_hits_aggregate_per_label(self, obs):
        events.lock_hit("queue", 10, 20, False)
        events.lock_hit("queue", 30, 40, True)
        snap = events.snapshot()
        assert snap.locks["queue"] == [2, 1, 40, 60]

    def test_span_buffer_bounded_and_drops_counted(self):
        events.reset()
        events.enable(max_events_per_worker=3)
        try:
            for i in range(10):
                events.span("c", f"s{i}", 0, 1)
            snap = events.snapshot()
            assert snap.n_spans == 3
            assert snap.dropped == 7
        finally:
            events.disable()
            events.reset()

    def test_reset_drops_everything(self, obs):
        events.span("c", "s", 0, 1)
        events.count("k")
        events.reset()
        snap = events.snapshot()
        assert snap.n_spans == 0 and snap.counters == {}


class TestThreading:
    def test_per_thread_buffers_merge(self, obs):
        def record():
            events.span("task", "join", 0, 10)
            events.count("queue.pop")
            events.node_hit(1, "join", 5, 1, 1)

        threads = [
            threading.Thread(target=record, name=f"obs-test-{i}")
            for i in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = events.snapshot()
        # One worker timeline per thread, each with its own span.
        names = [n for n in snap.workers if n.startswith("obs-test-")]
        assert len(names) == 3
        assert all(len(snap.workers[n]) == 1 for n in names)
        # Aggregates merge across buffers.
        assert snap.counters["queue.pop"] == 3
        assert snap.nodes[1] == ["join", 3, 15, 3, 3]

    def test_snapshot_does_not_stop_collection(self, obs):
        events.span("c", "a", 0, 1)
        events.snapshot()
        events.span("c", "b", 1, 2)
        assert events.snapshot().n_spans == 2
