"""Exporters: Chrome-trace JSON structure + schema validation, and the
Prometheus text exposition."""

import json

from repro.obs import events
from repro.obs.events import ObsSnapshot
from repro.obs.export import (
    chrome_trace,
    prometheus_text,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.ops5.interpreter import Interpreter
from repro.programs import blocks


def snapshot_with_spans() -> ObsSnapshot:
    snap = ObsSnapshot()
    snap.workers = {
        "MainThread": [(1_000, 2_000, "match", "wm_change", {"sign": 1})],
        "match-0": [(3_000, 500, "task", "join", None)],
    }
    return snap


class TestChromeTrace:
    def test_structure(self):
        doc = chrome_trace(snapshot_with_spans())
        events_ = doc["traceEvents"]
        meta = [e for e in events_ if e["ph"] == "M"]
        xs = [e for e in events_ if e["ph"] == "X"]
        assert len(meta) == 2 and len(xs) == 2
        assert {m["args"]["name"] for m in meta} == {"MainThread", "match-0"}
        assert doc["displayTimeUnit"] == "ms"

    def test_microsecond_conversion(self):
        doc = chrome_trace(snapshot_with_spans())
        x = next(
            e for e in doc["traceEvents"]
            if e["ph"] == "X" and e["name"] == "wm_change"
        )
        assert x["ts"] == 1.0 and x["dur"] == 2.0  # ns -> us
        assert x["args"] == {"sign": 1}

    def test_valid_doc_passes_validation(self):
        assert validate_chrome_trace(chrome_trace(snapshot_with_spans())) == []

    def test_validation_catches_problems(self):
        assert validate_chrome_trace([]) == ["document is not a JSON object"]
        assert validate_chrome_trace({}) == [
            "traceEvents is missing or not an array"
        ]
        bad_phase = {"traceEvents": [{"ph": "Q"}]}
        assert any("unknown phase" in p for p in validate_chrome_trace(bad_phase))
        negative = {
            "traceEvents": [
                {"name": "x", "cat": "c", "ph": "X", "ts": -1, "dur": 0,
                 "pid": 1, "tid": 0}
            ]
        }
        assert any("non-negative" in p for p in validate_chrome_trace(negative))
        missing = {"traceEvents": [{"ph": "X", "ts": 0, "dur": 0}]}
        assert any("missing" in p for p in validate_chrome_trace(missing))

    def test_write_round_trip(self, tmp_path, obs):
        interp = Interpreter(blocks.source())
        interp.run(max_cycles=1000)
        path = tmp_path / "trace.json"
        n = write_chrome_trace(str(path), events.snapshot())
        assert n > 0
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == []
        assert len(doc["traceEvents"]) == n


class TestPrometheus:
    SERVER = {
        "uptime_s": 12.5,
        "requests": 42,
        "errors": 1,
        "connections": 3,
        "sessions_opened": 2,
        "sessions_closed": 1,
        "rejected_busy": 0,
        "rejected_budget": 0,
        "transactions": 40,
        "cycles": 400,
        "firings": 100,
        "latency": {"p50_ms": 1.5, "p95_ms": 2.5, "p99_ms": 3.5, "mean_ms": 1.8},
    }

    def test_server_families(self):
        text = prometheus_text(self.SERVER)
        assert "# TYPE repro_requests_total counter" in text
        assert "repro_requests_total 42" in text
        assert 'repro_latency_ms{quantile="p95"} 2.5000' in text
        assert text.endswith("\n")

    def test_netcache_and_sessions(self):
        text = prometheus_text(
            self.SERVER,
            sessions={"s1": {"transactions": 7, "wm_size": 9}},
            netcache={"entries": 2, "hits": 5, "misses": 2},
        )
        assert "repro_netcache_entries 2" in text
        assert 'repro_session_transactions_total{session="s1"} 7' in text
        assert 'repro_session_wm_size{session="s1"} 9' in text

    def test_label_escaping(self):
        text = prometheus_text(
            self.SERVER, sessions={'s"1': {"transactions": 1, "wm_size": 0}}
        )
        assert 'session="s\\"1"' in text

    def test_obs_dropped_events(self):
        text = prometheus_text(
            self.SERVER, obs={"enabled": True, "dropped_events": 17}
        )
        assert "# TYPE repro_obs_dropped_events_total counter" in text
        assert "repro_obs_dropped_events_total 17" in text
        assert "repro_obs_enabled 1" in text
        # Omitting the section keeps pre-existing scrapes unchanged.
        assert "repro_obs" not in prometheus_text(self.SERVER)

    def test_obs_dropped_total_tracks_buffer_saturation(self, obs):
        before = events.dropped_total()
        events.enable(max_events_per_worker=2)
        for i in range(5):
            events.span("cat", "name", i, i + 1)
        assert events.dropped_total() == before + 3
        assert events.snapshot().dropped == 3
        # The counter is monotonic over the process lifetime: resetting
        # the capture retires the buffers but retains their drops.
        events.reset()
        assert events.dropped_total() == before + 3
        assert events.snapshot().dropped == 0
