"""The meter: histogram/exemplar semantics, dual-account bookkeeping,
SLO burn rates, and the Prometheus exposition round-trip."""

import pytest

from repro.obs import meter
from repro.obs.export import prometheus_text, validate_prometheus
from repro.obs.meter import (
    BUCKETS_MS,
    Histogram,
    Meter,
    MeterAccount,
    SLObjective,
    parse_objective,
)


@pytest.fixture(autouse=True)
def fresh_meter():
    meter.disable()
    meter.reset()
    yield
    meter.disable()
    meter.reset()


class TestHistogram:
    def test_buckets_and_inf(self):
        h = Histogram()
        h.observe(0.5)       # le=1
        h.observe(30.0)      # le=50
        h.observe(9999.0)    # +Inf
        assert h.total == 3
        assert h.counts[0] == 1
        assert h.counts[BUCKETS_MS.index(50.0)] == 1
        assert h.inf_count == 1
        cum = h.cumulative()
        assert cum[-1] == 3
        assert cum == sorted(cum)  # monotone

    def test_under_ms_bucket_resolution(self):
        h = Histogram()
        for v in (0.5, 3.0, 40.0, 400.0):
            h.observe(v)
        assert h.under_ms(250.0) == 3
        assert h.under_ms(1.0) == 1

    def test_exemplar_keeps_last_per_bucket(self):
        h = Histogram()
        h.observe(30.0, request_id="r1")
        h.observe(40.0, request_id="r2")
        idx = BUCKETS_MS.index(50.0)
        value, rid, unix = h.exemplars[idx]
        assert (value, rid) == (40.0, "r2")
        assert unix > 0

    def test_no_request_id_no_exemplar(self):
        h = Histogram()
        h.observe(30.0)
        assert not h.exemplars


class TestAccount:
    def test_percentiles_nearest_rank(self):
        acct = MeterAccount()
        for ms in range(1, 101):  # 1..100 ms
            acct.observe_txn(ms / 1e3)
        p = acct.percentiles()
        assert p["p50_ms"] == pytest.approx(50.0)
        assert p["p95_ms"] == pytest.approx(95.0)
        assert p["p99_ms"] == pytest.approx(99.0)

    def test_slo_burn_rate(self):
        acct = MeterAccount()
        # 96 good (under 100ms at bucket resolution), 4 bad => 4%
        # violations against a 1% budget: burn 4x.
        for _ in range(96):
            acct.observe_txn(0.010)
        for _ in range(4):
            acct.observe_txn(0.400)
        [rep] = acct.slo_report([SLObjective("p99", 100.0, 0.99)])
        assert rep["total"] == 100
        assert rep["good"] == 96
        assert rep["burn_rate"] == pytest.approx(4.0)
        assert rep["met"] is False

    def test_slo_met_with_zero_burn(self):
        acct = MeterAccount()
        for _ in range(10):
            acct.observe_txn(0.001)
        [rep] = acct.slo_report([SLObjective("p99", 100.0, 0.99)])
        assert rep["burn_rate"] == 0.0
        assert rep["met"] is True

    def test_empty_account_meets_slo(self):
        acct = MeterAccount()
        [rep] = acct.slo_report([SLObjective("p99", 100.0, 0.99)])
        assert rep["achieved"] == 1.0
        assert rep["met"] is True


class TestMeterBookkeeping:
    def test_every_quantity_lands_in_session_and_tenant(self):
        m = Meter()
        m.register_session("s1", "acme")
        m.register_session("s2", "acme")
        m.add("s1", "match_s", 0.25)
        m.add("s2", "match_s", 0.75)
        m.observe_txn("s1", 0.010, request_id="r1")
        doc = m.to_json()
        assert doc["sessions"]["s1"]["counters"]["match_s"] == 0.25
        assert doc["tenants"]["acme"]["counters"]["match_s"] == 1.0
        assert doc["tenants"]["acme"]["counters"]["txns"] == 1

    def test_unregistered_session_defaults_tenant(self):
        m = Meter()
        m.add("ghost", "firings")
        assert m.to_json()["tenants"]["default"]["counters"]["firings"] == 1

    def test_explicit_tenant_overrides_registration(self):
        m = Meter()
        m.register_session("s1", "acme")
        m.add("s1", "ipc_bytes", 100, tenant="umbrella")
        doc = m.to_json()
        assert doc["tenants"]["umbrella"]["counters"]["ipc_bytes"] == 100

    def test_module_enable_starts_fresh_epoch(self):
        meter.enable()
        meter.add("s1", "firings")
        assert meter.snapshot()["sessions"]["s1"]["counters"]["firings"] == 1
        meter.enable()  # fresh epoch
        assert "s1" not in meter.snapshot()["sessions"]

    def test_disabled_meter_drops_everything(self):
        meter.add("s1", "firings")
        meter.txn("s1", 0.001)
        snap = meter.snapshot()
        assert snap["enabled"] is False
        assert not snap["sessions"]

    def test_enable_with_custom_objectives(self):
        meter.enable([SLObjective("fast", 10.0, 0.9)])
        snap = meter.snapshot()
        assert snap["objectives"] == [
            {"name": "fast", "target_ms": 10.0, "goal": 0.9}
        ]


class TestParseObjective:
    def test_roundtrip(self):
        obj = parse_objective("txn_p99:250:0.99")
        assert obj == SLObjective("txn_p99", 250.0, 0.99)

    @pytest.mark.parametrize("spec", [
        "nope", "a:b:c", ":250:0.99", "x:0:0.5", "x:10:1.5", "x:10:0",
    ])
    def test_rejects_bad_specs(self, spec):
        with pytest.raises(ValueError):
            parse_objective(spec)


class TestPrometheusExposition:
    def _metered_snapshot(self):
        meter.enable()
        meter.register_session("s1", "t0")
        meter.register_session("s2", "t1")
        meter.add("s1", "match_s", 0.125)
        meter.add("s1", "rejected_busy")
        meter.add("s2", "ipc_bytes", 4096)
        meter.txn("s1", 0.030, request_id="r1")
        meter.txn("s2", 0.300, request_id="r2")
        return meter.snapshot()

    def test_exposition_validates_clean(self):
        text = prometheus_text(
            {"uptime_s": 1.0}, {}, {}, meter=self._metered_snapshot()
        )
        assert validate_prometheus(text) == []

    def test_meter_families_and_exemplars_present(self):
        text = prometheus_text(
            {"uptime_s": 1.0}, {}, {}, meter=self._metered_snapshot()
        )
        assert 'repro_meter_match_seconds_total{scope="tenant",id="t0"}' in text
        assert 'repro_meter_rejected_busy_total{scope="session",id="s1"}' in text
        assert "repro_meter_txn_latency_ms_bucket" in text
        assert '# {request_id="r2"}' in text

    def test_validator_catches_nonmonotone_buckets(self):
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{tenant="t",le="1"} 5\n'
            'h_bucket{tenant="t",le="2"} 3\n'
            'h_bucket{tenant="t",le="+Inf"} 5\n'
            'h_sum{tenant="t"} 1.0\n'
            'h_count{tenant="t"} 5\n'
        )
        assert validate_prometheus(bad)

    def test_validator_catches_exemplar_off_bucket(self):
        bad = 'repro_server_uptime_seconds 1.0 # {request_id="r1"} 1.0\n'
        assert validate_prometheus(bad)
