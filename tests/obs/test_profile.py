"""Profile aggregation: hot-spot tables from snapshots, and the
end-to-end attribution guarantee (profile activations equal
``MatchStats.node_activations``) on a real run."""

from repro.obs import events, profile
from repro.obs.events import ObsSnapshot
from repro.ops5.interpreter import Interpreter
from repro.programs import blocks


def synthetic_snapshot() -> ObsSnapshot:
    snap = ObsSnapshot()
    snap.nodes = {
        1: ["join", 4, 4_000_000, 12, 3],   # 4 ms self time
        2: ["not", 2, 1_000_000, 5, 0],
        3: ["term", 1, 500_000, 0, 0],
    }
    snap.locks = {"queue": [10, 2, 2_000_000, 3_000_000]}
    snap.workers = {
        "MainThread": [
            (0, 7_000_000, "phase", "match", None),
            (0, 1_000_000, "phase", "act", None),
            (0, 2_000_000, "phase", "match", None),
        ]
    }
    snap.counters = {"queue.pop": 10}
    return snap


class FakeNetwork:
    node_owner = {1: "move-block", 2: "move-block", 3: "all-done"}


class TestBuild:
    def test_node_rows_sorted_hottest_first(self):
        prof = profile.build(synthetic_snapshot())
        assert [r.node_id for r in prof.nodes] == [1, 2, 3]
        assert prof.nodes[0].self_ms == 4.0
        assert prof.nodes[0].production == "?"  # no network supplied

    def test_production_attribution_and_rollup(self):
        prof = profile.build(synthetic_snapshot(), network=FakeNetwork())
        by_name = {r.production: r for r in prof.productions}
        assert by_name["move-block"].activations == 6  # nodes 1 + 2
        assert by_name["move-block"].examined == 17
        assert by_name["all-done"].activations == 1
        assert prof.total_activations == 7

    def test_lock_rows(self):
        prof = profile.build(synthetic_snapshot())
        (row,) = prof.locks
        assert row.label == "queue"
        assert row.acquires == 10 and row.contended == 2
        assert row.contention_ratio == 0.2
        assert row.wait_ms == 2.0 and row.hold_ms == 3.0

    def test_phases_aggregated(self):
        prof = profile.build(synthetic_snapshot())
        match = next(r for r in prof.phases if r.phase == "match")
        assert match.count == 2 and match.total_ms == 9.0
        assert prof.phases[0].phase == "match"  # hottest first


class TestRenderers:
    def test_render_text_names_productions(self):
        text = profile.render_text(
            profile.build(synthetic_snapshot(), network=FakeNetwork())
        )
        assert "move-block" in text
        assert "total activations: 7" in text
        assert "lock contention:" in text

    def test_render_empty(self):
        assert profile.render_text(profile.build(ObsSnapshot())) == (
            "(no events recorded)"
        )

    def test_to_json_is_serializable_and_complete(self):
        import json

        doc = profile.to_json(
            profile.build(synthetic_snapshot(), network=FakeNetwork())
        )
        json.dumps(doc)  # must not raise
        assert doc["total_activations"] == 7
        assert {r["production"] for r in doc["productions"]} == {
            "move-block", "all-done"
        }
        assert doc["locks"][0]["contention_ratio"] == 0.2


class TestEndToEnd:
    def test_profile_activations_equal_match_stats(self, obs):
        """The issue's acceptance criterion: per-production activation
        counts roll up to exactly ``MatchStats.node_activations``."""
        interp = Interpreter(blocks.source())
        interp.run(max_cycles=1000)
        prof = profile.build(events.snapshot(), network=interp.network)
        assert prof.total_activations == interp.stats.node_activations
        assert prof.total_activations > 0
        named = {r.production for r in prof.productions}
        assert "move-block" in named
        assert "?" not in named  # every beta node attributed
