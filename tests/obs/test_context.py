"""Request-scoped context: propagation, tagging, engine flow-through.

The context rides a ``ContextVar``, which does NOT cross thread or
process boundaries by itself — the engine tests here pin down the
explicit hand-off (task-tuple stamps for threaded workers) that makes
request tags appear on worker spans anyway.
"""

import pytest

from repro.obs import context


@pytest.fixture(autouse=True)
def no_leaked_context():
    assert context.current() is None
    yield
    assert context.current() is None


class TestRequestContext:
    def test_new_request_mints_fresh_ids(self):
        a = context.new_request(session_id="s1", tenant="acme")
        b = context.new_request(session_id="s1", tenant="acme")
        assert a.request_id != b.request_id
        assert a.request_id.startswith("r")
        assert a.session_id == "s1"
        assert a.tenant == "acme"

    def test_ids_has_exactly_the_ctx_keys(self):
        ctx = context.new_request(session_id="s9", tenant="t")
        ids = ctx.ids()
        assert set(ids) == set(context.CTX_KEYS)
        assert ids["req"] == ctx.request_id
        assert ids["session"] == "s9"
        assert ids["tenant"] == "t"

    def test_default_tenant(self):
        ctx = context.new_request(session_id="s")
        assert ctx.tenant == context.DEFAULT_TENANT


class TestActivation:
    def test_activate_deactivate(self):
        ctx = context.new_request(session_id="s1")
        token = context.activate(ctx)
        try:
            assert context.current() is ctx
            assert context.current_ids() == ctx.ids()
        finally:
            context.deactivate(token)
        assert context.current() is None
        assert context.current_ids() is None

    def test_scope_restores_on_exit(self):
        outer = context.new_request(session_id="outer")
        inner = context.new_request(session_id="inner")
        with context.scope(outer):
            with context.scope(inner):
                assert context.current() is inner
            assert context.current() is outer

    def test_scope_restores_on_exception(self):
        ctx = context.new_request(session_id="s")
        with pytest.raises(RuntimeError):
            with context.scope(ctx):
                raise RuntimeError("boom")
        assert context.current() is None


class TestTagging:
    def test_tag_without_context_returns_args_untouched(self):
        args = {"cycle": 3}
        assert context.tag(args) is args
        assert args == {"cycle": 3}

    def test_tag_merges_active_ids(self):
        ctx = context.new_request(session_id="s2", tenant="acme")
        with context.scope(ctx):
            args = context.tag({"cycle": 1})
        assert args["cycle"] == 1
        assert args["req"] == ctx.request_id
        assert args["session"] == "s2"
        assert args["tenant"] == "acme"

    def test_tag_ids_explicit(self):
        ids = {"req": "r77", "session": "sX", "tenant": "tX"}
        args = context.tag_ids({"node": 4}, ids)
        assert args["req"] == "r77"
        assert args["node"] == 4

    def test_tag_ids_none_is_passthrough(self):
        args = {"node": 4}
        assert context.tag_ids(args, None) is args


class TestEngineFlowThrough:
    PROGRAM = """
    (literalize item n)
    (p bump
      (item ^n <n>)
      -->
      (remove 1))
    (p seed
      (start)
      -->
      (make item ^n 1)
      (make item ^n 2)
      (remove 1))
    """

    def _run(self, obs, engine_kwargs):
        from repro.ops5.interpreter import Interpreter, WMOp

        ctx = context.new_request(session_id="sess-e", tenant="ten-e")
        interp = Interpreter(self.PROGRAM, **engine_kwargs)
        try:
            with context.scope(ctx):
                interp.apply_transaction([WMOp.make("start", {})])
                interp.run_cycles(50)
        finally:
            interp.close()
        return ctx, obs.snapshot()

    def test_phase_spans_carry_request_ids(self, obs):
        ctx, snap = self._run(obs, {})
        phases = snap.spans_by_cat("phase")
        tagged = [s for s in phases if s[4].get("req") == ctx.request_id]
        assert tagged, "no phase span carried the request id"
        assert all(s[4]["session"] == "sess-e" for s in tagged)
        assert all(s[4]["tenant"] == "ten-e" for s in tagged)

    def test_threaded_worker_task_spans_carry_request_ids(self, obs):
        ctx, snap = self._run(
            obs, {"engine": "threaded", "engine_opts": {"n_workers": 2}}
        )
        tasks = snap.spans_by_cat("task")
        assert tasks
        tagged = [s for s in tasks if s[4].get("req") == ctx.request_id]
        assert tagged, "no worker task span carried the request id"
        assert all(s[4]["tenant"] == "ten-e" for s in tagged)

    def test_no_context_no_tags(self, obs):
        from repro.ops5.interpreter import Interpreter

        interp = Interpreter(self.PROGRAM)
        try:
            interp.run(max_cycles=20)
        finally:
            interp.close()
        snap = obs.snapshot()
        phases = snap.spans_by_cat("phase")
        assert phases
        assert not any("req" in s[4] for s in phases)
