"""The flight recorder: ring semantics, snapshot schema, error dumps.

The ring is module-global (deliberately: it must already be running
when the crash happens), so every test reconfigures it on the way in
and restores the default capacity on the way out.
"""

import json

import pytest

from repro.obs import flight


@pytest.fixture(autouse=True)
def fresh_ring():
    flight.configure(flight.DEFAULT_RING_SIZE)
    flight.set_dump_path(None)
    yield
    flight.configure(flight.DEFAULT_RING_SIZE)
    flight.set_dump_path(None)


class TestRing:
    def test_record_and_tail(self):
        flight.record("seq", "batch", {"changes": 3})
        flight.record("seq", "batch", {"changes": 1})
        tail = flight.tail()
        assert len(tail) == 2
        assert tail[0]["engine"] == "seq"
        assert tail[0]["event"] == "batch"
        assert tail[0]["detail"] == {"changes": 3}
        assert tail[1]["t_ns"] >= tail[0]["t_ns"]

    def test_ring_overwrites_oldest(self):
        flight.configure(4)
        for i in range(10):
            flight.record("e", "tick", {"i": i})
        tail = flight.tail()
        assert [e["detail"]["i"] for e in tail] == [6, 7, 8, 9]

    def test_tail_n_returns_most_recent(self):
        for i in range(5):
            flight.record("e", "tick", {"i": i})
        assert [e["detail"]["i"] for e in flight.tail(2)] == [3, 4]

    def test_recorded_total_outlives_overwrites(self):
        flight.configure(2)
        for _ in range(7):
            flight.record("e", "tick")
        doc = flight.snapshot("test")
        assert doc["recorded_total"] == 7
        assert doc["ring_capacity"] == 2
        assert len(doc["events"]) == 2

    def test_reset_empties_but_keeps_capacity(self):
        flight.configure(8)
        flight.record("e", "tick")
        flight.reset()
        assert flight.tail() == []
        doc = flight.snapshot("test")
        assert doc["ring_capacity"] == 8
        assert doc["recorded_total"] == 0

    def test_configure_rejects_zero(self):
        with pytest.raises(ValueError):
            flight.configure(0)


class TestSnapshot:
    def test_snapshot_is_schema_valid(self):
        flight.record("seq", "batch")
        doc = flight.snapshot("unit test")
        assert doc["schema"] == flight.FLIGHT_SCHEMA
        assert doc["reason"] == "unit test"
        assert doc["process"] == "control"
        assert flight.validate_flight(doc) == []

    def test_snapshot_embeds_worker_tails(self):
        doc = flight.snapshot(
            "crash", workers={"match-1": [{"t_ns": 1, "engine": "mp.worker",
                                           "event": "start", "detail": None}]}
        )
        assert "match-1" in doc["workers"]
        assert flight.validate_flight(doc) == []

    def test_write_snapshot_round_trip(self, tmp_path):
        flight.record("seq", "batch", {"changes": 2})
        path = tmp_path / "flight.json"
        flight.write_snapshot(str(path), "round trip")
        doc = json.loads(path.read_text())
        assert flight.validate_flight(doc) == []
        assert doc["events"][-1]["detail"] == {"changes": 2}

    def test_validate_catches_problems(self):
        assert flight.validate_flight([]) == ["document is not a JSON object"]
        assert any("schema" in p for p in flight.validate_flight({}))
        doc = flight.snapshot("ok")
        doc["events"] = "nope"
        assert any("events" in p for p in flight.validate_flight(doc))


class TestErrorDump:
    def test_dump_on_error_writes_when_path_set(self, tmp_path):
        path = tmp_path / "crash.json"
        flight.set_dump_path(str(path))
        flight.record("seq", "batch")
        assert flight.dump_on_error("unit crash") == str(path)
        doc = json.loads(path.read_text())
        assert doc["reason"] == "unit crash"
        assert flight.validate_flight(doc) == []

    def test_dump_on_error_noop_without_path(self):
        assert flight.dump_on_error("nowhere") is None

    def test_dump_on_error_env_fallback(self, tmp_path, monkeypatch):
        path = tmp_path / "env.json"
        monkeypatch.setenv(flight.DUMP_ENV, str(path))
        flight.record("seq", "batch")
        assert flight.dump_on_error("env crash") == str(path)
        assert path.exists()

    def test_dump_on_error_never_raises(self, tmp_path):
        flight.set_dump_path(str(tmp_path / "no" / "such" / "dir" / "f.json"))
        assert flight.dump_on_error("bad path") is None

    def test_interpreter_dumps_on_match_error(self, tmp_path):
        """An exception escaping the matcher leaves a flight snapshot
        behind (the on-unhandled-error hook in _apply_changes)."""
        from repro.ops5.interpreter import Interpreter
        from tests.conftest import FIND_COLORED_BLOCK

        path = tmp_path / "matcherr.json"
        flight.set_dump_path(str(path))
        interp = Interpreter(FIND_COLORED_BLOCK)

        def boom(changes):
            raise RuntimeError("forced match failure")

        interp.matcher.process_changes = boom
        with pytest.raises(RuntimeError, match="forced match failure"):
            interp.run(max_cycles=10)
        doc = json.loads(path.read_text())
        assert doc["reason"] == "match_error"
        assert flight.validate_flight(doc) == []
        events = [e["event"] for e in doc["events"]]
        assert "match_error" in events
