"""Shared fixture: the event bus is module-global, so every test that
enables it must disable and reset it on the way out."""

import pytest

from repro.obs import events


@pytest.fixture
def obs():
    events.reset()
    events.enable()
    yield events
    events.disable()
    events.reset()
