"""The cross-process trace fabric: shipping, collection, stitching,
and the raw-capture round trip.

Unit tests fabricate ships and snapshots; the integration class at the
bottom runs the real mp engine (skipped where 'fork' is unavailable)
and checks the cross-engine property the fabric exists for — an mp
run's merged node profile covers the same node set as a sequential
run of the same program.
"""

import json

import pytest

from repro.obs import events, fabric
from repro.obs.events import ObsSnapshot
from repro.obs.export import validate_chrome_trace
from repro.obs.fabric import (
    FabricCollector,
    WORKER_PID_BASE,
    build_ship,
    capture_doc,
    load_capture,
    merged_snapshot,
    stitch_trace,
    validate_capture,
    write_capture,
)


def ship(wid=0, seq=1, pid=4242, t0=1_000, nodes=None, flight=None, **extra):
    payload = {
        "pid": pid,
        "spans": [(t0, 500, "mp.worker", "batch",
                   {"seq": seq, "wid": wid, "changes": 2})],
        "nodes": nodes or {},
        "counters": {"queue.push": 3},
        "dropped": 0,
        "ship_dropped": 0,
        "flight": flight if flight is not None else [
            {"t_ns": t0, "engine": "mp.worker", "event": "batch",
             "detail": {"seq": seq}}
        ],
    }
    payload.update(extra)
    return payload


def control_snapshot(seqs=(1,)):
    """A control-process snapshot with one mp.dispatch span per seq."""
    snap = ObsSnapshot()
    snap.workers = {
        "MainThread": [
            (seq * 1_000 - 200, 100, "mp", "dispatch",
             {"changes": 2, "seq": seq})
            for seq in seqs
        ]
    }
    return snap


class TestBuildShip:
    def test_snapshots_and_resets_the_local_bus(self, obs):
        events.span("task", "join", 10, 20)
        payload = build_ship()
        assert len(payload["spans"]) == 1
        assert payload["spans"][0][2:4] == ("task", "join")
        # The bus was reset: a second ship is an empty delta.
        assert build_ship()["spans"] == []

    def test_bounds_spans_and_counts_overflow(self, obs):
        for i in range(10):
            events.span("task", "join", i, i + 1)
        payload = build_ship(max_spans=4)
        assert len(payload["spans"]) == 4
        assert payload["ship_dropped"] == 6
        # The most recent spans survive, not the oldest.
        assert payload["spans"][-1][0] == 9

    def test_carries_flight_tail(self, obs):
        from repro.obs import flight

        flight.configure(flight.DEFAULT_RING_SIZE)
        try:
            flight.record("mp.worker", "start", {"wid": 0})
            payload = build_ship(tail_n=5)
            assert payload["flight"][-1]["event"] == "start"
        finally:
            flight.configure(flight.DEFAULT_RING_SIZE)


class TestFabricCollector:
    def test_absorb_accumulates_lanes(self):
        collector = FabricCollector()
        collector.absorb(0, ship(wid=0, seq=1))
        collector.absorb(0, ship(wid=0, seq=2, t0=2_000))
        collector.absorb(1, ship(wid=1, seq=1, pid=4243))
        assert sorted(collector.lanes) == [0, 1]
        assert collector.ship_batches == 3
        assert collector.shipped_spans == 3
        lane = collector.lanes[0]
        assert lane.name == "match-0" and lane.pid == 4242
        assert lane.counters["queue.push"] == 6

    def test_lane_span_cap_counts_drops(self, monkeypatch):
        monkeypatch.setattr(fabric, "LANE_MAX_SPANS", 3)
        collector = FabricCollector()
        many = ship(wid=0)
        many["spans"] = [(i, 1, "mp.worker", "batch", None) for i in range(5)]
        collector.absorb(0, many)
        lane = collector.lanes[0]
        assert len(lane.spans) == 3
        assert lane.dropped == 2

    def test_node_aggregates_merge(self):
        collector = FabricCollector()
        collector.absorb(0, ship(nodes={7: ["join", 2, 100, 4, 1]}))
        collector.absorb(0, ship(seq=2, nodes={7: ["join", 3, 50, 2, 0]}))
        assert collector.lanes[0].nodes[7] == ["join", 5, 150, 6, 1]

    def test_flight_tails_keeps_last_known(self):
        collector = FabricCollector()
        collector.absorb(0, ship(seq=1))
        collector.absorb(0, ship(seq=2, flight=[
            {"t_ns": 9, "engine": "mp.worker", "event": "stop", "detail": None}
        ]))
        # An empty tail on a later ship must not erase the last-known one.
        collector.absorb(0, ship(seq=3, flight=[]))
        tails = collector.flight_tails()
        assert tails["match-0"][-1]["event"] == "stop"

    def test_absorb_bumps_control_bus_counters(self, obs):
        collector = FabricCollector()
        collector.absorb(0, ship())
        snap = events.snapshot()
        assert snap.counters["fabric.ship_batches"] == 1
        assert snap.counters["fabric.ship_spans"] == 1


class TestMergedSnapshot:
    def test_lanes_become_worker_timelines(self):
        collector = FabricCollector()
        collector.absorb(0, ship(nodes={7: ["join", 2, 100, 4, 1]}))
        snap = control_snapshot()
        snap.nodes = {7: ["join", 1, 10, 1, 0], 9: ["not", 1, 5, 0, 0]}
        merged = merged_snapshot(snap, collector)
        assert "mp:match-0" in merged.workers
        assert merged.nodes[7] == ["join", 3, 110, 5, 1]
        assert merged.nodes[9] == ["not", 1, 5, 0, 0]
        # The originals are untouched (merged is a deep copy).
        assert snap.nodes[7][1] == 1
        assert "mp:match-0" not in snap.workers


class TestStitchTrace:
    def test_flow_links_dispatch_to_worker_batches(self):
        collector = FabricCollector()
        collector.absorb(0, ship(wid=0, seq=1))
        collector.absorb(1, ship(wid=1, seq=1, pid=4243))
        doc, orphans = stitch_trace(control_snapshot(seqs=(1,)), collector)
        assert orphans == 0
        assert validate_chrome_trace(doc) == []
        events_ = doc["traceEvents"]
        pids = {e["pid"] for e in events_}
        assert pids == {1, WORKER_PID_BASE, WORKER_PID_BASE + 1}
        starts = [e for e in events_ if e["ph"] == "s"]
        finishes = [e for e in events_ if e["ph"] == "f"]
        assert len(starts) == len(finishes) == 2
        # One unique flow id per (dispatch, worker) arrow.
        assert len({e["id"] for e in starts}) == 2
        for f in finishes:
            assert f["bp"] == "e"
        assert doc["otherData"]["fabric_lanes"] == 2
        assert doc["otherData"]["stitch_orphans"] == 0

    def test_orphan_batches_are_counted_not_linked(self):
        collector = FabricCollector()
        collector.absorb(0, ship(seq=1))
        collector.absorb(0, ship(seq=99, t0=2_000))  # no such dispatch
        doc, orphans = stitch_trace(control_snapshot(seqs=(1,)), collector)
        assert orphans == 1
        assert doc["otherData"]["stitch_orphans"] == 1
        assert len([e for e in doc["traceEvents"] if e["ph"] == "s"]) == 1

    def test_process_names_label_the_lanes(self):
        collector = FabricCollector()
        collector.absorb(0, ship())
        doc, _ = stitch_trace(control_snapshot(), collector)
        names = {
            e["pid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names[1] == "control"
        assert names[WORKER_PID_BASE].startswith("match-0")


class TestCaptureRoundTrip:
    def build(self):
        collector = FabricCollector()
        collector.absorb(0, ship(nodes={7: ["join", 2, 100, 4, 1]}))
        snap = control_snapshot()
        snap.nodes = {3: ["alpha", 1, 10, 1, 1]}
        snap.counters = {"queue.push": 5}
        return snap, collector

    def test_doc_validates_and_survives_json(self, tmp_path):
        snap, collector = self.build()
        assert validate_capture(capture_doc(snap, collector)) == []
        path = tmp_path / "capture.json"
        write_capture(str(path), snap, collector)
        doc = json.loads(path.read_text())
        assert validate_capture(doc) == []
        snap2, collector2 = load_capture(doc)
        assert snap2.workers.keys() == snap.workers.keys()
        assert snap2.nodes == snap.nodes
        assert collector2.lanes[0].nodes == collector.lanes[0].nodes
        assert collector2.lanes[0].ship_batches == 1

    def test_restitched_capture_matches_original(self, tmp_path):
        snap, collector = self.build()
        original, orphans = stitch_trace(snap, collector)
        path = tmp_path / "capture.json"
        write_capture(str(path), snap, collector)
        snap2, collector2 = load_capture(json.loads(path.read_text()))
        restitched, orphans2 = stitch_trace(snap2, collector2)
        assert orphans2 == orphans
        assert restitched["traceEvents"] == json.loads(
            json.dumps(original["traceEvents"])
        )

    def test_load_rejects_bad_doc(self):
        with pytest.raises(ValueError, match="bad fabric capture"):
            load_capture({"schema": "nope"})
        assert validate_capture([]) == ["document is not a JSON object"]
        assert any(
            "lanes" in p
            for p in validate_capture(
                {"schema": fabric.FABRIC_SCHEMA, "control": {"workers": {}}}
            )
        )


# -- integration against the real mp engine ---------------------------------


from repro.parallel.mp import ProcessMatcher, mp_supported  # noqa: E402

needs_mp = pytest.mark.skipif(
    not mp_supported(), reason="mp engine needs the 'fork' start method"
)


@needs_mp
class TestMpIntegration:
    def run_traced(self, source, engine, **opts):
        from repro.ops5.interpreter import Interpreter

        events.reset()
        events.enable()
        try:
            interp = Interpreter(source, engine=engine, engine_opts=opts)
            try:
                interp.run(max_cycles=2000)
                snap = events.snapshot()
                return interp, snap
            finally:
                interp.close()
        finally:
            events.disable()
            events.reset()

    def test_mp_node_profile_matches_sequential_node_set(self):
        """The cross-engine property: a bus-on tourney run under mp
        must yield (merged) per-node profiles covering exactly the node
        set the sequential engine activates — the workers' shipped
        aggregates are the real thing, not a subsample.  Per-node
        activation *counts* may legitimately exceed the sequential
        run's (cross-shard forwarding re-activates some beta nodes),
        but the merged total must equal what the mp engine's own
        MatchStats counted — the identity the ``repro trace`` footer
        checks."""
        from repro.programs import tourney

        source = tourney.source(n_teams=4, n_rounds=3)
        seq_interp, seq_snap = self.run_traced(source, "sequential")
        mp_interp, mp_control = self.run_traced(
            source, "mp", n_workers=2)
        merged = merged_snapshot(mp_control, mp_interp.matcher.fabric)
        assert set(merged.nodes) == set(seq_snap.nodes)
        for node_id, agg in merged.nodes.items():
            assert agg[0] == seq_snap.nodes[node_id][0]  # same kind
            assert agg[1] >= seq_snap.nodes[node_id][1]
        assert sum(agg[1] for agg in merged.nodes.values()) == (
            mp_interp.matcher.stats.node_activations
        )

    def test_stitched_trace_covers_all_processes(self):
        from tests.conftest import FIND_COLORED_BLOCK

        interp, snap = self.run_traced(FIND_COLORED_BLOCK, "mp", n_workers=2)
        doc, orphans = stitch_trace(snap, interp.matcher.fabric)
        assert orphans == 0
        assert validate_chrome_trace(doc) == []
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert pids == {1, WORKER_PID_BASE, WORKER_PID_BASE + 1}
        assert any(e["ph"] == "s" for e in doc["traceEvents"])

    def test_worker_tails_flow_with_bus_off(self):
        """Ships travel on every flush even with tracing disabled —
        that is what keeps dead-worker forensics and watchdog bundles
        available in an untraced run."""
        from repro.ops5.interpreter import Interpreter
        from tests.conftest import FIND_COLORED_BLOCK

        assert not events.ENABLED
        interp = Interpreter(FIND_COLORED_BLOCK, engine="mp",
                             engine_opts={"n_workers": 2})
        try:
            interp.run(max_cycles=100)
            tails = interp.matcher.fabric.flight_tails()
            assert set(tails) == {"match-0", "match-1"}
            for tail in tails.values():
                assert any(e["engine"] == "mp.worker" for e in tail)
            # But no spans were shipped: the bus was off in the workers.
            assert interp.matcher.fabric.shipped_spans == 0
        finally:
            interp.close()
