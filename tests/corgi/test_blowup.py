"""The deep-chain blow-up, flipped: what stays an xfail for the
threaded engine (tests/schedck/test_deep_chain.py) *passes* under
corgi, because lazy join evaluation never materializes the
intermediate partial-token chains the blow-up multiplies.

Three guards, in increasing ambition:

* the pinned deep-chain case does no more derivation work under corgi
  than sequential Rete does (within the bookkeeping factor: corgi
  counts every derived prefix, Rete only tokens past the first join);
* a cross-product needle — N items joined pairwise against an empty
  probe slot — costs Rete a quadratic token population while corgi,
  unlinked, derives nothing at all;
* a wall-clock bound: a blocked same-value chain at a size where eager
  joins would materialize ~N^3 partial tokens completes under corgi
  inside a generous fixed budget, because the depth-0 negation gate
  prunes every derivation before it starts.
"""

from __future__ import annotations

import time
from collections import Counter

from repro.corgi.engine import CorgiMatcher
from repro.ops5.parser import parse_program
from repro.ops5.wme import WMEChange, WorkingMemory
from repro.rete.matcher import SequentialMatcher
from repro.rete.network import ReteNetwork

from tests.schedck.test_deep_chain import deep_chain_case


def fold(cs: Counter, deltas) -> None:
    for d in deltas:
        cs[(d.production.name, d.token.key)] += d.sign


def test_deep_chain_no_blowup_under_corgi():
    """The flip of the pinned strict-xfail: under corgi the deep-chain
    case stays within a constant factor of sequential Rete's match
    work, and the conflict set agrees batch for batch."""
    program, batches = deep_chain_case()
    compiled = parse_program(program)
    seq = SequentialMatcher(ReteNetwork.compile(compiled))
    corgi = CorgiMatcher(ReteNetwork.compile(compiled))
    seq_cs: Counter = Counter()
    corgi_cs: Counter = Counter()
    for batch in batches:
        fold(seq_cs, seq.process_changes(batch))
        fold(corgi_cs, corgi.process_changes(batch))
        assert +seq_cs == +corgi_cs
    # corgi counts every derived prefix where Rete counts only tokens
    # past the first join, so allow that bookkeeping factor — but no
    # blow-up: the threaded engine's pinned schedule exceeds this.
    assert corgi.stats.tokens_emitted <= 2 * seq.stats.tokens_emitted


def test_cross_product_needle_costs_corgi_nothing():
    """N items against an empty probe slot: Rete eagerly builds the
    quadratic item-pair memory; corgi stays unlinked and derives zero
    combinations."""
    n = 24
    source = """
    (p needle
      (stage ^step cross)
      (item ^id <x>)
      (item ^id { <y> > <x> })
      (probe ^a <x> ^b <y>)
      -->
      (halt))
    """
    compiled = parse_program(source)
    seq = SequentialMatcher(ReteNetwork.compile(compiled))
    corgi = CorgiMatcher(ReteNetwork.compile(compiled))
    wm = WorkingMemory()
    changes = [WMEChange(1, wm.add("stage", {"step": "cross"}))]
    changes += [WMEChange(1, wm.add("item", {"id": i})) for i in range(n)]
    assert seq.process_changes(changes) == []
    assert corgi.process_changes(changes) == []
    assert seq.stats.tokens_emitted >= n * (n - 1) // 2
    assert corgi.stats.tokens_emitted == 0
    assert corgi.counters["lazy_skips"] >= n
    assert not corgi.linked("needle")


def test_blocked_chain_completes_within_wall_clock_bound():
    """200 same-value WMEs per level of a 3-deep chain behind a
    constant blocker: eager evaluation would touch ~8e6 combinations;
    corgi's depth-0 gate makes the whole load linear.  The bound is
    deliberately generous — it exists to catch a regression to eager
    or super-linear behavior, not to benchmark."""
    n = 200
    source = "(p chain (c0 ^a 1) (c1 ^a 1) (c2 ^a 1) - (blocker) --> (halt))"
    corgi = CorgiMatcher(ReteNetwork.compile(parse_program(source)))
    wm = WorkingMemory()
    changes = [WMEChange(1, wm.add("blocker", {}))]
    for i in range(n):
        for level in range(3):
            changes.append(WMEChange(1, wm.add(f"c{level}", {"a": 1})))
    start = time.perf_counter()
    deltas = corgi.process_changes(changes)
    elapsed = time.perf_counter() - start
    assert deltas == []
    assert corgi.stats.tokens_emitted == 0
    # the first two adds are lazy-skipped before the rule links; every
    # later add is gate-pruned at depth 0.
    assert corgi.counters["gate_prunes"] >= 3 * n - 2
    assert elapsed < 5.0, f"blocked chain took {elapsed:.2f}s"
