"""The pinned differential corpus: corgi vs the sequential oracle on
generated programs, plus the sweep/replay UX guarantees.

Mirrors the schedck conventions: a fixed seed corpus that runs in
tier-1 time, byte-stable reports, and failure lines that carry a
paste-ready ``python -m repro corgick`` replay command.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.corgi.diffcheck import (
    PROFILE_ROTATION,
    PROFILES,
    DiffReport,
    DiffSweepResult,
    Mismatch,
    profile_for,
    run_seed,
    sweep,
)

#: The pinned corpus: enough seeds to cycle the profile rotation twenty
#: times, small enough for tier-1.
CORPUS_SEEDS = range(60)


@pytest.mark.parametrize("seed", CORPUS_SEEDS)
def test_pinned_corpus_agrees(seed):
    report = run_seed(seed)
    assert report.ok, (
        report.format()
        + f"\nreplay: python -m repro corgick --seed {seed}"
    )


def test_reports_are_byte_stable():
    assert run_seed(3).format() == run_seed(3).format()


def test_profile_rotation_covers_every_corpus():
    profiles = {profile_for(seed) for seed in CORPUS_SEEDS}
    assert profiles == set(PROFILE_ROTATION) == set(PROFILES)


def test_corpus_exercises_the_interesting_machinery():
    """Guard the corpus itself: across the pinned seeds the generated
    programs must actually drive unlink/relink transitions and negation
    gates — otherwise the differential pass is vacuous."""
    totals = {"unlinks": 0, "relinks": 0, "lazy_skips": 0, "gate_prunes": 0}
    deltas_seen = 0
    for seed in CORPUS_SEEDS:
        report = run_seed(seed)
        stats = dict(report.stats)
        for key in totals:
            totals[key] += stats[f"corgi.{key}"]
        deltas_seen += stats["tokens_emitted.corgi"]
    assert totals["relinks"] > 0
    assert totals["unlinks"] > 0
    assert totals["lazy_skips"] > 0
    assert totals["gate_prunes"] > 0
    assert deltas_seen > 0


def test_sweep_failure_lines_carry_replay_commands():
    result = DiffSweepResult(n_seeds=1)
    result.failures.append(
        DiffReport(
            seed=41,
            profile="dense",
            n_rules=2,
            n_changes=5,
            n_batches=2,
            mismatches=[Mismatch("conflict_set", 1, "corgi extra=[..]")],
        )
    )
    text = result.format()
    assert "FAIL seed=41 profile=dense" in text
    assert "replay: python -m repro corgick --seed 41 --profile dense" in text


def test_sweep_clean_range():
    result = sweep(9, base_seed=100)
    assert result.ok
    assert "9 seeds, 0 failing" in result.format()


class TestCli:
    def test_corgick_single_seed(self, capsys):
        assert main(["corgick", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "corgick seed=5" in out
        assert "mismatches: 0" in out

    def test_corgick_sweep(self, capsys):
        assert main(["corgick", "--sweep", "6"]) == 0
        assert "6 seeds, 0 failing" in capsys.readouterr().out

    def test_corgick_rejects_unknown_profile(self):
        with pytest.raises(SystemExit, match="unknown profile"):
            main(["corgick", "--profile", "bogus"])
