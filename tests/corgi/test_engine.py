"""Unit tests for the corgi engine: plan compilation, unlinking,
strictness, introspection, and the obs integration — the mechanisms
the cross-engine conformance suite exercises but cannot see.
"""

from __future__ import annotations

import pytest

from repro.corgi.engine import CorgiMatcher
from repro.corgi.plan import compile_plans
from repro.engines import make_matcher
from repro.obs import events as obs_events
from repro.ops5.interpreter import Interpreter
from repro.ops5.parser import parse_program
from repro.ops5.wme import WMEChange, WorkingMemory
from repro.rete.network import ReteNetwork

NEEDLE = """
(p needle
  (stage ^step cross)
  (item ^id <x>)
  (item ^id { <y> > <x> })
  (probe ^a <x> ^b <y>)
  -->
  (halt))
"""

BLOCKED_CHAIN = """
(p chain
  (c0 ^a <x>)
  (c1 ^a <x>)
  - (blocker)
  (c2 ^a <x>)
  -->
  (halt))
"""


def compiled(source: str) -> CorgiMatcher:
    return CorgiMatcher(ReteNetwork.compile(parse_program(source)))


def drive(matcher, wm, klass, attrs):
    wme = wm.add(klass, attrs)
    deltas = matcher.process_changes([WMEChange(1, wme)])
    return wme, deltas


class TestPlanCompilation:
    def test_slots_follow_ce_order(self):
        network = ReteNetwork.compile(parse_program(NEEDLE))
        plans, routing = compile_plans(network)
        (plan,) = plans
        assert [s.positive for s in plan.slots] == [True] * 4
        assert [s.pos_index for s in plan.slots] == [0, 1, 2, 3]
        assert plan.n_pos == 4
        # Every slot is routed from exactly one alpha terminal; the two
        # item CEs share one terminal (same constant tests).
        routed = [pair for pairs in routing.values() for pair in pairs]
        assert len(routed) == 4

    def test_constant_blocker_gates_at_depth_zero(self):
        network = ReteNetwork.compile(parse_program(BLOCKED_CHAIN))
        plans, _ = compile_plans(network)
        (plan,) = plans
        gate = next(s for s in plan.slots if not s.positive)
        assert gate.needed == 0
        assert plan.gates_at[0] == [gate]

    def test_variable_gate_hoisted_to_binding_depth(self):
        source = """
        (p g (c0 ^a <x>) (c1 ^a <x>) - (blocker ^a <x>) (c2 ^a <x>) --> (halt))
        """
        plans, _ = compile_plans(ReteNetwork.compile(parse_program(source)))
        (plan,) = plans
        gate = next(s for s in plan.slots if not s.positive)
        # <x> binds at position 0, so the gate needs one bound positive
        # — it is checked at depth 1, not after the whole chain.
        assert gate.needed == 1
        assert plan.gates_at[1] == [gate]


class TestUnlinking:
    def test_rule_unlinked_until_every_positive_slot_fills(self):
        matcher = compiled(NEEDLE)
        wm = WorkingMemory()
        assert not matcher.linked("needle")
        drive(matcher, wm, "stage", {"step": "cross"})
        for i in range(4):
            _, deltas = drive(matcher, wm, "item", {"id": i})
            assert deltas == []
        assert not matcher.linked("needle")
        # All the item adds were absorbed in O(1): no join work at all.
        assert matcher.stats.tokens_emitted == 0
        assert matcher.counters["lazy_skips"] >= 4
        assert matcher.counters["relinks"] == 0

    def test_relink_derives_only_demanded_instantiations(self):
        matcher = compiled(NEEDLE)
        wm = WorkingMemory()
        drive(matcher, wm, "stage", {"step": "cross"})
        for i in range(4):
            drive(matcher, wm, "item", {"id": i})
        _, deltas = drive(matcher, wm, "probe", {"a": 1, "b": 3})
        assert matcher.linked("needle")
        assert matcher.counters["relinks"] == 1
        assert [d.sign for d in deltas] == [1]
        assert deltas[0].token.wmes[1].vals["id"] == 1
        assert deltas[0].token.wmes[2].vals["id"] == 3

    def test_delete_unlinks_and_kills_instantiations(self):
        matcher = compiled(NEEDLE)
        wm = WorkingMemory()
        drive(matcher, wm, "stage", {"step": "cross"})
        for i in range(4):
            drive(matcher, wm, "item", {"id": i})
        probe, _ = drive(matcher, wm, "probe", {"a": 1, "b": 3})
        wm.remove(probe)
        deltas = matcher.process_changes([WMEChange(-1, probe)])
        assert [d.sign for d in deltas] == [-1]
        assert not matcher.linked("needle")
        assert matcher.counters["unlinks"] == 1


class TestStrictness:
    def test_delete_of_unknown_wme_raises(self):
        matcher = compiled(NEEDLE)
        wm = WorkingMemory()
        wme = wm.add("item", {"id": 1})
        with pytest.raises(RuntimeError, match="unknown wme"):
            matcher.process_changes([WMEChange(-1, wme)])

    def test_close_is_idempotent(self):
        matcher = compiled(NEEDLE)
        matcher.close()
        matcher.close()


class TestIntrospection:
    def test_slot_sizes_and_resident_tokens(self):
        matcher = compiled(NEEDLE)
        wm = WorkingMemory()
        drive(matcher, wm, "stage", {"step": "cross"})
        for i in range(3):
            drive(matcher, wm, "item", {"id": i})
        # stage fills slot 0; each item lands in both item slots.
        assert matcher.slot_sizes("needle") == [1, 3, 3, 0]
        assert matcher.resident_tokens() == 7

    def test_factory_and_interpreter_integration(self):
        network = ReteNetwork.compile(parse_program(NEEDLE))
        matcher = make_matcher("corgi", network, n_workers=3)
        assert isinstance(matcher, CorgiMatcher)
        interp = Interpreter(
            "(p go (a ^x <v>) --> (write saw <v>) (halt))"
            "(startup (make a ^x 9))",
            engine="corgi",
        )
        try:
            result = interp.run(max_cycles=10)
            assert result.halted
            assert result.output == ["saw 9"]
            assert interp.matcher.match_seconds > 0.0
        finally:
            interp.close()


class TestObsIntegration:
    def test_spans_counters_and_node_hits(self):
        obs_events.reset()
        obs_events.enable()
        try:
            matcher = compiled(NEEDLE)
            wm = WorkingMemory()
            drive(matcher, wm, "stage", {"step": "cross"})
            for i in range(2):
                drive(matcher, wm, "item", {"id": i})
            probe, _ = drive(matcher, wm, "probe", {"a": 0, "b": 1})
            wm.remove(probe)
            matcher.process_changes([WMEChange(-1, probe)])
        finally:
            snap = obs_events.snapshot()
            obs_events.disable()
        assert len(snap.spans_by_cat("match")) == 5
        assert snap.counters.get("corgi.lazy_skip", 0) >= 2
        assert snap.counters.get("corgi.relink") == 1
        assert snap.counters.get("corgi.unlink") == 1
        assert snap.nodes, "per-node profile rows missing"
