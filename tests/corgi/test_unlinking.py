"""Hypothesis property tests for the unlinking machinery.

Three claims, each over generated programs and WM histories:

* a production is linked iff every positive slot memory is non-empty,
  and an unlinked production holds no instantiations (the structural
  invariant lazy evaluation rests on);
* unlink/relink round-trips preserve match results: retracting every
  live WME (unlinking everything) and re-asserting equivalent WMEs
  leaves corgi in byte-agreement with a sequential Rete engine driven
  through the identical history;
* per-change derivation work stays inside the quadratic bound on the
  shallow corpus (rules of at most two positive CEs): corgi never
  derives more than O(live WMEs squared) combinations for one change,
  no matter the history — the CORGI cost guarantee in miniature.
"""

from __future__ import annotations

import random
from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.corgi.diffcheck import check_invariants
from repro.corgi.engine import CorgiMatcher
from repro.ops5.parser import parse_program
from repro.ops5.wme import WMEChange, WorkingMemory
from repro.rete.matcher import SequentialMatcher
from repro.rete.network import ReteNetwork
from repro.schedck import progen

from tests.rete.test_properties import program_source, wm_history, _CLASSES

SHALLOW = progen.ProgenParams()  # max two positive CEs per rule


def history_changes(ops):
    """Materialize a :func:`wm_history` op list into WMEChange objects
    (shared WMEs, so several matchers can be driven in lockstep)."""
    wm = WorkingMemory()
    live = []
    changes = []
    for op, arg, attrs in ops:
        if op == "add":
            wme = wm.add(_CLASSES[arg], attrs)
            live.append(wme)
            changes.append(WMEChange(1, wme))
        elif live:
            wme = live.pop(arg % len(live))
            wm.remove(wme)
            changes.append(WMEChange(-1, wme))
    return wm, live, changes


def fold(cs: Counter, deltas) -> None:
    for d in deltas:
        cs[(d.production.name, d.token.key)] += d.sign


@settings(max_examples=50, deadline=None)
@given(source=program_source(), ops=wm_history())
def test_linked_iff_positive_memories_nonempty(source, ops):
    corgi = CorgiMatcher(ReteNetwork.compile(parse_program(source)))
    _wm, _live, changes = history_changes(ops)
    live = 0
    for change in changes:
        live += change.sign
        corgi.process_changes([change])
        for plan in corgi.plans:
            sizes = corgi.slot_sizes(plan.name)
            expect = all(sizes[s.index] > 0 for s in plan.pos_slots)
            assert corgi.linked(plan.name) == expect, plan.name
            if not expect:
                assert not corgi._rules[plan.name].cs, plan.name
        assert not check_invariants(corgi, 0, live)


@settings(max_examples=50, deadline=None)
@given(source=program_source(), ops=wm_history())
def test_unlink_relink_roundtrip_preserves_match(source, ops):
    """history + retract-everything + re-assert: every production
    unlinks and relinks along the way, and the conflict set still
    agrees with sequential Rete after every change."""
    wm, live, changes = history_changes(ops)
    for wme in list(live):
        wm.remove(wme)
        changes.append(WMEChange(-1, wme))
    for wme in live:
        readded = wm.add(wme.klass, dict(wme.vals))
        changes.append(WMEChange(1, readded))

    program = parse_program(source)
    seq = SequentialMatcher(ReteNetwork.compile(program))
    corgi = CorgiMatcher(ReteNetwork.compile(program))
    seq_cs: Counter = Counter()
    corgi_cs: Counter = Counter()
    for change in changes:
        fold(seq_cs, seq.process_changes([change]))
        fold(corgi_cs, corgi.process_changes([change]))
        assert +seq_cs == +corgi_cs


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_tokens_within_quadratic_bound_on_shallow_corpus(seed):
    """On rules of at most two positive CEs, one WM change can derive
    at most O(live^2) combinations (seeded add: live per touched slot;
    negated delete: a full live x live re-derivation) — never the
    exponential intermediate sets Rete materializes on deep chains."""
    rng = random.Random(seed)
    source, batches = progen.generate(rng, SHALLOW)
    corgi = CorgiMatcher(ReteNetwork.compile(parse_program(source)))
    n_rules = len(corgi.plans)
    live = 0
    before = 0
    for batch in batches:
        for change in batch:
            live += change.sign
            corgi.process_changes([change])
            emitted = corgi.stats.tokens_emitted - before
            before = corgi.stats.tokens_emitted
            bound = 2 * n_rules * (live + 1) ** 2
            assert emitted <= bound, (emitted, bound, live)
