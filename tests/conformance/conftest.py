"""Registries and helpers for the cross-engine conformance suite.

``ENGINES`` maps an engine name to the ``Interpreter`` keyword options
that select it — adding an engine to the suite is one more entry
here, nothing else.  ``PROGRAMS`` maps the eight bundled workloads to
small-but-representative sources (every beta node kind, both recursion
styles, the cube-model generator at two scrambles, and two adversarial
fixtures — a cross-product stressor and a deep-chain negation program
— that hold every engine to byte-identical traces exactly where match
cost goes pathological).

Sequential runs are the reference: each engine's complete firing trace
(rendered to one canonical string), final working memory, ``write``
output, and halt flag must be byte-identical to the sequential run of
the same program.  Reference results are computed once per program and
cached for the whole session.
"""

from __future__ import annotations

import pytest

from repro.ops5.interpreter import Interpreter
from repro.ops5.parser import parse_program
from repro.parallel.policy import POLICY_NAMES, SAFE_QUEUE_MATRIX
from repro.programs import (
    blocks,
    crossfire,
    monkey,
    negchain,
    rubik,
    tourney,
    weaver,
)

#: Engine name -> Interpreter(engine=..., engine_opts=...) selections.
#: A new backend joins the conformance matrix by adding one line; a
#: new dispatch policy joins it automatically via the registry loop
#: below (and the registry-sync guard in test_conformance.py fails if
#: the loop and :data:`repro.parallel.policy.POLICY_NAMES` drift).
#:
#: The base threaded row runs its default round-robin dispatch on a
#: single task queue; each other policy runs at its conformance-safe
#: queue count from SAFE_QUEUE_MATRIX.  The per-policy counts replace
#: the old blanket ``n_queues=1`` pin: at ``n_queues == n_workers``
#: the rubik workloads livelock under dispatch policies without load
#: feedback — conjugate ``+``/``-`` halves land on different LIFO
#: queues and the amplification outruns annihilation (reproduced
#: deterministically in ``tests/schedck/test_rubik_livelock.py``).
#: ``mp@affinity`` covers the blocked shard placement, the other
#: placement half of the same policy objects.
ENGINES = {
    "sequential": dict(engine="sequential", engine_opts={}),
    "threaded": dict(engine="threaded",
                     engine_opts={"n_workers": 2, "n_queues": 1}),
    "mp": dict(engine="mp", engine_opts={"n_workers": 2}),
    "corgi": dict(engine="corgi", engine_opts={}),
}
for _policy in POLICY_NAMES:
    if _policy == "round-robin":
        continue  # the base "threaded" row: default policy, 1 queue
    ENGINES[f"threaded@{_policy}"] = dict(
        engine="threaded",
        engine_opts={
            "n_workers": 2,
            "n_queues": SAFE_QUEUE_MATRIX[_policy],
            "policy": _policy,
        },
    )
ENGINES["mp@affinity"] = dict(
    engine="mp", engine_opts={"n_workers": 2, "policy": "affinity"}
)

#: Program name -> OPS5 source factory.  Sizes chosen so the whole
#: matrix stays inside tier-1 time; "cube" is the cube-model generator
#: (:mod:`repro.programs.cube`) emitting a second, different scramble
#: than "rubik" — same generator, different program text and solution.
PROGRAMS = {
    "blocks": lambda: blocks.source(),
    "monkey": lambda: monkey.source(),
    "tourney": lambda: tourney.source(n_teams=6, n_rounds=7),
    "weaver": lambda: weaver.source(grid=4, n_nets=1),
    "rubik": lambda: rubik.source(n_moves=4, seed=1988),
    "cube": lambda: rubik.source(n_moves=3, seed=7),
    "crossfire": lambda: crossfire.source(n_items=7),
    "negchain": lambda: negchain.source(n_chains=5),
}

MAX_CYCLES = 5000


def render_trace(result) -> str:
    """One canonical text rendering of a complete firing trace."""
    return "\n".join(
        f"{f.cycle} {f.production} {','.join(map(str, f.timetags))}"
        for f in result.firings
    )


def wm_snapshot(interp) -> tuple:
    """Order-independent view of final working memory (timetags are
    creation-order dependent and *included*: engines must agree on
    them too, or RHS ``remove``/``modify`` addressing would differ)."""
    return tuple(sorted(
        (wme.klass, wme.timetag, wme.attrs) for wme in interp.wm
    ))


def run_engine(source: str, engine_name: str):
    """Run ``source`` on one engine; returns the conformance tuple."""
    program = parse_program(source)
    interp = Interpreter(program, **ENGINES[engine_name])
    try:
        result = interp.run(max_cycles=MAX_CYCLES)
        return {
            "trace": render_trace(result),
            "wm": wm_snapshot(interp),
            "output": tuple(result.output),
            "halted": result.halted,
            "cycles": result.cycles,
        }
    finally:
        interp.close()


@pytest.fixture(scope="session")
def reference():
    """Cached sequential reference results, one per program."""
    cache = {}

    def get(program_name: str):
        if program_name not in cache:
            cache[program_name] = run_engine(
                PROGRAMS[program_name](), "sequential"
            )
        return cache[program_name]

    return get
