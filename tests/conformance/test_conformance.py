"""Cross-engine differential conformance: every bundled program, every
engine, byte-identical behaviour.

The contract under test is the strongest one the paper's parallel
decomposition promises: parallel match changes *how* the conflict set
is computed, never *what* the recognize-act cycle does.  Firing traces
(cycle, production, timetags) must therefore match the sequential
engine exactly — not just final WM — because conflict resolution runs
over the full conflict set every cycle, and any divergence in match
results shows up as a different winner somewhere.
"""

from __future__ import annotations

import pytest

from tests.conformance.conftest import ENGINES, PROGRAMS, run_engine

PARALLEL_ENGINES = [name for name in ENGINES if name != "sequential"]


@pytest.mark.parametrize("engine_name", PARALLEL_ENGINES)
@pytest.mark.parametrize("program_name", sorted(PROGRAMS))
def test_engine_matches_sequential(program_name, engine_name, reference):
    expected = reference(program_name)
    got = run_engine(PROGRAMS[program_name](), engine_name)

    assert got["trace"] == expected["trace"], (
        f"{engine_name} fired differently than sequential on "
        f"{program_name}"
    )
    assert got["wm"] == expected["wm"]
    assert got["output"] == expected["output"]
    assert got["halted"] == expected["halted"]
    assert got["cycles"] == expected["cycles"]


@pytest.mark.parametrize("program_name", sorted(PROGRAMS))
def test_reference_is_meaningful(program_name, reference):
    """Guard the suite itself: every reference run actually fires
    productions and finishes inside the cycle budget, so a trivially
    empty trace can never green-light the parallel engines."""
    expected = reference(program_name)
    assert expected["trace"], f"{program_name} reference fired nothing"
    assert expected["cycles"] > 0


def test_every_engine_is_covered():
    """The matrix covers exactly the registered engines (a new engine
    added to ``repro.engines`` must be added to the suite too)."""
    from repro.engines import ENGINE_NAMES

    assert {name.split("@")[0] for name in ENGINES} == set(ENGINE_NAMES)


def test_every_policy_is_covered():
    """Registry-sync guard for the dispatch-policy matrix: every
    registered policy must run the full conformance battery on the
    threaded engine (a policy registered in ``repro.parallel.policy``
    without a row here is untested and fails this)."""
    from repro.parallel.policy import POLICY_NAMES

    covered = {
        spec["engine_opts"].get("policy", "round-robin")
        for spec in ENGINES.values()
        if spec["engine"] == "threaded"
    }
    assert covered == set(POLICY_NAMES)
