"""Unit and property tests for the cube permutation model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.programs.cube import (
    Cube,
    FACES,
    FACE_COLORS,
    N_STICKERS,
    inverse_moves,
    moved_stickers,
    scramble_sequence,
    sticker_index,
    turn_permutation,
)


class TestPermutations:
    @pytest.mark.parametrize("face", FACES)
    def test_turn_is_permutation(self, face):
        perm = turn_permutation(face)
        assert sorted(perm) == list(range(N_STICKERS))

    @pytest.mark.parametrize("face", FACES)
    def test_turn_has_order_four(self, face):
        cube = Cube()
        for _ in range(4):
            cube.turn(face)
        assert cube.is_solved()

    @pytest.mark.parametrize("face", FACES)
    def test_single_turn_unsolves(self, face):
        assert not Cube().turn(face).is_solved()

    @pytest.mark.parametrize("face", FACES)
    def test_twenty_stickers_move(self, face):
        assert len(moved_stickers(face)) == 20

    @pytest.mark.parametrize("face", FACES)
    def test_center_fixed(self, face):
        perm = turn_permutation(face)
        for f in range(6):
            center = f * 9 + 4
            assert perm[center] == center

    @pytest.mark.parametrize("face", FACES)
    @pytest.mark.parametrize("qt", [2, 3])
    def test_multi_quarter_composition(self, face, qt):
        p1 = turn_permutation(face, 1)
        composed = list(range(N_STICKERS))
        for _ in range(qt):
            composed = [composed[p1[i]] for i in range(N_STICKERS)]
        assert composed == turn_permutation(face, qt)

    def test_distinct_faces_distinct_perms(self):
        perms = {tuple(turn_permutation(f)) for f in FACES}
        assert len(perms) == 6


class TestCube:
    def test_solved_initially(self):
        assert Cube().is_solved()

    def test_copy_independent(self):
        a = Cube()
        b = a.copy().turn("U")
        assert a.is_solved() and not b.is_solved()

    def test_sticker_count_validation(self):
        with pytest.raises(ValueError):
            Cube(["white"] * 10)

    def test_face_colors_uniform_when_solved(self):
        cube = Cube()
        for i, face in enumerate(FACES):
            colors = {cube.colors[i * 9 + k] for k in range(9)}
            assert colors == {FACE_COLORS[face]}

    def test_sticker_index(self):
        assert sticker_index("U", 0, 0) == 0
        assert sticker_index("D", 2, 2) == 17
        assert sticker_index("B", 1, 1) == 5 * 9 + 4


class TestSequences:
    def test_scramble_deterministic(self):
        assert scramble_sequence(10, seed=42) == scramble_sequence(10, seed=42)
        assert scramble_sequence(10, seed=1) != scramble_sequence(10, seed=2)

    def test_scramble_no_adjacent_repeats(self):
        seq = scramble_sequence(50)
        for (f1, _), (f2, _) in zip(seq, seq[1:]):
            assert f1 != f2

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 20), st.integers(0, 10000))
    def test_scramble_plus_inverse_solves(self, length, seed):
        seq = scramble_sequence(length, seed=seed)
        cube = Cube().apply(seq).apply(inverse_moves(seq))
        assert cube.is_solved()

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from(FACES), st.integers(1, 3)), max_size=10))
    def test_inverse_is_involution_on_state(self, moves):
        once = Cube().apply(moves)
        back = once.copy().apply(inverse_moves(moves))
        assert back.is_solved()
