"""Tests for the three benchmark programs and the two classics."""

import pytest

from repro.ops5.interpreter import Interpreter
from repro.ops5.parser import parse_program
from repro.programs import blocks, monkey, rubik, tourney, weaver


class TestRubik:
    def test_rule_count_matches_paper(self):
        prog = parse_program(rubik.source(n_moves=2))
        assert len(prog.productions) == rubik.n_rules() == 70

    def test_solves_scramble_plus_inverse(self):
        result = Interpreter(rubik.source(n_moves=3)).run(max_cycles=1000)
        assert result.output == ["cube solved"]
        assert result.halted

    def test_different_seeds_still_solve(self):
        for seed in (7, 99):
            result = Interpreter(rubik.source(n_moves=2, seed=seed)).run(max_cycles=500)
            assert result.output == ["cube solved"], seed

    def test_cycle_count_tracks_moves(self):
        # One cycle per rotation (2*n_moves) + 6 solved checks + all-solved.
        result = Interpreter(rubik.source(n_moves=2)).run(max_cycles=500)
        assert result.cycles == 2 * 2 + 6 + 1

    def test_monitor_rules_never_fire(self):
        result = Interpreter(rubik.source(n_moves=2)).run(max_cycles=500)
        fired = {f.production for f in result.firings}
        assert not any(name.startswith(("watch-", "band-")) for name in fired)

    def test_expected_final_state_oracle(self):
        assert rubik.expected_final_state(5)

    def test_forty_changes_per_rotation(self):
        interp = Interpreter(rubik.source(n_moves=2))
        result = interp.run(max_cycles=500)
        # 20 sticker modifies + 1 ctrl modify = 42 changes per rotation,
        # dominating the per-run change count.
        changes_per_cycle = interp.stats.wme_changes / result.cycles
        assert changes_per_cycle > 20


class TestTourney:
    def test_rule_count_matches_paper(self):
        prog = parse_program(tourney.source())
        assert len(prog.productions) == tourney.n_rules() == 17

    def test_schedules_all_pairs_with_enough_rounds(self):
        result = Interpreter(tourney.source(n_teams=6, n_rounds=8)).run(max_cycles=5000)
        assert result.output[-1] == "scheduled 15 matches"
        assert result.halted

    def test_verification_rules_never_fire(self):
        result = Interpreter(tourney.source(n_teams=8, n_rounds=10)).run(max_cycles=5000)
        assert not any(o.startswith("error") for o in result.output)

    def test_no_team_plays_twice_per_round(self):
        interp = Interpreter(tourney.source(n_teams=8, n_rounds=10))
        interp.run(max_cycles=5000)
        seen = {}
        for match in interp.wm.of_class("match"):
            rnd = match.get("round")
            for team in (match.get("t1"), match.get("t2")):
                assert (rnd, team) not in seen, (rnd, team)
                seen[(rnd, team)] = True

    def test_byes_reported_for_odd_team_count(self):
        result = Interpreter(tourney.source(n_teams=5, n_rounds=6)).run(max_cycles=5000)
        assert any("bye for team" in o for o in result.output)

    def test_fixed_variant_same_schedule_size(self):
        orig = Interpreter(tourney.source(n_teams=8, n_rounds=10)).run(max_cycles=5000)
        fixed = Interpreter(tourney.fixed_source(n_teams=8, n_rounds=10)).run(max_cycles=5000)
        assert orig.output[-1] == fixed.output[-1]

    def test_cross_product_node_exists(self):
        from repro.rete.network import ReteNetwork
        from repro.rete.nodes import JoinNode

        net = ReteNetwork.compile(parse_program(tourney.source()))
        cross = [
            n for n in net.beta_nodes
            if isinstance(n, JoinNode) and n.tests and not n.eq_descs
        ]
        assert cross, "propose-match must compile to a keyless join"


class TestWeaver:
    def test_rule_count_matches_paper(self):
        prog = parse_program(weaver.source(grid=7, n_nets=1))
        assert len(prog.productions) == weaver.n_rules() == 637

    def test_routes_all_nets(self):
        result = Interpreter(weaver.source(grid=7, n_nets=2)).run(max_cycles=30000)
        assert result.halted
        assert result.output[-1] == "routing complete"
        assert sum(1 for o in result.output if "routed at" in o) == 2

    def test_audit_rules_never_fire(self):
        result = Interpreter(weaver.source(grid=7, n_nets=1)).run(max_cycles=30000)
        fired = {f.production for f in result.firings}
        assert not any(name.startswith("audit-") for name in fired)

    def test_routed_path_respects_blockages(self):
        interp = Interpreter(weaver.source(grid=7, n_nets=1))
        interp.run(max_cycles=30000)
        # All visited cells were cleaned up; blocked cells never visited
        # is enforced by acceptance rules — working memory must hold no
        # frontier/visited/cand leftovers.
        for klass in ("frontier", "visited", "cand"):
            assert interp.wm.of_class(klass) == [], klass


class TestClassics:
    def test_blocks_world_achieves_goals(self):
        result = Interpreter(blocks.source()).run(max_cycles=300)
        assert result.output[-1] == "all goals satisfied"

    def test_blocks_world_multi_goal(self):
        src = blocks.source(
            blocks=(("a", "table"), ("b", "a"), ("c", "b")),
            goals=(("a", "b"), ("b", "c")),
        )
        result = Interpreter(src).run(max_cycles=300)
        assert result.halted or result.output[-1] == "all goals satisfied"

    def test_monkey_gets_bananas(self):
        result = Interpreter(monkey.source()).run(max_cycles=100)
        assert result.output[-1] == "monkey grabs the bananas"
        assert result.halted
