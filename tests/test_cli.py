"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main

PROGRAM = """
(p hello (greeting ^to <who>) --> (write hello <who>) (halt))
(startup (make greeting ^to world))
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "hello.ops5"
    path.write_text(PROGRAM, encoding="utf-8")
    return str(path)


class TestRun:
    def test_run_prints_output(self, program_file, capsys):
        assert main(["run", program_file]) == 0
        out = capsys.readouterr().out
        assert "hello world" in out

    def test_run_stats_to_stderr(self, program_file, capsys):
        main(["run", program_file, "--stats"])
        err = capsys.readouterr().err
        assert "wm_changes=" in err
        assert "activations=" in err

    def test_run_trace_lists_firings(self, program_file, capsys):
        main(["run", program_file, "--trace"])
        err = capsys.readouterr().err
        assert "hello" in err

    def test_run_mea_and_linear(self, program_file, capsys):
        assert main(["run", program_file, "--strategy", "mea",
                     "--memory", "linear", "--mode", "interpreted"]) == 0
        assert "hello world" in capsys.readouterr().out

    def test_max_cycles(self, tmp_path, capsys):
        path = tmp_path / "loop.ops5"
        path.write_text(
            "(p l (a ^n <n>) --> (modify 1 ^n (compute <n> + 1)) (write tick))"
            "(startup (make a ^n 0))",
            encoding="utf-8",
        )
        main(["run", str(path), "--max-cycles", "3"])
        out = capsys.readouterr().out
        assert out.count("tick") == 3


class TestNetwork:
    def test_counts(self, program_file, capsys):
        assert main(["network", program_file]) == 0
        out = capsys.readouterr().out
        assert "productions:        1" in out
        assert "terminal:" in out

    def test_verbose_lists_nodes(self, tmp_path, capsys):
        path = tmp_path / "two.ops5"
        path.write_text("(p r (a ^x <v>) (b ^y <v>) --> (halt))", encoding="utf-8")
        main(["network", str(path), "-v"])
        out = capsys.readouterr().out
        assert "two-input nodes:" in out
        assert "join #" in out


class TestSimulate:
    def test_simulate_grid(self, program_file, capsys):
        assert main(
            ["simulate", program_file, "--processes", "1", "2", "--queues", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "speed-up" in out
        assert "1+2/1q" in out


class TestTables:
    def test_unknown_table_id(self, capsys):
        assert main(["tables", "9-9"]) == 2
        assert "unknown tables" in capsys.readouterr().err


class TestSchedck:
    def test_single_seed_exits_zero(self, capsys):
        assert main(["schedck", "--seed", "42"]) == 0
        out = capsys.readouterr().out
        assert "schedck seed=42 policy=random config=1+2/1q/simple/64l" in out
        assert "violations: 0" in out

    def test_report_deterministic_across_invocations(self, capsys):
        main(["schedck", "--seed", "7", "--policy", "pct"])
        first = capsys.readouterr().out
        main(["schedck", "--seed", "7", "--policy", "pct"])
        assert capsys.readouterr().out == first

    def test_config_flags_reach_report(self, capsys):
        assert main(
            ["schedck", "--seed", "3", "--workers", "4", "--queues", "4",
             "--locks", "mrsw", "--policy", "adversarial:delay-plus"]
        ) == 0
        out = capsys.readouterr().out
        assert "policy=adversarial:delay-plus config=1+4/4q/mrsw/64l" in out

    def test_sweep_smoke(self, capsys):
        assert main(["schedck", "--sweep", "4", "--seed", "100"]) == 0
        out = capsys.readouterr().out
        assert "schedck sweep: 4 schedules, 0 failing, 0 truncated" in out

    def test_truncated_schedule_exits_nonzero(self, capsys):
        assert main(["schedck", "--seed", "42", "--max-steps", "50"]) == 1
        assert "(truncated)" in capsys.readouterr().out

    def test_unknown_policy_is_clean_exit(self):
        with pytest.raises(SystemExit) as exc:
            main(["schedck", "--policy", "bogus"])
        assert "unknown schedule policy" in str(exc.value)

    def test_zero_workers_is_clean_exit(self):
        with pytest.raises(SystemExit) as exc:
            main(["schedck", "--workers", "0"])
        assert "match process" in str(exc.value)


class TestReadProgramErrors:
    def test_missing_file_is_clean_exit(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.ops5")
        with pytest.raises(SystemExit) as exc:
            main(["run", missing])
        assert "cannot read" in str(exc.value)
        assert missing in str(exc.value)


class TestServe:
    def test_bad_port_is_clean_exit(self):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--port", "70000"])
        assert str(exc.value) == "repro serve: invalid port 70000; expected 0-65535"

    def test_negative_port_is_clean_exit(self):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--port", "-1"])
        assert "repro serve: invalid port" in str(exc.value)

    def test_unreadable_preload_is_clean_exit(self, tmp_path):
        missing = str(tmp_path / "nope.ops5")
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--preload", missing])
        assert str(exc.value).startswith("repro serve: cannot read")
        assert missing in str(exc.value)

    def test_bad_limits_are_clean_exit(self):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--inbox-depth", "0"])
        assert str(exc.value).startswith("repro serve: ")


class TestLoadgen:
    def test_needs_a_target(self):
        with pytest.raises(SystemExit) as exc:
            main(["loadgen"])
        assert str(exc.value) == "repro loadgen: need --connect HOST:PORT or --spawn"

    def test_connect_and_spawn_are_exclusive(self):
        with pytest.raises(SystemExit) as exc:
            main(["loadgen", "--connect", "h:1", "--spawn"])
        assert "exclusive" in str(exc.value)

    @pytest.mark.parametrize("target", ["nohost", ":80", "host:", "host:zap",
                                        "host:0", "host:70000"])
    def test_bad_connect_is_clean_exit(self, target):
        with pytest.raises(SystemExit) as exc:
            main(["loadgen", "--connect", target])
        assert f"repro loadgen: bad --connect {target!r}" in str(exc.value)

    def test_unknown_scenario_is_clean_exit(self):
        with pytest.raises(SystemExit) as exc:
            main(["loadgen", "--spawn", "--scenario", "bogus"])
        assert "repro loadgen: unknown scenario 'bogus'" in str(exc.value)
        assert "blocks, monkey, tourney, mix" in str(exc.value)

    def test_unreadable_program_is_clean_exit(self, tmp_path):
        missing = str(tmp_path / "nope.ops5")
        with pytest.raises(SystemExit) as exc:
            main(["loadgen", "--spawn", "--program", missing])
        assert str(exc.value).startswith("repro loadgen: cannot read")

    def test_nonpositive_counts_are_clean_exit(self):
        with pytest.raises(SystemExit) as exc:
            main(["loadgen", "--spawn", "--sessions", "0"])
        assert "must be positive" in str(exc.value)

    def test_spawn_smoke_exits_zero(self, capsys):
        assert main(["loadgen", "--spawn", "--scenario", "monkey",
                     "--sessions", "2", "--transactions", "4",
                     "--verify"]) == 0
        out = capsys.readouterr().out
        assert "verify: 2/2 sessions byte-identical" in out
        assert "0 errors" in out


class TestTrace:
    def test_trace_builtin_blocks(self, tmp_path, capsys):
        import json

        from repro.obs.export import validate_chrome_trace

        out = tmp_path / "blocks-trace.json"
        assert main(["trace", "blocks", "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "move-block" in text  # per-production profile
        assert "(equal)" in text  # profile == MatchStats.node_activations
        doc = json.loads(out.read_text())
        assert validate_chrome_trace(doc) == []

    def test_trace_parallel_worker_timelines(self, tmp_path, capsys):
        import json

        out = tmp_path / "par-trace.json"
        assert main(["trace", "blocks", "--out", str(out),
                     "--parallel", "2"]) == 0
        assert "(equal)" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        threads = {
            e["args"]["name"]
            for e in doc["traceEvents"] if e.get("ph") == "M"
        }
        assert any(t.startswith("match-") for t in threads)

    def test_trace_program_file(self, program_file, tmp_path, capsys):
        out = tmp_path / "t.json"
        assert main(["trace", program_file, "--out", str(out)]) == 0
        assert "hello" in capsys.readouterr().out  # production name
        assert out.exists()

    def test_trace_disables_bus_afterwards(self, tmp_path):
        from repro.obs import events

        main(["trace", "blocks", "--out", str(tmp_path / "t.json")])
        assert events.enabled() is False

    def test_unknown_builtin_is_clean_exit(self):
        with pytest.raises(SystemExit) as exc:
            main(["trace", "no-such-program", "--out", "/dev/null"])
        assert "neither a file nor a builtin" in str(exc.value)


class TestTop:
    def test_top_by_production(self, capsys):
        assert main(["top", "blocks"]) == 0
        out = capsys.readouterr().out
        assert "hot productions" in out
        assert "move-block" in out
        assert "hot nodes" not in out  # pruned to the requested table

    def test_top_by_phase(self, capsys):
        assert main(["top", "blocks", "--by", "phase"]) == 0
        out = capsys.readouterr().out
        assert "phases (recognize-act cycle):" in out
        assert "match" in out

    def test_top_by_lock_parallel(self, capsys):
        assert main(["top", "blocks", "--by", "lock",
                     "--parallel", "2"]) == 0
        out = capsys.readouterr().out
        assert "lock contention:" in out
        assert "taskcount" in out

    def test_top_limit(self, capsys):
        assert main(["top", "blocks", "--by", "node", "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert "hot nodes (top 2):" in out


class TestObsVerbs:
    @staticmethod
    def needs_mp():
        from repro.parallel.mp import mp_supported

        if not mp_supported():
            pytest.skip("mp engine needs the 'fork' start method")

    def test_trace_mp_stitched_plus_capture_round_trip(self, tmp_path, capsys):
        import json

        from repro.obs.export import validate_chrome_trace
        from repro.obs.fabric import validate_capture

        self.needs_mp()
        out = tmp_path / "stitched.json"
        capture = tmp_path / "capture.json"
        assert main(["trace", "blocks", "--engine", "mp", "--workers", "2",
                     "--out", str(out), "--fabric-out", str(capture)]) == 0
        assert "(equal)" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        assert validate_chrome_trace(doc) == []
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert pids == {1, 100, 101}
        assert any(e.get("ph") == "s" for e in doc["traceEvents"])
        assert doc["otherData"]["stitch_orphans"] == 0
        assert validate_capture(json.loads(capture.read_text())) == []

        restitched = tmp_path / "restitched.json"
        assert main(["obs", "stitch", str(capture),
                     "--out", str(restitched)]) == 0
        doc2 = json.loads(restitched.read_text())
        assert validate_chrome_trace(doc2) == []
        assert {e["pid"] for e in doc2["traceEvents"]} == pids

    def test_obs_stitch_rejects_bad_capture(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "nope"}', encoding="utf-8")
        with pytest.raises(SystemExit, match="obs stitch"):
            main(["obs", "stitch", str(bad), "--out", "/dev/null"])

    def test_obs_flight_snapshot(self, tmp_path, capsys):
        import json

        from repro.obs.flight import validate_flight

        out = tmp_path / "flight.json"
        assert main(["obs", "flight", "blocks", "--out", str(out),
                     "--ring", "64"]) == 0
        assert "flight:" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        assert validate_flight(doc) == []
        assert doc["ring_capacity"] == 64
        assert doc["events"]

    def test_obs_flight_mp_collects_worker_tails(self, tmp_path):
        import json

        from repro.obs.flight import validate_flight

        self.needs_mp()
        out = tmp_path / "flight.json"
        assert main(["obs", "flight", "blocks", "--engine", "mp",
                     "--workers", "2", "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert validate_flight(doc) == []
        assert set(doc["workers"]) == {"match-0", "match-1"}

    def test_run_watchdog_needs_parallel_engine(self, program_file):
        with pytest.raises(SystemExit, match="threaded or mp"):
            main(["run", program_file, "--watchdog", "5"])

    def test_run_with_watchdog_threaded(self, program_file, capsys):
        assert main(["run", program_file, "--engine", "threaded",
                     "--workers", "2", "--watchdog", "60"]) == 0
        captured = capsys.readouterr()
        assert "hello world" in captured.out
        assert "watchdog tripped" not in captured.err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestBench:
    @staticmethod
    def bench_run(out_dir, runid):
        return main([
            "bench", "run", "--scenario", "match-weaver",
            "--repeat", "1", "--warmup", "0",
            "--out-dir", str(out_dir), "--runid", runid,
        ])

    def test_run_emits_artifact_and_trajectory(self, tmp_path, capsys):
        import json

        from repro.perf.schema import validate_bench_doc

        assert self.bench_run(tmp_path, "r1") == 0
        out = capsys.readouterr().out
        assert "bench run r1" in out
        assert "match_hash_s" in out
        assert f"artifact: {tmp_path}" in out
        doc = json.loads((tmp_path / "BENCH_r1.json").read_text())
        assert validate_bench_doc(doc) == []
        lines = (tmp_path / "trajectory.jsonl").read_text().splitlines()
        assert len(lines) == 1 and json.loads(lines[0])["runid"] == "r1"

    def test_unchanged_tree_compares_clean(self, tmp_path, capsys):
        """Acceptance: two runs of the same tree -> no regressions."""
        assert self.bench_run(tmp_path, "r1") == 0
        assert self.bench_run(tmp_path, "r2") == 0
        capsys.readouterr()
        assert main(["bench", "compare", "--out-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "baseline r1 -> current r2" in out
        assert "regressed=0" in out
        assert "result: OK (no regressions)" in out

    def test_compare_flags_injected_regression(self, tmp_path, capsys):
        import json

        assert self.bench_run(tmp_path, "r1") == 0
        assert self.bench_run(tmp_path, "r2") == 0
        # Inject a slowdown into the r2 artifact: inflate the stable
        # activation count and one node's profile self-time.
        path = tmp_path / "BENCH_r2.json"
        doc = json.loads(path.read_text())
        entry = doc["scenarios"]["match-weaver"]
        entry["metrics"]["activations"]["median"] *= 2
        entry["profile"]["nodes"][0]["self_ms"] += 100.0
        perturbed = entry["profile"]["nodes"][0]["production"]
        path.write_text(json.dumps(doc), encoding="utf-8")
        capsys.readouterr()
        assert main(["bench", "compare", "--out-dir", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "match-weaver.activations" in out
        assert "regressed" in out
        assert "hot-spot movers" in out
        assert perturbed in out  # attribution names the perturbed node

    def test_compare_stable_only(self, tmp_path, capsys):
        assert self.bench_run(tmp_path, "r1") == 0
        assert self.bench_run(tmp_path, "r2") == 0
        capsys.readouterr()
        assert main(["bench", "compare", "--out-dir", str(tmp_path),
                     "--stable-only"]) == 0
        out = capsys.readouterr().out
        assert "activations" in out
        assert "match_hash_s" not in out  # wall metrics skipped

    def test_report_renders_trajectory(self, tmp_path, capsys):
        assert self.bench_run(tmp_path, "r1") == 0
        capsys.readouterr()
        report_file = tmp_path / "report.md"
        assert main(["bench", "report", "--out-dir", str(tmp_path),
                     "--out", str(report_file)]) == 0
        text = report_file.read_text()
        assert "# Performance trajectory" in text
        assert "| r1 |" in text
        assert "wrote" in capsys.readouterr().out

    def test_report_empty_history(self, tmp_path, capsys):
        assert main(["bench", "report", "--out-dir", str(tmp_path)]) == 0
        assert "No recorded runs yet" in capsys.readouterr().out

    def test_unknown_suite_is_clean_exit(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["bench", "run", "--suite", "nightly",
                  "--out-dir", str(tmp_path)])
        assert "unknown suite" in str(exc.value)

    def test_unknown_scenario_is_clean_exit(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["bench", "run", "--scenario", "no-such",
                  "--out-dir", str(tmp_path)])
        assert "unknown scenarios" in str(exc.value)

    def test_compare_without_history_is_clean_exit(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["bench", "compare", "--out-dir", str(tmp_path)])
        assert "needs at least 2" in str(exc.value)
