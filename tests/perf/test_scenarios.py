"""Registry integrity and scenario selection."""

import pytest

from repro.perf.scenarios import (
    SCENARIOS,
    STABLE_REL_TOL,
    SUITES,
    MetricSpec,
    select,
)


class TestRegistryIntegrity:
    def test_ids_match_keys_and_suites_are_known(self):
        for sid, scenario in SCENARIOS.items():
            assert scenario.scenario_id == sid
            assert scenario.suites and set(scenario.suites) <= set(SUITES)
            assert callable(scenario.run)
            assert scenario.specs

    def test_metric_names_unique_per_scenario(self):
        for scenario in SCENARIOS.values():
            names = [s.name for s in scenario.specs]
            assert len(names) == len(set(names)), scenario.scenario_id

    def test_smoke_suite_members(self):
        assert set(select("smoke")) == {
            "match-weaver", "sim-weaver", "parallel-weaver", "serve-loadgen",
            "mp-speedup-weaver", "corgi-adversarial", "fabric-mp",
            "serve-meter", "policy-sweep",
        }

    def test_full_suite_superset_of_smoke(self):
        assert set(select("smoke")) <= set(select("full"))
        assert set(select("all")) == set(SCENARIOS)

    def test_stable_scenarios_carry_tight_tolerances(self):
        sim = SCENARIOS["sim-weaver"]
        assert sim.stable_only
        assert all(s.rel_tol == STABLE_REL_TOL for s in sim.specs)
        assert not SCENARIOS["match-weaver"].stable_only

    def test_every_smoke_scenario_declares_a_headline(self):
        for sid, scenario in select("smoke").items():
            assert any(s.headline for s in scenario.specs), sid

    def test_spec_lookup(self):
        scenario = SCENARIOS["match-weaver"]
        assert scenario.spec("match_hash_s").unit == "s"
        assert scenario.spec("nope") is None


class TestCorgiAdversarial:
    def test_stable_token_metrics_and_speedup(self):
        from repro.perf.scenarios import _ADV_CROSS

        scenario = SCENARIOS["corgi-adversarial"]
        rep = scenario.run()
        n = _ADV_CROSS["n_items"]
        # The stable contract: corgi derives nothing on either shape,
        # eager Rete pays at least the initial cross-product.
        assert rep.metrics["cross_corgi_tokens"] == 0.0
        assert rep.metrics["deep_corgi_tokens"] == 0.0
        assert rep.metrics["cross_rete_tokens"] >= n * (n - 1) / 2
        assert rep.metrics["deep_rete_tokens"] > 0.0
        assert rep.metrics["cross_speedup"] > 1.0
        assert rep.metrics["deep_speedup"] > 1.0
        assert rep.network is not None

    def test_token_specs_are_stable_and_speedup_is_headline(self):
        scenario = SCENARIOS["corgi-adversarial"]
        for case in ("cross", "deep"):
            assert scenario.spec(f"{case}_rete_tokens").stable
            assert scenario.spec(f"{case}_corgi_tokens").stable
            assert not scenario.spec(f"{case}_speedup").stable
        assert scenario.spec("cross_speedup").headline


class TestSelect:
    def test_explicit_ids_preserve_order(self):
        out = select(scenario_ids=("sim-weaver", "match-weaver"))
        assert list(out) == ["sim-weaver", "match-weaver"]

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenarios"):
            select(scenario_ids=("match-weaver", "nope"))

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="unknown suite"):
            select(suite="nightly")


class TestMetricSpec:
    def test_direction_validated(self):
        with pytest.raises(ValueError, match="bad direction"):
            MetricSpec("m", "s", "sideways", 0.1)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError, match="negative tolerance"):
            MetricSpec("m", "s", "lower", -0.1)
        with pytest.raises(ValueError, match="negative tolerance"):
            MetricSpec("m", "s", "lower", 0.1, abs_tol=-1.0)


class TestPolicySweep:
    def test_covers_every_registered_policy(self):
        """Registry-sync guard: a policy added to the dispatch registry
        without a column in the sweep matrix fails here."""
        from repro.parallel.policy import POLICY_NAMES

        specs = {s.name for s in SCENARIOS["policy-sweep"].specs}
        for policy in POLICY_NAMES:
            key = policy.replace("-", "_")
            assert f"{key}_speedup_1p7_8q" in specs
            assert f"{key}_steals" in specs

    def test_sweep_is_stable_only(self):
        assert SCENARIOS["policy-sweep"].stable_only
        assert SCENARIOS["policy-sweep-tourney"].stable_only

    def test_work_stealing_column_is_the_legacy_simulation(self):
        """The simulator always dispatched work-stealing-shaped (push
        home, steal when dry); the policy axis must reproduce the
        pre-policy numbers exactly in its work-stealing column."""
        sweep = SCENARIOS["policy-sweep"].run().metrics
        legacy = SCENARIOS["sim-weaver"].run().metrics
        assert sweep["work_stealing_speedup_1p7_8q"] == pytest.approx(
            legacy["speedup_1p7_8q"], rel=1e-12
        )
