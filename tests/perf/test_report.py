"""Trajectory persistence round-trips and report rendering."""

import pytest

from repro.perf.report import (
    append_trajectory,
    load_trajectory,
    render_markdown,
    render_run_text,
    trajectory_entry,
)

from .helpers import make_doc, make_metric, make_scenario


def entry_for(runid, medians, headline=()):
    doc = make_doc(
        runid,
        {"s": make_scenario({
            name: make_metric(v, headline=(name in headline))
            for name, v in medians.items()
        })},
    )
    return trajectory_entry(doc, artifact=f"BENCH_{runid}.json")


class TestTrajectoryEntry:
    def test_extracts_medians_and_headline(self):
        entry = entry_for("r1", {"a": 1.5, "b": 2.5}, headline=("b",))
        assert entry["runid"] == "r1"
        assert entry["artifact"] == "BENCH_r1.json"
        assert entry["metrics"] == {"s.a": 1.5, "s.b": 2.5}
        assert entry["headline"] == ["s.b"]
        assert entry["suite"] == "smoke"


class TestPersistence:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "nested" / "trajectory.jsonl")
        first = entry_for("r1", {"a": 1.0})
        second = entry_for("r2", {"a": 2.0})
        append_trajectory(path, first)  # creates the parent dir
        append_trajectory(path, second)
        assert load_trajectory(path) == [first, second]

    def test_missing_file_is_empty_history(self, tmp_path):
        assert load_trajectory(str(tmp_path / "absent.jsonl")) == []

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        append_trajectory(str(path), entry_for("r1", {"a": 1.0}))
        path.write_text(path.read_text() + "\n\n", encoding="utf-8")
        assert len(load_trajectory(str(path))) == 1

    def test_corrupt_line_names_location(self, tmp_path):
        path = tmp_path / "t.jsonl"
        append_trajectory(str(path), entry_for("r1", {"a": 1.0}))
        path.write_text(path.read_text() + "{broken\n", encoding="utf-8")
        with pytest.raises(ValueError, match=r"t\.jsonl:2: bad trajectory"):
            load_trajectory(str(path))

    def test_non_entry_line_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"no_runid": true}\n', encoding="utf-8")
        with pytest.raises(ValueError, match="not a trajectory entry"):
            load_trajectory(str(path))


class TestRenderMarkdown:
    def test_empty_history(self):
        text = render_markdown([])
        assert "No recorded runs yet" in text

    def test_table_uses_headline_columns(self):
        entries = [
            entry_for("r1", {"a": 1.0, "b": 5.0}, headline=("b",)),
            entry_for("r2", {"a": 1.1, "b": 10.0}, headline=("b",)),
        ]
        text = render_markdown(entries)
        assert "| run | date | suite | s.b |" in text
        assert "| r1 |" in text and "| r2 |" in text
        assert "s.a" not in text  # non-headline metrics stay out
        assert "## Movement: r1 → r2" in text
        assert "`s.b`: 5 → 10 (+100.0%)" in text
        assert "repro bench compare" in text

    def test_no_headline_falls_back_to_first_metrics(self):
        text = render_markdown([entry_for("r1", {"a": 1.0})])
        assert "| run | date | suite | s.a |" in text

    def test_limit_windows_recent_runs(self):
        entries = [entry_for(f"r{i}", {"a": float(i)}) for i in range(10)]
        text = render_markdown(entries, limit=3)
        assert "| r9 |" in text and "| r7 |" in text
        assert "| r6 |" not in text

    def test_metric_missing_from_one_run(self):
        entries = [
            entry_for("r1", {"a": 1.0}, headline=("a",)),
            entry_for("r2", {"b": 2.0}, headline=("b",)),
        ]
        text = render_markdown(entries)
        # Column set comes from the latest run; r1 shows a dash.
        assert "| r1 | 2026-08-06T00:00:00+0000 | smoke | - |" in text
        assert "`s.b`: - → 2" in text


class TestRenderRunText:
    def test_summary_lines(self):
        doc = make_doc(
            "r1",
            {"s": make_scenario(
                {
                    "wall_s": make_metric(0.5, mad=0.01, headline=True),
                    "instr": make_metric(100.0, stable=True, unit="Minstr"),
                },
                counters={"lock_contention_ratio": 0.25,
                          "dropped_events": 3.0},
            )},
        )
        text = render_run_text(doc, "benchmarks/BENCH_r1.json")
        assert "bench run r1 suite=smoke (1 scenarios)" in text
        assert "*wall_s" in text  # headline marker
        assert "[stable]" in text
        assert "lock contention ratio: 0.250" in text
        assert "dropped obs events: 3" in text
        assert text.endswith("artifact: benchmarks/BENCH_r1.json")
