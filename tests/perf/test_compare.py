"""Compare-engine classification, edge cases, and regression attribution."""

import pytest

from repro.perf.compare import NOISE_K, compare_docs, resolve_doc

from .helpers import clone, make_doc, make_metric, make_scenario


def one_metric_docs(base_metric, cur_metric, name="m", profile=None,
                    cur_profile=None):
    base = make_doc("base", {"s": make_scenario({name: base_metric},
                                                profile=profile)})
    cur = make_doc("cur", {"s": make_scenario({name: cur_metric},
                                              profile=cur_profile)})
    return base, cur


def classification(result, key):
    return next(d.classification for d in result.deltas if d.key == key)


class TestClassification:
    def test_unchanged_tree_is_all_unchanged(self):
        base = make_doc(
            "base",
            {"s": make_scenario({
                "wall_s": make_metric(0.5, mad=0.01, rel_tol=0.3),
                "speedup": make_metric(5.0, direction="higher", stable=True,
                                       rel_tol=1e-3),
            })},
        )
        result = compare_docs(base, clone(base, "cur"))
        assert result.ok
        assert {d.classification for d in result.deltas} == {"unchanged"}

    def test_lower_is_better_regression(self):
        base, cur = one_metric_docs(
            make_metric(1.0, rel_tol=0.1), make_metric(1.5, rel_tol=0.1)
        )
        result = compare_docs(base, cur)
        assert classification(result, "s.m") == "regressed"
        assert not result.ok

    def test_lower_is_better_improvement(self):
        base, cur = one_metric_docs(
            make_metric(1.0, rel_tol=0.1), make_metric(0.5, rel_tol=0.1)
        )
        assert classification(compare_docs(base, cur), "s.m") == "improved"

    def test_higher_is_better_direction_flips(self):
        # Throughput dropping is a regression; rising is an improvement.
        base, cur = one_metric_docs(
            make_metric(100.0, direction="higher", rel_tol=0.1),
            make_metric(50.0, direction="higher", rel_tol=0.1),
        )
        assert classification(compare_docs(base, cur), "s.m") == "regressed"
        base, cur = one_metric_docs(
            make_metric(100.0, direction="higher", rel_tol=0.1),
            make_metric(200.0, direction="higher", rel_tol=0.1),
        )
        assert classification(compare_docs(base, cur), "s.m") == "improved"

    def test_within_tolerance_is_unchanged_both_directions(self):
        for direction in ("lower", "higher"):
            base, cur = one_metric_docs(
                make_metric(1.0, direction=direction, rel_tol=0.2),
                make_metric(1.1, direction=direction, rel_tol=0.2),
            )
            assert classification(compare_docs(base, cur), "s.m") == "unchanged"

    def test_mad_widens_the_noise_band(self):
        # 30% movement, nominal rel_tol 10% — but both runs measured
        # noisy (MAD 0.05 each): 3*(0.05+0.05)=0.3 covers the delta.
        base, cur = one_metric_docs(
            make_metric(1.0, mad=0.05, rel_tol=0.1),
            make_metric(1.3, mad=0.05, rel_tol=0.1),
        )
        result = compare_docs(base, cur)
        assert classification(result, "s.m") == "unchanged"
        delta = result.deltas[0]
        assert delta.threshold == pytest.approx(NOISE_K * 0.1)

    def test_single_sample_mad_zero_falls_back_to_rel_tol(self):
        # One sample each => MAD 0; the declared rel_tol is the only
        # band, so a 5% move inside rel_tol=0.1 stays unchanged and a
        # 20% move regresses.
        base, cur = one_metric_docs(
            make_metric(1.0, samples=[1.0], rel_tol=0.1),
            make_metric(1.05, samples=[1.05], rel_tol=0.1),
        )
        assert classification(compare_docs(base, cur), "s.m") == "unchanged"
        base, cur = one_metric_docs(
            make_metric(1.0, samples=[1.0], rel_tol=0.1),
            make_metric(1.2, samples=[1.2], rel_tol=0.1),
        )
        assert classification(compare_docs(base, cur), "s.m") == "regressed"

    def test_zero_tolerance_exact_metric(self):
        # stable counters: any movement flags, equality never does.
        base, cur = one_metric_docs(
            make_metric(0.0, rel_tol=0.0), make_metric(0.0, rel_tol=0.0)
        )
        assert classification(compare_docs(base, cur), "s.m") == "unchanged"
        base, cur = one_metric_docs(
            make_metric(0.0, rel_tol=0.0), make_metric(1.0, rel_tol=0.0)
        )
        assert classification(compare_docs(base, cur), "s.m") == "regressed"


class TestOneSidedMetrics:
    def test_metric_only_in_current_is_added(self):
        base = make_doc("base", {"s": make_scenario({"old": make_metric(1.0)})})
        cur = make_doc("cur", {"s": make_scenario({
            "old": make_metric(1.0), "new": make_metric(2.0)})})
        result = compare_docs(base, cur)
        assert classification(result, "s.new") == "added"
        assert result.ok  # additions never gate

    def test_metric_only_in_baseline_is_removed(self):
        base = make_doc("base", {"s": make_scenario({
            "old": make_metric(1.0), "gone": make_metric(2.0)})})
        cur = make_doc("cur", {"s": make_scenario({"old": make_metric(1.0)})})
        result = compare_docs(base, cur)
        assert classification(result, "s.gone") == "removed"
        assert result.ok

    def test_empty_baseline_everything_added(self):
        base = make_doc("base", {})
        cur = make_doc("cur", {"s": make_scenario({"m": make_metric(1.0)})})
        result = compare_docs(base, cur)
        assert result.ok
        assert {d.classification for d in result.deltas} == {"added"}

    def test_whole_scenario_added(self):
        base = make_doc("base", {"s": make_scenario({"m": make_metric(1.0)})})
        cur = make_doc("cur", {
            "s": make_scenario({"m": make_metric(1.0)}),
            "s2": make_scenario({"m2": make_metric(3.0)}),
        })
        result = compare_docs(base, cur)
        assert classification(result, "s2.m2") == "added"


class TestStableOnly:
    def test_stable_only_skips_wall_metrics(self):
        base = make_doc("base", {"s": make_scenario({
            "wall_s": make_metric(1.0, rel_tol=0.1),
            "instr": make_metric(100.0, stable=True, rel_tol=1e-3),
        })})
        cur = make_doc("cur", {"s": make_scenario({
            "wall_s": make_metric(9.0, rel_tol=0.1),  # would regress
            "instr": make_metric(100.0, stable=True, rel_tol=1e-3),
        })})
        result = compare_docs(base, cur, stable_only=True)
        assert result.ok
        assert [d.metric for d in result.deltas] == ["instr"]


class TestInjectedSlowdownAttribution:
    """The acceptance scenario: a perturbed node/lock must be flagged
    as regressed and *named* by the hot-spot attribution."""

    @staticmethod
    def profile(node_ms: float, lock_wait_ms: float):
        return {
            "nodes": [
                {"node_id": 42, "kind": "join", "production": "cross-pair",
                 "activations": 10, "self_ms": node_ms, "examined": 50,
                 "emitted": 5},
                {"node_id": 7, "kind": "and", "production": "quiet-rule",
                 "activations": 3, "self_ms": 0.2, "examined": 3,
                 "emitted": 1},
            ],
            "locks": [
                {"label": "line", "acquires": 100, "contended": 30,
                 "contention_ratio": 0.3, "wait_ms": lock_wait_ms,
                 "hold_ms": 1.0},
            ],
            "productions": [
                {"production": "cross-pair", "activations": 10,
                 "self_ms": node_ms, "examined": 50},
            ],
            "total_activations": 13,
            "dropped": 0,
        }

    def test_slow_node_named_as_top_mover(self):
        base, cur = one_metric_docs(
            make_metric(1.0, rel_tol=0.1),
            make_metric(5.0, rel_tol=0.1),  # injected 5x slowdown
            name="match_s",
            profile=self.profile(node_ms=1.0, lock_wait_ms=0.5),
            cur_profile=self.profile(node_ms=4.8, lock_wait_ms=0.5),
        )
        result = compare_docs(base, cur)
        assert not result.ok
        movers = result.movers["s"]
        assert movers, "regressed scenario must carry attribution"
        top = movers[0]
        assert top.kind in ("node", "production")
        assert "cross-pair" in top.label
        assert top.delta_ms == pytest.approx(3.8)
        # the rendered report names the perturbed production too
        assert "cross-pair" in result.format()

    def test_contended_lock_named_as_top_mover(self):
        base, cur = one_metric_docs(
            make_metric(1.0, rel_tol=0.1),
            make_metric(3.0, rel_tol=0.1),
            name="match_s",
            profile=self.profile(node_ms=1.0, lock_wait_ms=0.5),
            cur_profile=self.profile(node_ms=1.0, lock_wait_ms=40.0),
        )
        result = compare_docs(base, cur)
        top = result.movers["s"][0]
        assert top.kind == "lock" and top.label == "line"
        assert "line" in result.format()

    def test_missing_profile_yields_empty_attribution(self):
        base, cur = one_metric_docs(
            make_metric(1.0, rel_tol=0.1), make_metric(5.0, rel_tol=0.1)
        )
        result = compare_docs(base, cur)
        assert result.movers == {"s": []}
        assert "no profile recorded" in result.format()

    def test_unregressed_scenarios_get_no_attribution(self):
        base, cur = one_metric_docs(
            make_metric(1.0, rel_tol=0.5),
            make_metric(1.1, rel_tol=0.5),
            profile=self.profile(1.0, 0.5),
            cur_profile=self.profile(2.0, 0.5),
        )
        assert compare_docs(base, cur).movers == {}


class TestValidationAndResolution:
    def test_invalid_baseline_rejected(self):
        cur = make_doc("cur", {"s": make_scenario({"m": make_metric(1.0)})})
        with pytest.raises(ValueError, match="baseline artifact invalid"):
            compare_docs({"schema": "repro.bench/1"}, cur)

    def test_resolve_by_path_runid_latest_prev(self, tmp_path):
        import json

        from repro.perf.report import append_trajectory, trajectory_entry

        out = tmp_path / "bench"
        out.mkdir()
        for runid in ("a1", "a2"):
            doc = make_doc(runid, {"s": make_scenario({"m": make_metric(1.0)})})
            path = out / f"BENCH_{runid}.json"
            path.write_text(json.dumps(doc), encoding="utf-8")
            append_trajectory(
                str(out / "trajectory.jsonl"),
                trajectory_entry(doc, artifact=path.name),
            )
        assert resolve_doc(str(out), "latest")["runid"] == "a2"
        assert resolve_doc(str(out), "prev")["runid"] == "a1"
        assert resolve_doc(str(out), "a1")["runid"] == "a1"
        assert resolve_doc(str(out), str(out / "BENCH_a2.json"))["runid"] == "a2"
        with pytest.raises(ValueError, match="no artifact for runid"):
            resolve_doc(str(out), "zz")

    def test_resolve_prev_needs_two_runs(self, tmp_path):
        import json

        from repro.perf.report import append_trajectory, trajectory_entry

        out = tmp_path / "bench"
        out.mkdir()
        doc = make_doc("only", {"s": make_scenario({"m": make_metric(1.0)})})
        (out / "BENCH_only.json").write_text(json.dumps(doc), encoding="utf-8")
        append_trajectory(
            str(out / "trajectory.jsonl"),
            trajectory_entry(doc, artifact="BENCH_only.json"),
        )
        with pytest.raises(ValueError, match="needs at least 2"):
            resolve_doc(str(out), "prev")
