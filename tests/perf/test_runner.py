"""run_suite: sampling, reduction, artifact emission, obs integration."""

import json
import os

import pytest

from repro.obs import events as obs_events
from repro.perf.report import load_trajectory
from repro.perf.runner import _mad, _median, make_runid, run_suite
from repro.perf.scenarios import SCENARIOS, MetricSpec, RepResult, Scenario
from repro.perf.schema import validate_bench_doc


def counting_scenario(counter, stable=False, metrics=("m",)):
    """A cheap fake scenario whose run() increments ``counter['runs']``."""

    def run():
        counter["runs"] += 1
        return RepResult(
            metrics={name: float(counter["runs"]) for name in metrics}
        )

    return Scenario(
        scenario_id="fake",
        title="fake",
        suites=("smoke",),
        specs=tuple(
            MetricSpec(name, "s", "lower", 0.1, stable=stable)
            for name in metrics
        ),
        run=run,
        profiled=False,
    )


class TestStatistics:
    def test_median_odd_even(self):
        assert _median([3.0, 1.0, 2.0]) == 2.0
        assert _median([4.0, 1.0, 2.0, 3.0]) == 2.5

    def test_mad_robust_to_outlier(self):
        values = [1.0, 1.1, 0.9, 50.0]
        center = _median(values)
        assert _mad(values, center) == pytest.approx(0.1, abs=0.01)

    def test_runid_shape(self):
        runid = make_runid()
        assert len(runid) == 20 and runid[8] == "-" and runid[15] == "-"


class TestRunSuite:
    def test_artifact_written_and_schema_valid(self, tmp_path):
        counter = {"runs": 0}
        registry = {"fake": counting_scenario(counter)}
        doc, path = run_suite(
            repeat=3, warmup=1, out_dir=str(tmp_path), runid="r1",
            registry=registry,
        )
        assert validate_bench_doc(doc) == []
        assert counter["runs"] == 4  # 1 warmup + 3 timed
        entry = doc["scenarios"]["fake"]
        assert entry["repeat"] == 3 and entry["warmup"] == 1
        assert entry["metrics"]["m"]["samples"] == [2.0, 3.0, 4.0]
        assert entry["metrics"]["m"]["median"] == 3.0
        # On-disk copy round-trips and no temp file leaks behind it.
        assert json.loads(
            (tmp_path / "BENCH_r1.json").read_text()
        ) == doc
        assert os.path.basename(path) == "BENCH_r1.json"
        assert [p.name for p in tmp_path.iterdir()] and all(
            ".tmp" not in p.name for p in tmp_path.iterdir()
        )

    def test_trajectory_appended_per_run(self, tmp_path):
        counter = {"runs": 0}
        registry = {"fake": counting_scenario(counter)}
        for runid in ("r1", "r2"):
            run_suite(repeat=1, warmup=0, out_dir=str(tmp_path),
                      runid=runid, registry=registry)
        entries = load_trajectory(str(tmp_path / "trajectory.jsonl"))
        assert [e["runid"] for e in entries] == ["r1", "r2"]
        assert entries[0]["artifact"] == "BENCH_r1.json"
        assert "fake.m" in entries[0]["metrics"]

    def test_no_trajectory_flag(self, tmp_path):
        counter = {"runs": 0}
        run_suite(repeat=1, warmup=0, out_dir=str(tmp_path), runid="r1",
                  registry={"fake": counting_scenario(counter)},
                  trajectory=False)
        assert not (tmp_path / "trajectory.jsonl").exists()

    def test_stable_scenario_forced_to_single_rep(self, tmp_path):
        counter = {"runs": 0}
        registry = {"fake": counting_scenario(counter, stable=True)}
        doc, _ = run_suite(repeat=5, warmup=2, out_dir=str(tmp_path),
                           runid="r1", registry=registry)
        # No warmup, one repetition: deterministic values need neither.
        assert counter["runs"] == 1
        entry = doc["scenarios"]["fake"]
        assert entry["repeat"] == 1 and entry["warmup"] == 0
        assert entry["metrics"]["m"]["mad"] == 0.0

    def test_metric_name_mismatch_rejected(self, tmp_path):
        bad = Scenario(
            scenario_id="bad",
            title="bad",
            suites=("smoke",),
            specs=(MetricSpec("declared", "s", "lower", 0.1),),
            run=lambda: RepResult(metrics={"produced": 1.0}),
            profiled=False,
        )
        with pytest.raises(ValueError, match="declares"):
            run_suite(repeat=1, warmup=0, out_dir=str(tmp_path),
                      registry={"bad": bad})

    def test_bad_arguments_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="repeat"):
            run_suite(repeat=0, out_dir=str(tmp_path))
        with pytest.raises(ValueError, match="bad runid"):
            run_suite(repeat=1, out_dir=str(tmp_path),
                      runid="../escape",
                      registry={"fake": counting_scenario({"runs": 0})})

    def test_unknown_suite_propagates(self, tmp_path):
        with pytest.raises(ValueError, match="unknown suite"):
            run_suite(suite="nope", out_dir=str(tmp_path))


class TestObsProfileIntegration:
    """A real profiled scenario: the extra rep must capture a hot-spot
    profile with node→production attribution, and leave the bus off."""

    def test_profiled_run_attaches_profile_and_counters(self, tmp_path):
        registry = {"match-weaver": SCENARIOS["match-weaver"]}
        doc, _ = run_suite(repeat=1, warmup=0, out_dir=str(tmp_path),
                           runid="r1", registry=registry)
        assert validate_bench_doc(doc) == []
        entry = doc["scenarios"]["match-weaver"]
        profile = entry["profile"]
        assert profile is not None and profile["nodes"]
        top = profile["nodes"][0]
        assert top["self_ms"] > 0
        assert top["production"]  # attribution resolved via the network
        assert entry["counters"]["dropped_events"] == 0
        # The profiled rep must not leave the global bus enabled.
        assert not obs_events.enabled()
        assert obs_events.snapshot().workers == {}

    def test_parallel_scenario_captures_lock_counters(self, tmp_path):
        registry = {"parallel-weaver": SCENARIOS["parallel-weaver"]}
        doc, _ = run_suite(repeat=1, warmup=0, out_dir=str(tmp_path),
                           runid="r1", registry=registry)
        entry = doc["scenarios"]["parallel-weaver"]
        counters = entry["counters"]
        assert counters["obs.queue.push"] > 0
        assert counters["lock_acquires"] > 0
        assert 0.0 <= counters["lock_contention_ratio"] <= 1.0
        assert entry["profile"]["locks"]  # taskcount/queue/line waits
