"""Builders for synthetic BENCH documents used across the perf tests."""

from __future__ import annotations

import copy
from typing import Any, Dict, List, Optional

from repro.perf.schema import SCHEMA_ID


def make_metric(
    median: float,
    mad: float = 0.0,
    samples: Optional[List[float]] = None,
    direction: str = "lower",
    rel_tol: float = 0.1,
    abs_tol: float = 0.0,
    stable: bool = False,
    unit: str = "s",
    headline: bool = False,
) -> Dict[str, Any]:
    return {
        "samples": samples if samples is not None else [median],
        "median": median,
        "mad": mad,
        "unit": unit,
        "direction": direction,
        "rel_tol": rel_tol,
        "abs_tol": abs_tol,
        "stable": stable,
        "headline": headline,
    }


def make_scenario(
    metrics: Dict[str, Dict[str, Any]],
    profile: Optional[Dict[str, Any]] = None,
    counters: Optional[Dict[str, float]] = None,
) -> Dict[str, Any]:
    return {
        "title": "synthetic",
        "repeat": max(len(m["samples"]) for m in metrics.values()),
        "warmup": 0,
        "metrics": metrics,
        "counters": counters or {},
        "profile": profile,
    }


def make_doc(runid: str, scenarios: Dict[str, Dict[str, Any]]) -> Dict[str, Any]:
    return {
        "schema": SCHEMA_ID,
        "runid": runid,
        "created": "2026-08-06T00:00:00+0000",
        "created_unix": 1.0,
        "suite": "smoke",
        "note": "",
        "host": {"python": "3.11", "platform": "test", "cpus": 1},
        "scenarios": scenarios,
    }


def clone(doc: Dict[str, Any], runid: str) -> Dict[str, Any]:
    """Deep copy with a new runid (the 'unchanged tree second run')."""
    out = copy.deepcopy(doc)
    out["runid"] = runid
    return out
