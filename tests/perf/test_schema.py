"""BENCH artifact schema validation."""

from repro.perf.schema import validate_bench_doc

from .helpers import make_doc, make_metric, make_scenario


def valid_doc():
    return make_doc(
        "r1",
        {
            "s": make_scenario(
                {"m": make_metric(1.0, samples=[1.0, 1.1])},
                profile={
                    "nodes": [
                        {"node_id": 3, "kind": "join", "production": "p",
                         "activations": 2, "self_ms": 1.5, "examined": 4,
                         "emitted": 1}
                    ],
                    "locks": [
                        {"label": "queue", "acquires": 5, "contended": 1,
                         "contention_ratio": 0.2, "wait_ms": 0.1,
                         "hold_ms": 0.4}
                    ],
                    "productions": [
                        {"production": "p", "activations": 2, "self_ms": 1.5,
                         "examined": 4}
                    ],
                    "total_activations": 2,
                    "dropped": 0,
                },
            )
        },
    )


class TestValidateBenchDoc:
    def test_valid_doc_passes(self):
        assert validate_bench_doc(valid_doc()) == []

    def test_not_an_object(self):
        assert validate_bench_doc([]) == ["document is not a JSON object"]

    def test_missing_top_level_fields(self):
        problems = validate_bench_doc({})
        assert any("schema" in p for p in problems)
        assert any("runid" in p for p in problems)
        assert any("scenarios" in p for p in problems)

    def test_unknown_schema_family(self):
        doc = valid_doc()
        doc["schema"] = "other.format/9"
        assert any("unknown schema family" in p
                   for p in validate_bench_doc(doc))

    def test_empty_samples_flagged(self):
        doc = valid_doc()
        doc["scenarios"]["s"]["metrics"]["m"]["samples"] = []
        assert any("samples missing or empty" in p
                   for p in validate_bench_doc(doc))

    def test_bad_direction_flagged(self):
        doc = valid_doc()
        doc["scenarios"]["s"]["metrics"]["m"]["direction"] = "sideways"
        assert any("direction" in p for p in validate_bench_doc(doc))

    def test_negative_tolerance_flagged(self):
        doc = valid_doc()
        doc["scenarios"]["s"]["metrics"]["m"]["rel_tol"] = -0.1
        assert any("rel_tol" in p for p in validate_bench_doc(doc))

    def test_profile_rows_need_keys(self):
        doc = valid_doc()
        doc["scenarios"]["s"]["profile"]["nodes"] = [{"kind": "join"}]
        problems = validate_bench_doc(doc)
        assert any("missing 'node_id'" in p for p in problems)
        assert any("missing 'self_ms'" in p for p in problems)

    def test_profile_optional(self):
        doc = valid_doc()
        doc["scenarios"]["s"]["profile"] = None
        assert validate_bench_doc(doc) == []

    def test_counter_values_must_be_numbers(self):
        doc = valid_doc()
        doc["scenarios"]["s"]["counters"] = {"x": "lots"}
        assert any("counter values" in p for p in validate_bench_doc(doc))
