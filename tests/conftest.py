"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import settings as _hypothesis_settings

from repro.ops5.interpreter import Interpreter
from repro.ops5.parser import parse_program

# Property tests run derandomized everywhere: examples are derived from
# the test body, not a fresh RNG seed per run, so a CI failure line
# reproduces locally with no @seed() decorator archaeology and schedck
# sweep results are a pure function of the tree.  Explicitly seeded
# randomness in tests (random.Random(7) etc.) is unaffected.
_hypothesis_settings.register_profile("pinned", derandomize=True)
_hypothesis_settings.load_profile("pinned")

#: The paper's Figure 2-1 production plus a small working memory.
FIND_COLORED_BLOCK = """
(literalize goal type color)
(literalize block id color selected)
(p find-colored-block
  (goal ^type find-block ^color <c>)
  (block ^id <i> ^color <c> ^selected no)
  -->
  (modify 2 ^selected yes)
  (write selected <i>))
(startup
  (make goal ^type find-block ^color red)
  (make block ^id b1 ^color red ^selected no)
  (make block ^id b2 ^color blue ^selected no)
  (make block ^id b3 ^color red ^selected no))
"""

#: The paper's Figure 2-2 productions p1 and p2 (network-structure demo).
FIGURE_2_2 = """
(p p1
  (C1 ^attr1 <x> ^attr2 12)
  (C2 ^attr1 15 ^attr2 <x>)
  - (C3 ^attr1 <x>)
  -->
  (remove 2))
(p p2
  (C2 ^attr1 15 ^attr2 <y>)
  (C4 ^attr1 <y>)
  -->
  (modify 1 ^attr1 12))
"""


@pytest.fixture
def figure_2_1():
    return FIND_COLORED_BLOCK


@pytest.fixture
def figure_2_2():
    return FIGURE_2_2


def run_program(source: str, max_cycles: int = 1000, **kw):
    """Parse, run, and return (Interpreter, RunResult)."""
    interp = Interpreter(source, **kw)
    result = interp.run(max_cycles=max_cycles)
    return interp, result


def conflict_snapshot(interp: Interpreter):
    """A canonical, comparable view of the conflict set."""
    return sorted(
        (inst.production.name, inst.token.key)
        for inst in interp.conflict_set.instantiations()
    )
