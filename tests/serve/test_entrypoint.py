"""The ``repro`` console script and ``python -m repro`` must agree."""

import subprocess
import sys
from pathlib import Path

import tomllib

REPO = Path(__file__).resolve().parents[2]


def _script_target():
    with open(REPO / "pyproject.toml", "rb") as fh:
        meta = tomllib.load(fh)
    return meta["project"]["scripts"]["repro"]


def test_console_script_points_at_cli_main():
    assert _script_target() == "repro.cli:main"


def test_script_target_resolves_to_the_module_entry():
    modname, _, attr = _script_target().partition(":")
    module = __import__(modname, fromlist=[attr])
    target = getattr(module, attr)
    # `python -m repro` (see src/repro/__main__.py) calls the same
    # function, so both entry points share flags and exit codes.
    from repro.cli import main

    assert target is main
    main_py = (REPO / "src" / "repro" / "__main__.py").read_text()
    assert "from .cli import main" in main_py
    assert "sys.exit(main())" in main_py


def test_python_dash_m_repro_help():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "--help"],
        capture_output=True,
        text=True,
        cwd=REPO,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0
    assert proc.stdout.startswith("usage: repro")
    for verb in ("run", "serve", "loadgen", "schedck"):
        assert verb in proc.stdout
