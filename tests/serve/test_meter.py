"""Serve-layer metering: the ``meter`` verb, tenant labels on open,
and backpressure accounting landing in both the meter counters and the
Prometheus exposition (the bounced client saw ``retry_after_ms``; the
operator must see the same rejection server-side)."""

import asyncio

import pytest

from repro.obs import meter as obs_meter
from repro.obs.export import validate_prometheus
from repro.serve.limits import ServiceLimits
from repro.serve.session import Busy

from .conftest import COUNTER, request


@pytest.fixture(autouse=True)
def fresh_meter():
    yield
    obs_meter.disable()
    obs_meter.reset()


def with_metered_server(coro_fn, limits=None, meter=True, slo=None):
    from repro.serve.server import ReproServer

    async def runner():
        server = ReproServer(limits=limits, meter=meter, slo=slo)
        host, port = await server.start()
        reader, writer = await asyncio.open_connection(host, port)
        try:
            return await coro_fn(server, reader, writer)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            await server.shutdown()

    return asyncio.run(runner())


async def open_counter(reader, writer, tenant="default"):
    resp = await request(
        reader, writer,
        {"id": 1, "type": "open", "program": COUNTER, "tenant": tenant},
    )
    assert resp["ok"], resp
    return resp


class TestMeterVerb:
    def test_meter_snapshot_after_transactions(self):
        async def scenario(server, reader, writer):
            sid = (await open_counter(reader, writer, tenant="acme"))["session"]
            resp = await request(reader, writer, {
                "id": 2, "type": "transact", "session": sid,
                "ops": [{"op": "make", "class": "counter",
                         "attrs": {"n": 0, "limit": 3}}],
                "max_cycles": 50,
            })
            assert resp["ok"], resp
            resp = await request(reader, writer, {"id": 3, "type": "meter"})
            assert resp["ok"]
            assert resp["enabled"] is True
            snap = resp["meter"]
            assert snap["schema"] == obs_meter.METER_SCHEMA
            session = snap["sessions"][sid]
            tenant = snap["tenants"]["acme"]
            for acct in (session, tenant):
                assert acct["counters"]["txns"] == 1
                assert acct["counters"]["firings"] > 0
                assert acct["counters"]["wm_changes"] > 0
                assert acct["counters"]["match_s"] > 0
                assert acct["latency"]["count"] == 1
            assert session["counters"]["queue_wait_s"] >= 0

        with_metered_server(scenario)

    def test_txn_latency_covers_inbox_wait(self):
        """Meter latency is submit→done; a transaction queued behind a
        slow one must report latency at least the wait it endured."""

        async def scenario(server, reader, writer):
            sid = (await open_counter(reader, writer))["session"]
            session = server.sessions[sid]
            from repro.ops5.interpreter import WMOp

            slow = session.submit(
                [WMOp.make("counter", {"n": 0, "limit": 2000})], 500, None)
            fast = session.submit([], 0, None)
            await asyncio.gather(slow, fast)
            snap = obs_meter.snapshot()
            lat = snap["sessions"][sid]["latency"]
            assert lat["count"] == 2
            # The second txn's latency includes waiting for the first;
            # sum_ms must therefore exceed the pure-exec total of the
            # serve-layer latency window (exec-only).
            exec_ms = session.core.counters.latency.total_seconds * 1e3
            assert lat["sum_ms"] >= exec_ms * 0.9

        with_metered_server(scenario)

    def test_unmetered_server_answers_disabled(self):
        async def scenario(server, reader, writer):
            resp = await request(reader, writer, {"id": 1, "type": "meter"})
            assert resp["ok"]
            assert resp["enabled"] is False
            assert resp["meter"]["sessions"] == {}

        with_metered_server(scenario, meter=False)

    def test_custom_slo_objectives_in_snapshot(self):
        async def scenario(server, reader, writer):
            resp = await request(reader, writer, {"id": 1, "type": "meter"})
            assert resp["meter"]["objectives"] == [
                {"name": "fast", "target_ms": 5.0, "goal": 0.5}
            ]

        with_metered_server(
            scenario, slo=[obs_meter.SLObjective("fast", 5.0, 0.5)]
        )


class TestTenantValidation:
    @pytest.mark.parametrize("tenant", ["", 7, None])
    def test_bad_tenant_rejected(self, tenant):
        async def scenario(server, reader, writer):
            resp = await request(
                reader, writer,
                {"id": 1, "type": "open", "program": COUNTER,
                 "tenant": tenant},
            )
            assert not resp["ok"]
            assert resp["error"]["code"] == "bad-request"

        with_metered_server(scenario)

    def test_tenant_defaults_when_absent(self):
        async def scenario(server, reader, writer):
            resp = await request(
                reader, writer,
                {"id": 1, "type": "open", "program": COUNTER},
            )
            assert resp["ok"]
            assert server.sessions[resp["session"]].core.tenant == "default"

        with_metered_server(scenario)


class TestBackpressureAccounting:
    def test_busy_rejections_counted_in_meter_and_prometheus(self):
        """A session hitting the bounded inbox gets ``retry_after_ms``
        on the wire — and the rejection must be visible server-side in
        the meter counters and the ``stats format=prometheus`` body."""

        async def scenario(server, reader, writer):
            resp = await open_counter(reader, writer, tenant="acme")
            sid = resp["session"]
            session = server.sessions[sid]
            busy = 0
            futs = []
            for _ in range(6):  # inbox_depth=2 -> 4 rejections
                try:
                    futs.append(session.submit([], max_cycles=0))
                except Busy:
                    busy += 1
            assert busy == 4
            await asyncio.gather(*futs)

            snap = obs_meter.snapshot()
            assert snap["sessions"][sid]["counters"]["rejected_busy"] == busy
            assert snap["tenants"]["acme"]["counters"]["rejected_busy"] == busy

            resp = await request(
                reader, writer,
                {"id": 9, "type": "stats", "format": "prometheus"},
            )
            assert resp["ok"]
            body = resp["body"]
            assert validate_prometheus(body) == []
            assert (
                f'repro_meter_rejected_busy_total{{scope="session",id="{sid}"}} '
                f"{busy}" in body
            )
            assert (
                'repro_meter_rejected_busy_total{scope="tenant",id="acme"} '
                f"{busy}" in body
            )

        with_metered_server(scenario, limits=ServiceLimits(inbox_depth=2))

    def test_budget_rejections_metered(self):
        async def scenario(server, reader, writer):
            sid = (await open_counter(reader, writer))["session"]
            resp = await request(reader, writer, {
                "id": 2, "type": "transact", "session": sid,
                "ops": [], "max_cycles": 10 ** 9,
            })
            assert not resp["ok"]
            assert resp["error"]["code"] == "budget-exceeded"
            snap = obs_meter.snapshot()
            assert snap["sessions"][sid]["counters"]["rejected_budget"] == 1

        with_metered_server(scenario)


class TestServeSpans:
    def test_transact_span_tagged_with_session_and_request(self):
        from repro.obs import events as obs_events

        async def scenario(server, reader, writer):
            sid = (await open_counter(reader, writer, tenant="t9"))["session"]
            resp = await request(reader, writer, {
                "id": 2, "type": "transact", "session": sid,
                "ops": [{"op": "make", "class": "counter",
                         "attrs": {"n": 0, "limit": 1}}],
                "max_cycles": 10,
            })
            assert resp["ok"]
            snap = obs_events.snapshot()
            serve_spans = snap.spans_by_cat("serve")
            assert serve_spans
            args = serve_spans[-1][4]
            assert args["session"] == sid
            assert args["tenant"] == "t9"
            assert args["req"].startswith("r")
            assert args["outcome"] == resp["outcome"]
            return sid

        obs_events.reset()
        obs_events.enable()
        try:
            with_metered_server(scenario)
        finally:
            obs_events.disable()
            obs_events.reset()
