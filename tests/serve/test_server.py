"""End-to-end server tests over real sockets (one event loop per test)."""

import asyncio
import json
import re

from repro.ops5.interpreter import WMOp
from repro.serve.limits import ServiceLimits
from repro.serve.session import Busy

from .conftest import COUNTER, SPINNER, request, with_server


def open_counter(reader, writer, **extra):
    return request(
        reader, writer, {"id": 1, "type": "open", "program": COUNTER, **extra}
    )


class TestLifecycle:
    def test_ping(self):
        async def scenario(server, reader, writer):
            resp = await request(reader, writer, {"id": 1, "type": "ping"})
            assert resp == {"id": 1, "ok": True, "pong": True}

        with_server(scenario)

    def test_open_transact_close(self):
        async def scenario(server, reader, writer):
            resp = await open_counter(reader, writer)
            assert resp["ok"] and not resp["cached"]
            sid = resp["session"]
            resp = await request(
                reader,
                writer,
                {
                    "id": 2,
                    "type": "transact",
                    "session": sid,
                    "ops": [
                        {"op": "make", "class": "counter",
                         "attrs": {"n": 0, "limit": 2}}
                    ],
                    "max_cycles": 100,
                },
            )
            assert resp["ok"]
            assert resp["outcome"] == "halted"
            assert resp["cycles"] == 3
            assert [f[1] for f in resp["firings"]] == ["tick", "tick", "done"]
            assert resp["output"] == ["tick 0", "tick 1", "done 2"]
            assert len(resp["created"]) == 1
            resp = await request(
                reader, writer, {"id": 3, "type": "close", "session": sid}
            )
            assert resp["ok"] and resp["closed"] == sid

        with_server(scenario)

    def test_second_open_reuses_network(self):
        async def scenario(server, reader, writer):
            first = await open_counter(reader, writer)
            second = await open_counter(reader, writer)
            assert not first["cached"] and second["cached"]
            assert first["key"] == second["key"]
            assert first["session"] != second["session"]
            assert len(server.netcache) == 1

        with_server(scenario)

    def test_stats_reports_sessions_and_cache(self):
        async def scenario(server, reader, writer):
            sid = (await open_counter(reader, writer))["session"]
            await request(
                reader,
                writer,
                {"id": 2, "type": "transact", "session": sid, "max_cycles": 0},
            )
            resp = await request(reader, writer, {"id": 3, "type": "stats"})
            assert resp["server"]["transactions"] == 1
            assert resp["netcache"]["entries"] == 1
            assert sid in resp["sessions"]
            per = await request(
                reader, writer, {"id": 4, "type": "stats", "session": sid}
            )
            assert per["stats"]["transactions"] == 1
            assert per["stats"]["latency"]["count"] == 1

        with_server(scenario)

    def test_stats_prometheus_format(self):
        async def scenario(server, reader, writer):
            sid = (await open_counter(reader, writer))["session"]
            await request(
                reader,
                writer,
                {"id": 2, "type": "transact", "session": sid, "max_cycles": 0},
            )
            resp = await request(
                reader, writer,
                {"id": 3, "type": "stats", "format": "prometheus"},
            )
            assert resp["ok"] and resp["format"] == "prometheus"
            body = resp["body"]
            assert "# TYPE repro_requests_total counter" in body
            assert "repro_transactions_total 1" in body
            assert "repro_netcache_entries 1" in body
            assert f'repro_session_transactions_total{{session="{sid}"}} 1' in body
            # Event-bus health: span-buffer saturation is visible from
            # a plain stats scrape even when tracing is off.
            assert "# TYPE repro_obs_dropped_events_total counter" in body
            # The counter is monotonic over the process lifetime, so
            # other tests' captures may have contributed drops — assert
            # presence and shape, not a literal zero.
            assert re.search(
                r"^repro_obs_dropped_events_total \d+$", body, re.M
            )
            assert "repro_obs_enabled 0" in body

        with_server(scenario)

    def test_stats_unknown_format_rejected(self):
        async def scenario(server, reader, writer):
            resp = await request(
                reader, writer, {"id": 1, "type": "stats", "format": "xml"}
            )
            assert not resp["ok"]
            assert resp["error"]["code"] == "bad-request"

        with_server(scenario)

    def test_profile_verb_per_session_and_server_wide(self):
        async def scenario(server, reader, writer):
            sid = (await open_counter(reader, writer))["session"]
            await request(
                reader,
                writer,
                {
                    "id": 2,
                    "type": "transact",
                    "session": sid,
                    "ops": [{"op": "make", "class": "counter",
                             "attrs": {"n": 0, "limit": 3}}],
                    "max_cycles": 10,
                },
            )
            per = await request(
                reader, writer, {"id": 3, "type": "profile", "session": sid}
            )
            prof = per["profile"]
            assert prof["session"] == sid
            assert prof["match"]["node_activations"] > 0
            assert sum(prof["activations_by_kind"].values()) == (
                prof["match"]["node_activations"]
            )
            assert prof["counters"]["transactions"] == 1

            wide = await request(reader, writer, {"id": 4, "type": "profile"})
            assert sid in wide["sessions"]
            assert wide["netcache"]["entries"] == 1
            # The event bus is off in tests; the global obs profile is
            # present only when it is enabled.
            assert wide["obs_enabled"] is False
            assert "obs" not in wide

            missing = await request(
                reader, writer, {"id": 5, "type": "profile", "session": "s99"}
            )
            assert not missing["ok"]
            assert missing["error"]["code"] == "unknown-session"

        with_server(scenario)

    def test_dump_verb_returns_flight_snapshot(self):
        """The crash-time verb: a schema-valid flight-recorder snapshot
        plus event-bus health, with no tracing enabled anywhere."""
        from repro.obs.flight import validate_flight

        async def scenario(server, reader, writer):
            sid = (await open_counter(reader, writer))["session"]
            await request(
                reader,
                writer,
                {"id": 2, "type": "transact", "session": sid,
                 "ops": [{"op": "make", "class": "counter",
                          "attrs": {"n": 0, "limit": 3}}],
                 "max_cycles": 10},
            )
            resp = await request(reader, writer, {"id": 3, "type": "dump"})
            assert resp["ok"]
            assert validate_flight(resp["flight"]) == []
            assert resp["obs_enabled"] is False
            assert isinstance(resp["dropped_events"], int)
            # The transaction above left engine events in the ring.
            assert resp["flight"]["events"]

        with_server(scenario)

    def test_shutdown_request_drains_server(self):
        async def scenario(server, reader, writer):
            resp = await request(reader, writer, {"id": 1, "type": "shutdown"})
            assert resp["ok"] and resp["shutting_down"]

        with_server(scenario)


class TestErrors:
    def test_unknown_type_and_bad_json(self):
        async def scenario(server, reader, writer):
            resp = await request(reader, writer, {"id": 1, "type": "warp"})
            assert not resp["ok"] and resp["error"]["code"] == "bad-request"
            writer.write(b"{not json\n")
            await writer.drain()
            resp = json.loads(await reader.readline())
            assert not resp["ok"] and resp["error"]["code"] == "bad-request"
            # The connection survives both.
            assert (await request(reader, writer, {"id": 2, "type": "ping"}))["ok"]

        with_server(scenario)

    def test_unknown_session(self):
        async def scenario(server, reader, writer):
            resp = await request(
                reader, writer, {"id": 1, "type": "transact", "session": "s99"}
            )
            assert resp["error"]["code"] == "unknown-session"

        with_server(scenario)

    def test_unparsable_program(self):
        async def scenario(server, reader, writer):
            resp = await request(
                reader, writer, {"id": 1, "type": "open", "program": "(p broken"}
            )
            assert resp["error"]["code"] == "parse-error"

        with_server(scenario)

    def test_session_limit(self):
        async def scenario(server, reader, writer):
            assert (await open_counter(reader, writer))["ok"]
            resp = await open_counter(reader, writer)
            assert resp["error"]["code"] == "session-limit"
            assert resp["error"]["retry_after_ms"] == 50.0

        with_server(scenario, limits=ServiceLimits(max_sessions=1))

    def test_cycle_budget_over_cap_rejected(self):
        async def scenario(server, reader, writer):
            sid = (await open_counter(reader, writer))["session"]
            resp = await request(
                reader,
                writer,
                {"id": 2, "type": "transact", "session": sid, "max_cycles": 11},
            )
            assert resp["error"]["code"] == "budget-exceeded"
            assert "exceeds the server cap" in resp["error"]["message"]

        with_server(
            scenario,
            limits=ServiceLimits(max_cycles_per_txn=10, default_cycles_per_txn=5),
        )

    def test_txn_rejection_is_atomic_over_the_wire(self):
        async def scenario(server, reader, writer):
            sid = (await open_counter(reader, writer))["session"]
            resp = await request(
                reader,
                writer,
                {
                    "id": 2,
                    "type": "transact",
                    "session": sid,
                    "ops": [
                        {"op": "make", "class": "counter",
                         "attrs": {"n": 0, "limit": 5}},
                        {"op": "remove", "timetag": 404},
                    ],
                },
            )
            assert resp["error"]["code"] == "txn-rejected"
            resp = await request(
                reader,
                writer,
                {"id": 3, "type": "transact", "session": sid, "max_cycles": 0},
            )
            assert resp["ok"] and resp["wm_size"] == 0

        with_server(scenario)

    def test_deadline_outcome_over_the_wire(self):
        async def scenario(server, reader, writer):
            resp = await request(
                reader, writer, {"id": 1, "type": "open", "program": SPINNER}
            )
            sid = resp["session"]
            resp = await request(
                reader,
                writer,
                {
                    "id": 2,
                    "type": "transact",
                    "session": sid,
                    "ops": [{"op": "make", "class": "spin", "attrs": {"n": 0}}],
                    "max_cycles": 10_000,
                    "deadline_ms": 1,
                },
            )
            assert resp["ok"] and resp["outcome"] == "deadline"

        with_server(scenario)

    def test_bad_budget_types(self):
        async def scenario(server, reader, writer):
            sid = (await open_counter(reader, writer))["session"]
            for field, value in (("max_cycles", "ten"), ("deadline_ms", "soon")):
                resp = await request(
                    reader,
                    writer,
                    {"id": 2, "type": "transact", "session": sid, field: value},
                )
                assert resp["error"]["code"] == "bad-request"

        with_server(scenario)


class TestBackpressure:
    def test_inbox_overflow_reports_busy_on_the_wire(self):
        """Stage more transactions than the inbox holds in one batch —
        before the worker can drain — and the overflow must come back
        as ``busy`` + ``retry_after_ms``, while the accepted ones all
        complete."""

        async def scenario(server, reader, writer):
            sid = (await open_counter(reader, writer))["session"]
            session = server.sessions[sid]
            n = 6
            futs = []
            busy = 0
            # Submit in one synchronous burst: the worker gets no chance
            # to drain between submits, so the overflow is deterministic.
            for _ in range(n):
                try:
                    futs.append(session.submit([], max_cycles=0))
                except Busy as exc:
                    assert exc.retry_after_ms == server.limits.retry_after_ms
                    busy += 1
            assert busy == n - server.limits.inbox_depth
            assert server.limits.inbox_depth == len(futs)
            results = await asyncio.gather(*futs)
            assert all(r.outcome == "quiescent" for r in results)

        with_server(scenario, limits=ServiceLimits(inbox_depth=2))


class TestShutdownDrain:
    def test_shutdown_completes_queued_transactions(self):
        async def scenario(server, reader, writer):
            sid = (await open_counter(reader, writer))["session"]
            session = server.sessions[sid]
            futs = [
                session.submit(
                    [WMOp.make("counter", {"n": 0, "limit": 1})], 0, None
                ),
                session.submit([], 50, None),
            ]
            await server.shutdown()
            assert all(f.done() for f in futs)
            assert (await futs[1]).outcome == "halted"
            assert server.sessions == {}

        with_server(scenario)
