"""Load-generator tests, including the acceptance-scale concurrent run."""

import asyncio

import pytest

from repro.serve.loadgen import LoadReport, run_loadgen
from repro.serve.traffic import SCENARIOS, build

from .conftest import COUNTER


class TestTraffic:
    def test_deterministic_per_tuple(self):
        a = build("blocks", 3, 8, seed=1)
        b = build("blocks", 3, 8, seed=1)
        assert a.program == b.program
        assert a.txns == b.txns

    def test_sessions_differ_but_share_program(self):
        a = build("tourney", 0, 8)
        b = build("tourney", 1, 8)
        assert a.program == b.program  # one netcache entry per scenario
        assert a.txns != b.txns

    @pytest.mark.parametrize("scenario", [s for s in SCENARIOS if s != "mix"])
    def test_txn_counts_match_request(self, scenario):
        traffic = build(scenario, 2, 10)
        assert len(traffic.txns) == 10

    def test_unknown_scenario(self):
        with pytest.raises(ValueError):
            build("bogus", 0, 4)


class TestLoadgen:
    def test_acceptance_twenty_sessions_verified(self):
        """The issue's acceptance demo: >= 20 concurrent sessions over
        the cached blocks/tourney networks, zero protocol errors, and
        byte-identical firings against sequential replay."""
        report = asyncio.run(
            run_loadgen(
                scenario="mix", sessions=20, transactions=10,
                spawn=True, verify=True,
            )
        )
        assert report.ok
        assert report.errors == 0
        assert report.verified is True
        assert report.txns_ok == 200
        # blocks + tourney compiled once each, reused 18 times total.
        assert report.netcache["entries"] == 2
        assert report.netcache["misses"] == 2
        assert report.netcache["hits"] == 18
        text = report.format()
        assert "verify: 20/20 sessions byte-identical" in text
        assert "latency ms:" in text
        assert "throughput:" in text

    def test_monkey_scenario_verified(self):
        report = asyncio.run(
            run_loadgen(
                scenario="monkey", sessions=3, transactions=8,
                spawn=True, verify=True, seed=5,
            )
        )
        assert report.ok and report.verified is True
        assert report.outcomes  # budget-0 ingestion + budgeted stepping

    def test_program_file_traffic(self):
        report = asyncio.run(
            run_loadgen(
                sessions=2, transactions=3, spawn=True, verify=True,
                program_source=COUNTER,
            )
        )
        assert report.ok and report.scenario == "file"

    def test_report_ok_logic(self):
        assert LoadReport("s", 1, 1).ok
        assert not LoadReport("s", 1, 1, errors=1).ok
        assert not LoadReport("s", 1, 1, verified=False).ok
        assert LoadReport("s", 1, 1, verified=True).ok

    def test_zero_transactions_reports_no_samples(self):
        """Zero completed transactions must yield an explicit "no
        samples" marker, not fabricated percentiles."""
        report = LoadReport("s", 2, 5)
        text = report.format()
        assert "latency: no samples" in text
        assert "p50" not in text
        assert report.latency == {}

    def test_trace_out_writes_valid_chrome_trace(self, tmp_path):
        import json

        from repro.obs import events
        from repro.obs.export import validate_chrome_trace

        path = tmp_path / "loadgen-trace.json"
        report = asyncio.run(
            run_loadgen(
                scenario="blocks", sessions=2, transactions=3,
                spawn=True, trace_path=str(path),
            )
        )
        assert report.ok
        assert events.enabled() is False  # bus switched off afterwards
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == []
        names = {
            e["name"] for e in doc["traceEvents"] if e.get("ph") == "X"
        }
        assert "txn" in names  # client-side transaction spans
        assert "wm_change" in names  # in-process server engine spans

    def test_shutdown_after_stops_spawned_server(self):
        report = asyncio.run(
            run_loadgen(
                scenario="monkey", sessions=2, transactions=3,
                spawn=True, shutdown_after=True,
            )
        )
        assert report.ok
