"""LatencyWindow percentile boundaries and the shared nearest-rank
helper (the issue's satellite: p=0, p=100, single sample, window
wrap-around, and out-of-range validation)."""

import pytest

from repro.serve.metrics import LatencyWindow, nearest_rank


class TestNearestRank:
    def test_known_values(self):
        ordered = [1.0, 2.0, 3.0, 4.0]
        assert nearest_rank(ordered, 50) == 2.0
        assert nearest_rank(ordered, 75) == 3.0
        assert nearest_rank(ordered, 76) == 4.0

    def test_p0_is_minimum(self):
        assert nearest_rank([1.0, 2.0, 3.0], 0) == 1.0

    def test_p100_is_maximum(self):
        assert nearest_rank([1.0, 2.0, 3.0], 100) == 3.0

    def test_single_sample_every_percentile(self):
        for p in (0, 1, 50, 99, 100):
            assert nearest_rank([7.0], p) == 7.0

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            nearest_rank([1.0], -1)
        with pytest.raises(ValueError):
            nearest_rank([1.0], 100.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            nearest_rank([], 50)


class TestLatencyWindow:
    def test_empty_window_is_zero(self):
        win = LatencyWindow()
        assert win.percentile(50) == 0.0
        assert win.summary()["count"] == 0
        assert win.summary()["window"] == 0

    def test_empty_window_still_validates_p(self):
        with pytest.raises(ValueError):
            LatencyWindow().percentile(101)

    def test_out_of_range_raises(self):
        win = LatencyWindow()
        win.record(1.0)
        with pytest.raises(ValueError):
            win.percentile(-5)
        with pytest.raises(ValueError):
            win.percentile(200)

    def test_single_sample(self):
        win = LatencyWindow()
        win.record(0.25)
        assert win.percentile(0) == 0.25
        assert win.percentile(50) == 0.25
        assert win.percentile(100) == 0.25

    def test_p0_and_p100_bounds(self):
        win = LatencyWindow()
        for v in (0.3, 0.1, 0.2):
            win.record(v)
        assert win.percentile(0) == 0.1
        assert win.percentile(100) == 0.3

    def test_window_wrap_around_evicts_oldest(self):
        win = LatencyWindow(capacity=4)
        for v in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0):
            win.record(v)
        # Ring holds the last 4 samples: 3, 4, 5, 6.
        assert win.window_size == 4
        assert win.percentile(0) == 3.0
        assert win.percentile(100) == 6.0
        assert win.count == 6  # lifetime count keeps the full history

    def test_summary_mean_uses_lifetime_total(self):
        win = LatencyWindow(capacity=2)
        for v in (1.0, 1.0, 4.0):
            win.record(v)
        summary = win.summary()
        assert summary["count"] == 3
        assert summary["window"] == 2
        assert summary["mean_ms"] == pytest.approx(2000.0)
