"""Wire-format tests: framing, op validation, firings encoding."""

import json

import pytest

from repro.ops5.interpreter import Firing, WMOp
from repro.serve.protocol import (
    E_BAD_REQUEST,
    ProtocolError,
    decode_line,
    encode,
    error_response,
    firings_to_wire,
    ok_response,
    ops_from_wire,
    ops_to_wire,
)


class TestFraming:
    def test_encode_is_one_compact_line(self):
        raw = encode({"id": 1, "type": "ping"})
        assert raw.endswith(b"\n")
        assert raw.count(b"\n") == 1
        assert b" " not in raw  # compact separators

    def test_roundtrip(self):
        msg = {"id": 7, "type": "transact", "ops": []}
        assert decode_line(encode(msg)) == msg

    def test_invalid_json_is_protocol_error(self):
        with pytest.raises(ProtocolError) as exc:
            decode_line(b"{nope\n")
        assert exc.value.code == E_BAD_REQUEST

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError):
            decode_line(b"[1,2,3]\n")

    def test_error_response_carries_retry_after(self):
        resp = error_response(3, "busy", "full", retry_after_ms=50.0)
        assert resp["ok"] is False
        assert resp["error"]["retry_after_ms"] == 50.0
        assert "retry_after_ms" not in error_response(3, "busy", "full")["error"]

    def test_ok_response_echoes_id(self):
        assert ok_response(9, pong=True) == {"id": 9, "ok": True, "pong": True}


class TestOpsFromWire:
    def test_make_remove_modify(self):
        ops = ops_from_wire(
            [
                {"op": "make", "class": "a", "attrs": {"x": 1}},
                {"op": "remove", "timetag": 4},
                {"op": "modify", "timetag": 5, "attrs": {"x": "y"}},
            ]
        )
        assert ops == [
            WMOp.make("a", {"x": 1}),
            WMOp.remove(4),
            WMOp.modify(5, {"x": "y"}),
        ]

    def test_none_means_no_ops(self):
        assert ops_from_wire(None) == []

    @pytest.mark.parametrize(
        "bad",
        [
            "not-a-list",
            [42],
            [{"op": "explode"}],
            [{"op": "make"}],  # no class
            [{"op": "make", "class": ""}],
            [{"op": "remove", "timetag": "four"}],
            [{"op": "remove", "timetag": True}],  # bool is not a timetag
            [{"op": "modify", "timetag": 1, "attrs": {"x": True}}],
            [{"op": "make", "class": "a", "attrs": {"x": [1]}}],
            [{"op": "make", "class": "a", "attrs": "nope"}],
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ProtocolError) as exc:
            ops_from_wire(bad)
        assert exc.value.code == E_BAD_REQUEST

    def test_wire_roundtrip(self):
        ops = [
            WMOp.make("block", {"on": "table", "n": 3}),
            WMOp.remove(9),
            WMOp.modify(2, {"n": 4}),
        ]
        assert ops_from_wire(ops_to_wire(ops)) == ops


class TestFiringsToWire:
    def test_canonical_triples(self):
        wire = firings_to_wire(
            [Firing(cycle=3, production="p1", timetags=(4, 5))]
        )
        assert wire == [[3, "p1", [4, 5]]]
        # Must be JSON-stable: the loadgen byte-compares this form.
        assert json.dumps(wire) == json.dumps([[3, "p1", [4, 5]]])
