"""SessionCore and Session tests: atomic transactions, budgets,
deadlines, backpressure, and drain."""

import asyncio

import pytest

from repro.ops5.interpreter import TransactionError, WMOp
from repro.serve.limits import BudgetError, ServiceLimits
from repro.serve.session import Busy, Session, SessionCore


def make(entry, **kwargs):
    return SessionCore("s-test", entry, **kwargs)


class TestTransactions:
    def test_budget_zero_is_pure_ingestion(self, counter_entry):
        core = make(counter_entry)
        result = core.transact(
            [WMOp.make("counter", {"n": 0, "limit": 3})], max_cycles=0
        )
        assert result.outcome == "exhausted"  # work waiting, none done
        assert result.cycles == 0
        assert result.firings == []
        assert result.wm_size == 1
        assert len(result.created) == 1

    def test_resumable_slices_reach_halt(self, counter_entry):
        core = make(counter_entry)
        core.transact([WMOp.make("counter", {"n": 0, "limit": 5})], max_cycles=0)
        outcomes = []
        for _ in range(3):
            outcomes.append(core.transact([], max_cycles=2).outcome)
        assert outcomes == ["exhausted", "exhausted", "halted"]
        assert core.interp.output[-1] == "done 5"

    def test_created_timetags_address_later_ops(self, counter_entry):
        core = make(counter_entry)
        r1 = core.transact(
            [WMOp.make("counter", {"n": 0, "limit": 9})], max_cycles=0
        )
        tag = r1.created[0]
        r2 = core.transact([WMOp.modify(tag, {"n": 9})], max_cycles=1)
        assert r2.outcome == "halted"

    def test_atomicity_bad_op_mutates_nothing(self, counter_entry):
        core = make(counter_entry)
        with pytest.raises(TransactionError):
            core.transact(
                [
                    WMOp.make("counter", {"n": 0, "limit": 3}),
                    WMOp.remove(999),  # no such timetag
                ],
                max_cycles=5,
            )
        assert core.wm_size == 0
        assert core.counters.transactions == 0
        assert core.counters.errors == 1

    def test_double_remove_in_one_txn_rejected(self, counter_entry):
        core = make(counter_entry)
        tag = core.transact(
            [WMOp.make("counter", {"n": 0, "limit": 3})], max_cycles=0
        ).created[0]
        with pytest.raises(TransactionError):
            core.transact([WMOp.remove(tag), WMOp.remove(tag)], max_cycles=0)
        assert core.wm_size == 1  # first remove rolled back too


class TestBudgets:
    def test_over_cap_cycles_rejected_not_clamped(self, counter_entry):
        limits = ServiceLimits(max_cycles_per_txn=10, default_cycles_per_txn=5)
        core = make(counter_entry, limits=limits)
        with pytest.raises(BudgetError):
            core.transact([], max_cycles=11)
        assert core.counters.rejected_budget == 1
        assert core.counters.transactions == 0

    def test_over_cap_deadline_rejected(self, counter_entry):
        core = make(counter_entry)
        with pytest.raises(BudgetError):
            core.transact([], deadline_ms=10 * 60 * 1000)

    def test_negative_budget_rejected(self, counter_entry):
        core = make(counter_entry)
        with pytest.raises(BudgetError):
            core.transact([], max_cycles=-1)

    def test_too_many_ops_rejected(self, counter_entry):
        limits = ServiceLimits(max_ops_per_txn=2)
        core = make(counter_entry, limits=limits)
        ops = [WMOp.make("counter", {"n": i, "limit": 0}) for i in range(3)]
        with pytest.raises(BudgetError):
            core.transact(ops, max_cycles=0)
        assert core.wm_size == 0

    def test_deadline_stops_a_spinner(self, spinner_entry):
        core = make(spinner_entry)
        core.transact([WMOp.make("spin", {"n": 0})], max_cycles=0)
        result = core.transact([], max_cycles=10_000, deadline_ms=1)
        assert result.outcome == "deadline"
        assert result.cycles < 10_000

    def test_budget_isolates_a_spinner(self, spinner_entry):
        core = make(spinner_entry)
        core.transact([WMOp.make("spin", {"n": 0})], max_cycles=0)
        result = core.transact([], max_cycles=7)
        assert result.outcome == "exhausted"
        assert result.cycles == 7


class TestCounters:
    def test_counters_accumulate(self, counter_entry):
        core = make(counter_entry)
        core.transact([WMOp.make("counter", {"n": 0, "limit": 2})], max_cycles=0)
        core.transact([], max_cycles=100)
        snap = core.counters.snapshot()
        assert snap["transactions"] == 2
        assert snap["cycles"] == 3  # two ticks + done
        assert snap["firings"] == 3
        assert snap["wm_ops"] == 1
        assert snap["outcomes"] == {"exhausted": 1, "halted": 1}
        assert snap["latency"]["count"] == 2


class TestAsyncSession:
    def test_full_inbox_raises_busy_with_retry_after(self, counter_entry):
        limits = ServiceLimits(inbox_depth=2, retry_after_ms=25.0)

        async def scenario():
            session = Session(SessionCore("s1", counter_entry, limits=limits))
            # No worker started: submissions queue up until the inbox
            # is full, then backpressure kicks in.
            futs = [session.submit([], max_cycles=0) for _ in range(2)]
            with pytest.raises(Busy) as exc:
                session.submit([], max_cycles=0)
            assert exc.value.retry_after_ms == 25.0
            assert session.core.counters.rejected_busy == 1
            assert session.queue_depth == 2
            # Start the worker: queued work drains and futures resolve.
            session.start()
            results = await asyncio.gather(*futs)
            assert [r.outcome for r in results] == ["quiescent", "quiescent"]
            await session.drain()

        asyncio.run(scenario())

    def test_submit_order_is_execution_order(self, counter_entry):
        async def scenario():
            session = Session(SessionCore("s1", counter_entry))
            session.start()
            f1 = session.submit(
                [WMOp.make("counter", {"n": 0, "limit": 2})], max_cycles=0
            )
            f2 = session.submit([], max_cycles=100)
            r1, r2 = await asyncio.gather(f1, f2)
            assert r1.outcome == "exhausted"
            assert r2.outcome == "halted"
            await session.drain()

        asyncio.run(scenario())

    def test_drain_finishes_queued_work(self, counter_entry):
        async def scenario():
            session = Session(SessionCore("s1", counter_entry))
            futs = [
                session.submit(
                    [WMOp.make("counter", {"n": 0, "limit": 1})], max_cycles=0
                ),
                session.submit([], max_cycles=50),
            ]
            session.start()
            await session.drain()
            assert all(f.done() for f in futs)
            assert (await futs[1]).outcome == "halted"
            with pytest.raises(Busy):
                session.submit([], max_cycles=0)  # closed for business

        asyncio.run(scenario())

    def test_failed_txn_resolves_future_and_keeps_worker(self, counter_entry):
        async def scenario():
            session = Session(SessionCore("s1", counter_entry))
            session.start()
            bad = session.submit([WMOp.remove(42)], max_cycles=0)
            good = session.submit([], max_cycles=0)
            with pytest.raises(TransactionError):
                await bad
            assert (await good).outcome == "quiescent"
            await session.drain()

        asyncio.run(scenario())
