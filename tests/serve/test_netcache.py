"""Network-cache tests: content keys, reuse, and error paths."""

import pytest

from repro.ops5.errors import Ops5Error
from repro.rete.network import ReteNetwork
from repro.serve.netcache import NetworkCache

from .conftest import COUNTER, SPINNER


class TestCompileKey:
    def test_deterministic(self):
        assert ReteNetwork.compile_key(COUNTER) == ReteNetwork.compile_key(COUNTER)

    def test_mode_distinguishes(self):
        assert ReteNetwork.compile_key(COUNTER, "compiled") != ReteNetwork.compile_key(
            COUNTER, "interpreted"
        )

    def test_source_distinguishes(self):
        assert ReteNetwork.compile_key(COUNTER) != ReteNetwork.compile_key(SPINNER)

    def test_crlf_normalized(self):
        assert ReteNetwork.compile_key(COUNTER.replace("\n", "\r\n")) == (
            ReteNetwork.compile_key(COUNTER)
        )


class TestCache:
    def test_compile_once(self):
        cache = NetworkCache()
        entry1, cached1 = cache.get(COUNTER)
        entry2, cached2 = cache.get(COUNTER)
        assert not cached1 and cached2
        assert entry1 is entry2
        assert entry1.network is entry2.network
        assert cache.hits == 1 and cache.misses == 1
        assert len(cache) == 1
        assert entry1.sessions_served == 2

    def test_network_carries_its_key(self):
        cache = NetworkCache()
        entry, _ = cache.get(COUNTER)
        assert entry.network.key == entry.key == ReteNetwork.compile_key(COUNTER)

    def test_distinct_programs_distinct_entries(self):
        cache = NetworkCache()
        e1, _ = cache.get(COUNTER)
        e2, _ = cache.get(SPINNER)
        assert e1.key != e2.key
        assert len(cache) == 2

    def test_rhs_table_covers_all_productions(self):
        cache = NetworkCache()
        entry, _ = cache.get(COUNTER)
        assert set(entry.rhs_table) == {"tick", "done"}

    def test_bad_program_caches_nothing(self):
        cache = NetworkCache()
        with pytest.raises(Ops5Error):
            cache.get("(p broken")
        assert len(cache) == 0
        assert cache.misses == 0

    def test_peek_does_not_compile(self):
        cache = NetworkCache()
        assert cache.peek(COUNTER) is None
        cache.get(COUNTER)
        assert cache.peek(COUNTER) is not None

    def test_stats_shape(self):
        cache = NetworkCache()
        entry, _ = cache.get(COUNTER)
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["programs"][entry.key[:12]]["productions"] == 2
