"""Shared programs and helpers for the service-layer tests.

No pytest-asyncio in the toolchain: every async test drives its own
event loop via ``asyncio.run`` inside a plain synchronous test.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.netcache import NetworkCache
from repro.serve.protocol import decode_line, encode

#: A bounded counter: ticks until n reaches limit, then halts.
COUNTER = """
(literalize counter n limit)
(p tick
  (counter ^n <n> ^limit > <n>)
  -->
  (modify 1 ^n (compute <n> + 1))
  (write tick <n>))
(p done
  (counter ^n <n> ^limit <n>)
  -->
  (write done <n>)
  (halt))
"""

#: An endless spinner (never halts, never quiesces) for budget and
#: deadline tests.
SPINNER = """
(literalize spin n)
(p spin
  (spin ^n <n>)
  -->
  (modify 1 ^n (compute <n> + 1)))
"""


@pytest.fixture
def cache():
    return NetworkCache()


@pytest.fixture
def counter_entry(cache):
    entry, _cached = cache.get(COUNTER)
    return entry


@pytest.fixture
def spinner_entry(cache):
    entry, _cached = cache.get(SPINNER)
    return entry


async def request(reader, writer, msg):
    """One request/response round-trip on a raw stream pair."""
    writer.write(encode(msg))
    await writer.drain()
    line = await reader.readline()
    assert line, "server closed the connection"
    return decode_line(line)


def with_server(coro_fn, limits=None):
    """Run ``coro_fn(server, reader, writer)`` against a fresh server
    on an ephemeral port, with guaranteed shutdown."""
    from repro.serve.server import ReproServer

    async def runner():
        server = ReproServer(limits=limits)
        host, port = await server.start()
        reader, writer = await asyncio.open_connection(host, port)
        try:
            return await coro_fn(server, reader, writer)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            await server.shutdown()

    return asyncio.run(runner())
