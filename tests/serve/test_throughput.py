"""Smoke test for the service-throughput harness experiment."""

from repro.harness.experiments import ALL_TABLES
from repro.harness.serve_throughput import serve_throughput


def test_serve_throughput_smoke():
    result = serve_throughput(
        session_counts=(1, 2), transactions=4, scenarios=("blocks",)
    )
    assert result.table_id == "serve-throughput"
    assert set(result.data) == {("blocks", 1), ("blocks", 2)}
    for entry in result.data.values():
        assert entry["errors"] == 0
        assert entry["txn_s"] > 0
    assert "Service throughput" in result.report
    assert "txn/s" in result.report


def test_not_in_paper_tables():
    # Wall-clock throughput is machine-dependent; `repro tables` output
    # must stay reproducible, so this experiment is opt-in only.
    assert "serve-throughput" not in ALL_TABLES
