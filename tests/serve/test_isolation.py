"""Session-isolation property: interleaved transactions from K sessions
over one cached network produce exactly the firings of K sequential
single-session runs.

This is the service-layer analogue of the parallel engine's "same
conflict set as sequential" invariant: if shared compiled networks
leaked any per-run state between sessions (token memories, refraction
marks, timetags), some interleaving would diverge.
"""

from hypothesis import given, settings, strategies as st

from repro.serve.netcache import NetworkCache
from repro.serve.protocol import firings_to_wire
from repro.serve.session import SessionCore
from repro.serve.traffic import build

N_TXNS = 4


def _interleaved(traffics, schedule):
    """Run every session's txns on cores sharing ONE cache/network,
    in the given global order; firings grouped per session."""
    cache = NetworkCache()
    cores = [
        SessionCore(f"i{i}", cache.get(t.program)[0])
        for i, t in enumerate(traffics)
    ]
    fired = [[] for _ in traffics]
    cursor = [0] * len(traffics)
    try:
        for i in schedule:
            txn = traffics[i].txns[cursor[i]]
            cursor[i] += 1
            result = cores[i].transact(list(txn.ops), max_cycles=txn.max_cycles)
            fired[i].extend(firings_to_wire(result.firings))
    finally:
        for core in cores:
            core.close()
    return fired


def _sequential(traffic, index):
    """One session's txns alone on a private cache/network."""
    cache = NetworkCache()
    core = SessionCore(f"q{index}", cache.get(traffic.program)[0])
    fired = []
    try:
        for txn in traffic.txns:
            result = core.transact(list(txn.ops), max_cycles=txn.max_cycles)
            fired.extend(firings_to_wire(result.firings))
    finally:
        core.close()
    return fired


@given(
    seed=st.integers(0, 10_000),
    scenarios=st.lists(
        st.sampled_from(["blocks", "tourney", "monkey"]), min_size=2, max_size=4
    ),
    data=st.data(),
)
@settings(max_examples=15, deadline=None)
def test_interleaved_equals_sequential(seed, scenarios, data):
    traffics = [
        build(scenario, i, N_TXNS, seed) for i, scenario in enumerate(scenarios)
    ]
    base = [i for i in range(len(traffics)) for _ in range(N_TXNS)]
    schedule = data.draw(st.permutations(base))
    interleaved = _interleaved(traffics, schedule)
    for i, traffic in enumerate(traffics):
        assert interleaved[i] == _sequential(traffic, i), (
            f"session {i} ({traffic.scenario}) diverged under interleaving"
        )


def test_same_program_sessions_do_not_share_refraction():
    """Two sessions on the SAME cache entry fire the same production
    independently — refraction state must be per-session."""
    cache = NetworkCache()
    traffic = build("monkey", 0, 6, seed=3)
    entry, _ = cache.get(traffic.program)
    a = SessionCore("a", entry)
    b = SessionCore("b", entry)
    try:
        fired_a, fired_b = [], []
        for txn in traffic.txns:  # strict alternation a, b, a, b ...
            ra = a.transact(list(txn.ops), max_cycles=txn.max_cycles)
            rb = b.transact(list(txn.ops), max_cycles=txn.max_cycles)
            fired_a.extend(firings_to_wire(ra.firings))
            fired_b.extend(firings_to_wire(rb.firings))
        assert fired_a == fired_b
        assert fired_a  # the monkey actually did something
    finally:
        a.close()
        b.close()
