"""Unit tests for conjugate-pair handling (extra-deletes lists)."""

import pytest

from repro.ops5.wme import WME
from repro.parallel.conjugate import ConjugateMemory
from repro.rete.memories import HashMemorySystem
from repro.rete.token import Token


def tok(tag: int) -> Token:
    return Token.single(WME.make("c", {}, tag))


@pytest.fixture
def memory() -> ConjugateMemory:
    return ConjugateMemory(HashMemorySystem(n_lines=16))


class TestConjugatePairs:
    def test_normal_order_passthrough(self, memory):
        t = tok(1)
        assert memory.insert(1, "L", (), t) is True
        found, _ = memory.remove(1, "L", (), t.key)
        assert found is t
        assert memory.pending_deletes == 0

    def test_early_delete_parks(self, memory):
        found, examined = memory.remove(1, "L", (), (7,))
        assert found is None
        assert memory.pending_deletes == 1
        assert memory.parked_total == 1

    def test_add_annihilates_parked_delete(self, memory):
        memory.remove(1, "L", (), (7,))
        live = memory.insert(1, "L", (), tok(7))
        assert live is False
        assert memory.annihilations == 1
        assert memory.pending_deletes == 0
        # And nothing was actually stored.
        assert memory.side_size(1, "L") == 0

    def test_unrelated_add_not_annihilated(self, memory):
        memory.remove(1, "L", (), (7,))
        assert memory.insert(1, "L", (), tok(8)) is True
        assert memory.pending_deletes == 1

    def test_parking_scoped_by_node_side_key(self, memory):
        memory.remove(1, "L", (), (7,))
        # Same token key but different node: stores normally.
        assert memory.insert(2, "L", (), tok(7)) is True
        # Different side: stores normally.
        assert memory.insert(1, "R", (), tok(7)) is True
        assert memory.pending_deletes == 1

    def test_double_park_double_annihilate(self, memory):
        memory.remove(1, "L", (), (7,))
        memory.remove(1, "L", (), (7,))
        assert memory.pending_deletes == 2
        assert memory.insert(1, "L", (), tok(7)) is False
        assert memory.insert(1, "L", (), tok(7)) is False
        assert memory.pending_deletes == 0

    def test_clear_resets_parked(self, memory):
        memory.remove(1, "L", (), (7,))
        memory.clear()
        assert memory.pending_deletes == 0

    def test_passthrough_surface(self, memory):
        t = tok(3)
        memory.insert(4, "R", ("k",), t)
        items, examined = memory.lookup_opposite(4, "L", ("k",))
        assert list(items) == [t]
        assert memory.side_size(4, "R") == 1
        assert memory.total_tokens() == 1
        assert isinstance(memory.line_of(4, ("k",)), int)
        assert memory.kind == "hash"
