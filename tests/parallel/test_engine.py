"""Integration tests for the threaded parallel match engine.

Correctness criterion (DESIGN.md): identical program behaviour to the
sequential matcher under real thread interleavings, for every worker
count, queue count, and lock scheme.
"""

import pytest

from repro.ops5.interpreter import Interpreter
from repro.ops5.parser import parse_program
from repro.parallel.engine import ParallelMatcher
from repro.programs import blocks, tourney
from repro.rete.network import ReteNetwork
from tests.conftest import FIND_COLORED_BLOCK


def parallel_interp(source: str, **kw) -> Interpreter:
    program = parse_program(source)
    network = ReteNetwork.compile(program)
    matcher = ParallelMatcher(network, **kw)
    return Interpreter(program, matcher=matcher)


class TestAgainstSequential:
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_figure_2_1(self, n_workers):
        sequential = Interpreter(FIND_COLORED_BLOCK).run()
        with parallel_interp(FIND_COLORED_BLOCK, n_workers=n_workers) as interp:
            result = interp.run()
        assert sorted(result.output) == sorted(sequential.output)

    @pytest.mark.parametrize("n_queues", [1, 3])
    @pytest.mark.parametrize("lock_scheme", ["simple", "mrsw"])
    def test_blocks_world(self, n_queues, lock_scheme):
        src = blocks.source(
            blocks=(("a", "table"), ("b", "a"), ("c", "b"), ("d", "table")),
            goals=(("c", "d"), ("a", "c")),
        )
        sequential = Interpreter(src).run()
        with parallel_interp(
            src, n_workers=3, n_queues=n_queues, lock_scheme=lock_scheme
        ) as interp:
            result = interp.run()
        assert result.output == sequential.output
        assert result.halted == sequential.halted

    def test_tourney_small(self):
        src = tourney.source(n_teams=6, n_rounds=7)
        sequential = Interpreter(src).run(max_cycles=2000)
        with parallel_interp(src, n_workers=3, n_queues=2) as interp:
            result = interp.run(max_cycles=2000)
        assert result.output[-1] == sequential.output[-1] == "scheduled 15 matches"


class TestEngineMechanics:
    def test_stats_aggregate_across_workers(self):
        with parallel_interp(FIND_COLORED_BLOCK, n_workers=2) as interp:
            interp.run()
            stats = interp.matcher.stats
        assert stats.wme_changes == 8
        assert stats.node_activations > 0

    def test_queue_and_line_lock_stats_exposed(self):
        with parallel_interp(FIND_COLORED_BLOCK, n_workers=2) as interp:
            interp.run()
            assert interp.matcher.queue_lock_stats().acquisitions > 0
            assert interp.matcher.line_lock_stats().acquisitions > 0

    def test_close_idempotent(self):
        interp = parallel_interp(FIND_COLORED_BLOCK, n_workers=1)
        interp.run()
        interp.close()
        interp.close()

    def test_process_changes_after_close_raises(self):
        interp = parallel_interp(FIND_COLORED_BLOCK, n_workers=1)
        interp.close()
        with pytest.raises(RuntimeError):
            interp.matcher.process_changes([])

    def test_requires_at_least_one_worker(self):
        network = ReteNetwork.compile(parse_program("(p r (a) --> (halt))"))
        with pytest.raises(ValueError):
            ParallelMatcher(network, n_workers=0)

    def test_no_pending_conjugate_deletes_after_batches(self):
        with parallel_interp(FIND_COLORED_BLOCK, n_workers=3, n_queues=2) as interp:
            interp.run()
            assert interp.matcher.memory.pending_deletes == 0

    def test_worker_failure_propagates(self):
        # Force a failure by corrupting the network after construction.
        program = parse_program("(p r (a ^x <v>) (b ^y <v>) --> (halt))")
        network = ReteNetwork.compile(program)
        matcher = ParallelMatcher(network, n_workers=1)
        join = network.two_input_nodes()[0]
        join.tests_fn = None  # worker will raise TypeError
        interp = Interpreter(program, matcher=matcher)
        with pytest.raises(RuntimeError):
            interp.add_wme("a", {"x": 1})
            interp.add_wme("b", {"y": 1})


class TestWatchdog:
    def build(self, **kw):
        network = ReteNetwork.compile(parse_program(FIND_COLORED_BLOCK))
        return ParallelMatcher(network, **kw)

    def test_watchdog_enables_holder_tracking_while_attached(self):
        from repro.parallel import locks

        assert not locks.HOLDER_TRACKING
        matcher = self.build(n_workers=1, watchdog_s=600.0)
        try:
            assert matcher.watchdog is not None
            assert locks.HOLDER_TRACKING
        finally:
            matcher.close()
        assert not locks.HOLDER_TRACKING

    def test_probe_reports_queues_taskcount_and_liveness(self):
        matcher = self.build(n_workers=2, n_queues=3, watchdog_s=600.0)
        try:
            sample = matcher._watchdog_probe()
            names = [name for name, _depth in sample.queues]
            assert names == ["queue[0]", "queue[1]", "queue[2]", "taskcount"]
            assert sample.extra["workers_alive"] == 2
            assert sample.extra["failures"] == 0
        finally:
            matcher.close()

    def test_forced_stall_trips_with_schema_valid_bundle(self, tmp_path):
        """The acceptance fixture on the real engine: park a phantom
        task on TaskCount (pending work no worker can ever drain) and
        the watchdog must trip within ~stall_after_s, writing a bundle
        that validates and names the stuck counter."""
        import json
        import time as _time

        from repro.obs.watchdog import validate_bundle

        path = tmp_path / "stall.json"
        matcher = self.build(
            n_workers=2, watchdog_s=0.1, watchdog_dump=str(path)
        )
        try:
            matcher.taskcount.increment()  # never decremented: a stall
            deadline = _time.monotonic() + 10.0
            while not matcher.watchdog.tripped and _time.monotonic() < deadline:
                _time.sleep(0.02)
            assert matcher.watchdog.tripped
            assert matcher.watchdog.trips == 1  # one bundle per episode
            bundle = matcher.watchdog.bundles[0]
            assert validate_bundle(bundle) == []
            assert bundle["engine"] == "threaded"
            assert bundle["stuck_queue"] == "taskcount"
            doc = json.loads(path.read_text())
            assert validate_bundle(doc) == []
        finally:
            matcher.taskcount.decrement()
            matcher.close()

    def test_healthy_run_never_trips(self):
        program = parse_program(FIND_COLORED_BLOCK)
        network = ReteNetwork.compile(program)
        matcher = ParallelMatcher(network, n_workers=2, watchdog_s=0.2)
        interp = Interpreter(program, matcher=matcher)
        try:
            interp.run()
            assert matcher.tasks_done > 0
        finally:
            interp.close()
        assert not matcher.watchdog.tripped
