"""Property and unit tests for the dispatch/placement policy registry.

The policy contract has two halves, and each gets its own invariants:

* **Placement** (``place_lines``, consumed pre-fork by the mp shard
  map): must *partition* — every line exactly one owner, every owner
  in range — for any ``(n_lines, n_workers)``, or a token line would
  be orphaned or double-owned across processes.
* **Dispatch** (``home_for``, consumed per-push by the threaded task
  queues): must return an in-range queue for any observable queue
  state, and must conserve work — whatever a policy does to *where*
  tasks go, every pushed task is popped exactly once and the steal
  counters account for exactly the pops that left their home queue.

Plus the registry plumbing itself: unknown names fail loudly, policy
instances pass through, and the safe-queue matrix covers the registry.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.parallel.policy import (
    POLICY_NAMES,
    SAFE_QUEUE_MATRIX,
    Policy,
    make_policy,
    safe_queues,
)
from repro.parallel.taskqueue import TaskQueueSet

_n_lines = st.integers(min_value=1, max_value=2048)
_n_workers = st.integers(min_value=1, max_value=9)
_policy_names = st.sampled_from(POLICY_NAMES)


class TestPlacementPartitions:
    @given(policy=_policy_names, n_lines=_n_lines, n_workers=_n_workers)
    @settings(max_examples=200, deadline=None)
    def test_every_line_exactly_one_owner_in_range(
        self, policy, n_lines, n_workers
    ):
        owners = make_policy(policy).place_lines(n_lines, n_workers)
        assert len(owners) == n_lines
        assert all(0 <= o < n_workers for o in owners)

    @given(policy=_policy_names, n_lines=_n_lines, n_workers=_n_workers)
    @settings(max_examples=100, deadline=None)
    def test_placement_is_pure(self, policy, n_lines, n_workers):
        """Placement is baked into every worker process pre-fork; if it
        were stateful the processes could disagree on ownership."""
        a = make_policy(policy).place_lines(n_lines, n_workers)
        b = make_policy(policy).place_lines(n_lines, n_workers)
        assert a == b

    @given(n_lines=_n_lines, n_workers=_n_workers)
    @settings(max_examples=100, deadline=None)
    def test_placements_stay_balanced(self, n_lines, n_workers):
        """Both placement shapes (interleaved and blocked) keep worker
        loads within one line of each other — repartitioning to any
        worker count never concentrates lines."""
        for policy in POLICY_NAMES:
            owners = make_policy(policy).place_lines(n_lines, n_workers)
            counts = [owners.count(w) for w in range(n_workers)]
            assert max(counts) - min(counts) <= 1, policy


class TestDispatchConservesWork:
    @given(
        policy=_policy_names,
        n_queues=st.integers(min_value=1, max_value=5),
        n_workers=st.integers(min_value=1, max_value=4),
        tasks=st.lists(
            st.tuples(
                st.one_of(st.none(), st.integers(min_value=0, max_value=63)),
                st.one_of(st.none(), st.integers(min_value=0, max_value=3)),
            ),
            max_size=60,
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_no_task_dropped_or_duplicated(
        self, policy, n_queues, n_workers, tasks
    ):
        """Drive a real TaskQueueSet through an arbitrary (line, pusher)
        push sequence and a stealing drain: every task must come back
        exactly once, and the counters must balance."""
        pol = make_policy(policy)
        queues = TaskQueueSet(n_queues=n_queues)
        for seq, (line, pusher) in enumerate(tasks):
            pusher_id = None if pusher is None else pusher % n_workers
            home = pol.home_for(line, pusher_id, seq, queues.views)
            assert 0 <= home < n_queues
            queues.push(("task", seq), home=home)
        popped = []
        for i in range(len(tasks)):
            task = queues.pop(home=i % n_queues, steal=pol.steals)
            assert task is not None, "a pushed task was dropped"
            popped.append(task[1])
        assert sorted(popped) == list(range(len(tasks)))
        assert queues.pushed == queues.popped == len(tasks)
        assert 0 <= queues.stolen <= queues.popped
        assert len(queues) == 0

    @given(
        n_queues=st.integers(min_value=1, max_value=5),
        n_tasks=st.integers(min_value=0, max_value=40),
        home=st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=100, deadline=None)
    def test_steal_counter_counts_exactly_the_strays(
        self, n_queues, n_tasks, home
    ):
        """Push everything to one queue, drain from one (possibly
        different) home: the stolen counter must equal the pops that
        came from a non-home queue — no more, no less."""
        queues = TaskQueueSet(n_queues=n_queues)
        victim = home % n_queues
        for i in range(n_tasks):
            queues.push(("task", i), home=victim)
        drain_home = (victim + 1) % n_queues
        for _ in range(n_tasks):
            assert queues.pop(home=drain_home, steal=True)
        expected = 0 if drain_home == victim else n_tasks
        assert queues.stolen == expected
        assert queues.pushed == queues.popped == n_tasks


class TestHomeForContract:
    @given(
        policy=_policy_names,
        line=st.one_of(st.none(), st.integers(min_value=0, max_value=10_000)),
        pusher=st.one_of(st.none(), st.integers(min_value=0, max_value=8)),
        seq=st.integers(min_value=0, max_value=100_000),
        depths=st.lists(
            st.integers(min_value=0, max_value=30), min_size=1, max_size=6
        ),
    )
    @settings(max_examples=300, deadline=None)
    def test_home_always_in_range(self, policy, line, pusher, seq, depths):
        views = [[("task", i)] * d for i, d in enumerate(depths)]
        home = make_policy(policy).home_for(line, pusher, seq, views)
        assert 0 <= home < len(depths)

    def test_least_loaded_picks_a_shallowest_queue(self):
        pol = make_policy("least-loaded")
        views = [["t"] * 5, ["t"] * 2, ["t"] * 2, ["t"] * 9]
        assert pol.home_for(None, None, 0, views) in (1, 2)

    def test_affinity_keeps_a_line_on_one_queue(self):
        pol = make_policy("affinity")
        views = [[], [], []]
        homes = {pol.home_for(17, p, s, views) for p in (0, 1, None)
                 for s in range(10)}
        assert len(homes) == 1

    def test_rebalance_spills_only_hot_queues(self):
        """The spill needs both conditions: absolute depth above
        ``hot_depth`` AND at least twice the shallowest peer."""
        pol = make_policy("rebalance")
        line = 0
        cold = [["t"] * 3, [], []]
        home_cold = pol.home_for(line, 0, 0, cold)
        assert pol.rebalances == 0
        hot = [["t"] * 20, [], []]
        hot[home_cold] = ["t"] * 20
        spilled = pol.home_for(line, 0, 1, hot)
        assert spilled != home_cold
        assert pol.rebalances == 1
        # The spill target is a shallowest queue, keeping twins close
        # to each other rather than scattering them.
        assert len(hot[spilled]) == 0


class TestRegistry:
    def test_unknown_policy_fails_loudly(self):
        with pytest.raises(ValueError, match="round-robin"):
            make_policy("fifo")

    def test_instance_passes_through(self):
        pol = make_policy("affinity")
        assert make_policy(pol) is pol

    def test_every_policy_has_a_safe_queue_count(self):
        for name in POLICY_NAMES:
            assert safe_queues(name) == SAFE_QUEUE_MATRIX[name] >= 1

    def test_fresh_instances_have_zero_counters(self):
        for name in POLICY_NAMES:
            pol = make_policy(name)
            assert isinstance(pol, Policy)
            assert pol.rebalances == 0
            assert pol.name == name
