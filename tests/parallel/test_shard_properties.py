"""Hypothesis property tests for the mp engine's shard routing.

The multiprocess backend replaces the paper's per-line locks with line
*ownership* (:class:`repro.parallel.mp.shard.ShardMap`); its
correctness rests on three contracts, each pinned here as a property:

1. **Single owner**: every ``(node_id, key)`` pair routes to exactly
   one worker, and that worker is in range.
2. **Cross-process stability**: routing is a pure function of the
   inputs — identical in a subprocess run under a *different*
   ``PYTHONHASHSEED``, because the map is built on ``stable_hash``,
   never on Python's salted ``hash()``.
3. **Repartitioning covers**: for any worker count, the per-worker
   ``lines_owned`` sets partition ``range(n_lines)`` — no line is
   orphaned and none is owned twice, so changing the worker count
   between runs can never lose or duplicate a token line.
"""

from __future__ import annotations

import os
import subprocess
import sys

from hypothesis import given, settings, strategies as st

from repro.parallel.mp.shard import ShardMap
from repro.rete.memories import stable_hash

#: Constants as they appear in real join keys: OPS5 attribute values.
_scalar = st.one_of(
    st.integers(min_value=-(2**40), max_value=2**40),
    st.text(max_size=12),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.none(),
)

_keys = st.tuples() | st.tuples(_scalar) | st.tuples(_scalar, _scalar) | st.tuples(
    _scalar, _scalar, _scalar
)

_node_ids = st.integers(min_value=0, max_value=50_000)

_n_lines = st.integers(min_value=1, max_value=4096)
_n_workers = st.integers(min_value=1, max_value=9)


class TestSingleOwner:
    @given(node_id=_node_ids, key=_keys, n_lines=_n_lines, n_workers=_n_workers)
    @settings(max_examples=200, deadline=None)
    def test_route_is_one_worker_in_range(self, node_id, key, n_lines, n_workers):
        shard = ShardMap(n_lines=n_lines, n_workers=n_workers)
        owner = shard.route(node_id, key)
        assert 0 <= owner < n_workers
        # The same pair asked again routes identically (pure function).
        assert shard.route(node_id, key) == owner
        # And the decomposition agrees with itself.
        line = shard.line_of(node_id, key)
        assert 0 <= line < n_lines
        assert shard.owner_of_line(line) == owner
        # Exactly one worker owns the line this pair lives on.
        owners = [w for w in range(n_workers) if line in shard.lines_owned(w)]
        assert owners == [owner]

    @given(node_id=_node_ids, key=_keys, n_lines=_n_lines)
    @settings(max_examples=100, deadline=None)
    def test_line_matches_memory_system(self, node_id, key, n_lines):
        """Shard lines are the *same* lines the hash memories use, so
        line ownership really is ownership of the memory buckets."""
        from repro.rete.memories import HashMemorySystem

        shard = ShardMap(n_lines=n_lines, n_workers=3)
        memory = HashMemorySystem(n_lines=n_lines)
        assert shard.line_of(node_id, key) == memory.line_of(node_id, key)


class TestRepartitioning:
    @given(n_lines=_n_lines, n_workers=_n_workers)
    @settings(max_examples=200, deadline=None)
    def test_lines_partition_exactly(self, n_lines, n_workers):
        shard = ShardMap(n_lines=n_lines, n_workers=n_workers)
        seen: set = set()
        for wid in range(n_workers):
            owned = set(shard.lines_owned(wid))
            assert not owned & seen, "line owned by two workers"
            seen |= owned
        assert seen == set(range(n_lines)), "orphaned lines"

    @given(node_id=_node_ids, key=_keys, n_lines=_n_lines)
    @settings(max_examples=100, deadline=None)
    def test_line_survives_repartitioning(self, node_id, key, n_lines):
        """Changing the worker count moves lines between workers but
        never changes *which line* a pair lives on — token placement
        in the hash memories is worker-count independent."""
        lines = {
            ShardMap(n_lines=n_lines, n_workers=k).line_of(node_id, key)
            for k in (1, 2, 5, 8)
        }
        assert len(lines) == 1


#: Pairs covering every stable_hash branch: ints, strs, floats, None,
#: nesting.  Literals only — this source text is exec'd in a subprocess.
_CROSS_PROCESS_PAIRS = [
    (0, ()),
    (17, ("alpha", 3)),
    (123, (None, -7, "x")),
    (50_000, (2.5, "goal", 0)),
    (999, (("nested", 1), "deep")),
]

_CHILD_SOURCE = """
import sys
sys.path.insert(0, {src!r})
from repro.parallel.mp.shard import ShardMap
shard = ShardMap(n_lines=1024, n_workers=7)
pairs = {pairs!r}
print([shard.route(n, k) for n, k in pairs])
"""


class TestCrossProcessStability:
    def test_routing_identical_under_other_hashseed(self):
        """The property the paper's line locks got for free and a
        salted ``hash()`` would silently break: every process must
        agree on who owns a line.  A child interpreter with a forced,
        different ``PYTHONHASHSEED`` must route identically."""
        src_dir = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        src_dir = os.path.abspath(src_dir)
        shard = ShardMap(n_lines=1024, n_workers=7)
        here = [shard.route(n, k) for n, k in _CROSS_PROCESS_PAIRS]

        child = _CHILD_SOURCE.format(src=src_dir, pairs=_CROSS_PROCESS_PAIRS)
        for seed in ("0", "1", "424242"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            out = subprocess.run(
                [sys.executable, "-c", child],
                capture_output=True, text=True, env=env, check=True,
            )
            assert eval(out.stdout.strip()) == here, (
                f"routing diverged under PYTHONHASHSEED={seed}"
            )

    @given(node_id=_node_ids, key=_keys)
    @settings(max_examples=100, deadline=None)
    def test_stable_hash_is_route_input(self, node_id, key):
        """Routing never consults ``hash()``: it is fully determined by
        ``stable_hash``, which is itself deterministic by construction."""
        shard = ShardMap(n_lines=64, n_workers=3)
        expected = (stable_hash((node_id, key)) % 64) % 3
        assert shard.route(node_id, key) == expected
