"""Hypothesis tests for conjugate-pair handling (extra-deletes lists).

Two layers:

* a state machine driving arbitrary insert/remove traffic against a
  counting model of §3.2's extra-deletes rule — an insert first
  annihilates a parked delete of its twin, a remove that misses parks
  itself;
* an order-independence property: any interleaving of a fixed multiset
  of conjugate pairs (every ``+`` eventually meets its ``-``) drains to
  the same end state — empty memory, empty extra-deletes lists, and an
  annihilation count equal to the number of out-of-order pairs.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.ops5.wme import WME
from repro.parallel.conjugate import ConjugateMemory
from repro.rete.memories import HashMemorySystem
from repro.rete.token import Token

NODES = (1, 2)
SIDES = ("L", "R")
KEYS = ((), ("k",))
TAGS = tuple(range(1, 5))


def tok(tag: int) -> Token:
    return Token.single(WME.make("c", {}, tag))


class ConjugateMachine(RuleBasedStateMachine):
    """Model: per (node, side, key, tag), counts of stored and parked."""

    def __init__(self):
        super().__init__()
        self.memory = ConjugateMemory(HashMemorySystem(n_lines=8))
        self.stored = Counter()
        self.parked = Counter()
        self.annihilations = 0

    @rule(
        node=st.sampled_from(NODES),
        side=st.sampled_from(SIDES),
        key=st.sampled_from(KEYS),
        tag=st.sampled_from(TAGS),
    )
    def insert(self, node, side, key, tag):
        slot = (node, side, key, (tag,))
        live = self.memory.insert(node, side, key, tok(tag))
        if self.parked[slot] > 0:
            assert live is False, "insert must annihilate a parked delete"
            self.parked[slot] -= 1
            self.annihilations += 1
        else:
            assert live is True
            self.stored[slot] += 1

    @rule(
        node=st.sampled_from(NODES),
        side=st.sampled_from(SIDES),
        key=st.sampled_from(KEYS),
        tag=st.sampled_from(TAGS),
    )
    def remove(self, node, side, key, tag):
        slot = (node, side, key, (tag,))
        found, _examined = self.memory.remove(node, side, key, (tag,))
        if self.stored[slot] > 0:
            assert found is not None, "remove must find a stored twin"
            self.stored[slot] -= 1
        else:
            assert found is None, "remove without a twin must park"
            self.parked[slot] += 1

    @invariant()
    def pending_matches_model(self):
        assert self.memory.pending_deletes == sum(self.parked.values())

    @invariant()
    def stored_matches_model(self):
        per_side = Counter()
        for (node, side, _key, _tag), n in self.stored.items():
            per_side[(node, side)] += n
        for node in NODES:
            for side in SIDES:
                assert self.memory.side_size(node, side) == per_side[(node, side)]

    @invariant()
    def annihilations_counted(self):
        assert self.memory.annihilations == self.annihilations


TestConjugateMachine = ConjugateMachine.TestCase
TestConjugateMachine.settings = settings(max_examples=60, stateful_step_count=30, deadline=None)


@settings(max_examples=80, deadline=None)
@given(
    tags=st.lists(st.sampled_from(TAGS), min_size=1, max_size=6),
    order=st.randoms(use_true_random=False),
)
def test_conjugate_pairs_drain_in_any_order(tags, order):
    """Park/annihilate is order-independent: shuffle each tag's +/-
    pair arbitrarily and the memory always drains to empty."""
    ops = []
    for i, tag in enumerate(tags):
        # Distinct timetags so equal tags still form distinct pairs.
        ops.append(("+", 10 * tag + i))
        ops.append(("-", 10 * tag + i))
    order.shuffle(ops)

    memory = ConjugateMemory(HashMemorySystem(n_lines=4))
    out_of_order = 0
    live = set()
    for sign, tag in ops:
        if sign == "+":
            memory.insert(1, "L", (), tok(tag))
        else:
            if tag not in live:
                out_of_order += 1
            memory.remove(1, "L", (), (tag,))
        if sign == "+":
            live.add(tag)

    assert memory.pending_deletes == 0
    assert memory.side_size(1, "L") == 0
    assert memory.total_tokens() == 0
    assert memory.annihilations == out_of_order
