"""Unit tests for task queues and TaskCount."""

import threading

import pytest

from repro.parallel.taskqueue import TaskCount, TaskQueueSet


class TestTaskCount:
    def test_increment_decrement(self):
        tc = TaskCount()
        tc.increment()
        tc.increment(2)
        assert tc.value == 3
        assert tc.decrement() == 2
        assert not tc.zero
        tc.decrement(2)
        assert tc.zero

    def test_negative_raises(self):
        tc = TaskCount()
        with pytest.raises(RuntimeError):
            tc.decrement()

    def test_thread_safety(self):
        tc = TaskCount()

        def work():
            for _ in range(5000):
                tc.increment()
                tc.decrement()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert tc.zero


class TestTaskQueueSet:
    def test_lifo_order(self):
        q = TaskQueueSet(1)
        q.push("a")
        q.push("b")
        assert q.pop() == "b"
        assert q.pop() == "a"
        assert q.pop() is None

    def test_home_queue_routing(self):
        q = TaskQueueSet(4)
        q.push("x", home=2)
        assert len(q) == 1
        # Popping with a different home scans and finds it.
        assert q.pop(home=0) == "x"

    def test_home_preferred(self):
        q = TaskQueueSet(2)
        q.push("mine", home=1)
        q.push("other", home=0)
        assert q.pop(home=1) == "mine"

    def test_home_wraps(self):
        q = TaskQueueSet(3)
        q.push("a", home=7)   # 7 % 3 == 1
        assert q.pop(home=1) == "a"

    def test_empty_returns_none(self):
        assert TaskQueueSet(3).pop() is None

    def test_needs_at_least_one_queue(self):
        with pytest.raises(ValueError):
            TaskQueueSet(0)

    def test_concurrent_push_pop_conserves_items(self):
        # Consumers terminate on a shared "all items drained" event, not
        # a fixed per-consumer quota: a quota leaves the slower consumer
        # spinning unboundedly while the faster one overshoots, which
        # made this test timing-sensitive under load.  Joins are bounded
        # so a conservation bug fails loudly instead of hanging CI.
        q = TaskQueueSet(2)
        total = 1000
        popped = []
        lock = threading.Lock()
        drained = threading.Event()

        def producer(base):
            for i in range(500):
                q.push(base + i, home=i)

        def consumer():
            while not drained.is_set():
                item = q.pop(home=len(popped))
                if item is None:
                    continue
                with lock:
                    popped.append(item)
                    if len(popped) == total:
                        drained.set()

        threads = [
            threading.Thread(target=producer, args=(0,)),
            threading.Thread(target=producer, args=(1000,)),
            threading.Thread(target=consumer),
            threading.Thread(target=consumer),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert not any(t.is_alive() for t in threads), "drain did not finish"
        assert sorted(popped) == sorted(list(range(500)) + list(range(1000, 1500)))

    def test_lock_stats_counted(self):
        q = TaskQueueSet(2)
        q.push("a")
        q.pop()
        assert q.lock_stats().acquisitions >= 2
