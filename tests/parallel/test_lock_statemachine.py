"""Hypothesis state-machine tests for the MRSW line-lock protocol.

Models one hash-table line as the paper describes it (§3.2): a flag in
{Unused, Left-in-use, Right-in-use} plus a user counter behind the
guard lock.  The machine issues arbitrary legal enter/exit sequences
(single-threaded — the protocol state logic, not the spin-locking, is
under test) and checks after every step:

* the user counter never goes negative,
* the flag is Unused exactly when the counter is zero,
* a side is admitted iff the line is Unused or already held by that
  side, and the rejection is counted as a requeue,
* admitted users are all from one side at any moment.
"""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule
from hypothesis import strategies as st

from repro.parallel.locks import LEFT_IN_USE, RIGHT_IN_USE, UNUSED, MRSWLineLocks

LINE = 3  # arbitrary; single-line machine
SIDES = ("L", "R")
_WANT = {"L": LEFT_IN_USE, "R": RIGHT_IN_USE}


class MRSWLineMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.locks = MRSWLineLocks(8)
        self.users = {"L": 0, "R": 0}
        self.requeues = 0

    @rule(side=st.sampled_from(SIDES))
    def enter(self, side):
        other = "R" if side == "L" else "L"
        admitted = self.locks.enter(LINE, side)
        if self.users[other] > 0:
            assert admitted is False, "opposite side held the line"
            self.requeues += 1
        else:
            assert admitted is True, "free/same-side line must admit"
            self.users[side] += 1

    @precondition(lambda self: self.users["L"] > 0)
    @rule()
    def exit_left(self):
        self.locks.exit(LINE, "L")
        self.users["L"] -= 1

    @precondition(lambda self: self.users["R"] > 0)
    @rule()
    def exit_right(self):
        self.locks.exit(LINE, "R")
        self.users["R"] -= 1

    @precondition(lambda self: self.users["L"] + self.users["R"] > 0)
    @rule()
    def modify_cycle(self):
        # The modification lock is independent of the flag protocol; a
        # holder may always bracket a destructive update with it.
        self.locks.enter_modify(LINE)
        self.locks.exit_modify(LINE)

    @invariant()
    def counter_never_negative(self):
        assert self.locks._counts[LINE] >= 0

    @invariant()
    def counter_matches_model(self):
        assert self.locks._counts[LINE] == self.users["L"] + self.users["R"]

    @invariant()
    def flag_unused_iff_empty(self):
        flag = self.locks._flags[LINE]
        total = self.users["L"] + self.users["R"]
        if total == 0:
            assert flag == UNUSED
        else:
            held = "L" if self.users["L"] else "R"
            assert flag == _WANT[held]

    @invariant()
    def single_side_occupancy(self):
        assert not (self.users["L"] > 0 and self.users["R"] > 0)

    @invariant()
    def requeues_counted(self):
        assert self.locks.stats().requeues == self.requeues


TestMRSWLineMachine = MRSWLineMachine.TestCase
TestMRSWLineMachine.settings = settings(max_examples=60, stateful_step_count=30, deadline=None)
