"""Property-based tests for the threaded engine: on arbitrary
*shallow* random programs (≤2 positive CEs — deep chains suffer the
transient-blow-up documented in EXPERIMENTS.md) the parallel matcher's
conflict set always equals the sequential matcher's."""

from __future__ import annotations

from typing import List, Tuple

from hypothesis import given, settings, strategies as st

from repro.ops5.parser import parse_program
from repro.ops5.wme import WMEChange, WorkingMemory
from repro.parallel.engine import ParallelMatcher
from repro.rete.matcher import SequentialMatcher
from repro.rete.network import ReteNetwork

_CLASSES = ("c0", "c1")
_ATTRS = ("a", "b")
_VALUES = (0, 1)

value_test = st.one_of(
    st.sampled_from(_VALUES).map(str),
    st.sampled_from(("v0", "v1")).map(lambda v: f"<{v}>"),
)

condition_element = st.builds(
    lambda klass, tests: "(" + klass + "".join(
        f" ^{attr} {test}" for attr, test in tests
    ) + ")",
    st.sampled_from(_CLASSES),
    st.lists(st.tuples(st.sampled_from(_ATTRS), value_test), max_size=2),
)


@st.composite
def shallow_program(draw) -> str:
    rules = []
    for i in range(draw(st.integers(1, 3))):
        ces = [draw(condition_element)]
        if draw(st.booleans()):
            ce = draw(condition_element)
            if draw(st.booleans()):
                ce = "- " + ce
            ces.append(ce)
        rules.append(f"(p r{i} {' '.join(ces)} --> (halt))")
    return "\n".join(rules)


@st.composite
def wm_batches(draw) -> List[List[Tuple[str, dict]]]:
    """Batches of WME additions (each batch = one 'RHS output')."""
    batches = []
    for _ in range(draw(st.integers(1, 3))):
        batch = []
        for _ in range(draw(st.integers(1, 4))):
            attrs = {
                a: draw(st.sampled_from(_VALUES))
                for a in _ATTRS
                if draw(st.booleans())
            }
            batch.append((draw(st.sampled_from(_CLASSES)), attrs))
        batches.append(batch)
    return batches


def apply_batches(matcher, batches):
    wm = WorkingMemory()
    counts = {}
    for batch in batches:
        changes = [WMEChange(1, wm.add(klass, attrs)) for klass, attrs in batch]
        for delta in matcher.process_changes(changes):
            key = (delta.production.name, delta.token.key)
            counts[key] = counts.get(key, 0) + delta.sign
    return {k for k, v in counts.items() if v == 1}


@settings(max_examples=25, deadline=None)
@given(source=shallow_program(), batches=wm_batches())
def test_parallel_matches_sequential(source, batches):
    program = parse_program(source)
    sequential = SequentialMatcher(ReteNetwork.compile(program))
    expected = apply_batches(sequential, batches)

    matcher = ParallelMatcher(
        ReteNetwork.compile(program), n_workers=2, n_queues=2, n_lines=32
    )
    try:
        actual = apply_batches(matcher, batches)
    finally:
        matcher.close()
    assert actual == expected
