"""Unit tests for the threaded synchronization primitives."""

import threading

import pytest

from repro.parallel import hooks
from repro.parallel.locks import (
    LockStats,
    MRSWLineLocks,
    SimpleLineLocks,
    SpinLock,
    make_line_locks,
)


class TestSpinLock:
    def test_acquire_release(self):
        lock = SpinLock()
        spins = lock.acquire()
        assert spins == 1
        lock.release()
        assert lock.stats.acquisitions == 1

    def test_context_manager(self):
        lock = SpinLock()
        with lock:
            assert lock._busy
        assert not lock._busy

    def test_mutual_exclusion_under_threads(self):
        lock = SpinLock()
        counter = [0]

        def bump():
            for _ in range(2000):
                with lock:
                    counter[0] += 1

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter[0] == 8000
        assert lock.stats.acquisitions == 8000

    def test_spin_counting_under_contention(self):
        lock = SpinLock()
        lock.acquire()

        spun = []
        spinning = threading.Event()

        # The waiter's first "lock_spin" yield proves it is busy-waiting
        # before the holder releases — no timing assumption needed.
        def on_yield(label, detail):
            if label == "lock_spin":
                spinning.set()

        def waiter():
            spun.append(lock.acquire())
            lock.release()

        hooks.install(on_yield)
        try:
            t = threading.Thread(target=waiter)
            t.start()
            assert spinning.wait(timeout=10.0)
            lock.release()
            t.join()
        finally:
            hooks.uninstall()
        assert spun[0] >= 1


class TestLockStats:
    def test_mean(self):
        s = LockStats(acquisitions=4, spins=10)
        assert s.mean_spins == 2.5

    def test_mean_empty(self):
        assert LockStats().mean_spins == 0.0

    def test_merge(self):
        a = LockStats(acquisitions=1, spins=2, requeues=3, contended=1)
        b = LockStats(acquisitions=10, spins=20, requeues=30, contended=4)
        a.merge(b)
        assert (a.acquisitions, a.spins, a.requeues, a.contended) == (
            11, 22, 33, 5
        )

    def test_contention_ratio(self):
        s = LockStats(acquisitions=8, contended=2)
        assert s.uncontended == 6
        assert s.contention_ratio == 0.25

    def test_contention_ratio_empty(self):
        assert LockStats().contention_ratio == 0.0


class TestContentionSplit:
    def test_uncontended_acquire_not_counted(self):
        lock = SpinLock()
        for _ in range(3):
            with lock:
                pass
        assert lock.stats.acquisitions == 3
        assert lock.stats.contended == 0
        assert lock.stats.uncontended == 3
        assert lock.stats.contention_ratio == 0.0

    def test_contended_acquire_counted(self):
        """A waiter that provably spun (first lock_spin yield observed)
        must land in the contended bucket."""
        lock = SpinLock()
        lock.acquire()
        spinning = threading.Event()

        def on_yield(label, detail):
            if label == "lock_spin":
                spinning.set()

        def waiter():
            lock.acquire()
            lock.release()

        hooks.install(on_yield)
        try:
            t = threading.Thread(target=waiter)
            t.start()
            assert spinning.wait(timeout=10.0)
            lock.release()
            t.join()
        finally:
            hooks.uninstall()
        assert lock.stats.acquisitions == 2
        assert lock.stats.contended >= 1
        assert lock.stats.uncontended >= 1  # the initial free acquire


class TestSimpleLineLocks:
    def test_enter_always_admits(self):
        locks = SimpleLineLocks(8)
        assert locks.enter(3, "L") is True
        locks.exit(3, "L")

    def test_line_wraparound(self):
        locks = SimpleLineLocks(4)
        assert locks.enter(7, "L")  # line 7 % 4 == 3
        locks.exit(7, "L")
        assert locks.stats().acquisitions == 1

    def test_stats_merge_lines(self):
        locks = SimpleLineLocks(4)
        for line in range(4):
            locks.enter(line, "R")
            locks.exit(line, "R")
        assert locks.stats().acquisitions == 4
        assert len(locks.stats_per_line()) == 4


class TestMRSWLineLocks:
    def test_same_side_concurrent(self):
        locks = MRSWLineLocks(4)
        assert locks.enter(1, "L")
        assert locks.enter(1, "L")   # second left user admitted
        locks.exit(1, "L")
        locks.exit(1, "L")

    def test_opposite_side_rejected(self):
        locks = MRSWLineLocks(4)
        assert locks.enter(1, "L")
        assert locks.enter(1, "R") is False
        assert locks.stats().requeues == 1
        locks.exit(1, "L")
        assert locks.enter(1, "R")   # free again after last exit
        locks.exit(1, "R")

    def test_flag_clears_only_when_all_exit(self):
        locks = MRSWLineLocks(4)
        locks.enter(1, "L")
        locks.enter(1, "L")
        locks.exit(1, "L")
        assert locks.enter(1, "R") is False   # one left user remains
        locks.exit(1, "L")
        assert locks.enter(1, "R") is True
        locks.exit(1, "R")

    def test_different_lines_independent(self):
        locks = MRSWLineLocks(4)
        assert locks.enter(0, "L")
        assert locks.enter(1, "R")
        locks.exit(0, "L")
        locks.exit(1, "R")

    def test_modification_lock(self):
        locks = MRSWLineLocks(4)
        locks.enter(2, "L")
        locks.enter_modify(2)
        locks.exit_modify(2)
        locks.exit(2, "L")


class TestFactory:
    def test_make(self):
        assert make_line_locks("simple", 4).name == "simple"
        assert make_line_locks("mrsw", 4).name == "mrsw"

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_line_locks("rcu", 4)
