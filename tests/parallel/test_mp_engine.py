"""Unit and lifecycle tests for the multiprocess match backend.

Conformance of full programs across engines lives in
``tests/conformance/``; this module covers what the differential suite
cannot see — process lifecycle, failure propagation from a dead match
process, the fork-requirement guard, and the engine factory wiring.
"""

from __future__ import annotations

import pytest

from repro.engines import ENGINE_NAMES, make_matcher
from repro.ops5.interpreter import Interpreter
from repro.ops5.parser import parse_program
from repro.ops5.wme import WME, WMEChange
from repro.parallel.mp import ProcessEngine, ProcessMatcher, mp_supported
from repro.rete.network import ReteNetwork
from tests.conftest import FIND_COLORED_BLOCK

pytestmark = pytest.mark.skipif(
    not mp_supported(), reason="mp engine needs the 'fork' start method"
)


def compiled_network(source: str):
    program = parse_program(source)
    return program, ReteNetwork.compile(program)


class TestLifecycle:
    def test_close_is_idempotent(self):
        _program, network = compiled_network(FIND_COLORED_BLOCK)
        matcher = ProcessMatcher(network, n_workers=2)
        matcher.close()
        matcher.close()

    def test_process_changes_after_close_raises(self):
        _program, network = compiled_network(FIND_COLORED_BLOCK)
        matcher = ProcessMatcher(network, n_workers=1)
        matcher.close()
        change = WMEChange(sign=1, wme=WME.make("block", {"color": "red"}, 1))
        with pytest.raises(RuntimeError, match="closed"):
            matcher.process_changes([change])

    def test_context_manager_closes(self):
        _program, network = compiled_network(FIND_COLORED_BLOCK)
        with ProcessMatcher(network, n_workers=2) as matcher:
            procs = matcher._procs
            assert all(p.is_alive() for p in procs)
        for p in procs:
            assert p.exitcode is not None

    def test_rejects_zero_workers(self):
        _program, network = compiled_network(FIND_COLORED_BLOCK)
        with pytest.raises(ValueError):
            ProcessMatcher(network, n_workers=0)

    def test_process_engine_alias(self):
        assert ProcessEngine is ProcessMatcher


class TestFailurePropagation:
    def test_dead_worker_surfaces_as_runtime_error(self):
        """Kill a match process mid-flight: the control process must
        raise (with the death noted), never hang in the quiescence
        wait — the cross-process version of the thread-failure tests
        in test_failure_injection.py."""
        program, network = compiled_network(FIND_COLORED_BLOCK)
        matcher = ProcessMatcher(network, n_workers=2)
        interp = Interpreter(program, matcher=matcher, network=network)
        try:
            interp.startup()
            for proc in matcher._procs:
                proc.terminate()
                proc.join(timeout=5.0)
            with pytest.raises(RuntimeError, match="died"):
                matcher.process_changes(
                    [WMEChange(sign=1, wme=WME.make("block", {}, 99))]
                )
        finally:
            interp.close()

    def test_worker_exception_reports_traceback(self):
        """An exception inside a worker (forced by corrupting the task
        protocol) reaches the control process as a RuntimeError that
        carries the worker's traceback text."""
        _program, network = compiled_network(FIND_COLORED_BLOCK)
        matcher = ProcessMatcher(network, n_workers=1)
        try:
            with matcher._taskcount.get_lock():
                matcher._taskcount.value += 1
            matcher._inboxes[0].put(("act", -12345, "L", 1, ()))
            with pytest.raises(RuntimeError):
                matcher._wait_quiescent()
        finally:
            matcher.close()

    def test_worker_exception_surfaces_flight_tail(self):
        """A dying worker ships its flight-recorder tail with the error
        message, so the propagated traceback ends with the worker's
        last recorded moments (its start event at minimum)."""
        _program, network = compiled_network(FIND_COLORED_BLOCK)
        matcher = ProcessMatcher(network, n_workers=1)
        try:
            with matcher._taskcount.get_lock():
                matcher._taskcount.value += 1
            matcher._inboxes[0].put(("act", -12345, "L", 1, ()))
            with pytest.raises(RuntimeError) as excinfo:
                matcher._wait_quiescent()
        finally:
            matcher.close()
        text = str(excinfo.value)
        assert "worker flight recorder (last" in text
        assert "mp.worker.start" in text


class TestEngineFactory:
    def test_engine_names_registry(self):
        assert ENGINE_NAMES == ("sequential", "threaded", "mp", "corgi")

    def test_unknown_engine_raises(self):
        _program, network = compiled_network(FIND_COLORED_BLOCK)
        with pytest.raises(ValueError, match="unknown engine"):
            make_matcher("warp", network)

    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    def test_factory_builds_each_engine(self, engine):
        _program, network = compiled_network(FIND_COLORED_BLOCK)
        matcher = make_matcher(engine, network, n_workers=1)
        try:
            assert hasattr(matcher, "process_changes")
        finally:
            closer = getattr(matcher, "close", None)
            if closer:
                closer()

    def test_interpreter_rejects_matcher_plus_engine(self):
        program, network = compiled_network(FIND_COLORED_BLOCK)
        matcher = make_matcher("sequential", network)
        with pytest.raises(ValueError, match="not both"):
            Interpreter(program, matcher=matcher, engine="mp", network=network)

    def test_interpreter_engine_option_runs(self):
        interp = Interpreter(FIND_COLORED_BLOCK, engine="mp",
                             engine_opts={"n_workers": 2})
        try:
            result = interp.run(max_cycles=100)
            assert result.firings
        finally:
            interp.close()


class TestWatchdogWiring:
    def test_watchdog_attaches_and_probe_reads_shared_counters(self):
        _program, network = compiled_network(FIND_COLORED_BLOCK)
        matcher = ProcessMatcher(network, n_workers=2, watchdog_s=600.0)
        try:
            assert matcher.watchdog is not None
            assert matcher.watchdog.engine == "mp"
            sample = matcher._watchdog_probe()
            assert sample.tasks_done == 0
            assert sample.queues == [("taskcount", 0)]
            assert set(sample.extra["workers"]) == {
                proc.name for proc in matcher._procs
            }
        finally:
            matcher.close()
        assert matcher.watchdog._thread is None  # close() stopped it

    def test_progress_counter_advances_with_work(self):
        program, network = compiled_network(FIND_COLORED_BLOCK)
        matcher = ProcessMatcher(network, n_workers=2, watchdog_s=600.0)
        interp = Interpreter(program, matcher=matcher, network=network)
        try:
            interp.run(max_cycles=100)
            assert matcher._watchdog_probe().tasks_done > 0
            assert not matcher.watchdog.tripped
        finally:
            interp.close()

    def test_no_watchdog_by_default(self):
        _program, network = compiled_network(FIND_COLORED_BLOCK)
        matcher = ProcessMatcher(network, n_workers=1)
        try:
            assert matcher.watchdog is None
        finally:
            matcher.close()


class TestMeasurement:
    def test_match_seconds_accumulates(self):
        interp = Interpreter(FIND_COLORED_BLOCK, engine="mp",
                             engine_opts={"n_workers": 1})
        try:
            interp.run(max_cycles=100)
            assert interp.matcher.match_seconds > 0.0
        finally:
            interp.close()

    def test_ipc_counters_present(self):
        interp = Interpreter(FIND_COLORED_BLOCK, engine="mp",
                             engine_opts={"n_workers": 2})
        try:
            interp.run(max_cycles=100)
        finally:
            interp.close()
        counters = interp.matcher.ipc_counters
        assert counters["tasks_local"] > 0
        assert counters["tasks_forwarded"] == counters["ipc_msgs"]

    def test_merged_stats_count_wme_changes_once(self):
        """Alpha work is replicated in every worker but must be counted
        by exactly one, so merged stats equal the sequential run's."""
        seq = Interpreter(FIND_COLORED_BLOCK)
        seq.run(max_cycles=100)
        mp = Interpreter(FIND_COLORED_BLOCK, engine="mp",
                         engine_opts={"n_workers": 3})
        try:
            mp.run(max_cycles=100)
        finally:
            mp.close()
        assert mp.stats.wme_changes == seq.stats.wme_changes
        assert mp.stats.constant_tests == seq.stats.constant_tests


class TestForwardDeadlockAvoidance:
    """Regression for the mutual pipe-full deadlock.

    Two workers forwarding heavily to each other could both block in
    ``put`` with both OS pipes full (observed intermittently as a
    rubik-mp hang: both processes in ``pipe_write``, TaskCount frozen,
    the control process polling forever).  The guarantee that breaks
    the cycle: ``route_child`` drains its own inbox *before* every
    potentially-blocking forward, so a worker's pending write into us
    always completes before we block writing to it.
    """

    def _state(self, pending_msgs):
        import threading

        from repro.parallel.mp.worker import _WorkerState

        class FakeNode:
            node_id = 1
            kind = "join"

            def uses_line(self):
                return True

            def key_for(self, side, token):
                return ("k",)

        class FakeNetwork:
            beta_nodes = [FakeNode()]

        class FakeShard:
            n_lines = 8
            n_workers = 2

            def route(self, node_id, key):
                return 1  # always the peer

        class FakeCount:
            def __init__(self):
                self.value = 0
                self._lock = threading.Lock()

            def get_lock(self):
                return self._lock

        class FakeInbox:
            def __init__(self, msgs):
                self.msgs = list(msgs)

            def empty(self):
                return not self.msgs

            def get(self):
                return self.msgs.pop(0)

        state = _WorkerState(
            0, FakeNetwork(), FakeShard(), FakeInbox(pending_msgs),
            outbox=None, taskcount=FakeCount(),
        )
        return state, FakeNetwork.beta_nodes[0]

    def test_route_child_absorbs_inbox_before_forwarding(self):
        from repro.rete.nodes import Activation
        from repro.rete.token import Token

        wme = WME.make("block", {"color": "red"}, 1)
        pending = ("act", 1, "left", 1, (wme,))
        state, node = self._state([pending])

        inbox_empty_at_put = []

        class FakePeerQueue:
            def put(_self, msg):
                inbox_empty_at_put.append(state.inbox.empty())

        state._forward_queues = {1: FakePeerQueue()}
        act = Activation(node, "left", 1, Token.single(wme))
        state.route_child(act)

        # The forward happened, with our own pipe already drained.
        assert inbox_empty_at_put == [True]
        # The pending peer message was absorbed into local work and its
        # TaskCount unit is held as borrowed; ours was added for the
        # forward.
        assert state.borrowed == 1
        assert len(state.local) == 1
        assert state.taskcount.value == 1

    def test_racing_batch_broadcast_is_deferred_not_fatal(self):
        """A forwarded act can overtake the ("changes", ...) broadcast
        it belongs to (peer and control share the inbox pipe).  The
        mid-drain absorb must park the batch message for the main loop
        instead of treating it as a protocol violation."""
        from repro.rete.nodes import Activation
        from repro.rete.token import Token

        wme = WME.make("block", {"color": "red"}, 1)
        racing_batch = ("changes", 6, [(1, wme)], None)
        state, node = self._state([racing_batch])

        forwarded = []

        class FakePeerQueue:
            def put(_self, msg):
                forwarded.append(msg)

        state._forward_queues = {1: FakePeerQueue()}
        act = Activation(node, "left", 1, Token.single(wme))
        state.route_child(act)

        assert state.deferred == [racing_batch]
        assert state.borrowed == 0
        assert len(forwarded) == 1
