"""Tests for the policyck differential battery and its CLI verb.

The heavy proof — every policy, every engine, all eight conformance
programs — runs in the conformance suite and the CI policyck smoke
step; here we pin the battery *machinery*: case construction, the
safe-queue defaulting, report formatting and replay lines, skip
handling, and argument validation.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.parallel.policy import POLICY_NAMES, SAFE_QUEUE_MATRIX
from repro.parallel.policyck import (
    PROGRAMS,
    POLICY_ENGINES,
    BatteryResult,
    CaseResult,
    run_battery,
    run_case,
)


def _reference():
    from repro.parallel.policyck import _run

    return _run(PROGRAMS["blocks"](), "sequential", {})


@pytest.fixture(scope="module")
def blocks_reference():
    return _reference()


class TestRunCase:
    def test_threaded_case_matches_reference(self, blocks_reference):
        case = run_case("blocks", "threaded", "least-loaded", blocks_reference)
        assert case.ok, case.mismatches
        assert case.n_queues == SAFE_QUEUE_MATRIX["least-loaded"]
        assert case.cycles == blocks_reference["cycles"]

    def test_queue_override_wins(self, blocks_reference):
        case = run_case(
            "blocks", "threaded", "work-stealing", blocks_reference, n_queues=1
        )
        assert case.ok, case.mismatches
        assert case.n_queues == 1

    def test_sequential_engine_is_rejected(self, blocks_reference):
        with pytest.raises(ValueError, match="takes no policy"):
            run_case("blocks", "sequential", "affinity", blocks_reference)

    def test_divergence_is_reported_not_raised(self, blocks_reference):
        doctored = dict(blocks_reference, trace="bogus", cycles=-1)
        case = run_case("blocks", "threaded", "round-robin", doctored)
        assert not case.ok
        assert "[trace] differs from sequential reference" in case.mismatches
        assert "[cycles] differs from sequential reference" in case.mismatches


class TestBattery:
    def test_registry_subset_runs_and_formats(self):
        result = run_battery(
            programs=["blocks"], engines=["threaded"],
            policies=["round-robin", "rebalance"],
        )
        assert result.ok
        assert len(result.cases) == 2
        text = result.format()
        assert "policyck battery: 2 cases, 0 failing" in text
        assert "OK   policy=round-robin engine=threaded" in text

    def test_unknown_program_fails_loudly(self):
        with pytest.raises(ValueError, match="unknown program"):
            run_battery(programs=["hanoi"], engines=["threaded"])

    def test_failure_lines_carry_replay_commands(self):
        result = BatteryResult(cases=[
            CaseResult(program="rubik", engine="threaded",
                       policy="affinity", n_queues=3,
                       mismatches=["[trace] differs from sequential reference"]),
        ])
        assert not result.ok
        text = result.format()
        assert ("replay: python -m repro policyck --policies affinity"
                " --engines threaded --programs rubik") in text

    def test_skips_render(self):
        result = BatteryResult(skipped=["engine=mp (needs the fork start method)"])
        assert result.ok
        assert "SKIP engine=mp" in result.format()

    def test_programs_mirror_conformance_suite(self):
        """Registry-sync guard: the battery must cover exactly the
        programs the cross-engine conformance suite covers."""
        from tests.conformance.conftest import PROGRAMS as CONF_PROGRAMS

        assert set(PROGRAMS) == set(CONF_PROGRAMS)
        assert POLICY_ENGINES == ("threaded", "mp")


class TestCli:
    def test_smoke_run_exits_zero(self, capsys):
        rc = main(["policyck", "--policies", "least-loaded",
                   "--engines", "threaded", "--programs", "blocks"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "1 cases, 0 failing" in out

    def test_unknown_policy_is_clean_exit(self):
        with pytest.raises(SystemExit, match="unknown policy"):
            main(["policyck", "--policies", "fifo"])

    def test_unknown_engine_is_clean_exit(self):
        with pytest.raises(SystemExit, match="takes no policy"):
            main(["policyck", "--engines", "corgi"])

    def test_unknown_program_is_clean_exit(self):
        with pytest.raises(SystemExit, match="unknown program"):
            main(["policyck", "--programs", "hanoi"])

    def test_policy_names_in_help(self, capsys):
        with pytest.raises(SystemExit):
            main(["policyck", "--help"])
        assert "policyck" in capsys.readouterr().out


def test_registry_and_matrix_agree():
    """The safe-queue matrix and the policy registry must never drift:
    a policy without a validated queue count would silently run the
    battery at a count nobody conformance-tested."""
    assert set(SAFE_QUEUE_MATRIX) == set(POLICY_NAMES)
