"""Executable regression for the documented deep-chain divergence.

DESIGN.md ("Known divergences") records that deep-chain rules under
heavily out-of-order threaded execution suffer a *transient token
blow-up*: when the ``-`` half of an in-flight modify is delayed past
the ``+`` half, a join sees both the old and the new WME at once and
multiplies combinations at every chain level.  Before the schedule
harness this was prose; the pinned adversarial schedule below makes it
an executable, deterministic fact.

The test is ``xfail(strict=True)``: it MUST fail while the divergence
exists, and will flag (XPASS) the day an engine change fixes it.
See ISSUE 1 (deterministic schedule-exploration harness) for context.

Note what still holds even under this schedule — and is asserted by
the companion test: every *fixpoint* invariant (conflict-set equality,
empty extra-deletes lists, token-memory census).  The blow-up is
transient extra match work, not end-state corruption, which is exactly
the paper's §3.2 claim boundary.
"""

import pytest

from repro.schedck.runner import EngineConfig, run_schedule
from repro.schedck.workloads import deep_chain_case

#: The pinned schedule: delete halves of every modify delayed behind
#: the add halves, three workers racing on one queue.  The workload is
#: the registry's ``deep-chain`` fixture, so the failure replays as
#: ``python -m repro schedck --workload deep-chain --workers 3
#: --policy adversarial:delay-deletes``.
PINNED_SEED = 0
PINNED_CONFIG = EngineConfig(n_workers=3, n_queues=1)
PINNED_POLICY = "adversarial:delay-deletes"


def run_pinned():
    program, batches = deep_chain_case()
    return run_schedule(
        PINNED_SEED,
        config=PINNED_CONFIG,
        policy_spec=PINNED_POLICY,
        program=program,
        batches=batches,
    )


@pytest.mark.xfail(
    strict=True,
    reason="deep-chain transient token blow-up under delayed deletes "
    "(DESIGN.md 'Known divergences'; ISSUE 1)",
)
def test_deep_chain_no_transient_blowup():
    """Transiently, the parallel engine must do no more match work than
    the sequential engine — it does, while this xfails."""
    report = run_pinned()
    stats = dict(report.stats)
    assert stats["tokens_emitted.par"] == stats["tokens_emitted.seq"]


def test_deep_chain_fixpoint_invariants_still_hold():
    """The blow-up is transient: at quiescence the conflict set, the
    extra-deletes lists and the token census all still match."""
    report = run_pinned()
    assert report.ok, report.format()
    assert not report.truncated


def test_blowup_is_deterministic():
    """The pinned schedule reproduces the same blow-up, byte for byte —
    this is what makes the divergence a regression test at all."""
    assert run_pinned().format() == run_pinned().format()
    stats = dict(run_pinned().stats)
    assert stats["tokens_emitted.par"] > stats["tokens_emitted.seq"]
