"""Schedule policies: determinism, guards, targeted preferences."""

import pytest

from repro.schedck.policies import (
    AdversarialPolicy,
    PCTPolicy,
    SeededRandomPolicy,
    make_policy,
)

WORKERS = [("match-0", "queue_pop"), ("match-1", "mem_insert"), ("MainThread", "quiesce_wait")]


def drive(policy, runnable, n=50):
    return [policy.choose(list(runnable), step) for step in range(n)]


class TestSeededRandom:
    def test_deterministic_per_seed(self):
        assert drive(SeededRandomPolicy(3), WORKERS) == drive(SeededRandomPolicy(3), WORKERS)

    def test_seed_changes_schedule(self):
        assert drive(SeededRandomPolicy(1), WORKERS) != drive(SeededRandomPolicy(2), WORKERS)

    def test_single_runnable_is_forced(self):
        policy = SeededRandomPolicy(0)
        assert policy.choose([("match-0", "queue_pop")], 0) == "match-0"


class TestPCT:
    def test_deterministic_per_seed(self):
        assert drive(PCTPolicy(9), WORKERS) == drive(PCTPolicy(9), WORKERS)

    def test_priority_based_until_change_point(self):
        # Outside change points and with the guard quiet, the same
        # leader wins every time.
        policy = PCTPolicy(0, depth=1)  # depth 1 => no change points
        busy = [("match-0", "mem_insert"), ("match-1", "mem_remove")]
        choices = set(drive(policy, busy, 20))
        assert len(choices) == 1

    def test_guard_rotates_waiting_leader(self):
        # All runnable threads waiting: PCT would fixate on its leader
        # forever; the guard must rotate so every thread progresses.
        waiting = [("match-0", "queue_pop"), ("match-1", "worker_idle"),
                   ("MainThread", "quiesce_wait")]
        policy = PCTPolicy(4, depth=1)
        assert set(drive(policy, waiting, 60)) == {"match-0", "match-1", "MainThread"}


class TestAdversarial:
    def test_delay_plus_avoids_inserts(self):
        policy = AdversarialPolicy("delay-plus", seed=0)
        runnable = [("match-0", "mem_insert"), ("match-1", "mem_remove")]
        choices = drive(policy, runnable, 64)
        # The insert twin is only scheduled on relief steps (step 0 here).
        assert choices.count("match-0") <= 2
        assert "match-1" in choices

    def test_delay_deletes_avoids_removes(self):
        policy = AdversarialPolicy("delay-deletes", seed=0)
        runnable = [("match-0", "mem_insert"), ("match-1", "mem_remove")]
        choices = drive(policy, runnable, 64)
        assert choices.count("match-1") <= 2

    def test_starve_quiescence_rarely_runs_control(self):
        policy = AdversarialPolicy("starve-quiescence", seed=0)
        runnable = [("MainThread", "quiesce_wait"), ("match-0", "mem_insert")]
        choices = drive(policy, runnable, 64)
        assert choices.count("MainThread") <= 2

    def test_victim_runs_when_alone(self):
        policy = AdversarialPolicy("starve-worker", seed=0)
        assert policy.choose([("match-0", "queue_pop")], 1) == "match-0"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            AdversarialPolicy("fork-bomb", seed=0)


class TestFactory:
    @pytest.mark.parametrize(
        "spec, expected_name",
        [
            ("random", "random"),
            ("pct", "pct:3"),
            ("pct:5", "pct:5"),
            ("adversarial:delay-plus", "adversarial:delay-plus"),
            ("adversarial:starve-worker", "adversarial:starve-worker"),
        ],
    )
    def test_specs(self, spec, expected_name):
        assert make_policy(spec, 0).name == expected_name

    def test_unknown_spec(self):
        with pytest.raises(ValueError):
            make_policy("roundrobin", 0)
