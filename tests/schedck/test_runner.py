"""Differential schedule runs: determinism, config grid, fuzz smoke."""

import pytest

from repro.ops5.wme import WMEChange, WorkingMemory
from repro.schedck.runner import DEFAULT_GRID, EngineConfig, run_schedule, sweep


class TestRunSchedule:
    def test_report_byte_identical_across_runs(self):
        a = run_schedule(17)
        b = run_schedule(17)
        assert a.format() == b.format()

    @pytest.mark.parametrize("policy", [
        "random", "pct", "adversarial:delay-plus", "adversarial:delay-deletes",
        "adversarial:starve-quiescence", "adversarial:starve-worker",
    ])
    def test_all_policies_pass_on_shallow_corpus(self, policy):
        report = run_schedule(23, policy_spec=policy)
        assert report.ok, report.format()
        assert not report.truncated

    @pytest.mark.parametrize("config", DEFAULT_GRID, ids=lambda c: c.describe())
    def test_full_config_grid(self, config):
        report = run_schedule(5, config=config)
        assert report.ok, report.format()

    def test_pinned_program_requires_batches(self):
        with pytest.raises(ValueError):
            run_schedule(0, program="(p r (a) --> (halt))")

    def test_pinned_program_and_batches(self):
        wm = WorkingMemory()
        batch = [
            WMEChange(1, wm.add("a", {"x": 1})),
            WMEChange(1, wm.add("b", {"x": 1})),
        ]
        report = run_schedule(
            3,
            program="(p r (a ^x <v>) (b ^x <v>) --> (halt))",
            batches=[batch],
        )
        assert report.ok, report.format()
        stats = dict(report.stats)
        assert stats["tokens_emitted.seq"] == stats["tokens_emitted.par"] == 1

    def test_seed_reproduces_program_shape(self):
        a = run_schedule(29)
        b = run_schedule(29)
        assert (a.n_rules, a.n_changes, a.n_batches, a.steps) == (
            b.n_rules, b.n_changes, b.n_batches, b.steps
        )

    def test_engine_error_reported_not_raised(self):
        # A pinned schedule on a broken network must come back as an
        # engine_error violation, never an exception out of the runner.
        wm = WorkingMemory()
        batch = [WMEChange(1, wm.add("a", {"x": 1}))]
        report = run_schedule(
            0,
            program="(p r (a ^x <v>) (b ^x <v>) --> (halt))",
            batches=[batch],
            max_steps=50,  # force truncation path too, while we're here
        )
        assert isinstance(report.ok, bool)


class TestSweep:
    def test_smoke_sweep_passes(self):
        result = sweep(24, base_seed=100)
        assert result.ok, result.format()
        assert result.n_schedules == 24

    def test_sweep_rotates_configs_and_policies(self):
        seen = set()
        result = sweep(
            len(DEFAULT_GRID) * 2,
            base_seed=200,
            on_report=lambda r: seen.add((r.config, r.policy)),
        )
        assert result.ok, result.format()
        assert len(seen) == len(DEFAULT_GRID) * 2

    def test_sweep_reports_failures(self):
        # An impossible invariant is simulated by a custom config run
        # recorded as failing; here we just check the formatting path.
        result = sweep(2, base_seed=300)
        assert "schedck sweep: 2 schedules" in result.format()
