"""Deterministic reproduction of the multi-queue rubik livelock.

The cross-engine conformance suite originally pinned the threaded
engine to ``n_queues=1`` because rubik under multiple task queues
stopped terminating: with LIFO queues and ``n_queues == n_workers``
(every worker a dedicated home queue), the ``+``/``-`` halves of each
conjugate pair land on different queues, a delayed delete half
double-counts through every join level it lags, and the regenerated
work re-splits the same way — amplification sustained at or above the
annihilation rate.  That was a wall-clock observation (a hung pytest
run); this file makes it an executable, deterministic fact, the way
``test_deep_chain.py`` pinned the thread-schedule blow-up.

Three ingredients, all pinned:

* the ``conjugate-storm`` workload — rubik's match-phase shape
  distilled: a deep chain with a width-2 cross product per level,
  modified in one conjugate-heavy batch;
* the ``burst:50`` schedule — timeslice emulation; long per-thread
  runs are what sustain the amplification (uniform-random
  interleaving annihilates pairs too quickly to diverge);
* the livelock alignment ``n_workers=2, n_queues=2``.

Under round-robin dispatch the run never reaches quiescence inside a
step budget more than double what the fixed twin needs; under
``rebalance`` dispatch — same seed, same schedule, same workload, one
knob changed — it completes with *less* match work than sequential.
Round-robin off the alignment (1 or 3 queues) also completes, so the
queue/worker alignment, not round-robin itself, is the trigger.

Replay (first command exits 1 — truncated; second exits 0):

    python -m repro schedck --workload conjugate-storm --policy burst:50 \
        --workers 2 --queues 2 --dispatch round-robin --max-steps 150000
    python -m repro schedck --workload conjugate-storm --policy burst:50 \
        --workers 2 --queues 2 --dispatch rebalance --max-steps 150000
"""

import pytest

from repro.schedck.runner import EngineConfig, run_schedule
from repro.schedck.workloads import conjugate_storm_case

PINNED_SEED = 0
PINNED_SCHEDULE = "burst:50"
#: Step budget: the rebalance twin finishes in ~72k steps; round-robin
#: at the alignment is still amplifying past 230k.
MAX_STEPS = 150_000

NAIVE = EngineConfig(n_workers=2, n_queues=2, dispatch="round-robin")
FIXED = EngineConfig(n_workers=2, n_queues=2, dispatch="rebalance")


def run_pinned(config):
    program, batches = conjugate_storm_case()
    return run_schedule(
        PINNED_SEED,
        config=config,
        policy_spec=PINNED_SCHEDULE,
        program=program,
        batches=batches,
        max_steps=MAX_STEPS,
    )


def test_naive_dispatch_livelocks_at_the_alignment():
    """Round-robin at ``n_queues == n_workers`` exhausts a step budget
    the fixed twin finishes half of, with the match work more than
    doubled — liveness failure, not corruption: once the scheduler
    gives up and lets the run free-run to quiescence, every fixpoint
    invariant still holds (the paper's §3.2 claim boundary)."""
    report = run_pinned(NAIVE)
    assert report.truncated, report.format()
    assert report.ok, report.format()
    stats = dict(report.stats)
    assert stats["tokens_emitted.par"] > 2 * stats["tokens_emitted.seq"]


def test_rebalance_dispatch_fixes_the_livelock():
    """Same seed, same schedule, same workload, same alignment — only
    the dispatch policy differs — and the run completes well inside
    the budget with less match work than sequential, because spilling
    hot queues keeps conjugate twins from streaming apart."""
    report = run_pinned(FIXED)
    assert not report.truncated, report.format()
    assert report.ok, report.format()
    stats = dict(report.stats)
    assert stats["tokens_emitted.par"] < 2 * stats["tokens_emitted.seq"]
    # The fix was active, not incidental: the policy actually spilled.
    assert dict(report.telemetry)["policy.rebalances"] > 0


@pytest.mark.parametrize("n_queues", [1, 3])
def test_alignment_not_round_robin_is_the_trigger(n_queues):
    """The same naive dispatch completes when queues and workers are
    NOT aligned: a single shared queue keeps twins in one LIFO stream,
    and a spare queue (``n_queues > n_workers``) is serviced only by
    steals, which re-mix the streams."""
    config = EngineConfig(n_workers=2, n_queues=n_queues, dispatch="round-robin")
    report = run_pinned(config)
    assert not report.truncated, report.format()
    assert report.ok, report.format()


def test_livelock_is_deterministic():
    """Both halves of the reproduction are byte-identical run to run —
    what makes a livelock a regression test at all."""
    assert run_pinned(NAIVE).format() == run_pinned(NAIVE).format()
    assert run_pinned(FIXED).format() == run_pinned(FIXED).format()
