"""The random program/workload generator: validity, bounds, determinism."""

import random

from repro.ops5.parser import parse_program
from repro.rete.network import ReteNetwork
from repro.schedck.progen import ProgenParams, generate, generate_batches, generate_program


class TestPrograms:
    def test_deterministic_per_seed(self):
        assert generate_program(random.Random(7)) == generate_program(random.Random(7))

    def test_seed_changes_program(self):
        programs = {generate_program(random.Random(s)) for s in range(10)}
        assert len(programs) > 1

    def test_every_program_parses_and_compiles(self):
        for seed in range(50):
            source = generate_program(random.Random(seed))
            ReteNetwork.compile(parse_program(source))

    def test_respects_rule_and_ce_bounds(self):
        params = ProgenParams(max_rules=3, max_pos_ces=2)
        for seed in range(30):
            program = parse_program(generate_program(random.Random(seed), params))
            assert 1 <= len(program.productions) <= 3
            for prod in program.productions:
                positives = [ce for ce in prod.ces if not ce.negated]
                assert 1 <= len(positives) <= 2

    def test_negation_can_be_disabled(self):
        params = ProgenParams(allow_negation=False)
        for seed in range(20):
            program = parse_program(generate_program(random.Random(seed), params))
            assert not any(ce.negated for prod in program.productions for ce in prod.ces)


class TestBatches:
    def test_deterministic_per_seed(self):
        a = generate_batches(random.Random(3))
        b = generate_batches(random.Random(3))
        assert [[(c.sign, c.wme) for c in batch] for batch in a] == [
            [(c.sign, c.wme) for c in batch] for batch in b
        ]

    def test_deletes_only_live_wmes(self):
        for seed in range(30):
            live = set()
            for batch in generate_batches(random.Random(seed)):
                for change in batch:
                    if change.sign == 1:
                        assert change.wme.timetag not in live
                        live.add(change.wme.timetag)
                    else:
                        assert change.wme.timetag in live
                        live.discard(change.wme.timetag)

    def test_timetags_unique_and_increasing(self):
        for seed in range(20):
            tags = [
                c.wme.timetag
                for batch in generate_batches(random.Random(seed))
                for c in batch
                if c.sign == 1
            ]
            assert tags == sorted(tags)
            assert len(tags) == len(set(tags))


class TestGenerate:
    def test_case_is_one_rng_stream(self):
        src_a, batches_a = generate(random.Random(11))
        src_b, batches_b = generate(random.Random(11))
        assert src_a == src_b
        assert len(batches_a) == len(batches_b)
