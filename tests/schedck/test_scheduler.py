"""The cooperative scheduler: serialization, determinism, liveness."""

import threading

import pytest

from repro.parallel import hooks
from repro.schedck.policies import SeededRandomPolicy
from repro.schedck.scheduler import CooperativeScheduler, HarnessSession


@pytest.fixture(autouse=True)
def _clean_hooks():
    yield
    hooks.uninstall()


def run_cooperative(n_threads, body, policy=None, **kw):
    """Run ``body(i)`` in ``n_threads`` threads under a fresh scheduler,
    with the calling thread playing the control role (it polls for
    completion at a quiescence-style yield point, exactly like the
    engine's TaskCount wait); returns the scheduler afterwards."""
    scheduler = CooperativeScheduler(
        policy or SeededRandomPolicy(0),
        expected_threads=n_threads + 1,
        **kw,
    )
    finished = []

    def wrapped(i):
        try:
            body(i)
        finally:
            finished.append(i)
            hooks.thread_exit()

    threads = [
        threading.Thread(target=wrapped, args=(i,), name=f"coop-{i}", daemon=True)
        for i in range(n_threads)
    ]
    with HarnessSession(scheduler):
        for t in threads:
            t.start()
        while len(finished) < n_threads and not scheduler.truncated:
            hooks.yield_point("quiesce_wait", None)
        scheduler.deactivate()
    for t in threads:
        t.join(10)
    return scheduler


class TestSerialization:
    def test_one_thread_runs_at_a_time(self):
        active = []
        overlaps = []

        def body(i):
            for _ in range(20):
                hooks.yield_point("mem_insert", i)
                active.append(i)
                if len(active) > 1:
                    overlaps.append(tuple(active))
                active.remove(i)

        run_cooperative(3, body)
        assert overlaps == []

    def test_all_threads_complete(self):
        counts = {}

        def body(i):
            for n in range(10):
                hooks.yield_point("queue_push", None)
                counts[i] = n + 1

        run_cooperative(4, body)
        assert counts == {0: 10, 1: 10, 2: 10, 3: 10}


class TestDeterminism:
    def _trace(self, seed):
        order = []

        def body(i):
            for _ in range(15):
                hooks.yield_point("mem_insert", i)
                order.append(i)

        sched = run_cooperative(3, body, policy=SeededRandomPolicy(seed))
        return order, [name for _, name, _ in sched.trace]

    def test_same_seed_same_schedule(self):
        assert self._trace(5) == self._trace(5)

    def test_different_seed_different_schedule(self):
        assert self._trace(1)[0] != self._trace(2)[0]


class TestLiveness:
    def test_waiting_loops_do_not_wedge(self):
        # One thread spins on a flag only another thread sets: with
        # every loop iteration yielding, the scheduler must interleave
        # them to completion.
        flag = []

        def body(i):
            if i == 0:
                while not flag:
                    hooks.yield_point("lock_spin", None)
            else:
                for _ in range(5):
                    hooks.yield_point("mem_insert", None)
                flag.append(1)

        sched = run_cooperative(2, body)
        assert flag

    def test_max_steps_truncates(self):
        def body(i):
            for _ in range(100):
                hooks.yield_point("mem_insert", None)

        sched = run_cooperative(2, body, max_steps=20)
        assert sched.truncated
        assert sched.steps == 20

    def test_thread_exit_hands_turn_over(self):
        # A thread that dies right after being scheduled must not strand
        # the others (regression for the poison-pill path).
        def body(i):
            hooks.yield_point("queue_pop", None)
            if i == 0:
                return  # dies immediately; wrapped() calls thread_exit
            for _ in range(5):
                hooks.yield_point("mem_insert", None)

        run_cooperative(3, body)


class TestStartGate:
    def test_no_decisions_before_all_threads_park(self):
        sched = CooperativeScheduler(SeededRandomPolicy(0), expected_threads=3)
        started = []

        def body():
            hooks.yield_point("queue_pop", None)
            started.append(threading.current_thread().name)
            hooks.thread_exit()

        with HarnessSession(sched):
            t1 = threading.Thread(target=body, name="gate-0", daemon=True)
            t1.start()
            t1.join(0.3)
            # Only one of three expected threads has parked: it must
            # still be waiting, with no scheduling decisions made.
            assert t1.is_alive()
            assert sched.steps == 0
            t2 = threading.Thread(target=body, name="gate-1", daemon=True)
            t2.start()
            hooks.yield_point("queue_push", None)  # third participant
            sched.deactivate()
            t1.join(10)
            t2.join(10)
        assert sorted(started) == ["gate-0", "gate-1"]
