"""The quiescence-point invariant checks detect what they claim to."""

from collections import Counter

from repro.ops5.parser import parse_program
from repro.ops5.wme import WMEChange, WorkingMemory
from repro.rete.matcher import SequentialMatcher
from repro.rete.network import ReteNetwork
from repro.schedck.invariants import (
    check_census,
    check_conflict_set,
    check_quiescence,
    memory_census,
)

PROGRAM = "(p r (c0 ^a <x>) (c1 ^a <x>) --> (halt))"


def matched_memory():
    network = ReteNetwork.compile(parse_program(PROGRAM))
    matcher = SequentialMatcher(network)
    wm = WorkingMemory()
    changes = [WMEChange(1, wm.add("c0", {"a": 1})), WMEChange(1, wm.add("c1", {"a": 1}))]
    matcher.process_changes(changes)
    return matcher, network


class TestMemoryCensus:
    def test_equal_memories_pass(self):
        matcher, network = matched_memory()
        census = memory_census(matcher.memory, network)
        assert census  # both sides of the join hold a token
        assert check_census(0, Counter(census), Counter(census)) == []

    def test_orphaned_token_detected(self):
        matcher, network = matched_memory()
        expected = memory_census(matcher.memory, network)
        node = network.two_input_nodes()[0]
        extra = next(iter(matcher.memory.items(node.node_id, "R")))
        matcher.memory.insert(node.node_id, "R", ("orphan",), extra)
        violations = check_census(0, memory_census(matcher.memory, network), expected)
        assert violations
        assert "extra" in violations[0].detail

    def test_duplicated_token_detected(self):
        matcher, network = matched_memory()
        expected = memory_census(matcher.memory, network)
        node = network.two_input_nodes()[0]
        item = next(iter(matcher.memory.items(node.node_id, "R")))
        key = node.key_for("R", item)
        matcher.memory.insert(node.node_id, "R", key, item)
        violations = check_census(0, memory_census(matcher.memory, network), expected)
        assert any("duplicated" in v.detail for v in violations)

    def test_lost_token_detected(self):
        matcher, network = matched_memory()
        expected = memory_census(matcher.memory, network)
        node = network.two_input_nodes()[0]
        item = next(iter(matcher.memory.items(node.node_id, "R")))
        key = node.key_for("R", item)
        matcher.memory.remove(node.node_id, "R", key, item.key)
        violations = check_census(0, memory_census(matcher.memory, network), expected)
        assert violations
        assert "missing" in violations[0].detail


class TestConflictSet:
    def test_equal_sets_pass(self):
        cs = Counter({("r", (1, 2)): 1})
        assert check_conflict_set(0, cs, Counter(cs)) == []

    def test_zero_counts_are_ignored(self):
        par = Counter({("r", (1, 2)): 1, ("r", (3, 4)): 0})
        seq = Counter({("r", (1, 2)): 1})
        assert check_conflict_set(0, par, seq) == []

    def test_extra_instantiation_detected(self):
        par = Counter({("r", (1, 2)): 1, ("r", (3, 4)): 1})
        seq = Counter({("r", (1, 2)): 1})
        violations = check_conflict_set(1, par, seq)
        assert violations and violations[0].batch == 1
        assert "extra" in violations[0].detail

    def test_multiplicity_mismatch_detected(self):
        par = Counter({("r", (1, 2)): 2})
        seq = Counter({("r", (1, 2)): 1})
        violations = check_conflict_set(0, par, seq)
        assert violations
        assert "multiplicities" in violations[0].detail


class TestQuiescence:
    class _FakeTaskCount:
        def __init__(self, value=0, min_value=0):
            self.value = value
            self.min_value = min_value

    class _FakeMemory:
        def __init__(self, pending=0):
            self.pending_deletes = pending

    class _FakeMatcher:
        def __init__(self, value=0, min_value=0, pending=0):
            self.taskcount = TestQuiescence._FakeTaskCount(value, min_value)
            self.memory = TestQuiescence._FakeMemory(pending)

    def test_clean_matcher_passes(self):
        assert check_quiescence(0, self._FakeMatcher()) == []

    def test_nonzero_taskcount_detected(self):
        violations = check_quiescence(0, self._FakeMatcher(value=3))
        assert any(v.invariant == "taskcount" for v in violations)

    def test_negative_excursion_detected(self):
        violations = check_quiescence(0, self._FakeMatcher(min_value=-1))
        assert any("negative" in v.detail for v in violations)

    def test_parked_deletes_detected(self):
        violations = check_quiescence(2, self._FakeMatcher(pending=2))
        assert any(v.invariant == "extra_deletes" for v in violations)
