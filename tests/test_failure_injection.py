"""Failure-injection tests: the system detects corruption rather than
silently producing wrong matches."""

import pytest

from repro.ops5.conflict import ConflictSet
from repro.ops5.errors import RuntimeOps5Error
from repro.ops5.interpreter import Interpreter
from repro.ops5.parser import parse_program
from repro.ops5.wme import WME, WMEChange, WorkingMemory
from repro.parallel.conjugate import ConjugateMemory
from repro.parallel.engine import ParallelMatcher
from repro.rete.matcher import SequentialMatcher
from repro.rete.memories import HashMemorySystem
from repro.rete.network import ReteNetwork
from repro.rete.token import Token


class TestSequentialStrictness:
    def test_phantom_delete_detected(self):
        """A delete for a WME the matcher never saw is a driver bug and
        must raise, not be absorbed."""
        network = ReteNetwork.compile(
            parse_program("(p r (a ^x <v>) (b ^y <v>) --> (halt))")
        )
        matcher = SequentialMatcher(network)
        ghost = WME.make("a", {"x": 1}, 999)
        with pytest.raises(RuntimeError):
            matcher.process_changes([WMEChange(-1, ghost)])

    def test_double_delete_detected(self):
        network = ReteNetwork.compile(
            parse_program("(p r (a ^x <v>) (b ^y <v>) --> (halt))")
        )
        matcher = SequentialMatcher(network)
        wm = WorkingMemory()
        wme = wm.add("a", {"x": 1})
        matcher.process_changes([WMEChange(1, wme)])
        matcher.process_changes([WMEChange(-1, wme)])
        with pytest.raises(RuntimeError):
            matcher.process_changes([WMEChange(-1, wme)])


class TestConflictSetGuards:
    def test_strict_set_rejects_corruption(self):
        from tests.ops5.test_conflict import prod, token

        cs = ConflictSet(strict=True)
        cs.apply(prod("r"), token(1), +1)
        with pytest.raises(RuntimeOps5Error):
            cs.apply(prod("r"), token(1), +1)

    def test_parallel_interpreter_validates_after_each_batch(self):
        """If the matcher hands back unbalanced deltas, the interpreter's
        post-batch validation catches it immediately."""
        program = parse_program("(p r (a) --> (halt))")
        network = ReteNetwork.compile(program)

        class LyingMatcher:
            strict_cs = False

            def process_changes(self, changes):
                from repro.rete.nodes import CSDelta

                # A remove with no matching add: count goes negative.
                return [
                    CSDelta(program.productions[0], Token.single(c.wme), -1)
                    for c in changes
                ]

        interp = Interpreter(program, matcher=LyingMatcher())
        with pytest.raises(RuntimeOps5Error):
            interp.add_wme("a")


class TestConjugateAccounting:
    def test_unbalanced_parked_deletes_detected(self):
        """A parked delete that never meets its add means tokens were
        lost; the engine refuses to call the batch complete."""
        program = parse_program("(p r (a ^x <v>) (b ^y <v>) --> (halt))")
        network = ReteNetwork.compile(program)
        matcher = ParallelMatcher(network, n_workers=1)
        try:
            ghost = WME.make("a", {"x": 1}, 999)
            with pytest.raises(RuntimeError):
                matcher.process_changes([WMEChange(-1, ghost)])
        finally:
            matcher.close()

    def test_conjugate_memory_isolates_nodes(self):
        memory = ConjugateMemory(HashMemorySystem(16))
        memory.remove(1, "L", (), (5,))
        # The park must not leak into other nodes' inserts.
        assert memory.insert(2, "L", (), Token.single(WME.make("c", {}, 5))) is True
        assert memory.pending_deletes == 1


class TestWorkerFaultPropagation:
    def test_exception_in_worker_reaches_control(self):
        program = parse_program("(p r (a ^x <v>) (b ^y <v>) --> (halt))")
        network = ReteNetwork.compile(program)
        matcher = ParallelMatcher(network, n_workers=2)
        network.two_input_nodes()[0].key_for = None  # type: ignore[assignment]
        wm = WorkingMemory()
        with pytest.raises(RuntimeError, match="match process failed"):
            matcher.process_changes([WMEChange(1, wm.add("a", {"x": 1}))])

    def test_failed_matcher_refuses_further_work(self):
        program = parse_program("(p r (a ^x <v>) (b ^y <v>) --> (halt))")
        network = ReteNetwork.compile(program)
        matcher = ParallelMatcher(network, n_workers=1)
        network.two_input_nodes()[0].key_for = None  # type: ignore[assignment]
        wm = WorkingMemory()
        with pytest.raises(RuntimeError):
            matcher.process_changes([WMEChange(1, wm.add("a", {"x": 1}))])
        with pytest.raises(RuntimeError):
            matcher.process_changes([])
