"""``MatchStats.activations_by_kind`` across every node kind on the
tourney benchmark, sequential vs parallel.

Tourney is the one small benchmark with negated condition elements, so
a run exercises join, not, *and* term beta kinds.  Two conventions are
pinned here:

* "root" is not a beta activation — WM changes entering the
  constant-test network are counted as ``wme_changes`` (one
  ``ChangeRecord`` each in a recorded trace), never in
  ``node_activations``.  Adding root there would silently change the
  Table 4-1 numbers.
* The parallel engine agrees with the sequential matcher on *results*
  (firings, wme_changes, the kinds of work) but may perform **more**
  activations per kind: batched changes pop LIFO and out-of-order
  deletes trigger conjugate-pair extra work, exactly the overhead the
  paper attributes to the parallel decomposition.
"""

from repro.ops5.interpreter import Interpreter
from repro.ops5.parser import parse_program
from repro.parallel.engine import ParallelMatcher
from repro.programs import tourney
from repro.rete.network import ReteNetwork
from repro.rete.trace import TraceRecorder

SOURCE = tourney.source(n_teams=6, n_rounds=5)
MAX_CYCLES = 400
BETA_KINDS = {"join", "not", "term"}


def sequential_run(recorder=None):
    interp = Interpreter(SOURCE, recorder=recorder)
    result = interp.run(max_cycles=MAX_CYCLES)
    return interp, result


def parallel_run(n_workers=3, n_queues=2):
    program = parse_program(SOURCE)
    network = ReteNetwork.compile(program)
    with ParallelMatcher(network, n_workers=n_workers, n_queues=n_queues) as m:
        interp = Interpreter(program, matcher=m, network=network)
        result = interp.run(max_cycles=MAX_CYCLES)
        return interp.stats, result


class TestSequential:
    def test_all_beta_kinds_present(self):
        interp, _result = sequential_run()
        by_kind = interp.stats.activations_by_kind
        assert set(by_kind) == BETA_KINDS
        assert all(by_kind[k] > 0 for k in BETA_KINDS)

    def test_kinds_sum_to_node_activations(self):
        interp, _result = sequential_run()
        stats = interp.stats
        assert sum(stats.activations_by_kind.values()) == stats.node_activations

    def test_root_is_wme_changes_not_an_activation(self):
        recorder = TraceRecorder()
        interp, _result = sequential_run(recorder=recorder)
        stats = interp.stats
        assert "root" not in stats.activations_by_kind
        trace = recorder.trace
        # Root (alpha) work: one recorded change per WM change, and the
        # recorded beta tasks match the by-kind counters exactly.
        assert trace.n_changes == stats.wme_changes
        assert trace.summary()["by_kind"] == stats.activations_by_kind


class TestParallelAgreement:
    def test_parallel_agrees_with_sequential(self):
        seq_interp, seq_result = sequential_run()
        seq = seq_interp.stats
        par, par_result = parallel_run()

        # Hard agreement: same firings, same WM changes, same kinds of
        # work, and internally-consistent by-kind totals on both sides.
        assert [
            (f.cycle, f.production, f.timetags) for f in par_result.firings
        ] == [(f.cycle, f.production, f.timetags) for f in seq_result.firings]
        assert par.wme_changes == seq.wme_changes
        assert set(par.activations_by_kind) == set(seq.activations_by_kind)
        assert sum(par.activations_by_kind.values()) == par.node_activations

        # The parallel engine never does *less* work per kind: conjugate
        # extra-deletes and LIFO batch order can only add activations.
        for kind in BETA_KINDS:
            assert par.activations_by_kind[kind] >= seq.activations_by_kind[kind]
