"""Tests for network introspection and Graphviz export."""

import pytest

from repro.ops5.parser import parse_program
from repro.rete.explain import describe_network, sharing_report, to_dot
from repro.rete.network import ReteNetwork
from tests.conftest import FIGURE_2_2


@pytest.fixture
def net():
    return ReteNetwork.compile(parse_program(FIGURE_2_2))


class TestDescribe:
    def test_mentions_counts(self, net):
        text = describe_network(net)
        assert "productions: 2" in text
        assert "terminal=2" in text

    def test_reports_shared_alpha(self, net):
        # The (C2 ^attr1 15) chain is shared between p1 and p2.
        text = describe_network(net)
        assert "shared alpha terminals: 1" in text

    def test_cross_product_detection(self):
        net = ReteNetwork.compile(
            parse_program("(p r (a ^x <v>) (b ^y <w>) --> (halt))")
        )
        assert "cross-product joins (empty hash key): 1" in describe_network(net)


class TestSharing:
    def test_figure_2_2_sharing(self, net):
        report = sharing_report(net)
        # p1+p2 declare 3 constant tests (attr2=12, attr1=15 twice);
        # sharing collapses the duplicated (C2 ^attr1 15).
        assert report["tests_without_sharing"] == 3
        assert report["constant_nodes"] == 2
        assert report["sharing_factor"] == 1.5

    def test_heavy_sharing_in_weaver(self):
        from repro.programs import weaver

        net = ReteNetwork.compile(parse_program(weaver.source(grid=7, n_nets=1)))
        report = sharing_report(net)
        # 637 generated rules share band/class tests massively.
        assert report["sharing_factor"] > 3.0


class TestDot:
    def test_valid_structure(self, net):
        dot = to_dot(net, title="fig22")
        assert dot.startswith('digraph "fig22" {')
        assert dot.rstrip().endswith("}")
        assert "root" in dot
        assert dot.count("->") > 5

    def test_terminals_labeled_by_production(self, net):
        dot = to_dot(net)
        assert '"p1"' in dot and '"p2"' in dot

    def test_not_node_shape(self, net):
        assert "shape=diamond" in to_dot(net)

    def test_balanced_braces(self, net):
        dot = to_dot(net)
        assert dot.count("{") == dot.count("}")
