"""Unit tests for the linear (vs1) and hash (vs2) memory systems."""

import pytest

from repro.rete.memories import (
    HashMemorySystem,
    LinearMemorySystem,
    NotEntry,
    make_memory,
    stable_hash,
)
from repro.ops5.wme import WME
from repro.rete.token import Token


def tok(*tags: int) -> Token:
    return Token.of(tuple(WME.make("c", {}, t) for t in tags))


@pytest.fixture(params=["linear", "hash"])
def memory(request):
    return make_memory(request.param)


class TestCommonBehaviour:
    def test_insert_then_remove(self, memory):
        t = tok(1)
        assert memory.insert(5, "L", ("k",), t) is True
        found, examined = memory.remove(5, "L", ("k",), t.key)
        assert found is t
        assert examined == 1
        assert memory.side_size(5, "L") == 0

    def test_remove_missing_returns_none(self, memory):
        memory.insert(5, "L", ("k",), tok(1))
        found, _ = memory.remove(5, "L", ("k",), (99,))
        assert found is None

    def test_side_size_tracks(self, memory):
        for i in range(4):
            memory.insert(1, "R", ("k",), tok(i))
        assert memory.side_size(1, "R") == 4
        assert memory.side_size(1, "L") == 0

    def test_lookup_opposite_side(self, memory):
        t = tok(1)
        memory.insert(1, "R", ("k",), t)
        items, examined = memory.lookup_opposite(1, "L", ("k",))
        assert list(items) == [t]
        assert examined == 1

    def test_nodes_isolated(self, memory):
        memory.insert(1, "L", ("k",), tok(1))
        assert memory.side_size(2, "L") == 0
        items, _ = memory.lookup_opposite(2, "R", ("k",))
        assert list(items) == []

    def test_clear(self, memory):
        memory.insert(1, "L", ("k",), tok(1))
        memory.clear()
        assert memory.total_tokens() == 0

    def test_items_iteration(self, memory):
        memory.insert(3, "L", ("a",), tok(1))
        memory.insert(3, "L", ("b",), tok(2))
        assert len(list(memory.items(3, "L"))) == 2


class TestLinearScans:
    def test_opposite_examines_everything(self):
        mem = LinearMemorySystem()
        for i in range(10):
            mem.insert(1, "R", (i,), tok(i))
        _, examined = mem.lookup_opposite(1, "L", (3,))
        assert examined == 10  # key ignored: full scan

    def test_delete_examines_up_to_position(self):
        mem = LinearMemorySystem()
        tokens = [tok(i) for i in range(10)]
        for t in tokens:
            mem.insert(1, "L", (), t)
        _, examined = mem.remove(1, "L", (), tokens[6].key)
        assert examined == 7


class TestHashBuckets:
    def test_opposite_examines_bucket_only(self):
        mem = HashMemorySystem()
        for i in range(10):
            mem.insert(1, "R", (i % 2,), tok(i))
        _, examined = mem.lookup_opposite(1, "L", (0,))
        assert examined == 5

    def test_empty_bucket_nonempty_memory(self):
        mem = HashMemorySystem()
        mem.insert(1, "R", ("x",), tok(1))
        items, examined = mem.lookup_opposite(1, "L", ("y",))
        assert list(items) == []
        assert examined == 0
        assert mem.side_size(1, "R") == 1

    def test_bucket_cleanup_on_empty(self):
        mem = HashMemorySystem()
        t = tok(1)
        mem.insert(1, "L", ("k",), t)
        mem.remove(1, "L", ("k",), t.key)
        assert mem.bucket_sizes("L") == []

    def test_line_of_stable_and_in_range(self):
        mem = HashMemorySystem(n_lines=64)
        line = mem.line_of(7, ("red", 3))
        assert 0 <= line < 64
        assert line == mem.line_of(7, ("red", 3))

    def test_lines_differ_by_key(self):
        mem = HashMemorySystem(n_lines=4096)
        lines = {mem.line_of(7, (c,)) for c in ("a", "b", "c", "d", "e")}
        assert len(lines) > 1

    def test_n_lines_validation(self):
        with pytest.raises(ValueError):
            HashMemorySystem(n_lines=0)


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash(("red", 1, 2.5)) == stable_hash(("red", 1, 2.5))

    def test_distinguishes_values(self):
        assert stable_hash(("a",)) != stable_hash(("b",))

    def test_handles_none(self):
        assert isinstance(stable_hash((None,)), int)

    def test_nested_tuples(self):
        assert stable_hash(((1, "x"), 2)) != stable_hash(((1, "y"), 2))


class TestNotEntry:
    def test_wraps_token_key(self):
        t = tok(3, 4)
        entry = NotEntry(t, count=2)
        assert entry.key == (3, 4)
        assert entry.count == 2

    def test_storable_in_memories(self, memory):
        t = tok(5)
        memory.insert(1, "L", (), NotEntry(t))
        found, _ = memory.remove(1, "L", (), t.key)
        assert isinstance(found, NotEntry)


class TestFactory:
    def test_make_memory(self):
        assert make_memory("linear").kind == "linear"
        assert make_memory("hash").kind == "hash"

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_memory("btree")
