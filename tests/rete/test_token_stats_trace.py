"""Unit tests for tokens, match statistics, and trace recording."""

import pytest

from repro.ops5.wme import WME
from repro.rete.stats import MatchStats
from repro.rete.token import ADD, DELETE, EMPTY, Token
from repro.rete.trace import MatchTrace, TaskRecord, TraceRecorder


def w(tag: int) -> WME:
    return WME.make("c", {"i": tag}, tag)


class TestToken:
    def test_of_builds_key_from_timetags(self):
        t = Token.of((w(3), w(7)))
        assert t.key == (3, 7)
        assert len(t) == 2

    def test_single(self):
        t = Token.single(w(9))
        assert t.key == (9,)

    def test_extend(self):
        t = Token.single(w(1)).extend(w(2))
        assert t.key == (1, 2)
        assert t.wmes[1].timetag == 2

    def test_empty(self):
        assert EMPTY.key == ()
        assert len(EMPTY) == 0

    def test_equality_by_content(self):
        assert Token.of((w(1),)) == Token.of((w(1),))

    def test_signs(self):
        assert ADD == 1 and DELETE == -1

    def test_str(self):
        assert str(Token.of((w(1), w(2)))) == "[1 2]"


class TestMatchStats:
    def test_record_activation_by_kind(self):
        s = MatchStats()
        s.record_activation("join")
        s.record_activation("join")
        s.record_activation("term")
        assert s.node_activations == 3
        assert s.activations_by_kind == {"join": 2, "term": 1}

    def test_opposite_means(self):
        s = MatchStats()
        s.record_opposite("L", 4)
        s.record_opposite("L", 8)
        s.record_opposite("R", 2)
        assert s.mean_opp_left == 6.0
        assert s.mean_opp_right == 2.0

    def test_zero_examined_ignored(self):
        # The paper counts only activations with non-empty opposite
        # memories; zero-scan probes never reach record_opposite.
        s = MatchStats()
        s.record_opposite("L", 0)
        assert s.opp_count_left == 0
        assert s.mean_opp_left == 0.0

    def test_same_delete_means(self):
        s = MatchStats()
        s.record_same_delete("R", 10)
        assert s.mean_same_del_right == 10.0
        assert s.mean_same_del_left == 0.0

    def test_summary_keys(self):
        s = MatchStats()
        summary = s.summary()
        assert {"wme_changes", "node_activations", "mean_opp_left"} <= set(summary)


class TestTraceRecorder:
    def test_cycle_and_change_structure(self):
        rec = TraceRecorder()
        rec.begin_cycle("r1", n_rhs_actions=3)
        rec.begin_change(n_const_tests=5, n_alpha_hits=2)
        tid = rec.add_task(-1, "join", 7, "L", 1, line=3,
                           opp_examined=2, same_examined=0, n_children=1)
        rec.add_task(tid, "term", 8, "L", 1, line=-1,
                     opp_examined=0, same_examined=0, n_children=0)
        rec.end_cycle(cs_deltas=1)

        trace = rec.trace
        assert trace.n_tasks == 2
        assert trace.n_changes == 1
        cyc = trace.cycles[0]
        assert cyc.production == "r1"
        assert cyc.cs_deltas == 1
        assert cyc.changes[0].first_level == [0]

    def test_children_index(self):
        rec = TraceRecorder()
        rec.begin_cycle("r", 1)
        rec.begin_change(1, 1)
        a = rec.add_task(-1, "join", 1, "L", 1, 0, 0, 0, 2)
        b = rec.add_task(a, "join", 2, "L", 1, 0, 0, 0, 0)
        c = rec.add_task(a, "term", 3, "L", 1, -1, 0, 0, 0)
        children = rec.trace.children_index()
        assert children[a] == [b, c]
        assert children[b] == []

    def test_startup_changes_get_synthetic_cycle(self):
        rec = TraceRecorder()
        rec.begin_change(1, 0)
        assert rec.trace.cycles[0].production == "<startup>"

    def test_summary(self):
        rec = TraceRecorder()
        rec.begin_cycle("r", 1)
        rec.begin_change(1, 1)
        rec.add_task(-1, "join", 1, "L", 1, 0, 0, 0, 0)
        s = rec.trace.summary()
        assert s["tasks"] == 1
        assert s["by_kind"] == {"join": 1}
