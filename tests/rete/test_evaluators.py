"""Unit tests for interpreted vs compiled test evaluation."""

import pytest

from repro.ops5.wme import WME
from repro.rete.evaluators import (
    CompiledEvaluator,
    InterpretedEvaluator,
    compare,
    make_evaluator,
)


def w(**attrs) -> WME:
    return WME.make("c", attrs, 1)


class TestCompare:
    def test_equality(self):
        assert compare(1, "=", 1)
        assert not compare(1, "=", 2)
        assert compare("a", "=", "a")

    def test_inequality(self):
        assert compare(1, "<>", 2)
        assert not compare("x", "<>", "x")

    def test_numeric_ordering(self):
        assert compare(1, "<", 2)
        assert compare(2, "<=", 2)
        assert compare(3, ">", 2)
        assert compare(3, ">=", 3)

    def test_string_ordering(self):
        assert compare("a", "<", "b")

    def test_mixed_types_fail_ordering(self):
        assert not compare("a", "<", 1)
        assert not compare(1, ">", "a")

    def test_none_fails_ordering(self):
        assert not compare(None, "<", 1)

    def test_same_type(self):
        assert compare(1, "<=>", 2.5)        # both numeric
        assert compare("a", "<=>", "b")      # both symbolic
        assert not compare(1, "<=>", "a")

    def test_unknown_predicate(self):
        with pytest.raises(ValueError):
            compare(1, "~=", 1)


@pytest.fixture(params=["interpreted", "compiled"])
def evaluator(request):
    return make_evaluator(request.param)


class TestAlphaTests:
    def test_const_eq(self, evaluator):
        test = evaluator.alpha_test(("const", "color", "=", "red"))
        assert test(w(color="red"))
        assert not test(w(color="blue"))
        assert not test(w())

    def test_const_ordering(self, evaluator):
        test = evaluator.alpha_test(("const", "n", ">", 5))
        assert test(w(n=6))
        assert not test(w(n=5))
        assert not test(w(n="six"))

    def test_intra(self, evaluator):
        test = evaluator.alpha_test(("intra", "x", "=", "y"))
        assert test(w(x=1, y=1))
        assert not test(w(x=1, y=2))

    def test_disjunction(self, evaluator):
        test = evaluator.alpha_test(("disj", "c", frozenset({"red", "green"})))
        assert test(w(c="red"))
        assert not test(w(c="blue"))


class TestJoinTests:
    def test_empty_tests_always_true(self, evaluator):
        fn = evaluator.join_tests(())
        assert fn((w(),), w())

    def test_single_eq(self, evaluator):
        fn = evaluator.join_tests((("y", "=", 0, "x"),))
        assert fn((w(x=1),), w(y=1))
        assert not fn((w(x=1),), w(y=2))

    def test_conjunction_of_tests(self, evaluator):
        fn = evaluator.join_tests((("y", "=", 0, "x"), ("z", ">", 0, "x")))
        assert fn((w(x=1),), w(y=1, z=5))
        assert not fn((w(x=1),), w(y=1, z=0))

    def test_position_indexing(self, evaluator):
        fn = evaluator.join_tests((("v", "=", 1, "b"),))
        assert fn((w(b=9), w(b=2)), w(v=2))


class TestKeyFunctions:
    def test_empty_key(self, evaluator):
        lk, rk = evaluator.key_fns(())
        assert lk((w(),)) == ()
        assert rk(w()) == ()

    def test_keys_align(self, evaluator):
        lk, rk = evaluator.key_fns((("y", "=", 0, "x"), ("z", "=", 0, "q")))
        left = lk((w(x=1, q="a"),))
        right = rk(w(y=1, z="a"))
        assert left == right == (1, "a")


class TestModeEquivalence:
    CASES = [
        ("const", "a", "=", 5),
        ("const", "a", "<>", 5),
        ("const", "a", ">=", 5),
        ("intra", "a", "<", "b"),
    ]

    @pytest.mark.parametrize("desc", CASES)
    def test_alpha_agree(self, desc):
        interp = InterpretedEvaluator().alpha_test(desc)
        comp = CompiledEvaluator().alpha_test(desc)
        for wme in (w(a=5, b=6), w(a=4, b=2), w(a="x", b="y"), w()):
            assert interp(wme) == comp(wme), (desc, wme)

    def test_join_agree(self):
        descs = (("y", "=", 0, "x"), ("z", "<=", 0, "x"))
        fi = InterpretedEvaluator().join_tests(descs)
        fc = CompiledEvaluator().join_tests(descs)
        for left, right in [
            ((w(x=3),), w(y=3, z=1)),
            ((w(x=3),), w(y=3, z=9)),
            ((w(x=3),), w(y=4, z=1)),
            ((w(),), w()),
        ]:
            assert fi(left, right) == fc(left, right)

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            make_evaluator("jit")
