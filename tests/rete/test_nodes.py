"""Direct unit tests of node activation logic, including the
update/search phase split the MRSW locking scheme relies on."""

import pytest

from repro.ops5.parser import parse_program
from repro.ops5.wme import WME
from repro.rete.matcher import SequentialMatcher
from repro.rete.memories import make_memory
from repro.rete.network import ReteNetwork
from repro.rete.nodes import Activation, JoinNode, MatchContext, NotNode
from repro.rete.stats import MatchStats
from repro.rete.token import ADD, DELETE, Token


def build(src: str):
    network = ReteNetwork.compile(parse_program(src))
    memory = make_memory("hash")
    ctx = MatchContext(memory, MatchStats(), strict=True)
    return network, memory, ctx


def w(klass, tag, **attrs):
    return WME.make(klass, attrs, tag)


class TestJoinPhases:
    SRC = "(p r (a ^x <v>) (b ^y <v>) --> (halt))"

    def test_update_then_search_equals_activate(self):
        net1, _m1, ctx1 = build(self.SRC)
        net2, _m2, ctx2 = build(self.SRC)
        join1 = next(n for n in net1.beta_nodes if isinstance(n, JoinNode))
        join2 = next(n for n in net2.beta_nodes if isinstance(n, JoinNode))

        right = Token.single(w("b", 1, y=5))
        left = Token.single(w("a", 2, x=5))
        # Engine 1: monolithic activate.
        join1.activate(ctx1, Activation(join1, "R", ADD, right))
        out1 = join1.activate(ctx1, Activation(join1, "L", ADD, left))
        # Engine 2: explicit two-phase (what the parallel engine does).
        act_r = Activation(join2, "R", ADD, right)
        key_r = join2.key_for("R", right)
        assert join2.update_memory(ctx2, act_r, key_r)
        join2.search_opposite(ctx2, act_r, key_r)
        act_l = Activation(join2, "L", ADD, left)
        key_l = join2.key_for("L", left)
        assert join2.update_memory(ctx2, act_l, key_l)
        out2 = join2.search_opposite(ctx2, act_l, key_l)

        assert [a.token.key for a in out1] == [a.token.key for a in out2]

    def test_update_memory_false_stops_on_annihilation(self):
        from repro.parallel.conjugate import ConjugateMemory
        from repro.rete.memories import HashMemorySystem

        net, _m, _ctx = build(self.SRC)
        join = next(n for n in net.beta_nodes if isinstance(n, JoinNode))
        memory = ConjugateMemory(HashMemorySystem(16))
        ctx = MatchContext(memory, MatchStats(), strict=False)
        tok = Token.single(w("a", 3, x=1))
        key = join.key_for("L", tok)
        # Early delete parks; the matching add annihilates (False).
        assert not join.update_memory(ctx, Activation(join, "L", DELETE, tok), key)
        assert not join.update_memory(ctx, Activation(join, "L", ADD, tok), key)
        assert memory.side_size(join.node_id, "L") == 0

    def test_delete_emits_delete_children(self):
        net, _m, ctx = build(self.SRC)
        join = next(n for n in net.beta_nodes if isinstance(n, JoinNode))
        right = Token.single(w("b", 1, y=5))
        left = Token.single(w("a", 2, x=5))
        join.activate(ctx, Activation(join, "R", ADD, right))
        join.activate(ctx, Activation(join, "L", ADD, left))
        out = join.activate(ctx, Activation(join, "L", DELETE, left))
        assert len(out) == 1
        assert out[0].sign == DELETE

    def test_keys_route_by_equality_values(self):
        net, memory, ctx = build(self.SRC)
        join = next(n for n in net.beta_nodes if isinstance(n, JoinNode))
        join.activate(ctx, Activation(join, "R", ADD, Token.single(w("b", 1, y=5))))
        join.activate(ctx, Activation(join, "R", ADD, Token.single(w("b", 2, y=6))))
        out = join.activate(
            ctx, Activation(join, "L", ADD, Token.single(w("a", 3, x=5)))
        )
        assert len(out) == 1  # only the y=5 bucket is probed
        assert ctx.stats.opp_examined_left == 1


class TestNotNodeCounts:
    SRC = "(p r (a ^x <v>) - (b ^y <v>) --> (halt))"

    def _not_node(self, net):
        return next(n for n in net.beta_nodes if isinstance(n, NotNode))

    def test_count_tracks_blockers(self):
        net, memory, ctx = build(self.SRC)
        node = self._not_node(net)
        left = Token.single(w("a", 1, x=7))
        out = node.activate(ctx, Activation(node, "L", ADD, left))
        assert len(out) == 1 and out[0].sign == ADD

        blocker = Token.single(w("b", 2, y=7))
        out = node.activate(ctx, Activation(node, "R", ADD, blocker))
        assert len(out) == 1 and out[0].sign == DELETE

        out = node.activate(ctx, Activation(node, "R", DELETE, blocker))
        assert len(out) == 1 and out[0].sign == ADD

    def test_second_blocker_silent(self):
        net, memory, ctx = build(self.SRC)
        node = self._not_node(net)
        node.activate(ctx, Activation(node, "L", ADD, Token.single(w("a", 1, x=7))))
        node.activate(ctx, Activation(node, "R", ADD, Token.single(w("b", 2, y=7))))
        out = node.activate(
            ctx, Activation(node, "R", ADD, Token.single(w("b", 3, y=7)))
        )
        assert out == []  # count 1 -> 2: no downstream change

    def test_left_delete_while_blocked_silent(self):
        net, memory, ctx = build(self.SRC)
        node = self._not_node(net)
        left = Token.single(w("a", 1, x=7))
        node.activate(ctx, Activation(node, "R", ADD, Token.single(w("b", 2, y=7))))
        assert node.activate(ctx, Activation(node, "L", ADD, left)) == []
        assert node.activate(ctx, Activation(node, "L", DELETE, left)) == []

    def test_mismatched_blocker_ignored(self):
        net, memory, ctx = build(self.SRC)
        node = self._not_node(net)
        out = node.activate(
            ctx, Activation(node, "L", ADD, Token.single(w("a", 1, x=7)))
        )
        assert len(out) == 1
        out = node.activate(
            ctx, Activation(node, "R", ADD, Token.single(w("b", 2, y=99)))
        )
        assert out == []


class TestTracingProbes:
    def test_probe_fields_set_when_tracing(self):
        net, memory, _ = build("(p r (a ^x <v>) (b ^y <v>) --> (halt))")
        ctx = MatchContext(memory, MatchStats(), strict=True, tracing=True)
        join = next(n for n in net.beta_nodes if isinstance(n, JoinNode))
        join.activate(ctx, Activation(join, "R", ADD, Token.single(w("b", 1, y=5))))
        assert ctx.last_line >= 0
        join.activate(ctx, Activation(join, "L", ADD, Token.single(w("a", 2, x=5))))
        assert ctx.last_opp_examined == 1
