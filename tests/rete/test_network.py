"""Unit tests for the Rete network compiler, including the structural
reproduction of the paper's Figure 2-2."""

import pytest

from repro.ops5.errors import CompileError
from repro.ops5.parser import parse_program, parse_production
from repro.ops5.wme import WME
from repro.rete.network import ReteNetwork
from repro.rete.nodes import JoinNode, NotNode, TerminalNode
from tests.conftest import FIGURE_2_2


def compile_src(src: str, mode: str = "compiled") -> ReteNetwork:
    return ReteNetwork.compile(parse_program(src), mode=mode)


class TestFigure22:
    """The network of Figure 2-2: p1 (3 CEs, one negated) and p2 (2 CEs)."""

    @pytest.fixture
    def net(self) -> ReteNetwork:
        return compile_src(FIGURE_2_2)

    def test_node_counts(self, net):
        counts = net.node_counts()
        # Constant tests: class dispatch is implicit; the figure's
        # attr1=15 (C2), attr2=12 (C1) tests become constant-test nodes.
        assert counts["terminal"] == 2
        # p1: join(C1,C2) + not(C3); p2: join(C2,C4).
        assert counts["join"] == 2
        assert counts["not"] == 1

    def test_constant_test_sharing(self, net):
        # p1 and p2 both need (C2 ^attr1 15): one shared constant node.
        descs = [n.desc for n in net.constant_nodes]
        assert descs.count(("const", "attr1", "=", 15)) == 1

    def test_alpha_terminal_sharing(self, net):
        # The shared C2 chain ends in one shared alpha terminal feeding
        # both p1's and p2's joins.
        c2_terminals = [
            t for t in net.alpha_terminals
            if len(t.successors) >= 2
        ]
        assert len(c2_terminals) == 1

    def test_dispatch_c2_wme(self, net):
        wme = WME.make("C2", {"attr1": 15, "attr2": 7}, 1)
        hits, n_tests = net.alpha_dispatch(wme)
        assert len(hits) == 1
        assert n_tests >= 2  # class + attr1=15

    def test_dispatch_c2_wme_failing_test(self, net):
        wme = WME.make("C2", {"attr1": 99}, 1)
        hits, _ = net.alpha_dispatch(wme)
        assert hits == []

    def test_dispatch_unknown_class(self, net):
        hits, n_tests = net.alpha_dispatch(WME.make("C9", {}, 1))
        assert hits == []
        assert n_tests == 1  # just the class test

    def test_negated_ce_becomes_not_node(self, net):
        not_nodes = [n for n in net.beta_nodes if isinstance(n, NotNode)]
        assert len(not_nodes) == 1
        # Its variable test links C3.attr1 to the C1 binding of <x>.
        assert not_nodes[0].eq_descs == (("attr1", "=", 0, "attr1"),)


class TestCompilation:
    def test_join_tests_direction(self):
        net = compile_src("(p r (a ^x <v>) (b ^y <v>) --> (halt))")
        join = next(n for n in net.beta_nodes if isinstance(n, JoinNode))
        assert join.tests == (("y", "=", 0, "x"),)
        assert join.eq_descs == join.tests

    def test_non_eq_join_test_not_in_key(self):
        net = compile_src("(p r (a ^x <v>) (b ^y > <v>) --> (halt))")
        join = next(n for n in net.beta_nodes if isinstance(n, JoinNode))
        assert join.tests == (("y", ">", 0, "x"),)
        assert join.eq_descs == ()

    def test_intra_element_test(self):
        net = compile_src("(p r (a ^x <v> ^y <v>) --> (halt))")
        descs = [n.desc for n in net.constant_nodes]
        assert ("intra", "y", "=", "x") in descs

    def test_cross_product_join_has_empty_key(self):
        net = compile_src("(p r (a ^x <v>) (b ^y <w>) --> (halt))")
        join = next(n for n in net.beta_nodes if isinstance(n, JoinNode))
        assert join.eq_descs == ()
        assert join.tests == ()

    def test_single_ce_production_terminal_from_alpha(self):
        net = compile_src("(p r (a ^x 1) --> (halt))")
        term = net.terminals["r"]
        feeders = [
            t for t in net.alpha_terminals
            if any(node is term for node, _side in t.successors)
        ]
        assert len(feeders) == 1

    def test_join_positions_skip_negated(self):
        net = compile_src(
            "(p r (a ^x <v>) - (n ^q <v>) (b ^y <v>) --> (halt))"
        )
        joins = [n for n in net.beta_nodes if isinstance(n, JoinNode)]
        # b's test must reference token position 0 (the 'a' wme), not 1.
        assert joins[0].tests == (("y", "=", 0, "x"),)

    def test_predicate_on_unbound_variable_rejected(self):
        with pytest.raises(CompileError):
            compile_src("(p r (a ^x > <nowhere>) --> (halt))")

    def test_duplicate_production_rejected(self):
        net = compile_src("(p r (a) --> (halt))")
        with pytest.raises(CompileError):
            net.add_production(parse_production("(p r (b) --> (halt))"))

    def test_variable_rebinding_uses_first(self):
        # <v> binds in CE1; its occurrence in CE2 is a join test, and in
        # CE3 another join test against the *first* binding.
        net = compile_src("(p r (a ^x <v>) (b ^y <v>) (c ^z <v>) --> (halt))")
        joins = [n for n in net.beta_nodes if isinstance(n, JoinNode)]
        assert joins[1].tests == (("z", "=", 0, "x"),)

    def test_disjunction_is_alpha_test(self):
        net = compile_src("(p r (a ^c << red blue >>) --> (halt))")
        descs = [n.desc for n in net.constant_nodes]
        assert ("disj", "c", frozenset({"red", "blue"})) in descs

    def test_mode_recorded(self):
        assert compile_src("(p r (a) --> (halt))", mode="interpreted").mode == "interpreted"

    def test_two_input_nodes_listing(self):
        net = compile_src(FIGURE_2_2)
        assert len(net.two_input_nodes()) == 3

    def test_no_beta_sharing_between_productions(self):
        # Footnote 6: memory nodes are not shared; identical prefixes
        # still compile to distinct join nodes.
        net = compile_src(
            "(p r1 (a ^x <v>) (b ^y <v>) --> (halt))"
            "(p r2 (a ^x <v>) (b ^y <v>) --> (halt))"
        )
        assert net.node_counts()["join"] == 2
