"""Property-based tests (hypothesis): the core correctness invariant of
the whole system is that every engine configuration computes the *same
match* — linear vs hash memories, interpreted vs compiled tests — on
arbitrary programs and working-memory histories.
"""

from __future__ import annotations

from typing import List, Tuple

import pytest
from hypothesis import given, settings, strategies as st

from repro.ops5.parser import parse_program
from repro.ops5.wme import WMEChange, WorkingMemory
from repro.rete.matcher import SequentialMatcher
from repro.rete.network import ReteNetwork

# ---------------------------------------------------------------------------
# Random program / working-memory generation
# ---------------------------------------------------------------------------

_CLASSES = ("c0", "c1", "c2")
_ATTRS = ("a", "b")
_VALUES = (0, 1, 2)
_VARS = ("v0", "v1")
_PREDS = ("=", "<>", "<", ">=")

value_test = st.one_of(
    st.sampled_from(_VALUES).map(str),
    st.sampled_from(_VARS).map(lambda v: f"<{v}>"),
    st.tuples(st.sampled_from(_PREDS), st.sampled_from(_VALUES)).map(
        lambda t: f"{t[0]} {t[1]}"
    ),
)

condition_element = st.builds(
    lambda klass, tests: "(" + klass + "".join(
        f" ^{attr} {test}" for attr, test in tests
    ) + ")",
    st.sampled_from(_CLASSES),
    st.lists(st.tuples(st.sampled_from(_ATTRS), value_test), min_size=0, max_size=2),
)


@st.composite
def production(draw, index: int = 0) -> str:
    n_ces = draw(st.integers(1, 3))
    ces = [draw(condition_element) for _ in range(n_ces)]
    negate = draw(st.booleans()) and n_ces > 1
    if negate:
        pos = draw(st.integers(1, n_ces - 1))
        ces[pos] = "- " + ces[pos]
    name = f"r{index}-{draw(st.integers(0, 10 ** 6))}"
    return f"(p {name} {' '.join(ces)} --> (halt))"


@st.composite
def program_source(draw) -> str:
    n = draw(st.integers(1, 4))
    return "\n".join(draw(production(i)) for i in range(n))


@st.composite
def wm_history(draw) -> List[Tuple[str, int, dict]]:
    """A list of ('add'|'remove', index-into-added, attrs) operations."""
    ops: List[Tuple[str, int, dict]] = []
    n_live = 0
    for _ in range(draw(st.integers(1, 12))):
        if n_live and draw(st.booleans()) and draw(st.booleans()):
            ops.append(("remove", draw(st.integers(0, n_live - 1)), {}))
        else:
            attrs = {
                attr: draw(st.sampled_from(_VALUES))
                for attr in _ATTRS
                if draw(st.booleans())
            }
            klass = draw(st.sampled_from(_CLASSES))
            ops.append(("add", _CLASSES.index(klass), attrs))
            n_live += 1
    return ops


def run_history(source: str, ops, memory: str, mode: str):
    """Apply the WM history; return the final conflict-set key set."""
    network = ReteNetwork.compile(parse_program(source), mode=mode)
    matcher = SequentialMatcher(network, memory=memory)
    wm = WorkingMemory()
    live = []
    conflict = {}
    for op, arg, attrs in ops:
        if op == "add":
            wme = wm.add(_CLASSES[arg], attrs)
            live.append(wme)
            deltas = matcher.process_changes([WMEChange(1, wme)])
        else:
            if not live:
                continue
            wme = live.pop(arg % len(live))
            wm.remove(wme)
            deltas = matcher.process_changes([WMEChange(-1, wme)])
        for d in deltas:
            key = (d.production.name, d.token.key)
            conflict[key] = conflict.get(key, 0) + d.sign
    assert all(v in (0, 1) for v in conflict.values()), conflict
    return {k for k, v in conflict.items() if v == 1}, matcher


@settings(max_examples=60, deadline=None)
@given(source=program_source(), ops=wm_history())
def test_all_engine_configurations_agree(source, ops):
    """linear/hash × interpreted/compiled produce identical matches."""
    reference, _ = run_history(source, ops, "hash", "compiled")
    for memory in ("linear", "hash"):
        for mode in ("interpreted", "compiled"):
            result, _ = run_history(source, ops, memory, mode)
            assert result == reference, (memory, mode)


@settings(max_examples=60, deadline=None)
@given(source=program_source(), ops=wm_history())
def test_memories_empty_after_full_retraction(source, ops):
    """Adding everything and then removing everything leaves every token
    memory empty (no leaks, no stragglers)."""
    # Build an add-everything-then-remove-everything history.
    adds = [(op, a, attrs) for op, a, attrs in ops if op == "add"]
    network = ReteNetwork.compile(parse_program(source))
    matcher = SequentialMatcher(network, memory="hash")
    wm = WorkingMemory()
    wmes = []
    for _op, arg, attrs in adds:
        wme = wm.add(_CLASSES[arg], attrs)
        wmes.append(wme)
        matcher.process_changes([WMEChange(1, wme)])
    for wme in wmes:
        wm.remove(wme)
        matcher.process_changes([WMEChange(-1, wme)])
    assert matcher.memory.total_tokens() == 0


@settings(max_examples=40, deadline=None)
@given(source=program_source(), ops=wm_history())
def test_insertion_order_independence(source, ops):
    """Shuffling independent adds does not change the final match."""
    adds = [(op, a, attrs) for op, a, attrs in ops if op == "add"]
    forward, _ = run_history(source, adds, "hash", "compiled")
    backward, _ = run_history(source, list(reversed(adds)), "hash", "compiled")

    def canonical(result):
        # Timetags depend on insertion order; compare by production
        # name and the multiset of instantiation counts.
        names = {}
        for name, _key in result:
            names[name] = names.get(name, 0) + 1
        return names

    assert canonical(forward) == canonical(backward)


@settings(max_examples=40, deadline=None)
@given(
    tags=st.lists(st.integers(1, 50), min_size=1, max_size=8, unique=True),
    key=st.tuples(st.sampled_from(_VALUES)),
)
def test_memory_insert_remove_roundtrip(tags, key):
    """Inserting tokens and removing them in any order empties both
    memory systems and never loses a token."""
    from repro.rete.memories import make_memory
    from repro.rete.token import Token
    from repro.ops5.wme import WME

    for kind in ("linear", "hash"):
        mem = make_memory(kind)
        tokens = [Token.single(WME.make("c", {}, t)) for t in tags]
        for t in tokens:
            mem.insert(1, "L", key, t)
        assert mem.side_size(1, "L") == len(tokens)
        for t in reversed(tokens):
            found, examined = mem.remove(1, "L", key, t.key)
            assert found is t
            assert examined >= 1
        assert mem.total_tokens() == 0
