"""Unit tests for the sequential matcher driving the Rete network."""

import pytest

from repro.ops5.parser import parse_program
from repro.ops5.wme import WME, WMEChange, WorkingMemory
from repro.rete.matcher import SequentialMatcher
from repro.rete.network import ReteNetwork
from repro.rete.trace import TraceRecorder


def matcher_for(src: str, **kw) -> SequentialMatcher:
    return SequentialMatcher(ReteNetwork.compile(parse_program(src)), **kw)


def add(wm: WorkingMemory, klass: str, attrs=None) -> WMEChange:
    return WMEChange(sign=1, wme=wm.add(klass, attrs or {}))


def rm(wm: WorkingMemory, wme: WME) -> WMEChange:
    wm.remove(wme)
    return WMEChange(sign=-1, wme=wme)


class TestJoin:
    SRC = "(p r (a ^x <v>) (b ^y <v>) --> (halt))"

    def test_pair_appears_in_both_orders(self):
        for order in ("ab", "ba"):
            m = matcher_for(self.SRC)
            wm = WorkingMemory()
            changes = []
            if order == "ab":
                changes = [add(wm, "a", {"x": 1}), add(wm, "b", {"y": 1})]
            else:
                changes = [add(wm, "b", {"y": 1}), add(wm, "a", {"x": 1})]
            deltas = m.process_changes(changes)
            assert len(deltas) == 1
            assert deltas[0].sign == 1

    def test_mismatched_values_do_not_join(self):
        m = matcher_for(self.SRC)
        wm = WorkingMemory()
        deltas = m.process_changes([add(wm, "a", {"x": 1}), add(wm, "b", {"y": 2})])
        assert deltas == []

    def test_delete_retracts(self):
        m = matcher_for(self.SRC)
        wm = WorkingMemory()
        ca = add(wm, "a", {"x": 1})
        cb = add(wm, "b", {"y": 1})
        m.process_changes([ca, cb])
        deltas = m.process_changes([rm(wm, ca.wme)])
        assert len(deltas) == 1
        assert deltas[0].sign == -1

    def test_same_wme_both_sides_single_emission(self):
        # A wme whose class feeds both CEs must produce exactly one pair.
        src = "(p r (a ^x <v>) (a ^y <v>) --> (halt))"
        m = matcher_for(src)
        wm = WorkingMemory()
        deltas = m.process_changes([add(wm, "a", {"x": 1, "y": 1})])
        assert len(deltas) == 1

    def test_cross_product_counts(self):
        src = "(p r (a ^x <v>) (b ^y <w>) --> (halt))"
        m = matcher_for(src)
        wm = WorkingMemory()
        changes = [add(wm, "a", {"x": i}) for i in range(3)]
        changes += [add(wm, "b", {"y": i}) for i in range(4)]
        deltas = m.process_changes(changes)
        assert len(deltas) == 12  # 3 x 4 cross product

    def test_strict_mode_rejects_unmatched_delete(self):
        m = matcher_for(self.SRC)
        wm = WorkingMemory()
        w = wm.add("a", {"x": 1})
        with pytest.raises(RuntimeError):
            m.process_changes([WMEChange(sign=-1, wme=w)])


class TestNegation:
    SRC = "(p r (a ^x <v>) - (b ^y <v>) --> (halt))"

    def test_absent_negated_fires(self):
        m = matcher_for(self.SRC)
        wm = WorkingMemory()
        deltas = m.process_changes([add(wm, "a", {"x": 1})])
        assert [d.sign for d in deltas] == [1]

    def test_present_negated_blocks(self):
        m = matcher_for(self.SRC)
        wm = WorkingMemory()
        deltas = m.process_changes([add(wm, "b", {"y": 1}), add(wm, "a", {"x": 1})])
        assert deltas == []

    def test_adding_blocker_retracts(self):
        m = matcher_for(self.SRC)
        wm = WorkingMemory()
        m.process_changes([add(wm, "a", {"x": 1})])
        deltas = m.process_changes([add(wm, "b", {"y": 1})])
        assert [d.sign for d in deltas] == [-1]

    def test_removing_blocker_rederives(self):
        m = matcher_for(self.SRC)
        wm = WorkingMemory()
        cb = add(wm, "b", {"y": 1})
        m.process_changes([cb, add(wm, "a", {"x": 1})])
        deltas = m.process_changes([rm(wm, cb.wme)])
        assert [d.sign for d in deltas] == [1]

    def test_two_blockers_count_correctly(self):
        m = matcher_for(self.SRC)
        wm = WorkingMemory()
        cb1 = add(wm, "b", {"y": 1})
        cb2 = add(wm, "b", {"y": 1})
        m.process_changes([cb1, cb2, add(wm, "a", {"x": 1})])
        assert m.process_changes([rm(wm, cb1.wme)]) == []
        deltas = m.process_changes([rm(wm, cb2.wme)])
        assert [d.sign for d in deltas] == [1]

    def test_unrelated_blocker_ignored(self):
        m = matcher_for(self.SRC)
        wm = WorkingMemory()
        deltas = m.process_changes([add(wm, "b", {"y": 99}), add(wm, "a", {"x": 1})])
        assert [d.sign for d in deltas] == [1]


class TestStats:
    def test_counters_accumulate(self, figure_2_1):
        from repro.ops5.interpreter import Interpreter

        interp = Interpreter(figure_2_1)
        interp.run()
        s = interp.stats
        assert s.wme_changes == 8  # 4 startup makes + 2 modifies (2 each)
        assert s.node_activations > 0
        assert s.cs_changes >= 2

    def test_memory_kind_selection(self):
        m_lin = matcher_for("(p r (a) --> (halt))", memory="linear")
        m_hash = matcher_for("(p r (a) --> (halt))", memory="hash")
        assert m_lin.memory.kind == "linear"
        assert m_hash.memory.kind == "hash"

    def test_match_seconds_accumulates(self):
        m = matcher_for("(p r (a) (b) --> (halt))")
        wm = WorkingMemory()
        m.process_changes([add(wm, "a"), add(wm, "b")])
        assert m.match_seconds > 0


class TestTraceRecording:
    def test_trace_captures_tasks(self):
        rec = TraceRecorder()
        m = matcher_for("(p r (a ^x <v>) (b ^y <v>) --> (halt))", recorder=rec)
        wm = WorkingMemory()
        m.process_changes([add(wm, "a", {"x": 1}), add(wm, "b", {"y": 1})])
        trace = rec.trace
        assert trace.n_changes == 2
        kinds = {t.kind for t in trace.tasks}
        assert kinds == {"join", "term"}

    def test_trace_parent_links(self):
        rec = TraceRecorder()
        m = matcher_for("(p r (a ^x <v>) (b ^y <v>) --> (halt))", recorder=rec)
        wm = WorkingMemory()
        m.process_changes([add(wm, "a", {"x": 1}), add(wm, "b", {"y": 1})])
        term = next(t for t in rec.trace.tasks if t.kind == "term")
        parent = rec.trace.tasks[term.parent]
        assert parent.kind == "join"
        assert parent.n_children == 1

    def test_trace_lines_recorded_for_joins(self):
        rec = TraceRecorder()
        m = matcher_for("(p r (a ^x <v>) (b ^y <v>) --> (halt))", recorder=rec)
        wm = WorkingMemory()
        m.process_changes([add(wm, "a", {"x": 1})])
        join = next(t for t in rec.trace.tasks if t.kind == "join")
        assert join.line >= 0
