"""Tests for the experiment harness: rendering, workload caching, and
paper-data integrity."""

import pytest

from repro.harness import paperdata
from repro.harness.tables import paired_row, render_table
from repro.harness.workloads import (
    BENCH_SIZES,
    clear_caches,
    program_source,
    sim,
    traced_run,
)


class TestPaperData:
    def test_programs_consistent_across_tables(self):
        for table in (
            paperdata.TABLE_4_1,
            paperdata.TABLE_4_2,
            paperdata.TABLE_4_3,
            paperdata.TABLE_4_4,
            paperdata.TABLE_4_5,
            paperdata.TABLE_4_6,
            paperdata.TABLE_4_7,
            paperdata.TABLE_4_8,
            paperdata.TABLE_4_9,
        ):
            assert set(table) == set(paperdata.PROGRAMS)

    def test_speedup_vectors_match_proc_columns(self):
        for table in (paperdata.TABLE_4_5, paperdata.TABLE_4_6, paperdata.TABLE_4_8):
            for entry in table.values():
                assert len(entry["speedups"]) == len(paperdata.PROCS)

    def test_headline_numbers(self):
        # Spot checks against the paper's text.
        assert paperdata.TABLE_4_6["rubik"]["speedups"][-1] == 11.42
        assert paperdata.TABLE_4_4["tourney"]["speedup"] == 24.6
        assert paperdata.RULE_COUNTS == {"weaver": 637, "rubik": 70, "tourney": 17}

    def test_queue_columns(self):
        assert paperdata.QUEUES_MULTI == (1, 2, 4, 8, 8, 8)


class TestRendering:
    def test_render_alignment(self):
        out = render_table("T", ["col", "value"], [["a", 1.5], ["bb", 22]])
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "col" in lines[2] and "|" in lines[2]
        data_lines = [lines[2]] + lines[4:]
        assert len({line.index("|") for line in data_lines}) == 1

    def test_float_formatting(self):
        out = render_table("T", ["x"], [[1.23456]])
        assert "1.23" in out and "1.2345" not in out

    def test_paired_row(self):
        rows = paired_row("prog", [1.0], [2.0])
        assert rows[0][0] == "prog (paper)"
        assert rows[1][0] == "prog (ours)"


class TestWorkloads:
    def test_program_source_known_names(self):
        for name in BENCH_SIZES:
            assert "(p " in program_source(name)

    def test_unknown_workload(self):
        with pytest.raises(ValueError):
            program_source("xcon")

    def test_traced_run_memoized(self):
        a = traced_run("tourney")
        b = traced_run("tourney")
        assert a is b
        assert a.trace.n_tasks > 0

    def test_sim_memoized(self):
        a = sim("tourney", n_match=2)
        b = sim("tourney", n_match=2)
        assert a is b

    def test_clear_caches(self):
        a = traced_run("tourney")
        clear_caches()
        b = traced_run("tourney")
        assert a is not b
