"""Unit tests for the Multimax cost model."""

import pytest

from repro.rete.trace import TaskRecord
from repro.simulator.machine import (
    DEFAULT_CONFIG,
    MachineConfig,
    alpha_tasks,
    task_cost,
    task_cost_parts,
    task_cost_split,
)


def task(kind="join", opp=0, same=0, children=0, line=0) -> TaskRecord:
    return TaskRecord(
        tid=0, parent=-1, kind=kind, node_id=1, side="L", sign=1,
        line=line, opp_examined=opp, same_examined=same,
        n_children=children, change_seq=0,
    )


class TestConfig:
    def test_seconds_conversion(self):
        cfg = MachineConfig(mips=0.75)
        assert cfg.seconds(750_000) == pytest.approx(1.0)

    def test_with_overrides(self):
        cfg = DEFAULT_CONFIG.with_overrides(join_base=99)
        assert cfg.join_base == 99
        assert DEFAULT_CONFIG.join_base != 99  # immutable original

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_CONFIG.join_base = 1


class TestTaskCost:
    def test_terminal_cost(self):
        assert task_cost(task("term"), DEFAULT_CONFIG) == DEFAULT_CONFIG.term_cost

    def test_join_scales_with_features(self):
        base = task_cost(task(), DEFAULT_CONFIG)
        with_scan = task_cost(task(opp=5), DEFAULT_CONFIG)
        with_kids = task_cost(task(children=2), DEFAULT_CONFIG)
        assert with_scan == base + 5 * DEFAULT_CONFIG.per_opp_examined
        assert with_kids == base + 2 * DEFAULT_CONFIG.per_child_build

    def test_not_node_extra(self):
        assert task_cost(task("not"), DEFAULT_CONFIG) == (
            task_cost(task("join"), DEFAULT_CONFIG) + DEFAULT_CONFIG.not_extra
        )

    def test_parts_sum_to_total(self):
        for t in (task(), task(opp=7, same=3, children=2), task("not", opp=1)):
            update, scan, build = task_cost_parts(t, DEFAULT_CONFIG)
            assert update + scan + build == task_cost(t, DEFAULT_CONFIG)

    def test_split_is_update_vs_rest(self):
        t = task(opp=4, same=2, children=1)
        update, rest = task_cost_split(t, DEFAULT_CONFIG)
        u, s, b = task_cost_parts(t, DEFAULT_CONFIG)
        assert (update, rest) == (u, s + b)

    def test_paper_range(self):
        # A typical activation lands in the paper's 100-700 instruction
        # band once it examines a handful of tokens.
        t = task(opp=8, same=2, children=2)
        assert 100 <= task_cost(t, DEFAULT_CONFIG) <= 700


class TestAlphaTasks:
    def test_single_group_for_small_change(self):
        groups = alpha_tasks(n_const_tests=5, n_children=3, config=DEFAULT_CONFIG)
        assert len(groups) == 1
        cost, kids = groups[0]
        assert cost == (
            DEFAULT_CONFIG.change_dispatch
            + 5 * DEFAULT_CONFIG.const_test
            + DEFAULT_CONFIG.alpha_group_overhead
        )

    def test_splits_by_const_tests(self):
        groups = alpha_tasks(40, 0, DEFAULT_CONFIG)  # group size 16
        assert len(groups) == 3

    def test_splits_by_fanout(self):
        cfg = DEFAULT_CONFIG.with_overrides(alpha_fanout_split=10)
        groups = alpha_tasks(4, 35, cfg)
        assert len(groups) == 4

    def test_children_distributed(self):
        groups = alpha_tasks(40, 10, DEFAULT_CONFIG)
        assert sum(k for _c, k in groups) == 10

    def test_zero_tests(self):
        groups = alpha_tasks(0, 0, DEFAULT_CONFIG)
        assert len(groups) == 1
