"""Tests for the trace/simulation analysis helpers."""

import pytest

from repro.ops5.interpreter import Interpreter
from repro.rete.trace import TraceRecorder
from repro.simulator.report import (
    TimeBreakdown,
    TraceProfile,
    profile_trace,
    speedup_curve,
    time_breakdown,
)
from tests.conftest import FIND_COLORED_BLOCK


@pytest.fixture(scope="module")
def trace():
    recorder = TraceRecorder()
    Interpreter(FIND_COLORED_BLOCK, recorder=recorder).run()
    return recorder.trace


class TestProfile:
    def test_counts(self, trace):
        profile = profile_trace(trace)
        assert profile.n_tasks == trace.n_tasks
        assert profile.n_changes == trace.n_changes
        assert profile.total_work > 0
        assert profile.mean_task_cost > 0

    def test_depth_positive(self, trace):
        assert profile_trace(trace).max_chain_depth >= 1

    def test_hot_lines_sorted(self, trace):
        hot = profile_trace(trace).hot_lines
        works = [w for _line, w in hot]
        assert works == sorted(works, reverse=True)

    def test_parallelism_bound(self, trace):
        profile = profile_trace(trace)
        assert profile.dag_parallelism_bound(4) <= 4


class TestSpeedupCurve:
    def test_curve_shape(self, trace):
        curve = speedup_curve(trace, processes=(1, 3, 5))
        assert len(curve.speedups) == 3
        assert curve.speedups[0] == pytest.approx(1.0, abs=0.15)
        assert curve.saturation >= curve.speedups[0]
        assert curve.baseline_seconds > 0

    def test_lock_scheme_passthrough(self, trace):
        curve = speedup_curve(trace, processes=(1,), lock_scheme="mrsw")
        assert curve.lock_scheme == "mrsw"


class TestTimeBreakdown:
    def test_components_nonnegative_and_bounded(self, trace):
        bd = time_breakdown(trace, n_match=3, n_queues=2)
        assert bd.task_work > 0
        assert bd.queue_overhead >= 0
        assert bd.queue_waiting >= 0
        assert bd.line_waiting >= 0
        assert bd.idle >= 0
        assert 0 < bd.utilization <= 1.0

    def test_more_processes_lower_utilization(self, trace):
        low = time_breakdown(trace, n_match=1)
        high = time_breakdown(trace, n_match=8)
        assert high.utilization <= low.utilization + 1e-9
