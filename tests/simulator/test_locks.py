"""Unit tests for the DES lock models."""

import pytest

from repro.simulator.locks import (
    LEFT_IN_USE,
    RIGHT_IN_USE,
    UNUSED,
    SimLock,
    SimMRSWLine,
    SpinStats,
)


class TestSimLock:
    def test_uncontended_grant_is_immediate(self):
        lock = SimLock(spin_period=8)
        grant, spins = lock.request(100.0, hold=10)
        assert grant == 100.0
        assert spins == 1

    def test_fifo_wait(self):
        lock = SimLock(spin_period=8)
        lock.request(100.0, hold=50)
        grant, spins = lock.request(110.0, hold=10)
        assert grant == 150.0
        assert spins == 1 + int(40 // 8)

    def test_spin_floor_is_one(self):
        lock = SimLock(spin_period=8)
        _, spins = lock.request(0.0, hold=1)
        assert spins == 1

    def test_stats_accumulate(self):
        stats = SpinStats()
        lock = SimLock(spin_period=8, stats=stats)
        lock.request(0, 10)
        lock.request(0, 10)
        assert stats.acquisitions == 2
        assert stats.spins >= 3  # second waited 10 -> 1 + 10//8 = 2

    def test_handoff_storm_extends_hold(self):
        calm = SimLock(spin_period=8, handoff=0)
        stormy = SimLock(spin_period=8, handoff=10)
        for lock in (calm, stormy):
            lock.request(0.0, hold=100)    # holder
            lock.request(1.0, hold=100)    # waiter 1
            lock.request(2.0, hold=100)    # waiter 2 (1 pending ahead)
        # With handoff, waiter 2's grant is pushed later than without.
        assert stormy.free_at > calm.free_at

    def test_pending_expire(self):
        lock = SimLock(spin_period=8, handoff=10)
        lock.request(0.0, hold=5)
        # Far in the future: no pending waiters remain, no penalty.
        grant, spins = lock.request(1000.0, hold=5)
        assert grant == 1000.0
        assert spins == 1

    def test_extend(self):
        lock = SimLock(spin_period=8)
        lock.request(0.0, hold=10)
        lock.extend(50.0)
        grant, _ = lock.request(5.0, hold=1)
        assert grant == 50.0


class TestSimMRSWLine:
    def make(self):
        return SimMRSWLine(8, SpinStats(), SpinStats())

    def test_first_user_admitted(self):
        line = self.make()
        after, admitted = line.try_enter(10.0, "L", guard_hold=4)
        assert admitted
        assert after == 14.0
        assert line.flag == LEFT_IN_USE

    def test_same_side_concurrent(self):
        line = self.make()
        line.try_enter(10.0, "L", 4)
        line.register_exit(100.0, 4)
        _, admitted = line.try_enter(20.0, "L", 4)
        assert admitted

    def test_opposite_side_rejected_while_busy(self):
        line = self.make()
        line.try_enter(10.0, "L", 4)
        line.register_exit(100.0, 4)
        _, admitted = line.try_enter(20.0, "R", 4)
        assert not admitted
        assert line.guard.stats.requeues == 1

    def test_flag_clears_after_exits(self):
        line = self.make()
        line.try_enter(10.0, "L", 4)
        line.register_exit(50.0, 4)
        _, admitted = line.try_enter(200.0, "R", 4)
        assert admitted
        assert line.flag == RIGHT_IN_USE

    def test_mod_lock_serializes(self):
        line = self.make()
        g1, _ = line.mod.request(0.0, 30)
        g2, _ = line.mod.request(5.0, 30)
        assert g2 == 30.0
