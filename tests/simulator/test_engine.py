"""Unit and integration tests for the Encore discrete-event simulator."""

import pytest

from repro.ops5.interpreter import Interpreter
from repro.rete.trace import TraceRecorder
from repro.simulator.engine import (
    EncoreSimulator,
    SimOptions,
    simulate,
    uniprocessor_baseline,
)
from repro.simulator.machine import DEFAULT_CONFIG
from tests.conftest import FIND_COLORED_BLOCK

CHAIN_PROGRAM = """
(p step (tick ^n <n>) (cell ^i <n> ^v <v>) --> (modify 2 ^v done) (remove 1))
(p next (cell ^i <i> ^v done) (cell ^i <j> ^v wait) --> (make tick ^n <j>) (modify 1 ^v used))
(startup
  (make cell ^i 1 ^v wait) (make cell ^i 2 ^v wait) (make cell ^i 3 ^v wait)
  (make tick ^n 1))
"""


@pytest.fixture(scope="module")
def small_trace():
    recorder = TraceRecorder()
    Interpreter(FIND_COLORED_BLOCK, recorder=recorder).run()
    return recorder.trace


@pytest.fixture(scope="module")
def chain_trace():
    recorder = TraceRecorder()
    Interpreter(CHAIN_PROGRAM, recorder=recorder).run(max_cycles=100)
    return recorder.trace


class TestSimOptions:
    def test_validation(self):
        with pytest.raises(ValueError):
            SimOptions(n_match=0)
        with pytest.raises(ValueError):
            SimOptions(n_queues=0)
        with pytest.raises(ValueError):
            SimOptions(lock_scheme="rcu")


class TestBasicRuns:
    def test_all_tasks_complete(self, small_trace):
        result = simulate(small_trace, n_match=2)
        assert result.tasks_completed >= small_trace.n_tasks
        assert result.match_instr > 0
        assert result.total_instr > result.match_instr

    def test_deterministic(self, small_trace):
        a = simulate(small_trace, n_match=3, n_queues=2)
        b = simulate(small_trace, n_match=3, n_queues=2)
        assert a.match_instr == b.match_instr
        assert a.queue_stats.spins == b.queue_stats.spins

    def test_baseline_slower_than_pipelined(self, small_trace):
        base = uniprocessor_baseline(small_trace)
        piped = simulate(small_trace, n_match=1, pipelined=True)
        # Pipelining overlaps RHS evaluation with match, so the match
        # phase cannot be slower than the serial baseline by more than
        # release jitter.
        assert piped.match_instr <= base.match_instr * 1.05

    def test_more_processors_not_slower_moderately(self, chain_trace):
        t1 = simulate(chain_trace, n_match=1).match_instr
        t4 = simulate(chain_trace, n_match=4, n_queues=2).match_instr
        assert t4 <= t1

    def test_mrsw_scheme_runs(self, small_trace):
        result = simulate(small_trace, n_match=3, lock_scheme="mrsw")
        assert result.tasks_completed >= small_trace.n_tasks

    def test_seconds_properties(self, small_trace):
        result = simulate(small_trace, n_match=1)
        assert result.match_seconds == pytest.approx(
            result.match_instr / (DEFAULT_CONFIG.mips * 1e6)
        )


class TestContentionAccounting:
    def test_single_process_never_contends(self, small_trace):
        result = simulate(small_trace, n_match=1)
        # One match process + the control process can still interleave
        # on queue locks, but spins stay at the no-wait floor.
        assert result.queue_stats.mean_spins < 2.5
        assert result.line_left.mean_spins <= 1.1

    def test_queue_contention_grows_with_processes(self, chain_trace):
        spins = [
            simulate(chain_trace, n_match=k, n_queues=1).queue_stats.mean_spins
            for k in (1, 4, 8)
        ]
        assert spins[0] <= spins[-1]

    def test_side_attribution(self, small_trace):
        result = simulate(small_trace, n_match=2)
        assert result.line_left.acquisitions + result.line_right.acquisitions > 0


class TestAccountingInvariants:
    def test_work_conservation_across_configs(self, small_trace):
        """Every configuration executes exactly the traced task set."""
        counts = {
            simulate(small_trace, n_match=k, n_queues=q, lock_scheme=s).tasks_completed
            for k, q, s in [(1, 1, "simple"), (5, 2, "simple"), (3, 4, "mrsw")]
        }
        assert len(counts) == 1

    def test_empty_trace(self):
        from repro.rete.trace import MatchTrace

        result = simulate(MatchTrace(), n_match=4)
        assert result.match_instr == 0
        assert result.tasks_completed == 0

    def test_config_override_threading(self, small_trace):
        cfg = DEFAULT_CONFIG.with_overrides(join_base=400)
        heavy = simulate(small_trace, n_match=1, config=cfg)
        light = simulate(small_trace, n_match=1)
        assert heavy.match_instr > light.match_instr
