"""Property-based tests for the Encore simulator.

Invariants over randomized option grids and synthetic traces:
determinism, task-count conservation, and monotone response to cost
inflation.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.rete.trace import ChangeRecord, CycleRecord, MatchTrace, TaskRecord
from repro.simulator.engine import EncoreSimulator, SimOptions, simulate
from repro.simulator.machine import DEFAULT_CONFIG


@st.composite
def synthetic_trace(draw) -> MatchTrace:
    """A random but structurally valid task DAG."""
    trace = MatchTrace()
    tid = 0
    for cycle_idx in range(draw(st.integers(1, 3))):
        cycle = CycleRecord(index=cycle_idx, production=f"p{cycle_idx}", n_rhs_actions=1)
        trace.cycles.append(cycle)
        for seq in range(draw(st.integers(1, 3))):
            change = ChangeRecord(
                seq=seq,
                n_const_tests=draw(st.integers(1, 30)),
                n_alpha_hits=1,
            )
            cycle.changes.append(change)
            # A small tree: root tasks plus a chain under the first.
            n_roots = draw(st.integers(1, 4))
            chain_len = draw(st.integers(0, 3))
            roots = []
            for r in range(n_roots):
                children = chain_len if r == 0 else 0
                trace.tasks.append(
                    TaskRecord(
                        tid=tid, parent=-1, kind="join", node_id=r + 1,
                        side="L" if r % 2 == 0 else "R", sign=1,
                        line=draw(st.integers(0, 5)),
                        opp_examined=draw(st.integers(0, 10)),
                        same_examined=0,
                        n_children=1 if children else 0,
                        change_seq=seq,
                    )
                )
                roots.append(tid)
                change.first_level.append(tid)
                tid += 1
            parent = roots[0]
            for d in range(chain_len):
                trace.tasks.append(
                    TaskRecord(
                        tid=tid, parent=parent, kind="term" if d == chain_len - 1 else "join",
                        node_id=100 + d, side="L", sign=1,
                        line=-1 if d == chain_len - 1 else draw(st.integers(0, 5)),
                        opp_examined=1, same_examined=0,
                        n_children=0 if d == chain_len - 1 else 1,
                        change_seq=seq,
                    )
                )
                parent = tid
                tid += 1
    return trace


option_grid = st.builds(
    SimOptions,
    n_match=st.integers(1, 6),
    n_queues=st.integers(1, 4),
    lock_scheme=st.sampled_from(["simple", "mrsw"]),
    pipelined=st.booleans(),
    hardware_scheduler=st.booleans(),
)


@settings(max_examples=40, deadline=None)
@given(trace=synthetic_trace(), options=option_grid)
def test_simulation_completes_every_task(trace, options):
    result = EncoreSimulator(trace, options).run()
    alpha_count = sum(
        len(__import__("repro.simulator.machine", fromlist=["alpha_tasks"]).alpha_tasks(
            ch.n_const_tests, len(ch.first_level), DEFAULT_CONFIG))
        for cyc in trace.cycles for ch in cyc.changes
    )
    assert result.tasks_completed == trace.n_tasks + alpha_count
    assert result.match_instr >= 0
    assert result.total_instr >= result.match_instr


@settings(max_examples=25, deadline=None)
@given(trace=synthetic_trace(), options=option_grid)
def test_simulation_deterministic(trace, options):
    a = EncoreSimulator(trace, options).run()
    b = EncoreSimulator(trace, options).run()
    assert a.match_instr == b.match_instr
    assert a.total_instr == b.total_instr
    assert a.queue_stats.spins == b.queue_stats.spins


@settings(max_examples=20, deadline=None)
@given(trace=synthetic_trace())
def test_cost_inflation_is_monotone(trace):
    cheap = simulate(trace, n_match=2)
    expensive = simulate(
        trace, n_match=2, config=DEFAULT_CONFIG.with_overrides(join_base=200)
    )
    assert expensive.match_instr >= cheap.match_instr


@settings(max_examples=20, deadline=None)
@given(trace=synthetic_trace(), k=st.integers(1, 6))
def test_hardware_scheduler_properties(trace, k):
    """The hardware scheduler's hard invariant is *zero queue-lock
    contention*; elapsed time is usually but not always better (its
    single LIFO dispatch order can land same-line tasks together, so a
    small scheduling-order slack is allowed)."""
    software = EncoreSimulator(trace, SimOptions(n_match=k, n_queues=1)).run()
    hardware = EncoreSimulator(
        trace, SimOptions(n_match=k, n_queues=1, hardware_scheduler=True)
    ).run()
    assert hardware.queue_stats.acquisitions == 0
    assert hardware.match_instr <= software.match_instr * 1.25
