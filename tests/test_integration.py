"""End-to-end integration tests across the whole stack."""

import pytest

from repro import Interpreter, TraceRecorder, parse_program
from repro.parallel.engine import ParallelMatcher
from repro.programs import rubik, tourney
from repro.rete.network import ReteNetwork
from repro.simulator import simulate, uniprocessor_baseline


class TestFullPipeline:
    """source text → parse → Rete → run → trace → simulate."""

    def test_trace_then_simulate(self):
        recorder = TraceRecorder()
        result = Interpreter(rubik.source(n_moves=2), recorder=recorder).run(
            max_cycles=500
        )
        assert result.output == ["cube solved"]

        trace = recorder.trace
        base = uniprocessor_baseline(trace)
        par = simulate(trace, n_match=8, n_queues=4)
        assert base.match_instr > par.match_instr
        speedup = base.match_instr / par.match_instr
        assert 1.5 < speedup < 8.0

    def test_trace_totals_match_stats(self):
        recorder = TraceRecorder()
        interp = Interpreter(tourney.source(n_teams=6, n_rounds=7), recorder=recorder)
        interp.run(max_cycles=5000)
        stats = interp.stats
        trace = recorder.trace
        assert trace.n_tasks == stats.node_activations
        assert trace.n_changes == stats.wme_changes

    def test_three_engines_agree_on_rubik(self):
        # One move and a single queue: deep-chain rules under heavy
        # out-of-order interleaving suffer transient token blow-up (see
        # EXPERIMENTS.md), so the threaded check stays near-sequential.
        source = rubik.source(n_moves=1)
        seq_hash = Interpreter(source, memory="hash").run(max_cycles=500)
        seq_lin = Interpreter(source, memory="linear", mode="interpreted").run(
            max_cycles=500
        )
        program = parse_program(source)
        network = ReteNetwork.compile(program)
        with Interpreter(
            program, matcher=ParallelMatcher(network, n_workers=2)
        ) as interp:
            par = interp.run(max_cycles=500)
        assert seq_hash.output == seq_lin.output == par.output == ["cube solved"]

    def test_interpreter_reports_simulated_seconds(self):
        recorder = TraceRecorder()
        Interpreter(rubik.source(n_moves=2), recorder=recorder).run(max_cycles=500)
        result = simulate(recorder.trace, n_match=1)
        # ~40k activations at ~100 instructions each on a 0.75 MIPS
        # CPU: the Encore-equivalent time must land in whole seconds.
        assert 0.5 < result.match_seconds < 60


class TestScaling:
    def test_rubik_scales_with_moves(self):
        small = Interpreter(rubik.source(n_moves=2))
        small.run(max_cycles=1000)
        large = Interpreter(rubik.source(n_moves=4))
        large.run(max_cycles=1000)
        assert large.stats.wme_changes > small.stats.wme_changes * 1.5

    def test_tourney_scales_with_teams(self):
        small = Interpreter(tourney.source(n_teams=6, n_rounds=7))
        small.run(max_cycles=20000)
        large = Interpreter(tourney.source(n_teams=10, n_rounds=11))
        large.run(max_cycles=20000)
        assert large.stats.node_activations > small.stats.node_activations


class TestDeterminism:
    def test_identical_runs_identical_traces(self):
        def run():
            rec = TraceRecorder()
            Interpreter(tourney.source(n_teams=6, n_rounds=7), recorder=rec).run(
                max_cycles=5000
            )
            return rec.trace

        a, b = run(), run()
        assert a.n_tasks == b.n_tasks
        assert [t.line for t in a.tasks] == [t.line for t in b.tasks]
        assert [c.production for c in a.cycles] == [c.production for c in b.cycles]

    def test_simulation_reproducible_across_traces(self):
        def measure():
            rec = TraceRecorder()
            Interpreter(rubik.source(n_moves=2), recorder=rec).run(max_cycles=500)
            return simulate(rec.trace, n_match=5, n_queues=4).match_instr

        assert measure() == measure()
