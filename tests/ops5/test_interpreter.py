"""Integration tests for the recognize-act interpreter."""

import pytest

from repro.ops5.errors import RuntimeOps5Error
from repro.ops5.interpreter import Interpreter
from tests.conftest import run_program


class TestBasicCycle:
    def test_figure_2_1_program(self, figure_2_1):
        interp, result = run_program(figure_2_1)
        assert sorted(result.output) == ["selected b1", "selected b3"]
        assert result.cycles == 2
        assert not result.halted  # quiescence, no (halt)

    def test_halt(self):
        _, r = run_program("(p r (a) --> (halt)) (startup (make a))")
        assert r.halted
        assert r.cycles == 1

    def test_quiescence_when_no_rules_match(self):
        _, r = run_program("(p r (a) --> (halt)) (startup (make b))")
        assert r.cycles == 0
        assert not r.halted

    def test_max_cycles_cap(self):
        src = "(p loop (a ^n <n>) --> (modify 1 ^n (compute <n> + 1)))(startup (make a ^n 0))"
        _, r = run_program(src, max_cycles=7)
        assert r.cycles == 7

    def test_firings_record_timetags(self):
        _, r = run_program("(p r (a) --> (halt)) (startup (make a))")
        assert r.firings[0].production == "r"
        assert len(r.firings[0].timetags) == 1

    def test_startup_runs_once(self):
        interp = Interpreter("(p r (a) --> (halt)) (startup (make a))")
        interp.startup()
        interp.startup()
        assert len(interp.wm) == 1


class TestRefractionAndRecency:
    def test_rule_fires_once_per_instantiation(self):
        src = "(p r (a ^v <v>) --> (write saw <v>)) (startup (make a ^v 1) (make a ^v 2))"
        _, r = run_program(src)
        assert sorted(r.output) == ["saw 1", "saw 2"]
        assert r.cycles == 2

    def test_lex_fires_most_recent_first(self):
        src = "(p r (a ^v <v>) --> (write saw <v>)) (startup (make a ^v 1) (make a ^v 2))"
        _, r = run_program(src)
        assert r.output == ["saw 2", "saw 1"]

    def test_mea_strategy(self):
        src = """
        (p r (ctl ^s go) (a ^v <v>) --> (write saw <v>) (remove 2))
        (startup (make a ^v old) (make ctl ^s go) (make a ^v new))
        """
        _, r_mea = run_program(src, strategy="mea")
        # Both instantiations share the ctl wme as first CE; MEA then
        # falls back to recency of the rest: 'new' first.
        assert r_mea.output == ["saw new", "saw old"]


class TestNegation:
    def test_negated_ce_blocks(self):
        src = "(p r (a) - (b) --> (write fired)) (startup (make a) (make b))"
        _, r = run_program(src)
        assert r.output == []

    def test_negation_toggles(self):
        src = """
        (p unblock (b) (c) --> (remove 1) (remove 2))
        (p r (a) - (b) --> (write fired) (halt))
        (startup (make a) (make b) (make c))
        """
        _, r = run_program(src)
        assert r.output == ["fired"]

    def test_negation_retracts_mid_run(self):
        src = """
        (p blocker (t) --> (remove 1) (make b))
        (p r (a) - (b) --> (write fired))
        (startup (make a) (make t))
        """
        _, r = run_program(src)
        # blocker fires first (recency of t vs a? both in CS; blocker's
        # (t) is newer), making (b), which retracts r before it fires.
        assert "fired" not in r.output


class TestWMEntryPoints:
    def test_add_wme_triggers_match(self):
        interp = Interpreter("(p r (a ^v 1) --> (write hit))")
        interp.startup()
        interp.add_wme("a", {"v": 1})
        firing = interp.step()
        assert firing is not None
        assert interp.output == ["hit"]

    def test_remove_wme_retracts(self):
        interp = Interpreter("(p r (a) --> (write hit))")
        w = interp.add_wme("a")
        assert len(interp.conflict_set) == 1
        interp.remove_wme(w)
        assert len(interp.conflict_set) == 0

    def test_conflict_set_names(self):
        interp = Interpreter("(p r (a) --> (halt)) (p s (a) --> (halt))")
        interp.add_wme("a")
        assert interp.conflict_set_names() == ["r", "s"]


class TestModes:
    @pytest.mark.parametrize("memory", ["linear", "hash"])
    @pytest.mark.parametrize("mode", ["interpreted", "compiled"])
    def test_all_mode_combinations_agree(self, figure_2_1, memory, mode):
        _, r = run_program(figure_2_1, memory=memory, mode=mode)
        assert sorted(r.output) == ["selected b1", "selected b3"]

    def test_stats_exposed(self, figure_2_1):
        interp, _ = run_program(figure_2_1)
        assert interp.stats.wme_changes > 0
        assert interp.stats.node_activations > 0


class TestErrors:
    def test_removing_same_wme_twice_across_rules(self):
        # Two rules both trying to remove the same wme: the second
        # firing's instantiation disappears when the wme does, so this
        # is safe and must not raise.
        src = """
        (p r1 (a) --> (remove 1))
        (p r2 (a) --> (remove 1))
        (startup (make a))
        """
        _, r = run_program(src)
        assert r.cycles == 1

    def test_context_manager_close(self, figure_2_1):
        with Interpreter(figure_2_1) as interp:
            interp.run()
        # Sequential matcher has no close; the protocol is a no-op.
