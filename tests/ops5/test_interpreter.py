"""Integration tests for the recognize-act interpreter."""

import pytest

from repro.ops5.errors import RuntimeOps5Error
from repro.ops5.interpreter import Interpreter
from tests.conftest import run_program


class TestBasicCycle:
    def test_figure_2_1_program(self, figure_2_1):
        interp, result = run_program(figure_2_1)
        assert sorted(result.output) == ["selected b1", "selected b3"]
        assert result.cycles == 2
        assert not result.halted  # quiescence, no (halt)

    def test_halt(self):
        _, r = run_program("(p r (a) --> (halt)) (startup (make a))")
        assert r.halted
        assert r.cycles == 1

    def test_quiescence_when_no_rules_match(self):
        _, r = run_program("(p r (a) --> (halt)) (startup (make b))")
        assert r.cycles == 0
        assert not r.halted

    def test_max_cycles_cap(self):
        src = "(p loop (a ^n <n>) --> (modify 1 ^n (compute <n> + 1)))(startup (make a ^n 0))"
        _, r = run_program(src, max_cycles=7)
        assert r.cycles == 7

    def test_firings_record_timetags(self):
        _, r = run_program("(p r (a) --> (halt)) (startup (make a))")
        assert r.firings[0].production == "r"
        assert len(r.firings[0].timetags) == 1

    def test_startup_runs_once(self):
        interp = Interpreter("(p r (a) --> (halt)) (startup (make a))")
        interp.startup()
        interp.startup()
        assert len(interp.wm) == 1


class TestRefractionAndRecency:
    def test_rule_fires_once_per_instantiation(self):
        src = "(p r (a ^v <v>) --> (write saw <v>)) (startup (make a ^v 1) (make a ^v 2))"
        _, r = run_program(src)
        assert sorted(r.output) == ["saw 1", "saw 2"]
        assert r.cycles == 2

    def test_lex_fires_most_recent_first(self):
        src = "(p r (a ^v <v>) --> (write saw <v>)) (startup (make a ^v 1) (make a ^v 2))"
        _, r = run_program(src)
        assert r.output == ["saw 2", "saw 1"]

    def test_mea_strategy(self):
        src = """
        (p r (ctl ^s go) (a ^v <v>) --> (write saw <v>) (remove 2))
        (startup (make a ^v old) (make ctl ^s go) (make a ^v new))
        """
        _, r_mea = run_program(src, strategy="mea")
        # Both instantiations share the ctl wme as first CE; MEA then
        # falls back to recency of the rest: 'new' first.
        assert r_mea.output == ["saw new", "saw old"]


class TestNegation:
    def test_negated_ce_blocks(self):
        src = "(p r (a) - (b) --> (write fired)) (startup (make a) (make b))"
        _, r = run_program(src)
        assert r.output == []

    def test_negation_toggles(self):
        src = """
        (p unblock (b) (c) --> (remove 1) (remove 2))
        (p r (a) - (b) --> (write fired) (halt))
        (startup (make a) (make b) (make c))
        """
        _, r = run_program(src)
        assert r.output == ["fired"]

    def test_negation_retracts_mid_run(self):
        src = """
        (p blocker (t) --> (remove 1) (make b))
        (p r (a) - (b) --> (write fired))
        (startup (make a) (make t))
        """
        _, r = run_program(src)
        # blocker fires first (recency of t vs a? both in CS; blocker's
        # (t) is newer), making (b), which retracts r before it fires.
        assert "fired" not in r.output


class TestWMEntryPoints:
    def test_add_wme_triggers_match(self):
        interp = Interpreter("(p r (a ^v 1) --> (write hit))")
        interp.startup()
        interp.add_wme("a", {"v": 1})
        firing = interp.step()
        assert firing is not None
        assert interp.output == ["hit"]

    def test_remove_wme_retracts(self):
        interp = Interpreter("(p r (a) --> (write hit))")
        w = interp.add_wme("a")
        assert len(interp.conflict_set) == 1
        interp.remove_wme(w)
        assert len(interp.conflict_set) == 0

    def test_conflict_set_names(self):
        interp = Interpreter("(p r (a) --> (halt)) (p s (a) --> (halt))")
        interp.add_wme("a")
        assert interp.conflict_set_names() == ["r", "s"]


class TestModes:
    @pytest.mark.parametrize("memory", ["linear", "hash"])
    @pytest.mark.parametrize("mode", ["interpreted", "compiled"])
    def test_all_mode_combinations_agree(self, figure_2_1, memory, mode):
        _, r = run_program(figure_2_1, memory=memory, mode=mode)
        assert sorted(r.output) == ["selected b1", "selected b3"]

    def test_stats_exposed(self, figure_2_1):
        interp, _ = run_program(figure_2_1)
        assert interp.stats.wme_changes > 0
        assert interp.stats.node_activations > 0


class TestErrors:
    def test_removing_same_wme_twice_across_rules(self):
        # Two rules both trying to remove the same wme: the second
        # firing's instantiation disappears when the wme does, so this
        # is safe and must not raise.
        src = """
        (p r1 (a) --> (remove 1))
        (p r2 (a) --> (remove 1))
        (startup (make a))
        """
        _, r = run_program(src)
        assert r.cycles == 1

    def test_context_manager_close(self, figure_2_1):
        with Interpreter(figure_2_1) as interp:
            interp.run()
        # Sequential matcher has no close; the protocol is a no-op.


class TestClose:
    def test_close_is_idempotent(self, figure_2_1):
        interp = Interpreter(figure_2_1)
        interp.close()
        interp.close()  # second call must be a no-op, not an error

    def test_close_after_context_exit(self, figure_2_1):
        with Interpreter(figure_2_1) as interp:
            interp.run()
        interp.close()  # explicit close after __exit__ already closed

    def test_close_releases_matcher_once(self, figure_2_1):
        closes = []

        class Closeable:
            def process_changes(self, changes):
                return []

            def close(self):
                closes.append(1)

        interp = Interpreter(figure_2_1, matcher=Closeable())
        with interp:
            pass
        interp.close()
        interp.close()
        assert closes == [1]


class TestOutcomes:
    SPIN = "(p l (a ^n <n>) --> (modify 1 ^n (compute <n> + 1)))(startup (make a ^n 0))"

    def test_halted_outcome(self):
        _, r = run_program("(p r (a) --> (halt)) (startup (make a))")
        assert r.outcome == "halted"
        assert r.halted and not r.exhausted

    def test_quiescent_outcome(self):
        _, r = run_program("(p r (a) --> (halt)) (startup (make b))")
        assert r.outcome == "quiescent"
        assert not r.halted and not r.exhausted

    def test_exhausted_outcome_distinct_from_quiescence(self):
        _, r = run_program(self.SPIN, max_cycles=5)
        assert r.cycles == 5
        assert r.outcome == "exhausted"
        assert r.exhausted and not r.halted

    def test_exact_budget_finish_is_not_exhausted(self):
        # One firing available, budget of exactly one: the budget is
        # spent but nothing is left waiting, so this is quiescence.
        _, r = run_program(
            "(p r (a) --> (remove 1)) (startup (make a))", max_cycles=1
        )
        assert r.cycles == 1
        assert r.outcome == "quiescent"

    def test_run_cycles_resumes_and_reports_slices(self):
        interp = Interpreter(self.SPIN)
        first = interp.run_cycles(3)
        second = interp.run_cycles(2)
        assert first.outcome == "exhausted" and len(first.firings) == 3
        assert second.outcome == "exhausted" and len(second.firings) == 2
        assert second.cycles == 5  # cumulative cycle counter
        assert len(second.output) == 0  # slice-local output only

    def test_zero_budget_runs_nothing(self):
        interp = Interpreter(self.SPIN)
        r = interp.run_cycles(0)
        assert r.firings == [] and r.outcome == "exhausted"

    def test_deadline_outcome(self):
        interp = Interpreter(self.SPIN)
        from time import monotonic

        r = interp.run_cycles(10_000, deadline=monotonic())  # already past
        assert r.outcome == "deadline"
        assert r.deadline_hit and not r.exhausted


class TestApplyTransaction:
    def _fresh(self):
        return Interpreter("(p r (a ^n <n>) (b) --> (write pair <n>))")

    def test_make_returns_timetags_in_op_order(self):
        from repro.ops5.interpreter import WMOp

        interp = self._fresh()
        tags = interp.apply_transaction(
            [WMOp.make("a", {"n": 1}), WMOp.make("b")]
        )
        assert tags == [1, 2]
        assert len(interp.conflict_set) == 1

    def test_modify_creates_fresh_timetag(self):
        from repro.ops5.interpreter import WMOp

        interp = self._fresh()
        (tag, _) = interp.apply_transaction(
            [WMOp.make("a", {"n": 1}), WMOp.make("b")]
        )
        (new,) = interp.apply_transaction([WMOp.modify(tag, {"n": 2})])
        assert new != tag
        assert interp.wm.by_timetag(tag) is None
        assert interp.wm.by_timetag(new).get("n") == 2

    def test_invalid_op_rolls_back_everything(self):
        from repro.ops5.interpreter import TransactionError, WMOp

        interp = self._fresh()
        with pytest.raises(TransactionError):
            interp.apply_transaction(
                [WMOp.make("a", {"n": 1}), WMOp.remove(77)]
            )
        assert len(interp.wm) == 0
        assert len(interp.conflict_set) == 0

    def test_remove_then_modify_same_timetag_rejected(self):
        from repro.ops5.interpreter import TransactionError, WMOp

        interp = self._fresh()
        (tag,) = interp.apply_transaction([WMOp.make("a", {"n": 1})])
        with pytest.raises(TransactionError):
            interp.apply_transaction(
                [WMOp.remove(tag), WMOp.modify(tag, {"n": 2})]
            )
        assert interp.wm.by_timetag(tag) is not None

    def test_unknown_op_kind_rejected(self):
        from repro.ops5.interpreter import TransactionError, WMOp

        interp = self._fresh()
        with pytest.raises(TransactionError):
            interp.apply_transaction([WMOp(op="explode")])

    def test_batch_feeds_matcher_once(self):
        from repro.ops5.interpreter import WMOp

        interp = self._fresh()
        interp.apply_transaction(
            [WMOp.make("a", {"n": 1}), WMOp.make("a", {"n": 2}), WMOp.make("b")]
        )
        r = interp.run(max_cycles=10)
        assert sorted(r.output) == ["pair 1", "pair 2"]
