"""Unit tests for the conflict set and LEX/MEA strategies."""

import pytest

from repro.ops5.astnodes import ConditionElement, HaltAction, Production
from repro.ops5.conflict import ConflictSet, Instantiation, LexStrategy, MeaStrategy, make_strategy
from repro.ops5.errors import RuntimeOps5Error
from repro.ops5.parser import parse_production
from repro.ops5.wme import WME
from repro.rete.token import Token


def prod(name: str, n_ces: int = 1, extra_tests: int = 0) -> Production:
    tests = " ".join(f"^a{i} 1" for i in range(extra_tests))
    ces = " ".join(f"(c{i} {tests})" for i in range(n_ces))
    return parse_production(f"(p {name} {ces} --> (halt))")


def token(*timetags: int) -> Token:
    return Token.of(tuple(WME.make("c", {}, t) for t in timetags))


class TestConflictSet:
    def test_add_and_select(self):
        cs = ConflictSet()
        cs.apply(prod("r"), token(1), +1)
        assert len(cs) == 1
        assert LexStrategy().select(cs) is not None

    def test_remove(self):
        cs = ConflictSet()
        p = prod("r")
        cs.apply(p, token(1), +1)
        cs.apply(p, token(1), -1)
        assert len(cs) == 0

    def test_strict_rejects_double_add(self):
        cs = ConflictSet(strict=True)
        p = prod("r")
        cs.apply(p, token(1), +1)
        with pytest.raises(RuntimeOps5Error):
            cs.apply(p, token(1), +1)

    def test_strict_rejects_remove_of_absent(self):
        cs = ConflictSet(strict=True)
        with pytest.raises(RuntimeOps5Error):
            cs.apply(prod("r"), token(1), -1)

    def test_nonstrict_allows_out_of_order(self):
        cs = ConflictSet(strict=False)
        p = prod("r")
        cs.apply(p, token(1), -1)   # early delete
        cs.apply(p, token(1), +1)   # matching add arrives later
        assert len(cs) == 0
        cs.validate()

    def test_validate_catches_unbalanced(self):
        cs = ConflictSet(strict=False)
        cs.apply(prod("r"), token(1), -1)
        with pytest.raises(RuntimeOps5Error):
            cs.validate()

    def test_refraction_blocks_refire(self):
        cs = ConflictSet()
        p = prod("r")
        cs.apply(p, token(1), +1)
        inst = LexStrategy().select(cs)
        cs.mark_fired(inst)
        assert LexStrategy().select(cs) is None
        assert len(cs) == 1  # still present, just not eligible

    def test_refraction_resets_when_instantiation_leaves(self):
        cs = ConflictSet()
        p = prod("r")
        cs.apply(p, token(1), +1)
        inst = LexStrategy().select(cs)
        cs.mark_fired(inst)
        cs.apply(p, token(1), -1)   # leaves the conflict set
        cs.apply(p, token(1), +1)   # re-derived (negation toggled)
        assert LexStrategy().select(cs) is not None


class TestLex:
    def test_recency_wins(self):
        cs = ConflictSet()
        cs.apply(prod("old"), token(1), +1)
        cs.apply(prod("new"), token(5), +1)
        assert LexStrategy().select(cs).production.name == "new"

    def test_compares_sorted_descending(self):
        cs = ConflictSet()
        cs.apply(prod("a", 2), token(9, 1), +1)
        cs.apply(prod("b", 2), token(8, 7), +1)
        # (9,1) vs (8,7): 9 > 8, so a wins despite the older second tag.
        assert LexStrategy().select(cs).production.name == "a"

    def test_longer_dominates_on_prefix(self):
        cs = ConflictSet()
        cs.apply(prod("short"), token(5), +1)
        cs.apply(prod("long", 2), token(5, 3), +1)
        assert LexStrategy().select(cs).production.name == "long"

    def test_specificity_breaks_ties(self):
        cs = ConflictSet()
        cs.apply(prod("plain"), token(4), +1)
        cs.apply(prod("specific", 1, extra_tests=3), token(4), +1)
        assert LexStrategy().select(cs).production.name == "specific"

    def test_empty_set(self):
        assert LexStrategy().select(ConflictSet()) is None

    def test_deterministic_final_tiebreak(self):
        cs = ConflictSet()
        cs.apply(prod("aaa"), token(2), +1)
        cs.apply(prod("zzz"), token(2), +1)
        # Same recency and specificity: name breaks the tie, stably.
        assert LexStrategy().select(cs).production.name == "zzz"


class TestMea:
    def test_first_ce_recency_dominates(self):
        cs = ConflictSet()
        # For LEX, b would win (9 > 8); MEA compares the *first* CE's
        # timetag first: a's first CE is newer.
        cs.apply(prod("a", 2), Token.of((WME.make("c", {}, 8), WME.make("c", {}, 2))), +1)
        cs.apply(prod("b", 2), Token.of((WME.make("c", {}, 3), WME.make("c", {}, 9))), +1)
        assert MeaStrategy().select(cs).production.name == "a"
        assert LexStrategy().select(cs).production.name == "b"

    def test_falls_back_to_lex(self):
        cs = ConflictSet()
        cs.apply(prod("a", 2), Token.of((WME.make("c", {}, 5), WME.make("c", {}, 2))), +1)
        cs.apply(prod("b", 2), Token.of((WME.make("c", {}, 5), WME.make("c", {}, 7))), +1)
        assert MeaStrategy().select(cs).production.name == "b"


class TestFactory:
    def test_make_strategy(self):
        assert make_strategy("lex").name == "lex"
        assert make_strategy("mea").name == "mea"

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            make_strategy("fifo")
