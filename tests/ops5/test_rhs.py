"""Unit tests for threaded-code RHS evaluation."""

import pytest

from repro.ops5.errors import RuntimeOps5Error
from repro.ops5.parser import parse_production
from repro.ops5.rhs import CompiledRHS, extract_bindings
from repro.ops5.wme import WorkingMemory
from repro.rete.token import Token


def setup(src: str, *wme_specs):
    """Compile a production and build a token from (class, attrs) specs."""
    prod = parse_production(src)
    wm = WorkingMemory()
    wmes = tuple(wm.add(klass, attrs) for klass, attrs in wme_specs)
    return CompiledRHS(prod), wm, Token.of(wmes)


class TestBindings:
    def test_extract_simple(self):
        rhs, wm, tok = setup(
            "(p r (a ^x <v>) --> (halt))", ("a", {"x": 42})
        )
        assert extract_bindings(rhs.production, tok) == {"v": 42}

    def test_first_occurrence_binds(self):
        rhs, wm, tok = setup(
            "(p r (a ^x <v>) (b ^y <v>) --> (halt))",
            ("a", {"x": 1}), ("b", {"y": 1}),
        )
        assert extract_bindings(rhs.production, tok) == {"v": 1}

    def test_negated_ces_skipped(self):
        rhs, wm, tok = setup(
            "(p r (a ^x <v>) - (c ^z <w>) (b ^y <u>) --> (halt))",
            ("a", {"x": 1}), ("b", {"y": 2}),
        )
        bindings = extract_bindings(rhs.production, tok)
        assert bindings == {"v": 1, "u": 2}


class TestActions:
    def test_make(self):
        rhs, wm, tok = setup("(p r (a ^x <v>) --> (make b ^y <v>))", ("a", {"x": 9}))
        env = rhs.execute(wm, tok)
        assert len(env.changes) == 1
        assert env.changes[0].sign == 1
        assert env.changes[0].wme.klass == "b"
        assert env.changes[0].wme.get("y") == 9

    def test_remove(self):
        rhs, wm, tok = setup("(p r (a) --> (remove 1))", ("a", {}))
        env = rhs.execute(wm, tok)
        assert env.changes[0].sign == -1
        assert len(wm) == 0

    def test_modify_emits_delete_then_add(self):
        rhs, wm, tok = setup("(p r (a ^x 1) --> (modify 1 ^x 2))", ("a", {"x": 1}))
        env = rhs.execute(wm, tok)
        signs = [c.sign for c in env.changes]
        assert signs == [-1, 1]
        assert env.changes[1].wme.get("x") == 2
        assert env.changes[1].wme.timetag > env.changes[0].wme.timetag

    def test_double_modify_chains(self):
        rhs, wm, tok = setup(
            "(p r (a ^x 1) --> (modify 1 ^x 2) (modify 1 ^y 3))", ("a", {"x": 1})
        )
        env = rhs.execute(wm, tok)
        final = env.changes[-1].wme
        assert final.get("x") == 2 and final.get("y") == 3
        assert len(env.changes) == 4

    def test_modify_after_remove_raises(self):
        rhs, wm, tok = setup(
            "(p r (a) --> (remove 1) (modify 1 ^x 2))", ("a", {})
        )
        with pytest.raises(RuntimeOps5Error):
            rhs.execute(wm, tok)

    def test_modify_negated_ce_rejected_at_compile(self):
        prod = parse_production("(p r (a) - (b) --> (modify 2 ^x 1))")
        with pytest.raises(RuntimeOps5Error):
            CompiledRHS(prod)

    def test_ce_index_counts_negated(self):
        # CE numbering includes negated CEs: 'b' is CE 3.
        rhs, wm, tok = setup(
            "(p r (a) - (x) (b ^v 1) --> (modify 3 ^v 2))",
            ("a", {}), ("b", {"v": 1}),
        )
        env = rhs.execute(wm, tok)
        assert env.changes[-1].wme.klass == "b"

    def test_write(self):
        rhs, wm, tok = setup("(p r (a ^x <v>) --> (write value <v>))", ("a", {"x": 3}))
        env = rhs.execute(wm, tok)
        assert env.out == ["value 3"]

    def test_bind_then_use(self):
        rhs, wm, tok = setup(
            "(p r (a) --> (bind <n> 5) (make b ^v <n>))", ("a", {})
        )
        env = rhs.execute(wm, tok)
        assert env.changes[0].wme.get("v") == 5

    def test_halt_stops_remaining_actions(self):
        rhs, wm, tok = setup("(p r (a) --> (halt) (make b))", ("a", {}))
        env = rhs.execute(wm, tok)
        assert env.halted
        assert env.changes == []

    def test_unbound_variable_raises(self):
        rhs, wm, tok = setup("(p r (a) --> (make b ^v <nope>))", ("a", {}))
        with pytest.raises(RuntimeOps5Error):
            rhs.execute(wm, tok)


class TestCompute:
    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("(compute <v> + 3)", 10),
            ("(compute <v> - 3)", 4),
            ("(compute <v> * 2)", 14),
            ("(compute <v> // 2)", 3),
            ("(compute <v> \\ 4)", 3),
            ("(compute <v> + 1 * 2)", 16),  # left-to-right, OPS5 style
        ],
    )
    def test_arithmetic(self, expr, expected):
        rhs, wm, tok = setup(f"(p r (a ^x <v>) --> (make b ^v {expr}))", ("a", {"x": 7}))
        env = rhs.execute(wm, tok)
        assert env.changes[0].wme.get("v") == expected

    def test_compute_on_symbol_raises(self):
        rhs, wm, tok = setup(
            "(p r (a ^x <v>) --> (make b ^v (compute <v> + 1)))", ("a", {"x": "sym"})
        )
        with pytest.raises(RuntimeOps5Error):
            rhs.execute(wm, tok)


class TestAccept:
    def test_accept_consumes_input(self):
        rhs, wm, tok = setup("(p r (a) --> (make b ^v (accept)))", ("a", {}))
        env = rhs.execute(wm, tok, input_values=[41])
        assert env.changes[0].wme.get("v") == 41

    def test_accept_without_input_raises(self):
        rhs, wm, tok = setup("(p r (a) --> (make b ^v (accept)))", ("a", {}))
        with pytest.raises(RuntimeOps5Error):
            rhs.execute(wm, tok)
