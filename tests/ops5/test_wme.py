"""Unit tests for working memory."""

import pytest

from repro.ops5.errors import RuntimeOps5Error
from repro.ops5.wme import WME, WMEChange, WorkingMemory


class TestWME:
    def test_make_and_get(self):
        w = WME.make("block", {"color": "red", "id": 1}, timetag=7)
        assert w.klass == "block"
        assert w.get("color") == "red"
        assert w.get("id") == 1
        assert w.timetag == 7

    def test_missing_attribute_default(self):
        w = WME.make("block", {}, timetag=1)
        assert w.get("color") is None
        assert w.get("color", "nil") == "nil"

    def test_attrs_sorted_canonically(self):
        a = WME.make("c", {"b": 2, "a": 1}, 1)
        b = WME.make("c", {"a": 1, "b": 2}, 1)
        assert a == b
        assert hash(a) == hash(b)

    def test_timetag_distinguishes(self):
        a = WME.make("c", {"a": 1}, 1)
        b = WME.make("c", {"a": 1}, 2)
        assert a != b

    def test_with_updates(self):
        w = WME.make("c", {"a": 1, "b": 2}, 1)
        w2 = w.with_updates({"a": 9}, timetag=5)
        assert w2.get("a") == 9
        assert w2.get("b") == 2
        assert w2.timetag == 5
        assert w.get("a") == 1  # original untouched

    def test_str(self):
        w = WME.make("c1", {"attr1": 12}, 3)
        assert str(w) == "(c1 ^attr1 12)"

    def test_vals_cache_consistent(self):
        w = WME.make("c", {"x": 1, "y": "s"}, 1)
        assert w.vals == {"x": 1, "y": "s"}
        assert w.as_dict == w.vals


class TestWMEChange:
    def test_valid_signs(self):
        w = WME.make("c", {}, 1)
        assert WMEChange(1, w).sign == 1
        assert WMEChange(-1, w).sign == -1

    def test_invalid_sign(self):
        with pytest.raises(ValueError):
            WMEChange(0, WME.make("c", {}, 1))


class TestWorkingMemory:
    def test_add_assigns_increasing_timetags(self):
        wm = WorkingMemory()
        a = wm.add("c", {"v": 1})
        b = wm.add("c", {"v": 2})
        assert b.timetag > a.timetag
        assert len(wm) == 2

    def test_remove(self):
        wm = WorkingMemory()
        w = wm.add("c", {})
        wm.remove(w)
        assert len(wm) == 0
        assert w not in wm

    def test_remove_absent_raises(self):
        wm = WorkingMemory()
        w = wm.add("c", {})
        wm.remove(w)
        with pytest.raises(RuntimeOps5Error):
            wm.remove(w)

    def test_modify_returns_old_and_new(self):
        wm = WorkingMemory()
        w = wm.add("c", {"v": 1})
        old, new = wm.modify(w, {"v": 2})
        assert old is w
        assert new.get("v") == 2
        assert new.timetag > old.timetag
        assert old not in wm
        assert new in wm

    def test_of_class(self):
        wm = WorkingMemory()
        wm.add("a", {})
        wm.add("b", {})
        wm.add("a", {})
        assert len(wm.of_class("a")) == 2
        assert len(wm.of_class("b")) == 1
        assert wm.of_class("zzz") == []

    def test_by_timetag(self):
        wm = WorkingMemory()
        w = wm.add("c", {})
        assert wm.by_timetag(w.timetag) is w
        assert wm.by_timetag(999) is None

    def test_classes_excludes_empty(self):
        wm = WorkingMemory()
        w = wm.add("a", {})
        wm.add("b", {})
        wm.remove(w)
        assert wm.classes() == ["b"]

    def test_snapshot_ordered_by_timetag(self):
        wm = WorkingMemory()
        ws = [wm.add("c", {"i": i}) for i in range(5)]
        assert wm.snapshot() == ws

    def test_iteration(self):
        wm = WorkingMemory()
        wm.add("a", {})
        wm.add("b", {})
        assert len(list(wm)) == 2
