"""Unit tests for the OPS5 tokenizer."""

import pytest

from repro.ops5.errors import LexError
from repro.ops5.lexer import Token, TokenType, tokenize


def types(source):
    return [t.type for t in tokenize(source)]


def values(source):
    return [t.value for t in tokenize(source)]


class TestBasicTokens:
    def test_parens(self):
        assert types("()") == [TokenType.LPAREN, TokenType.RPAREN]

    def test_braces(self):
        assert types("{}") == [TokenType.LBRACE, TokenType.RBRACE]

    def test_hat(self):
        assert types("^attr")[0] == TokenType.HAT

    def test_symbol(self):
        toks = tokenize("hello-world")
        assert toks[0].type == TokenType.SYMBOL
        assert toks[0].value == "hello-world"

    def test_arrow(self):
        assert types("-->") == [TokenType.ARROW]

    def test_empty_input(self):
        assert tokenize("") == []

    def test_whitespace_only(self):
        assert tokenize("  \n\t  ") == []


class TestNumbers:
    def test_integer(self):
        toks = tokenize("42")
        assert toks[0].type == TokenType.NUMBER
        assert toks[0].value == 42

    def test_negative_integer(self):
        toks = tokenize("-17")
        assert toks[0].type == TokenType.NUMBER
        assert toks[0].value == -17

    def test_float(self):
        toks = tokenize("2.5")
        assert toks[0].value == 2.5

    def test_scientific(self):
        toks = tokenize("1e3")
        assert toks[0].value == 1000.0

    def test_symbol_starting_with_digit(self):
        # '2x' is a symbol, not a number followed by a symbol.
        toks = tokenize("2x")
        assert toks[0].type == TokenType.SYMBOL
        assert toks[0].value == "2x"


class TestVariablesAndPredicates:
    def test_variable(self):
        toks = tokenize("<x>")
        assert toks[0].type == TokenType.VARIABLE
        assert toks[0].value == "x"

    def test_variable_with_dashes(self):
        toks = tokenize("<block-name>")
        assert toks[0].value == "block-name"

    def test_less_than_is_predicate(self):
        toks = tokenize("< 5")
        assert toks[0].type == TokenType.PREDICATE
        assert toks[0].value == "<"

    def test_all_predicates(self):
        for op in ("=", "<>", "<", "<=", ">", ">=", "<=>"):
            toks = tokenize(f"{op} 1")
            assert toks[0].type == TokenType.PREDICATE, op
            assert toks[0].value == op, op

    def test_same_type_predicate_longest_match(self):
        # '<=>' must not lex as '<=' '>'.
        toks = tokenize("<=> x")
        assert toks[0].value == "<=>"

    def test_disjunction_brackets(self):
        toks = tokenize("<< red green >>")
        assert toks[0].type == TokenType.LDOUBLE
        assert toks[-1].type == TokenType.RDOUBLE
        assert [t.value for t in toks[1:-1]] == ["red", "green"]

    def test_minus_before_paren_is_negation(self):
        toks = tokenize("- (c1)")
        assert toks[0].type == TokenType.MINUS


class TestCommentsAndPositions:
    def test_comment_to_end_of_line(self):
        toks = tokenize("foo ; this is a comment\nbar")
        assert [t.value for t in toks] == ["foo", "bar"]

    def test_comment_at_end_of_input(self):
        assert values("x ; trailing") == ["x"]

    def test_line_numbers(self):
        toks = tokenize("a\nb\nc")
        assert [t.line for t in toks] == [1, 2, 3]

    def test_column_numbers(self):
        toks = tokenize("ab cd")
        assert toks[0].column == 1
        assert toks[1].column == 4


class TestFullForms:
    def test_production_header(self):
        toks = tokenize("(p find-block (goal ^type find) --> (halt))")
        assert toks[0].type == TokenType.LPAREN
        assert toks[1].value == "p"
        assert toks[2].value == "find-block"

    def test_condition_with_variable_and_predicate(self):
        toks = tokenize("(block ^size > <s> ^color <c>)")
        kinds = [t.type for t in toks]
        assert TokenType.PREDICATE in kinds
        assert kinds.count(TokenType.VARIABLE) == 2

    def test_figure_2_1_lexes(self):
        src = "(p find-colored-block (goal ^type find-block ^color <c>) --> (modify 2))"
        toks = tokenize(src)
        assert toks[-1].type == TokenType.RPAREN
