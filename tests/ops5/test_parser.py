"""Unit tests for the OPS5 parser."""

import pytest

from repro.ops5.astnodes import (
    BindAction,
    Conjunction,
    Disjunction,
    HaltAction,
    Lit,
    MakeAction,
    ModifyAction,
    RemoveAction,
    RhsCompute,
    RhsConst,
    RhsVar,
    Test,
    Var,
    WriteAction,
)
from repro.ops5.errors import ParseError
from repro.ops5.parser import parse_production, parse_program


class TestProductions:
    def test_minimal_production(self):
        p = parse_production("(p r1 (a) --> (halt))")
        assert p.name == "r1"
        assert len(p.ces) == 1
        assert p.ces[0].klass == "a"
        assert p.actions == (HaltAction(),)

    def test_constant_test(self):
        p = parse_production("(p r (goal ^type find) --> (halt))")
        at = p.ces[0].tests[0]
        assert at.attr == "type"
        assert at.test == Test("=", Lit("find"))

    def test_variable_test(self):
        p = parse_production("(p r (goal ^color <c>) --> (halt))")
        assert p.ces[0].tests[0].test == Test("=", Var("c"))

    def test_predicate_with_constant(self):
        p = parse_production("(p r (n ^v > 10) --> (halt))")
        assert p.ces[0].tests[0].test == Test(">", Lit(10))

    def test_predicate_with_variable(self):
        p = parse_production("(p r (a ^x <v>) (b ^y <= <v>) --> (halt))")
        assert p.ces[1].tests[0].test == Test("<=", Var("v"))

    def test_disjunction(self):
        p = parse_production("(p r (b ^color << red green blue >>) --> (halt))")
        assert p.ces[0].tests[0].test == Disjunction(("red", "green", "blue"))

    def test_conjunction(self):
        p = parse_production("(p r (n ^v { <x> > 2 <= 10 }) --> (halt))")
        conj = p.ces[0].tests[0].test
        assert isinstance(conj, Conjunction)
        assert conj.tests == (Test("=", Var("x")), Test(">", Lit(2)), Test("<=", Lit(10)))

    def test_negated_ce(self):
        p = parse_production("(p r (a) - (b ^x <v>) --> (halt))")
        assert not p.ces[0].negated
        assert p.ces[1].negated

    def test_first_ce_may_not_be_negated(self):
        with pytest.raises(ParseError):
            parse_production("(p r - (a) --> (halt))")

    def test_empty_lhs_rejected(self):
        with pytest.raises(ParseError):
            parse_production("(p r --> (halt))")

    def test_multiple_ces(self):
        p = parse_production("(p r (a) (b) (c) --> (halt))")
        assert [ce.klass for ce in p.ces] == ["a", "b", "c"]


class TestActions:
    def test_make(self):
        p = parse_production("(p r (a) --> (make b ^x 1 ^y foo))")
        action = p.actions[0]
        assert isinstance(action, MakeAction)
        assert action.klass == "b"
        assert action.assigns == (("x", RhsConst(1)), ("y", RhsConst("foo")))

    def test_modify(self):
        p = parse_production("(p r (a ^n <n>) --> (modify 1 ^n <n>))")
        action = p.actions[0]
        assert isinstance(action, ModifyAction)
        assert action.ce_index == 1
        assert action.assigns == (("n", RhsVar("n")),)

    def test_remove(self):
        p = parse_production("(p r (a) --> (remove 1))")
        assert p.actions[0] == RemoveAction(ce_index=1)

    def test_write(self):
        p = parse_production("(p r (a ^v <v>) --> (write hello <v> 3))")
        action = p.actions[0]
        assert isinstance(action, WriteAction)
        assert action.values == (RhsConst("hello"), RhsVar("v"), RhsConst(3))

    def test_bind(self):
        p = parse_production("(p r (a) --> (bind <x> 5))")
        assert p.actions[0] == BindAction(var="x", value=RhsConst(5))

    def test_compute(self):
        p = parse_production("(p r (a ^v <v>) --> (make b ^v (compute <v> + 1)))")
        value = p.actions[0].assigns[0][1]
        assert isinstance(value, RhsCompute)
        assert value.ops == ("+",)
        assert value.operands == (RhsVar("v"), RhsConst(1))

    def test_compute_chain(self):
        p = parse_production("(p r (a ^v <v>) --> (make b ^v (compute <v> * 2 + 1)))")
        value = p.actions[0].assigns[0][1]
        assert value.ops == ("*", "+")

    def test_compute_subtraction(self):
        p = parse_production("(p r (a ^v <v>) --> (make b ^v (compute <v> - 1)))")
        assert p.actions[0].assigns[0][1].ops == ("-",)

    def test_unknown_action_rejected(self):
        with pytest.raises(ParseError):
            parse_production("(p r (a) --> (frobnicate 1))")

    def test_multiple_actions_in_order(self):
        p = parse_production("(p r (a) --> (remove 1) (make b) (halt))")
        assert [type(a).__name__ for a in p.actions] == [
            "RemoveAction",
            "MakeAction",
            "HaltAction",
        ]


class TestPrograms:
    def test_literalize(self):
        prog = parse_program("(literalize block id color)")
        assert prog.literalizes[0].klass == "block"
        assert prog.literalizes[0].attrs == ("id", "color")
        assert prog.declared_attrs["block"] == ("id", "color")

    def test_startup(self):
        prog = parse_program("(startup (make a ^x 1) (make b))")
        assert len(prog.startup) == 2

    def test_duplicate_production_names_rejected(self):
        with pytest.raises(ValueError):
            parse_program("(p r (a) --> (halt)) (p r (b) --> (halt))")

    def test_unknown_top_level_form(self):
        with pytest.raises(ParseError):
            parse_program("(frob x)")

    def test_figure_2_2_parses(self):
        from tests.conftest import FIGURE_2_2

        prog = parse_program(FIGURE_2_2)
        assert {p.name for p in prog.productions} == {"p1", "p2"}
        p1 = prog.production("p1")
        assert p1.ces[2].negated

    def test_unterminated_form(self):
        with pytest.raises(ParseError):
            parse_program("(p r (a) --> (halt)")

    def test_specificity_counts_tests(self):
        p = parse_production("(p r (a ^x 1 ^y <v>) (b ^z { <w> > 2 }) --> (halt))")
        # class(a) + x + y + class(b) + two conjunction members = 6
        assert p.specificity() == 6

    def test_ce_variables_in_order(self):
        p = parse_production("(p r (a ^x <b> ^y <a> ^z <b>) --> (halt))")
        assert p.ces[0].variables() == ("b", "a")
