#!/usr/bin/env python3
"""A small diagnostic expert system in OPS5 — the kind of application
the paper's introduction motivates — run sequentially and on the
threaded parallel engine, demonstrating they agree.

The knowledge base triages machine faults: symptoms assert findings,
findings combine into hypotheses, hypotheses with enough support become
diagnoses.
"""

from repro import Interpreter, parse_program
from repro.parallel.engine import ParallelMatcher
from repro.rete.network import ReteNetwork

SOURCE = """
(literalize symptom name severity)
(literalize finding fault weight)
(literalize diagnosis fault score)
(literalize phase step)

; --- symptom -> finding rules -------------------------------------
(p overheat-points-to-cooling
  (symptom ^name overheating ^severity <s>)
  -->
  (make finding ^fault cooling ^weight <s>))

(p overheat-points-to-load
  (symptom ^name overheating ^severity > 5)
  -->
  (make finding ^fault overload ^weight 3))

(p noise-points-to-bearings
  (symptom ^name grinding-noise ^severity <s>)
  -->
  (make finding ^fault bearings ^weight (compute <s> * 2)))

(p vibration-points-to-bearings
  (symptom ^name vibration ^severity <s>)
  -->
  (make finding ^fault bearings ^weight <s>))

(p vibration-points-to-mounting
  (symptom ^name vibration ^severity > 7)
  -->
  (make finding ^fault mounting ^weight 4))

; --- finding aggregation ------------------------------------------
(p open-diagnosis
  (finding ^fault <f> ^weight <w>)
  - (diagnosis ^fault <f>)
  -->
  (make diagnosis ^fault <f> ^score 0))

(p accumulate-evidence
  (diagnosis ^fault <f> ^score <s>)
  (finding ^fault <f> ^weight <w>)
  -->
  (modify 1 ^score (compute <s> + <w>))
  (remove 2))

; --- reporting ------------------------------------------------------
(p report-strong-diagnosis
  (phase ^step report)
  (diagnosis ^fault <f> ^score >= 10)
  -->
  (write PROBABLE fault <f> score <score-unused>))

(p report-strong
  (phase ^step report)
  (diagnosis ^fault <f> ^score { <s> >= 10 })
  -->
  (write probable fault <f> score <s>)
  (remove 2))

(p report-weak
  (phase ^step report)
  (diagnosis ^fault <f> ^score { <s> < 10 })
  -->
  (write possible fault <f> score <s>)
  (remove 2))

(p start-report
  (phase ^step collect)
  - (finding)
  -->
  (modify 1 ^step report))

(p done
  (phase ^step report)
  - (diagnosis)
  -->
  (write triage complete)
  (halt))

(startup
  (make phase ^step collect)
  (make symptom ^name overheating ^severity 6)
  (make symptom ^name grinding-noise ^severity 4)
  (make symptom ^name vibration ^severity 8))
"""

# Drop the accidental bad rule above (unbound variable) — keep the
# working knowledge base only.
SOURCE = SOURCE.replace(
    """(p report-strong-diagnosis
  (phase ^step report)
  (diagnosis ^fault <f> ^score >= 10)
  -->
  (write PROBABLE fault <f> score <score-unused>))

""",
    "",
)


def main() -> None:
    sequential = Interpreter(SOURCE).run(max_cycles=500)
    print("sequential engine:")
    for line in sequential.output:
        print("  ", line)

    program = parse_program(SOURCE)
    network = ReteNetwork.compile(program)
    matcher = ParallelMatcher(network, n_workers=3, n_queues=2)
    with Interpreter(program, matcher=matcher) as interp:
        parallel = interp.run(max_cycles=500)

    print("\nthreaded parallel engine (3 match processes):")
    for line in parallel.output:
        print("  ", line)

    assert sorted(sequential.output) == sorted(parallel.output)
    print("\nsequential and parallel engines agree.")


if __name__ == "__main__":
    main()
