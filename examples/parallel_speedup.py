#!/usr/bin/env python3
"""The headline experiment: regenerate the paper's speed-up tables.

Runs all three benchmark programs, records their match-task traces, and
simulates PSM-E on the Encore Multimax across the paper's configuration
grid (process counts × task queues × lock schemes), printing Tables
4-5, 4-6 and 4-8 with the paper's numbers alongside ours.

This takes a couple of minutes — it is the full reproduction driver.
Pass --table to regenerate a single table.
"""

import argparse

from repro.harness import ALL_TABLES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--table",
        choices=sorted(ALL_TABLES),
        help="regenerate one table (default: the three speed-up tables)",
    )
    parser.add_argument(
        "--all", action="store_true", help="regenerate every table of the paper"
    )
    args = parser.parse_args()

    if args.table:
        selected = [args.table]
    elif args.all:
        selected = list(ALL_TABLES)
    else:
        selected = ["4-5", "4-6", "4-8"]

    for table_id in selected:
        result = ALL_TABLES[table_id]()
        print(result.report)
        print()


if __name__ == "__main__":
    main()
