#!/usr/bin/env python3
"""Figure 2-2: compile the paper's example productions and dump the
Rete network structure, showing constant-test node sharing.
"""

from repro import parse_program
from repro.rete.network import ReteNetwork
from repro.rete.nodes import JoinNode, NotNode

FIGURE_2_2 = """
(p p1
  (C1 ^attr1 <x> ^attr2 12)
  (C2 ^attr1 15 ^attr2 <x>)
  - (C3 ^attr1 <x>)
  -->
  (remove 2))
(p p2
  (C2 ^attr1 15 ^attr2 <y>)
  (C4 ^attr1 <y>)
  -->
  (modify 1 ^attr1 12))
"""


def main() -> None:
    network = ReteNetwork.compile(parse_program(FIGURE_2_2))

    print("Figure 2-2 network for p1 and p2\n")
    print("constant-test nodes (shared between productions):")
    for node in network.constant_nodes:
        print(f"   node {node.node_id}: {node.desc}")

    print("\nalpha terminals and the two-input inputs they feed:")
    for term in network.alpha_terminals:
        feeds = ", ".join(
            f"{type(node).__name__}#{node.node_id}.{side}"
            for node, side in term.successors
        )
        shared = "  [SHARED]" if len(term.successors) > 1 else ""
        print(f"   alpha {term.alpha_id} -> {feeds}{shared}")

    print("\ntwo-input nodes:")
    for node in network.beta_nodes:
        if isinstance(node, (JoinNode, NotNode)):
            kind = "not " if isinstance(node, NotNode) else "join"
            print(f"   {kind} node {node.node_id}: tests {list(node.tests)}")

    print("\nterminal nodes:")
    for name, term in network.terminals.items():
        print(f"   {name}: node {term.node_id}")

    counts = network.node_counts()
    print(f"\nnode counts: {counts}")
    assert counts["terminal"] == 2 and counts["join"] == 2 and counts["not"] == 1


if __name__ == "__main__":
    main()
