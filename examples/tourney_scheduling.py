#!/usr/bin/env python3
"""Tourney demo: cross-product productions and the §4.2 fix.

Schedules a round-robin tournament twice — with the original
cross-product ``propose-match`` and with the paper's domain-specific
rewrite — and shows why the original cannot speed up: all its pairing
tokens hash to a single line, so the match processes serialize on one
lock.
"""

import argparse

from repro import Interpreter, TraceRecorder
from repro.programs import tourney
from repro.simulator import simulate, uniprocessor_baseline


def run_variant(label: str, source: str) -> None:
    recorder = TraceRecorder()
    interp = Interpreter(source, recorder=recorder)
    result = interp.run(max_cycles=50000)
    print(f"\n=== {label} ===")
    print(f"result: {result.output[-1]}   cycles: {result.cycles}")

    byes = sum(1 for line in result.output if "bye" in line)
    if byes:
        print(f"byes along the way: {byes}")

    trace = recorder.trace
    base = uniprocessor_baseline(trace)
    run13 = simulate(trace, n_match=13, n_queues=8)
    print(f"uniprocessor match (simulated Encore): {base.match_seconds:.2f}s")
    print(f"1+13 processes, 8 queues: speed-up {base.match_instr / run13.match_instr:.2f}")
    print(
        f"hash-line contention (left-side spins): "
        f"{run13.line_left.mean_spins:.2f}"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--teams", type=int, default=12)
    parser.add_argument("--rounds", type=int, default=14)
    args = parser.parse_args()

    run_variant(
        "original (cross-product propose-match)",
        tourney.source(n_teams=args.teams, n_rounds=args.rounds),
    )
    run_variant(
        "fixed (§4.2 pool-keyed pairing)",
        tourney.fixed_source(n_teams=args.teams, n_rounds=args.rounds),
    )


if __name__ == "__main__":
    main()
