#!/usr/bin/env python3
"""Rubik demo: the paper's 70-rule cube program, end to end.

Generates the Rubik OPS5 program (scramble + inverse agenda), runs it,
verifies the cube solved itself through the rules, then records a match
trace and simulates the run on the 16-CPU Encore Multimax at several
match-process counts — a miniature of the paper's Table 4-6.
"""

import argparse

from repro import Interpreter, TraceRecorder
from repro.programs import rubik
from repro.simulator import simulate, uniprocessor_baseline


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--moves", type=int, default=6, help="scramble length")
    parser.add_argument("--seed", type=int, default=1988)
    args = parser.parse_args()

    source = rubik.source(n_moves=args.moves, seed=args.seed)
    recorder = TraceRecorder()
    interp = Interpreter(source, recorder=recorder)
    result = interp.run(max_cycles=5000)

    print(f"rules: {rubik.n_rules()}   moves applied: {2 * args.moves}")
    print(f"cycles: {result.cycles}   output: {result.output}")
    assert result.output == ["cube solved"], "the rules failed to solve the cube!"

    stats = interp.stats
    print(
        f"WM changes: {stats.wme_changes}   "
        f"activations: {stats.node_activations}   "
        f"activations/change: {stats.node_activations / stats.wme_changes:.1f}"
    )

    trace = recorder.trace
    base = uniprocessor_baseline(trace)
    print(f"\nsimulated Encore Multimax (uniprocessor match: {base.match_seconds:.2f}s)")
    print(f"{'processes':>10} {'queues':>7} {'speed-up':>9} {'queue spins':>12}")
    for k, q in ((1, 1), (3, 2), (7, 8), (13, 8)):
        run = simulate(trace, n_match=k, n_queues=q)
        print(
            f"{'1+' + str(k):>10} {q:>7} "
            f"{base.match_instr / run.match_instr:>9.2f} "
            f"{run.queue_stats.mean_spins:>12.2f}"
        )


if __name__ == "__main__":
    main()
