#!/usr/bin/env python3
"""Quickstart: write an OPS5 program, run it, inspect the match.

The public API in three steps:

1. write OPS5 source (productions + a startup block),
2. build an :class:`repro.Interpreter` and ``run()`` it,
3. read the output, firings, and match statistics.
"""

from repro import Interpreter

SOURCE = """
(literalize order id item qty status)
(literalize stock item level)

; Fill an order when stock suffices.
(p fill-order
  (order ^id <o> ^item <i> ^qty <q> ^status open)
  (stock ^item <i> ^level >= <q>)
  -->
  (modify 2 ^level (compute <level-was> - 0))   ; placeholder, see below
  (modify 1 ^status filled)
  (write order <o> filled))

(startup
  (make stock ^item widget ^level 10)
  (make stock ^item gizmo ^level 1)
  (make order ^id 1 ^item widget ^qty 4 ^status open)
  (make order ^id 2 ^item gizmo ^qty 5 ^status open))
"""

# The placeholder above needs the stock level bound to a variable; OPS5
# binds on first '=' occurrence, so write the real rule like this:
SOURCE = """
(literalize order id item qty status)
(literalize stock item level)

(p fill-order
  (order ^id <o> ^item <i> ^qty <q> ^status open)
  (stock ^item <i> ^level { <l> >= <q> })
  -->
  (modify 2 ^level (compute <l> - <q>))
  (modify 1 ^status filled)
  (write order <o> filled))

(p reject-order
  (order ^id <o> ^item <i> ^qty <q> ^status open)
  (stock ^item <i> ^level < <q>)
  -->
  (modify 1 ^status rejected)
  (write order <o> rejected))

(startup
  (make stock ^item widget ^level 10)
  (make stock ^item gizmo ^level 1)
  (make order ^id 1 ^item widget ^qty 4 ^status open)
  (make order ^id 2 ^item gizmo ^qty 5 ^status open))
"""


def main() -> None:
    interp = Interpreter(SOURCE)
    result = interp.run()

    print("program output:")
    for line in result.output:
        print("  ", line)

    print("\nfirings:")
    for firing in result.firings:
        print(f"   cycle {firing.cycle}: {firing.production} {firing.timetags}")

    stats = interp.stats
    print("\nmatch statistics:")
    print(f"   WM changes processed: {stats.wme_changes}")
    print(f"   node activations:     {stats.node_activations}")
    print(f"   conflict-set changes: {stats.cs_changes}")

    print("\nfinal working memory:")
    for wme in interp.wm.snapshot():
        print("  ", wme)


if __name__ == "__main__":
    main()
