"""Quiescence-point invariants for the parallel engine (§3.2).

Checked after every ``process_changes`` batch, against the sequential
matcher run in lockstep on the *same* WME objects:

``conflict_set``
    The net conflict set (count-folded CS deltas, since the parallel
    engine emits deltas unordered) equals the sequential matcher's.
``taskcount``
    TaskCount is zero at quiescence and was never observed negative.
``extra_deletes``
    The conjugate extra-deletes lists are empty at the fixpoint — every
    early ``-`` met its ``+`` twin.
``memory_census``
    The token hash memories hold exactly the sequential matcher's token
    multiset: no duplicated tokens (same token stored twice on one node
    side), no orphans (tokens the sequential run never stored, e.g.
    both halves of an in-flight modify), no losses, and identical
    negated-node match counts.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Counter as CounterT, List, Tuple

from ..rete.memories import NotEntry
from ..rete.network import ReteNetwork


@dataclass(frozen=True)
class Violation:
    """One invariant failure at one quiescence point."""

    invariant: str
    batch: int
    detail: str

    def format(self) -> str:
        return f"batch {self.batch}: {self.invariant}: {self.detail}"


CensusKey = Tuple[int, str, tuple, int]


def memory_census(memory, network: ReteNetwork) -> CounterT[CensusKey]:
    """Multiset of ``(node_id, side, token_key, not_count)`` over all
    two-input node memories (``not_count`` is -1 for plain tokens)."""
    census: CounterT[CensusKey] = Counter()
    for node in network.two_input_nodes():
        for side in ("L", "R"):
            for item in memory.items(node.node_id, side):
                count = item.count if isinstance(item, NotEntry) else -1
                census[(node.node_id, side, item.key, count)] += 1
    return census


def _describe_diff(extra: CounterT, missing: CounterT, limit: int = 4) -> str:
    parts = []
    if extra:
        sample = ", ".join(repr(k) for k in sorted(extra)[:limit])
        parts.append(f"{sum(extra.values())} extra (e.g. {sample})")
    if missing:
        sample = ", ".join(repr(k) for k in sorted(missing)[:limit])
        parts.append(f"{sum(missing.values())} missing (e.g. {sample})")
    return "; ".join(parts)


def check_census(
    batch: int, parallel_census: CounterT, sequential_census: CounterT
) -> List[Violation]:
    if parallel_census == sequential_census:
        return []
    extra = parallel_census - sequential_census
    missing = sequential_census - parallel_census
    out = [
        Violation("memory_census", batch, _describe_diff(extra, missing))
    ]
    dupes = Counter(
        {k: n for k, n in parallel_census.items() if n > 1 and sequential_census[k] <= 1}
    )
    if dupes:
        out.append(
            Violation(
                "memory_census",
                batch,
                f"duplicated tokens: {sorted(dupes)[:4]!r}",
            )
        )
    return out


def check_conflict_set(
    batch: int, parallel_cs: CounterT, sequential_cs: CounterT
) -> List[Violation]:
    par = {k for k, n in parallel_cs.items() if n != 0}
    seq = {k for k, n in sequential_cs.items() if n != 0}
    if par == seq:
        bad_counts = sorted(
            k for k in par if parallel_cs[k] != sequential_cs[k]
        )
        if not bad_counts:
            return []
        return [
            Violation(
                "conflict_set",
                batch,
                f"instantiation multiplicities differ: {bad_counts[:4]!r}",
            )
        ]
    return [
        Violation(
            "conflict_set",
            batch,
            _describe_diff(
                Counter({k: 1 for k in par - seq}),
                Counter({k: 1 for k in seq - par}),
            ),
        )
    ]


def check_quiescence(batch: int, matcher) -> List[Violation]:
    """Engine-side invariants on a quiesced :class:`ParallelMatcher`."""
    out: List[Violation] = []
    if matcher.taskcount.value != 0:
        out.append(
            Violation(
                "taskcount", batch, f"non-zero at quiescence: {matcher.taskcount.value}"
            )
        )
    if matcher.taskcount.min_value < 0:
        out.append(
            Violation(
                "taskcount", batch, f"went negative: min {matcher.taskcount.min_value}"
            )
        )
    pending = matcher.memory.pending_deletes
    if pending:
        out.append(
            Violation("extra_deletes", batch, f"{pending} deletes still parked")
        )
    return out
