"""The cooperative scheduler behind the schedule-exploration harness.

Installed as the :mod:`repro.parallel.hooks` yield hook, the scheduler
serializes the engine's threads: at every yield point the calling
thread parks on a shared condition variable and waits until the
scheduler hands it the *turn*; exactly one thread runs between any two
scheduling decisions.  Which thread gets the turn is decided by a
:mod:`~repro.schedck.policies` policy, so the entire interleaving — and
therefore every memory operation order the engine performs — is a
deterministic function of the policy's seed.

Startup is gated: decisions begin only once ``expected_threads``
distinct threads (the ``n_workers`` match processes plus the control
thread) are parked, so the decision sequence does not depend on racy
thread start-up order and the policy's RNG stream is identical across
runs with the same seed.

Liveness rests on an engine property: every wait loop in
:mod:`repro.parallel` (spin-lock spin, empty-queue idle, TaskCount
quiescence poll) contains a yield point, so a thread that is blocked
still cedes the turn on every iteration and a cooperative run cannot
hard-deadlock.  Two backstops guard the harness itself: ``max_steps``
bounds the number of decisions (the run is marked truncated and
scheduling is switched off), and a wall-clock deadline raises
:class:`ScheduleExhausted` if the run wedges in a way the step bound
cannot see (e.g. mis-declared ``expected_threads``).
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional, Tuple

from ..parallel import hooks


class ScheduleExhausted(RuntimeError):
    """The cooperative run hit the harness's liveness deadline."""


class CooperativeScheduler:
    """Owns the turn; callable as the ``hooks`` yield hook.

    Parameters
    ----------
    policy:
        Object with ``choose(runnable, step) -> name`` where ``runnable``
        is a name-sorted list of ``(thread_name, label)`` pairs.
    expected_threads:
        Number of distinct threads that must park before the first
        decision (workers + control thread).
    max_steps:
        Decision budget; exceeding it deactivates scheduling and marks
        the run ``truncated`` (the engine then free-runs to completion).
    liveness_timeout:
        Wall-clock backstop in seconds; only pathological setups hit it.
    trace_limit:
        Keep at most this many ``(step, thread, label)`` entries in
        :attr:`trace` (the full log of a long run is rarely useful).
    """

    def __init__(
        self,
        policy,
        expected_threads: int,
        max_steps: int = 200_000,
        liveness_timeout: float = 60.0,
        trace_limit: int = 10_000,
    ) -> None:
        self.policy = policy
        self.expected_threads = expected_threads
        self.max_steps = max_steps
        self.liveness_timeout = liveness_timeout
        self.trace_limit = trace_limit
        self.steps = 0
        self.truncated = False
        self.trace: List[Tuple[int, str, str]] = []
        self._cond = threading.Condition()
        self._parked = {}  # thread name -> label
        self._current: Optional[str] = None
        self._active = False
        self._started = False
        self._deadline = 0.0

    # -- harness control (call from the control thread) ---------------------

    def activate(self) -> None:
        with self._cond:
            self._active = True
            self._started = False
            self._deadline = time.monotonic() + self.liveness_timeout

    def deactivate(self) -> None:
        with self._cond:
            self._deactivate_locked()

    def _deactivate_locked(self) -> None:
        self._active = False
        self._current = None
        self._cond.notify_all()

    # -- hook protocol (called from engine threads) --------------------------

    def __call__(self, label: str, detail: object = None) -> None:
        me = threading.current_thread().name
        cond = self._cond
        with cond:
            if not self._active:
                return
            self._parked[me] = label
            if self._current == me:
                self._current = None
            if not self._started:
                if len(self._parked) >= self.expected_threads:
                    self._started = True
                    self._dispatch()
            elif self._current is None:
                self._dispatch()
            while self._active and self._current != me:
                if time.monotonic() > self._deadline:
                    self._deactivate_locked()
                    raise ScheduleExhausted(
                        f"no progress within {self.liveness_timeout}s "
                        f"(step {self.steps}, parked {sorted(self._parked)})"
                    )
                cond.wait(0.05)
            self._parked.pop(me, None)

    def thread_exit(self) -> None:
        """A match process died (poison or failure): retire it."""
        me = threading.current_thread().name
        with self._cond:
            self._parked.pop(me, None)
            if self._current == me:
                self._current = None
                if self._active and self._started and self._parked:
                    self._dispatch()

    # -- internals ------------------------------------------------------------

    def _dispatch(self) -> None:
        if not self._parked:
            return
        if self.steps >= self.max_steps:
            self.truncated = True
            self._deactivate_locked()
            return
        runnable = sorted(self._parked.items())
        choice = self.policy.choose(runnable, self.steps)
        if len(self.trace) < self.trace_limit:
            self.trace.append((self.steps, choice, self._parked[choice]))
        self.steps += 1
        self._current = choice
        self._cond.notify_all()


class HarnessSession:
    """Context manager tying a scheduler to the global yield hook.

    ``with HarnessSession(scheduler): ...`` installs the scheduler,
    activates it, and guarantees deactivation + uninstall on the way
    out even when the engine raises mid-schedule.
    """

    def __init__(self, scheduler: CooperativeScheduler) -> None:
        self.scheduler = scheduler

    def __enter__(self) -> CooperativeScheduler:
        hooks.install(self.scheduler)
        self.scheduler.activate()
        return self.scheduler

    def __exit__(self, *exc) -> None:
        self.scheduler.deactivate()
        hooks.uninstall()
