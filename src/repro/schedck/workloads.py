"""Pinned schedck workloads: named program + batch fixtures.

The schedule harness normally derives its workload from the seed via
:mod:`repro.schedck.progen`; the regressions worth keeping, though,
are *pinned* — a fixed program and fixed WME batches whose behaviour
under a fixed schedule is an executable fact.  This registry gives
those fixtures a name the CLI can replay (``repro schedck --workload
NAME``), so a failing pinned test prints a paste-ready command instead
of "see the test file".

``deep-chain``
    The 4-level chain whose *thread-schedule*-induced transient token
    blow-up (delete halves of a modify delayed behind the add halves)
    is pinned as a strict xfail in ``tests/schedck/test_deep_chain.py``.

``conjugate-storm``
    The *dispatch*-induced sibling: a deeper chain driven through
    repeated modify batches, so every batch floods the queues with
    ``+``/``-`` conjugate twins — the rubik recognize-act cycle's
    match-phase shape distilled to the smallest program that still
    shows the multi-queue divergence.  Under the naive round-robin
    dispatch at the livelock alignment (``n_queues == n_workers``) the
    twins land on different queues and the parked-delete lists grow;
    under the rebalancing dispatch the same thread schedule stays
    clean (``tests/schedck/test_rubik_livelock.py``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from ..ops5.wme import WMEChange, WorkingMemory

#: A 4-level chain: every class joins the next on the shared variable,
#: like Rubik's deep rotation rules (22 CEs in the original).
DEEP_CHAIN = "(p chain (c0 ^a <x>) (c1 ^a <x>) (c2 ^a <x>) (c3 ^a <x>) --> (halt))"

def _chain_program(levels: int) -> str:
    ces = " ".join(f"(c{i} ^a <x>)" for i in range(levels))
    return f"(p chain {ces} --> (halt))"


def deep_chain_case() -> Tuple[str, List[List[WMEChange]]]:
    """Batch 1 builds the chain; batch 2 modifies every level above the
    base — the delete and re-add of each WME travel in one batch."""
    wm = WorkingMemory()
    base = [wm.add(f"c{i}", {"a": 1}) for i in range(4)]
    batch1 = [WMEChange(1, w) for w in base]
    batch2 = []
    for wme in base[1:]:
        old, new = wm.modify(wme, {"a": 1})
        batch2.append(WMEChange(-1, old))
        batch2.append(WMEChange(1, new))
    return DEEP_CHAIN, [batch1, batch2]


def conjugate_storm_case(
    levels: int = 8, rounds: int = 1, width: int = 2
) -> Tuple[str, List[List[WMEChange]]]:
    """Build a ``levels``-deep chain with ``width`` WMEs per class,
    then ``rounds`` batches each modifying every WME above the base
    level — each round puts ``2 * width * (levels-1)`` conjugate
    halves in flight at once, the way rubik's rotation productions
    churn the cube state every cycle.  ``width > 1`` gives every join
    level a cross product, so a delete half delayed behind its insert
    half double-counts *width-fold* per level it lags — the
    amplification that turns a reordered queue into a livelock.

    The defaults are the pinned livelock shape of
    ``tests/schedck/test_rubik_livelock.py``, so the registry entry
    replays it exactly."""
    wm = WorkingMemory()
    current = [
        [wm.add(f"c{i}", {"a": 1}) for _ in range(width)] for i in range(levels)
    ]
    batches = [[WMEChange(1, w) for row in current for w in row]]
    for _ in range(rounds):
        batch = []
        for li in range(1, levels):
            for wi in range(width):
                old, new = wm.modify(current[li][wi], {"a": 1})
                current[li][wi] = new
                batch.append(WMEChange(-1, old))
                batch.append(WMEChange(1, new))
        batches.append(batch)
    return _chain_program(levels), batches


#: Name -> zero-argument fixture factory, for ``--workload`` replay.
WORKLOADS: Dict[str, Callable[[], Tuple[str, List[List[WMEChange]]]]] = {
    "deep-chain": deep_chain_case,
    "conjugate-storm": conjugate_storm_case,
}
