"""Differential schedule runs: sequential oracle vs parallel engine.

:func:`run_schedule` is the unit of everything here: from one seed it
derives a random program + workload (or takes a pinned one), runs the
sequential matcher as the oracle, then replays the same WME batches
through the threaded :class:`~repro.parallel.engine.ParallelMatcher`
under the cooperative scheduler, checking every invariant at every
quiescence point.  The report it returns is deterministic text: the
same seed and configuration produce a byte-identical report, which is
what lets a CI failure line be replayed locally with
``python -m repro schedck --seed N``.

:func:`sweep` fans one seed range out over the engine-configuration
grid (workers × queues × lock scheme) and the policy rotation — the
differential fuzzing loop.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..ops5.parser import parse_program
from ..ops5.wme import WMEChange
from ..parallel.engine import ParallelMatcher
from ..parallel.policy import SAFE_QUEUE_MATRIX
from ..rete.matcher import SequentialMatcher
from ..rete.network import ReteNetwork
from . import progen
from .invariants import (
    Violation,
    check_census,
    check_conflict_set,
    check_quiescence,
    memory_census,
)
from .policies import DEFAULT_POLICIES, make_policy
from .scheduler import CooperativeScheduler, HarnessSession


@dataclass(frozen=True)
class EngineConfig:
    """One point on the paper's experimental axes.

    ``dispatch`` is the task-dispatch policy
    (:data:`repro.parallel.policy.POLICY_NAMES`) — *which queue a push
    lands on* — and is deliberately a separate axis from the harness's
    thread-schedule policy (``--policy``), which decides *which thread
    runs next*.  The same seed under the same thread schedule can be
    replayed against different dispatch policies, which is how the
    multi-queue livelock reproduction and its fixed twin differ by
    exactly one knob (``tests/schedck/test_rubik_livelock.py``).
    """

    n_workers: int = 2
    n_queues: int = 1
    lock_scheme: str = "simple"
    n_lines: int = 64
    dispatch: str = "round-robin"

    def describe(self) -> str:
        base = (
            f"1+{self.n_workers}/{self.n_queues}q/"
            f"{self.lock_scheme}/{self.n_lines}l"
        )
        # The historical default stays spelled the historical way so
        # pinned report strings (and CI log greps) keep matching.
        if self.dispatch != "round-robin":
            base += f"/{self.dispatch}"
        return base


#: The acceptance-criteria grid: n_workers × n_queues × lock_scheme,
#: plus one config per non-default dispatch policy at that policy's
#: conformance-safe queue count (SAFE_QUEUE_MATRIX) so the sweep
#: exercises every dispatch path under schedule fuzz.
DEFAULT_GRID: Tuple[EngineConfig, ...] = tuple(
    EngineConfig(n_workers=w, n_queues=q, lock_scheme=s)
    for w in (1, 2, 4)
    for q in (1, 4)
    for s in ("simple", "mrsw")
) + tuple(
    EngineConfig(n_workers=2, n_queues=SAFE_QUEUE_MATRIX[d], dispatch=d)
    for d in ("affinity", "least-loaded", "work-stealing", "rebalance")
)


@dataclass
class ScheduleReport:
    """Outcome of one schedule; :meth:`format` is byte-stable per seed."""

    seed: int
    policy: str
    config: EngineConfig
    n_rules: int
    n_changes: int
    n_batches: int
    steps: int
    truncated: bool
    violations: List[Violation] = field(default_factory=list)
    stats: List[Tuple[str, object]] = field(default_factory=list)
    #: Dispatch-policy counters (steals, rebalances).  Kept out of
    #: :meth:`format`: steal attribution depends on pop/wakeup timing
    #: even under the cooperative scheduler, so printing it would
    #: break the byte-identical-report contract.
    telemetry: List[Tuple[str, object]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def format(self) -> str:
        lines = [
            f"schedck seed={self.seed} policy={self.policy} "
            f"config={self.config.describe()}",
            f"program: {self.n_rules} rules, {self.n_changes} WM changes "
            f"in {self.n_batches} batches",
            f"schedule: {self.steps} decisions"
            + (" (truncated)" if self.truncated else ""),
        ]
        for key, value in self.stats:
            lines.append(f"  {key} = {value}")
        if self.violations:
            lines.append(f"violations: {len(self.violations)}")
            lines.extend("  " + v.format() for v in self.violations)
        else:
            lines.append("violations: 0")
        return "\n".join(lines)


def _fold_deltas(cs: Counter, deltas) -> None:
    for delta in deltas:
        cs[(delta.production.name, delta.token.key)] += delta.sign


def run_schedule(
    seed: int,
    config: EngineConfig = EngineConfig(),
    policy_spec: str = "random",
    program: Optional[str] = None,
    batches: Optional[List[List[WMEChange]]] = None,
    params: progen.ProgenParams = progen.ProgenParams(),
    max_steps: int = 200_000,
) -> ScheduleReport:
    """Run one seeded schedule differentially; never raises for engine
    misbehaviour — failures come back as report violations."""
    rng = random.Random(seed)
    if program is None:
        program, generated = progen.generate(rng, params)
        if batches is None:
            batches = generated
    elif batches is None:
        raise ValueError("a pinned program needs pinned batches")
    program_ast = parse_program(program)

    # Sequential oracle: per-batch conflict-set and memory snapshots.
    seq_net = ReteNetwork.compile(program_ast)
    seq = SequentialMatcher(seq_net, n_lines=config.n_lines)
    seq_cs: Counter = Counter()
    snapshots = []
    for batch in batches:
        _fold_deltas(seq_cs, seq.process_changes(batch))
        snapshots.append((Counter(seq_cs), memory_census(seq.memory, seq_net)))

    # Parallel run under the cooperative scheduler.
    par_net = ReteNetwork.compile(program_ast)
    policy = make_policy(policy_spec, seed)
    scheduler = CooperativeScheduler(
        policy, expected_threads=config.n_workers + 1, max_steps=max_steps
    )
    violations: List[Violation] = []
    par_cs: Counter = Counter()
    with HarnessSession(scheduler):
        matcher = ParallelMatcher(
            par_net,
            n_workers=config.n_workers,
            n_queues=config.n_queues,
            lock_scheme=config.lock_scheme,
            n_lines=config.n_lines,
            policy=config.dispatch,
        )
        try:
            for bi, batch in enumerate(batches):
                try:
                    _fold_deltas(par_cs, matcher.process_changes(batch))
                except RuntimeError as exc:
                    cause = exc.__cause__
                    detail = str(exc) + (f": {cause!r}" if cause else "")
                    violations.append(Violation("engine_error", bi, detail))
                    break
                violations.extend(check_quiescence(bi, matcher))
                expected_cs, expected_census = snapshots[bi]
                violations.extend(check_conflict_set(bi, par_cs, expected_cs))
                violations.extend(
                    check_census(bi, memory_census(matcher.memory, par_net), expected_census)
                )
                if violations:
                    break
        finally:
            scheduler.deactivate()
            matcher.close()

    par_stats = matcher.stats
    stats = [
        ("node_activations.seq", seq.stats.node_activations),
        ("node_activations.par", par_stats.node_activations),
        ("tokens_emitted.seq", seq.stats.tokens_emitted),
        ("tokens_emitted.par", par_stats.tokens_emitted),
        ("conjugate.parked", matcher.memory.parked_total),
        ("conjugate.annihilated", matcher.memory.annihilations),
        ("line_lock.requeues", matcher.line_lock_stats().requeues),
    ]
    telemetry = [
        ("queue.steals", matcher.queues.stolen),
        ("policy.rebalances", matcher.policy.rebalances),
    ]
    return ScheduleReport(
        seed=seed,
        policy=policy.name,
        config=config,
        n_rules=len(seq_net.productions),
        n_changes=sum(len(b) for b in batches),
        n_batches=len(batches),
        steps=scheduler.steps,
        truncated=scheduler.truncated,
        violations=violations,
        stats=stats,
        telemetry=telemetry,
    )


@dataclass
class SweepResult:
    """Aggregate of a differential fuzz sweep."""

    n_schedules: int
    failures: List[ScheduleReport] = field(default_factory=list)
    truncated: int = 0
    #: Step budget the sweep ran under — part of the replay recipe.
    max_steps: int = 200_000

    @property
    def ok(self) -> bool:
        # A truncated schedule is a liveness failure: the engine never
        # reached quiescence inside the step budget.
        return not self.failures and self.truncated == 0

    def format(self) -> str:
        """Summary where every FAIL is reproducible from its own lines:
        the replay line is the complete ``repro schedck`` invocation
        (seed, policy, full engine config, step budget) — no need to
        reconstruct flags from the packed config string."""
        lines = [
            f"schedck sweep: {self.n_schedules} schedules, "
            f"{len(self.failures)} failing, {self.truncated} truncated"
        ]
        for report in self.failures[:20]:
            first = report.violations[0]
            cfg = report.config
            lines.append(
                f"  FAIL seed={report.seed} policy={report.policy} "
                f"config={cfg.describe()} — {first.format()}"
            )
            lines.append(
                f"    replay: python -m repro schedck"
                f" --seed {report.seed} --policy {report.policy}"
                f" --workers {cfg.n_workers} --queues {cfg.n_queues}"
                f" --locks {cfg.lock_scheme} --lines {cfg.n_lines}"
                f" --dispatch {cfg.dispatch}"
                f" --max-steps {self.max_steps}"
            )
        if len(self.failures) > 20:
            lines.append(f"  ... and {len(self.failures) - 20} more")
        return "\n".join(lines)


def sweep(
    n_schedules: int,
    base_seed: int = 0,
    configs: Sequence[EngineConfig] = DEFAULT_GRID,
    policies: Sequence[str] = DEFAULT_POLICIES,
    params: progen.ProgenParams = progen.ProgenParams(),
    max_steps: int = 200_000,
    on_report: Optional[Callable[[ScheduleReport], None]] = None,
) -> SweepResult:
    """Run ``n_schedules`` seeds round-robin over configs × policies."""
    result = SweepResult(n_schedules=n_schedules, max_steps=max_steps)
    for i in range(n_schedules):
        seed = base_seed + i
        config = configs[i % len(configs)]
        policy_spec = policies[(i // len(configs)) % len(policies)]
        report = run_schedule(
            seed, config=config, policy_spec=policy_spec,
            params=params, max_steps=max_steps,
        )
        if on_report is not None:
            on_report(report)
        if report.truncated:
            result.truncated += 1
        if not report.ok:
            result.failures.append(report)
    return result
