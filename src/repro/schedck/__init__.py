"""schedck — deterministic schedule exploration for the parallel engine.

The paper's correctness claim (§3.2) is that the PSM-E synchronization
design produces conflict sets identical to the sequential matcher's
*under any interleaving*.  The threaded engine in :mod:`repro.parallel`
can only exercise whatever interleavings the OS happens to produce;
this package takes ownership of the interleaving instead:

* :mod:`~repro.schedck.scheduler` — a cooperative scheduler that parks
  every engine thread at the yield points instrumented in
  :mod:`repro.parallel.hooks` and hands exactly one thread the turn at
  a time, so a run is a pure function of the schedule seed;
* :mod:`~repro.schedck.policies` — seeded-random, PCT-style
  random-priority, and targeted adversarial schedule policies;
* :mod:`~repro.schedck.invariants` — the quiescence-point invariant
  checks (conflict-set equality, TaskCount, extra-deletes lists, token
  memory census);
* :mod:`~repro.schedck.progen` — a bounded random OPS5 program and
  working-memory workload generator for differential fuzzing;
* :mod:`~repro.schedck.runner` — single-schedule replay
  (``python -m repro schedck --seed N``) and multi-schedule sweeps.
"""

from .invariants import Violation, memory_census
from .policies import make_policy
from .progen import ProgenParams, generate
from .runner import EngineConfig, ScheduleReport, run_schedule, sweep
from .scheduler import CooperativeScheduler, ScheduleExhausted

__all__ = [
    "CooperativeScheduler",
    "EngineConfig",
    "ProgenParams",
    "ScheduleExhausted",
    "ScheduleReport",
    "Violation",
    "generate",
    "make_policy",
    "memory_census",
    "run_schedule",
    "sweep",
]
