"""Bounded random OPS5 program + workload generation for fuzzing.

Generates small production systems over a closed vocabulary of classes,
attributes and values — enough to exercise every two-input node shape
the engine has:

* chained positive CEs sharing variables (hash-keyed joins),
* *cross-product* CEs sharing nothing (empty keys: the Tourney §4.2
  phenomenon — every token of the node piles into one hash line),
* negated CEs (NotNode left-count maintenance),

plus working-memory change batches mixing adds, deletes of live WMEs
and modifies (delete + re-add in one batch — the conjugate-pair
trigger).  Everything is a pure function of the supplied RNG, so a
schedule seed reproduces the exact program and workload along with the
interleaving.

The default parameters cap rules at two positive CEs: this is the
*shallow-chain corpus* the differential fuzz sweep runs on.  Deeper
chains are known to diverge transiently under adversarial delete delay
(DESIGN.md "Known divergences"); the pinned regression test in
``tests/schedck/test_deep_chain.py`` uses ``max_pos_ces=4`` to
reproduce exactly that.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from ..ops5.wme import WMEChange, WorkingMemory


@dataclass(frozen=True)
class ProgenParams:
    """Bounds for the generator; defaults define the shallow corpus."""

    max_rules: int = 4
    max_pos_ces: int = 2
    allow_negation: bool = True
    allow_cross_products: bool = True
    n_classes: int = 3
    n_attrs: int = 2
    n_values: int = 3
    max_batches: int = 4
    max_changes_per_batch: int = 5
    delete_fraction: float = 0.35
    modify_fraction: float = 0.25


def _class(rng: random.Random, p: ProgenParams) -> str:
    return f"c{rng.randrange(p.n_classes)}"


def _ce(
    rng: random.Random,
    p: ProgenParams,
    bound_vars: List[str],
    share: bool,
) -> Tuple[str, List[str]]:
    """One condition element; returns (text, newly bound variables)."""
    tests = []
    new_vars: List[str] = []
    attrs = [f"a{i}" for i in range(p.n_attrs)]
    rng.shuffle(attrs)
    shared = False
    for attr in attrs:
        roll = rng.random()
        if roll < 0.35:
            continue  # attribute unconstrained
        if share and bound_vars and not shared and roll < 0.75:
            # Equality-test a variable bound upstream: a join key term.
            tests.append((attr, f"<{rng.choice(bound_vars)}>"))
            shared = True
        elif roll < 0.6:
            tests.append((attr, str(rng.randrange(p.n_values))))
        else:
            var = f"v{len(bound_vars) + len(new_vars)}"
            new_vars.append(var)
            tests.append((attr, f"<{var}>"))
    body = "".join(f" ^{attr} {val}" for attr, val in tests)
    return f"({_class(rng, p)}{body})", new_vars


def generate_program(rng: random.Random, p: ProgenParams = ProgenParams()) -> str:
    """A random rule set (RHS is a plain halt: the harness drives the
    matchers directly and never fires productions)."""
    rules = []
    n_rules = rng.randint(1, p.max_rules)
    force_cross = p.allow_cross_products and rng.random() < 0.5
    for i in range(n_rules):
        bound: List[str] = []
        ces: List[str] = []
        n_pos = rng.randint(1, p.max_pos_ces)
        cross_rule = force_cross and i == n_rules - 1
        for j in range(n_pos):
            share = j > 0 and not cross_rule
            text, new_vars = _ce(rng, p, bound, share)
            bound.extend(new_vars)
            ces.append(text)
        if p.allow_negation and bound and rng.random() < 0.4:
            text, _ = _ce(rng, p, bound, share=True)
            ces.append("- " + text)
        rules.append(f"(p r{i} {' '.join(ces)} --> (halt))")
    return "\n".join(rules)


def generate_batches(
    rng: random.Random, p: ProgenParams = ProgenParams()
) -> List[List[WMEChange]]:
    """WM change batches over a private WorkingMemory.

    The returned :class:`WMEChange` objects reference shared immutable
    WMEs, so one workload can drive the sequential and parallel
    matchers in lockstep with identical timetags.
    """
    wm = WorkingMemory()
    live = []
    batches: List[List[WMEChange]] = []
    for _ in range(rng.randint(1, p.max_batches)):
        batch: List[WMEChange] = []
        for _ in range(rng.randint(1, p.max_changes_per_batch)):
            roll = rng.random()
            if live and roll < p.delete_fraction:
                victim = live.pop(rng.randrange(len(live)))
                wm.remove(victim)
                batch.append(WMEChange(-1, victim))
                if roll < p.delete_fraction * p.modify_fraction:
                    # A modify: the paper's remove-then-make with a
                    # fresh timetag, both halves in the same batch.
                    updated = wm.add(victim.klass, dict(victim.vals))
                    live.append(updated)
                    batch.append(WMEChange(1, updated))
            else:
                attrs = {
                    f"a{i}": rng.randrange(p.n_values)
                    for i in range(p.n_attrs)
                    if rng.random() < 0.8
                }
                wme = wm.add(_class(rng, p), attrs)
                live.append(wme)
                batch.append(WMEChange(1, wme))
        batches.append(batch)
    return batches


def generate(
    rng: random.Random, p: ProgenParams = ProgenParams()
) -> Tuple[str, List[List[WMEChange]]]:
    """One fuzz case: (program source, WM change batches)."""
    return generate_program(rng, p), generate_batches(rng, p)
