"""Schedule policies: who gets the turn at each yield point.

A policy sees the name-sorted list of parked threads with the yield
label each is parked at, and returns the thread to run next.  All
policies are deterministic functions of their seed and the decision
sequence, which (thanks to the scheduler's start gate) is itself
deterministic — so a seed fully pins a schedule.

Three families, per the harness design:

* :class:`SeededRandomPolicy` — uniform random over runnable threads;
  the workhorse for broad differential fuzzing.
* :class:`PCTPolicy` — PCT-style random priorities (Burckhardt et al.,
  "A Randomized Scheduler with Probabilistic Guarantees of Finding
  Bugs"): run the highest-priority runnable thread, demoting the
  leader at ``depth - 1`` pre-sampled change points.  Finds
  ordering bugs that need a specific small number of preemptions with
  much higher probability than uniform random.
* :class:`AdversarialPolicy` — targeted schedules keyed on yield
  labels: delay the ``+`` twin of every conjugate pair
  (``delay-plus``), delay every delete (``delay-deletes``, the
  deep-chain blow-up trigger), starve quiescence detection
  (``starve-quiescence``), or starve one match process
  (``starve-worker``).
* :class:`BurstPolicy` — timeslice emulation (``burst:<quantum>``):
  each thread runs a long run of consecutive decisions, the shape a
  preemptive interpreter actually produces, and the one that sustains
  the multi-queue conjugate amplification.

Every policy carries the same livelock guard: a thread parked at a
*waiting* label (spin, idle, quiescence poll — see
:data:`repro.parallel.hooks.WAIT_LABELS`) is never chosen more than
``patience`` times in a row while a non-waiting thread is runnable,
since a waiting thread cannot make progress until somebody else does.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..parallel.hooks import WAIT_LABELS

Runnable = List[Tuple[str, str]]  # name-sorted (thread name, yield label)


class _GuardMixin:
    """Shared deterministic anti-livelock bookkeeping.

    After ``patience`` consecutive choices of threads parked at waiting
    labels, the guard overrides the policy: it picks a non-waiting
    thread if one exists, else rotates round-robin through the waiting
    set — so even a policy that would fixate on one spinning thread
    (e.g. PCT's priority leader polling an empty queue) makes global
    progress, deterministically.
    """

    patience = 8

    def __init__(self) -> None:
        self._wait_streak = 0
        self._rotor = 0

    def _guard(self, runnable: Runnable, choice: Tuple[str, str]) -> Tuple[str, str]:
        name, label = choice
        if label not in WAIT_LABELS:
            self._wait_streak = 0
            return choice
        self._wait_streak += 1
        if self._wait_streak <= self.patience:
            return choice
        busy = [r for r in runnable if r[1] not in WAIT_LABELS]
        pool = busy or runnable
        self._rotor += 1
        return pool[self._rotor % len(pool)]


class SeededRandomPolicy(_GuardMixin):
    """Uniform random choice over the runnable set."""

    def __init__(self, seed: int) -> None:
        super().__init__()
        self.name = "random"
        self.rng = random.Random(seed)

    def choose(self, runnable: Runnable, step: int) -> str:
        if len(runnable) == 1:
            return runnable[0][0]
        return self._guard(runnable, self.rng.choice(runnable))[0]


class PCTPolicy(_GuardMixin):
    """Probabilistic-concurrency-testing priorities with change points."""

    def __init__(self, seed: int, depth: int = 3, horizon: int = 2000) -> None:
        super().__init__()
        self.name = f"pct:{depth}"
        self.rng = random.Random(seed)
        self.depth = depth
        self.horizon = horizon
        n_points = max(0, min(depth - 1, horizon - 1))
        self.change_points = frozenset(self.rng.sample(range(1, horizon), n_points))
        self._prio: Dict[str, int] = {}
        self._floor = 0

    def _priority(self, name: str) -> int:
        if name not in self._prio:
            # First decision sees the whole start-gated thread set at
            # once (name-sorted), so assignment order is deterministic.
            self._prio[name] = self.rng.randrange(1 << 20)
        return self._prio[name]

    def choose(self, runnable: Runnable, step: int) -> str:
        if len(runnable) == 1:
            return runnable[0][0]
        leader = max(runnable, key=lambda r: self._priority(r[0]))
        if step in self.change_points:
            # Demote the leader below everyone seen so far.
            self._floor -= 1
            self._prio[leader[0]] = self._floor
            leader = max(runnable, key=lambda r: self._priority(r[0]))
        return self._guard(runnable, leader)[0]


class BurstPolicy(_GuardMixin):
    """Timeslice emulation: one thread runs ``quantum`` consecutive
    decisions before the slice rotates to the next thread (name order).

    The uniform-random policy switches threads at every yield point —
    maximal interleaving — which lets conjugate ``+``/``-`` twins
    annihilate almost as soon as they meet.  A preemptive interpreter
    does the opposite: each thread owns the core for a long slice and
    drains its own LIFO queue alone.  That burst shape is what sustains
    the multi-queue conjugate amplification (each generation of a
    split pair multiplies before its delete half is serviced), so this
    family is the one that reproduces the rubik livelock inside the
    deterministic harness (``tests/schedck/test_rubik_livelock.py``).
    """

    def __init__(self, seed: int, quantum: int = 100) -> None:
        super().__init__()
        self.name = f"burst:{quantum}"
        self.quantum = quantum
        self.rng = random.Random(seed)
        self._current: Optional[str] = None
        self._left = 0

    def choose(self, runnable: Runnable, step: int) -> str:
        if len(runnable) == 1:
            return runnable[0][0]
        names = [r[0] for r in runnable]
        if self._current not in names or self._left <= 0:
            # Slice expired (or owner left): next runnable thread in
            # name order after the old owner, wrapping — deterministic.
            later = [n for n in names if self._current is not None and n > self._current]
            owner = later[0] if later else names[0]
            self._current = owner
            self._left = self.quantum
        choice = runnable[names.index(self._current)]
        self._left -= 1
        # The guard may override a slice owner stuck at a waiting
        # label (an involuntary context switch); the owner keeps the
        # remainder of its slice, as under a real interpreter.
        return self._guard(runnable, choice)[0]


class AdversarialPolicy(_GuardMixin):
    """Targeted schedules that delay a label- or name-selected victim.

    The victim set is scheduled only when no non-victim is runnable, or
    on every ``relief``-th decision (so the run still terminates);
    choices within a set are seeded-random.
    """

    KINDS = ("delay-plus", "delay-deletes", "starve-quiescence", "starve-worker")

    def __init__(self, kind: str, seed: int, relief: int = 64) -> None:
        super().__init__()
        if kind not in self.KINDS:
            raise ValueError(
                f"unknown adversarial kind {kind!r}; expected one of {self.KINDS}"
            )
        self.name = f"adversarial:{kind}"
        self.kind = kind
        self.rng = random.Random(seed)
        self.relief = relief

    def _is_victim(self, name: str, label: str) -> bool:
        if self.kind == "delay-plus":
            return label == "mem_insert"
        if self.kind == "delay-deletes":
            return label == "mem_remove"
        if self.kind == "starve-quiescence":
            return label == "quiesce_wait"
        return name == "match-0"  # starve-worker

    def choose(self, runnable: Runnable, step: int) -> str:
        if len(runnable) == 1:
            return runnable[0][0]
        preferred = [r for r in runnable if not self._is_victim(*r)]
        pool = runnable if (not preferred or step % self.relief == 0) else preferred
        return self._guard(runnable, self.rng.choice(pool))[0]


def make_policy(spec: str, seed: int):
    """Build a policy from its CLI spec string.

    ``random`` | ``pct`` | ``pct:<depth>`` | ``adversarial:<kind>``
    with kinds ``delay-plus``, ``delay-deletes``, ``starve-quiescence``,
    ``starve-worker``.
    """
    if spec == "random":
        return SeededRandomPolicy(seed)
    if spec == "pct":
        return PCTPolicy(seed)
    if spec.startswith("pct:"):
        return PCTPolicy(seed, depth=int(spec.split(":", 1)[1]))
    if spec == "burst":
        return BurstPolicy(seed)
    if spec.startswith("burst:"):
        return BurstPolicy(seed, quantum=int(spec.split(":", 1)[1]))
    if spec.startswith("adversarial:"):
        return AdversarialPolicy(spec.split(":", 1)[1], seed)
    raise ValueError(f"unknown schedule policy {spec!r}")


#: The default sweep rotation: broad random, preemption-targeted PCT,
#: and the two conjugate-order adversaries.
DEFAULT_POLICIES = (
    "random",
    "pct",
    "adversarial:delay-plus",
    "adversarial:starve-quiescence",
)
