"""The OPS5 recognize-act interpreter — the paper's *control process*.

Drives the three-phase cycle of §2.1:

1. **Match** — delegate the WM changes of the last firing to the match
   engine (sequential Rete, or the threaded parallel engine — anything
   implementing ``process_changes(changes) -> [CSDelta]``).
2. **Conflict resolution** — LEX or MEA over the conflict set, with
   refraction.
3. **Act** — execute the chosen instantiation's compiled RHS, producing
   the next batch of WM changes (and output / halt).

The interpreter is deliberately single-threaded even when the matcher
is parallel: conflict resolution, RHS evaluation and I/O all belong to
the control process (§3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from .astnodes import ConditionElement, Constant, Production, Program
from .conflict import ConflictSet, Instantiation, make_strategy
from .errors import RuntimeOps5Error
from .parser import parse_program
from .rhs import CompiledRHS
from .wme import WME, WMEChange, WorkingMemory
from ..rete.matcher import SequentialMatcher
from ..rete.network import ReteNetwork
from ..rete.token import EMPTY
from ..rete.trace import TraceRecorder


@dataclass
class Firing:
    """One production firing, for run logs and tests."""

    cycle: int
    production: str
    timetags: tuple


@dataclass
class RunResult:
    """Outcome of :meth:`Interpreter.run`."""

    cycles: int
    halted: bool
    firings: List[Firing] = field(default_factory=list)
    output: List[str] = field(default_factory=list)

    @property
    def fired_names(self) -> List[str]:
        return [f.production for f in self.firings]


class Interpreter:
    """A complete OPS5 interpreter over a pluggable match engine.

    Parameters
    ----------
    program:
        A :class:`~repro.ops5.astnodes.Program` or OPS5 source text.
    matcher:
        Any object with ``process_changes``; defaults to a
        :class:`~repro.rete.matcher.SequentialMatcher` built with the
        given ``memory``/``mode``/``n_lines``.
    strategy:
        ``'lex'`` (default) or ``'mea'``.
    recorder:
        Optional :class:`~repro.rete.trace.TraceRecorder` capturing the
        task DAG for the Encore simulator (sequential matcher only).
    """

    def __init__(
        self,
        program: Union[Program, str],
        matcher=None,
        strategy: str = "lex",
        memory: str = "hash",
        mode: str = "compiled",
        n_lines: int = 1024,
        recorder: Optional[TraceRecorder] = None,
        input_values: Optional[Sequence[Constant]] = None,
    ) -> None:
        if isinstance(program, str):
            program = parse_program(program)
        self.program = program
        self.network = ReteNetwork.compile(program, mode=mode)
        if matcher is None:
            matcher = SequentialMatcher(
                self.network, memory=memory, n_lines=n_lines, recorder=recorder
            )
        self.matcher = matcher
        self.recorder = recorder
        self.strategy = make_strategy(strategy)
        self.wm = WorkingMemory()
        self.conflict_set = ConflictSet(strict=getattr(matcher, "strict_cs", True))
        self.output: List[str] = []
        self.halted = False
        self.cycle = 0
        self.input_values: List[Constant] = list(input_values or ())
        self._rhs: Dict[str, CompiledRHS] = {
            p.name: CompiledRHS(p) for p in program.productions
        }
        self._startup_done = False

    # -- working-memory entry points ---------------------------------------

    def add_wme(self, klass: str, attrs: Optional[dict] = None) -> WME:
        """Add a WME directly (outside any firing) and match it."""
        wme = self.wm.add(klass, attrs or {})
        self._apply_changes([WMEChange(sign=1, wme=wme)])
        return wme

    def remove_wme(self, wme: WME) -> None:
        self.wm.remove(wme)
        self._apply_changes([WMEChange(sign=-1, wme=wme)])

    def startup(self) -> None:
        """Execute the program's ``(startup ...)`` actions once."""
        if self._startup_done:
            return
        self._startup_done = True
        if not self.program.startup:
            return
        dummy = Production(
            name="<startup>",
            ces=(ConditionElement(klass="<none>", tests=()),),
            actions=self.program.startup,
        )
        env = CompiledRHS(dummy).execute(self.wm, EMPTY, self.input_values)
        self.output.extend(env.out)
        self.halted = self.halted or env.halted
        self._apply_changes(env.changes)

    def _apply_changes(self, changes: List[WMEChange]) -> int:
        deltas = self.matcher.process_changes(changes)
        for delta in deltas:
            self.conflict_set.apply(delta.production, delta.token, delta.sign)
        if not getattr(self.matcher, "strict_cs", True):
            # Parallel deltas arrive unordered; after the batch every
            # count must have settled to 0 or 1.
            self.conflict_set.validate()
        return len(deltas)

    def close(self) -> None:
        """Release matcher resources (kills parallel match processes)."""
        closer = getattr(self.matcher, "close", None)
        if closer is not None:
            closer()

    def __enter__(self) -> "Interpreter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the recognize-act cycle -------------------------------------------

    def step(self) -> Optional[Firing]:
        """One recognize-act cycle; returns the firing or None if quiescent."""
        if not self._startup_done:
            self.startup()
        if self.halted:
            return None
        inst = self.strategy.select(self.conflict_set)
        if inst is None:
            return None
        self.conflict_set.mark_fired(inst)  # refraction
        self.cycle += 1
        production = inst.production
        if self.recorder is not None:
            self.recorder.begin_cycle(production.name, len(production.actions))
        env = self._rhs[production.name].execute(self.wm, inst.token, self.input_values)
        self.output.extend(env.out)
        if env.halted:
            self.halted = True
        n_cs_deltas = self._apply_changes(env.changes)
        if self.recorder is not None:
            self.recorder.end_cycle(cs_deltas=n_cs_deltas)
        return Firing(
            cycle=self.cycle, production=production.name, timetags=inst.token.key
        )

    def run(self, max_cycles: int = 100000) -> RunResult:
        """Run until halt, quiescence, or ``max_cycles``."""
        firings: List[Firing] = []
        if not self._startup_done:
            self.startup()
        while not self.halted and len(firings) < max_cycles:
            firing = self.step()
            if firing is None:
                break
            firings.append(firing)
        return RunResult(
            cycles=self.cycle,
            halted=self.halted,
            firings=firings,
            output=list(self.output),
        )

    # -- inspection ----------------------------------------------------------

    def conflict_set_names(self) -> List[str]:
        return sorted(i.production.name for i in self.conflict_set.instantiations())

    @property
    def stats(self):
        return getattr(self.matcher, "stats", None)
