"""The OPS5 recognize-act interpreter — the paper's *control process*.

Drives the three-phase cycle of §2.1:

1. **Match** — delegate the WM changes of the last firing to the match
   engine (sequential Rete, or the threaded parallel engine — anything
   implementing ``process_changes(changes) -> [CSDelta]``).
2. **Conflict resolution** — LEX or MEA over the conflict set, with
   refraction.
3. **Act** — execute the chosen instantiation's compiled RHS, producing
   the next batch of WM changes (and output / halt).

The interpreter is deliberately single-threaded even when the matcher
is parallel: conflict resolution, RHS evaluation and I/O all belong to
the control process (§3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import monotonic
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from .astnodes import ConditionElement, Constant, Production, Program
from .conflict import ConflictSet, Instantiation, make_strategy
from .errors import RuntimeOps5Error
from .parser import parse_program
from .rhs import CompiledRHS
from .wme import WME, WMEChange, WorkingMemory
from ..obs import context as _context
from ..obs import events as _obs
from ..obs import flight as _flight
from ..obs import meter as _meter
from ..rete.matcher import SequentialMatcher
from ..rete.network import ReteNetwork
from ..rete.token import EMPTY
from ..rete.trace import TraceRecorder


@dataclass
class Firing:
    """One production firing, for run logs and tests."""

    cycle: int
    production: str
    timetags: tuple


@dataclass
class RunResult:
    """Outcome of :meth:`Interpreter.run` / :meth:`Interpreter.run_cycles`.

    ``halted`` means the program executed ``(halt)``; ``exhausted``
    means the cycle budget ran out while at least one eligible
    instantiation was still waiting to fire (the service layer must
    tell those apart from ordinary quiescence); ``deadline_hit`` means
    a wall-clock deadline expired first.
    """

    cycles: int
    halted: bool
    firings: List[Firing] = field(default_factory=list)
    output: List[str] = field(default_factory=list)
    exhausted: bool = False
    deadline_hit: bool = False

    @property
    def outcome(self) -> str:
        """``'halted'`` | ``'deadline'`` | ``'exhausted'`` | ``'quiescent'``."""
        if self.halted:
            return "halted"
        if self.deadline_hit:
            return "deadline"
        if self.exhausted:
            return "exhausted"
        return "quiescent"

    @property
    def fired_names(self) -> List[str]:
        return [f.production for f in self.firings]


class TransactionError(RuntimeOps5Error):
    """A batched WM transaction failed validation; nothing was applied."""


@dataclass(frozen=True)
class WMOp:
    """One operation in a batched working-memory transaction.

    The service layer's unit of ingress — a list of these is applied
    atomically (all or nothing) before the recognize-act cycles of one
    request, mirroring the paper's "WM changes per cycle" unit.
    """

    op: str  # 'make' | 'remove' | 'modify'
    klass: Optional[str] = None
    attrs: Tuple[Tuple[str, Constant], ...] = ()
    timetag: Optional[int] = None

    @staticmethod
    def make(klass: str, attrs: Optional[Mapping[str, Constant]] = None) -> "WMOp":
        return WMOp(op="make", klass=klass, attrs=tuple(sorted((attrs or {}).items())))

    @staticmethod
    def remove(timetag: int) -> "WMOp":
        return WMOp(op="remove", timetag=timetag)

    @staticmethod
    def modify(timetag: int, attrs: Mapping[str, Constant]) -> "WMOp":
        return WMOp(op="modify", timetag=timetag, attrs=tuple(sorted(attrs.items())))


class Interpreter:
    """A complete OPS5 interpreter over a pluggable match engine.

    Parameters
    ----------
    program:
        A :class:`~repro.ops5.astnodes.Program` or OPS5 source text.
    matcher:
        Any object with ``process_changes``; defaults to a
        :class:`~repro.rete.matcher.SequentialMatcher` built with the
        given ``memory``/``mode``/``n_lines``.
    engine:
        Alternative to ``matcher``: a backend name from
        :data:`repro.engines.ENGINE_NAMES` (``'sequential'``,
        ``'threaded'``, ``'mp'``, ``'corgi'``), built over the
        compiled network via
        :func:`repro.engines.make_matcher` with ``engine_opts`` as
        keyword options (e.g. ``{'n_workers': 4}``).  Mutually
        exclusive with ``matcher``.
    strategy:
        ``'lex'`` (default) or ``'mea'``.
    recorder:
        Optional :class:`~repro.rete.trace.TraceRecorder` capturing the
        task DAG for the Encore simulator (sequential matcher only).
    network:
        A prebuilt :class:`~repro.rete.network.ReteNetwork` for this
        program, e.g. from :class:`~repro.serve.netcache.NetworkCache`.
        Networks hold no per-run token state (memories live in the
        matcher), so one compiled network is shared safely by many
        interpreters.
    rhs_table:
        Prebuilt ``{production name: CompiledRHS}``, shareable for the
        same reason; compiled from ``program`` when omitted.
    """

    def __init__(
        self,
        program: Union[Program, str],
        matcher=None,
        strategy: str = "lex",
        memory: str = "hash",
        mode: str = "compiled",
        n_lines: int = 1024,
        recorder: Optional[TraceRecorder] = None,
        input_values: Optional[Sequence[Constant]] = None,
        network: Optional[ReteNetwork] = None,
        rhs_table: Optional[Dict[str, CompiledRHS]] = None,
        engine: Optional[str] = None,
        engine_opts: Optional[Dict[str, object]] = None,
    ) -> None:
        if isinstance(program, str):
            program = parse_program(program)
        self.program = program
        self.network = network if network is not None else ReteNetwork.compile(
            program, mode=mode
        )
        if engine is not None:
            if matcher is not None:
                raise ValueError("pass either matcher= or engine=, not both")
            from ..engines import make_matcher

            opts = dict(engine_opts or {})
            opts.setdefault("memory", memory)
            opts.setdefault("n_lines", n_lines)
            opts.setdefault("recorder", recorder)
            matcher = make_matcher(engine, self.network, **opts)
        if matcher is None:
            matcher = SequentialMatcher(
                self.network, memory=memory, n_lines=n_lines, recorder=recorder
            )
        self.matcher = matcher
        self.recorder = recorder
        self.strategy = make_strategy(strategy)
        self.wm = WorkingMemory()
        self.conflict_set = ConflictSet(strict=getattr(matcher, "strict_cs", True))
        self.output: List[str] = []
        self.halted = False
        self.cycle = 0
        self.input_values: List[Constant] = list(input_values or ())
        self._rhs: Dict[str, CompiledRHS] = (
            rhs_table
            if rhs_table is not None
            else {p.name: CompiledRHS(p) for p in program.productions}
        )
        self._startup_done = False
        self._closed = False

    # -- working-memory entry points ---------------------------------------

    def add_wme(self, klass: str, attrs: Optional[dict] = None) -> WME:
        """Add a WME directly (outside any firing) and match it."""
        wme = self.wm.add(klass, attrs or {})
        self._apply_changes([WMEChange(sign=1, wme=wme)])
        return wme

    def remove_wme(self, wme: WME) -> None:
        self.wm.remove(wme)
        self._apply_changes([WMEChange(sign=-1, wme=wme)])

    def apply_transaction(self, ops: Sequence[WMOp]) -> List[int]:
        """Apply a batch of make/remove/modify ops atomically.

        Every op is validated against the current working memory before
        anything mutates; any invalid op raises
        :class:`TransactionError` and leaves WM and match state
        untouched.  Valid ops apply in order, and all resulting WM
        changes are filtered through the matcher as a single batch.

        Returns the fresh timetags created, one per ``make``/``modify``
        op in op order (clients need them to address later removes and
        modifies).
        """
        gone: set = set()
        for i, op in enumerate(ops):
            if op.op == "make":
                if not op.klass:
                    raise TransactionError(f"op {i}: make requires a class")
            elif op.op in ("remove", "modify"):
                tag = op.timetag
                if not isinstance(tag, int):
                    raise TransactionError(f"op {i}: {op.op} requires a timetag")
                if tag in gone or self.wm.by_timetag(tag) is None:
                    raise TransactionError(
                        f"op {i}: no WME with timetag {tag} ({op.op})"
                    )
                gone.add(tag)  # a later op may not target the same element
            else:
                raise TransactionError(f"op {i}: unknown op {op.op!r}")

        changes: List[WMEChange] = []
        created: List[int] = []
        for op in ops:
            if op.op == "make":
                wme = self.wm.add(op.klass, dict(op.attrs))
                changes.append(WMEChange(sign=1, wme=wme))
                created.append(wme.timetag)
            elif op.op == "remove":
                wme = self.wm.by_timetag(op.timetag)
                self.wm.remove(wme)
                changes.append(WMEChange(sign=-1, wme=wme))
            else:  # modify = remove + make with a fresh timetag
                old = self.wm.by_timetag(op.timetag)
                old, new = self.wm.modify(old, dict(op.attrs))
                changes.append(WMEChange(sign=-1, wme=old))
                changes.append(WMEChange(sign=1, wme=new))
                created.append(new.timetag)
        self._apply_changes(changes)
        return created

    def startup(self) -> None:
        """Execute the program's ``(startup ...)`` actions once."""
        if self._startup_done:
            return
        self._startup_done = True
        if not self.program.startup:
            return
        dummy = Production(
            name="<startup>",
            ces=(ConditionElement(klass="<none>", tests=()),),
            actions=self.program.startup,
        )
        env = CompiledRHS(dummy).execute(self.wm, EMPTY, self.input_values)
        self.output.extend(env.out)
        self.halted = self.halted or env.halted
        self._apply_changes(env.changes)

    def _apply_changes(self, changes: List[WMEChange]) -> int:
        # Phase timing serves two consumers: the bus (spans, opt-in
        # tracing) and the meter (per-session aggregates, opt-in
        # accounting).  Either being on pays for the clock reads.
        obs_on = _obs.ENABLED
        ctx = _context.current() if (obs_on or _meter.ENABLED) else None
        meter_on = _meter.ENABLED and ctx is not None
        try:
            if obs_on or meter_on:
                t0 = _obs.now()
                deltas = self.matcher.process_changes(changes)
                t1 = _obs.now()
                if obs_on:
                    _obs.span(
                        "phase", "match", t0, t1,
                        args=_context.tag(
                            {"cycle": self.cycle, "changes": len(changes)}
                        ),
                    )
                if meter_on:
                    _meter.add_phase(
                        ctx.session_id, "match", (t1 - t0) * 1e-9,
                        tenant=ctx.tenant,
                    )
                    _meter.add(
                        ctx.session_id, "wm_changes", len(changes),
                        tenant=ctx.tenant,
                    )
            else:
                deltas = self.matcher.process_changes(changes)
        except Exception as exc:
            # The black box survives the crash: note the failure in the
            # flight ring and dump it (no-op unless a dump path is
            # configured), then let the original exception propagate.
            _flight.record(
                "interpreter", "match_error",
                {"cycle": self.cycle, "changes": len(changes),
                 "error": repr(exc)},
            )
            _flight.dump_on_error("match_error")
            raise
        for delta in deltas:
            self.conflict_set.apply(delta.production, delta.token, delta.sign)
        if not getattr(self.matcher, "strict_cs", True):
            # Parallel deltas arrive unordered; after the batch every
            # count must have settled to 0 or 1.
            self.conflict_set.validate()
        return len(deltas)

    def close(self) -> None:
        """Release matcher resources (kills parallel match processes).

        Idempotent: safe to call any number of times, including after a
        ``with`` block has already closed the interpreter.
        """
        if self._closed:
            return
        self._closed = True
        closer = getattr(self.matcher, "close", None)
        if closer is not None:
            closer()

    def __enter__(self) -> "Interpreter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the recognize-act cycle -------------------------------------------

    def step(self) -> Optional[Firing]:
        """One recognize-act cycle; returns the firing or None if quiescent."""
        if not self._startup_done:
            self.startup()
        if self.halted:
            return None
        obs_on = _obs.ENABLED
        ctx = _context.current() if (obs_on or _meter.ENABLED) else None
        meter_on = _meter.ENABLED and ctx is not None
        if obs_on or meter_on:
            t0 = _obs.now()
            inst = self.strategy.select(self.conflict_set)
            t1 = _obs.now()
            if obs_on:
                _obs.span("phase", "select", t0, t1,
                          args=_context.tag({"cycle": self.cycle}))
            if meter_on:
                _meter.add_phase(ctx.session_id, "select", (t1 - t0) * 1e-9,
                                 tenant=ctx.tenant)
        else:
            inst = self.strategy.select(self.conflict_set)
        if inst is None:
            return None
        self.conflict_set.mark_fired(inst)  # refraction
        self.cycle += 1
        production = inst.production
        _flight.record(
            "interpreter", "fire",
            {"cycle": self.cycle, "production": production.name},
        )
        if self.recorder is not None:
            self.recorder.begin_cycle(production.name, len(production.actions))
        if obs_on or meter_on:
            t0 = _obs.now()
            env = self._rhs[production.name].execute(
                self.wm, inst.token, self.input_values
            )
            t1 = _obs.now()
            if obs_on:
                _obs.span(
                    "phase", "act", t0, t1,
                    args=_context.tag(
                        {"cycle": self.cycle, "production": production.name}
                    ),
                )
            if meter_on:
                _meter.add_phase(ctx.session_id, "act", (t1 - t0) * 1e-9,
                                 tenant=ctx.tenant)
                _meter.add(ctx.session_id, "firings", tenant=ctx.tenant)
        else:
            env = self._rhs[production.name].execute(
                self.wm, inst.token, self.input_values
            )
        self.output.extend(env.out)
        if env.halted:
            self.halted = True
        n_cs_deltas = self._apply_changes(env.changes)
        if self.recorder is not None:
            self.recorder.end_cycle(cs_deltas=n_cs_deltas)
        return Firing(
            cycle=self.cycle, production=production.name, timetags=inst.token.key
        )

    def run_cycles(self, budget: int, deadline: Optional[float] = None) -> RunResult:
        """One resumable, budgeted slice of the recognize-act loop.

        Runs at most ``budget`` cycles from the current state (a budget
        of 0 applies no firings — useful for pure WM ingestion) and
        stops early if ``deadline`` (a ``time.monotonic()`` timestamp)
        passes.  The returned result's ``firings``/``output`` cover
        only this slice; ``cycles`` is the cumulative cycle count.
        Call again to resume exactly where the budget ran out.
        """
        firings: List[Firing] = []
        out_start = len(self.output)
        if not self._startup_done:
            self.startup()
        deadline_hit = False
        while not self.halted and len(firings) < budget:
            if deadline is not None and monotonic() >= deadline:
                deadline_hit = True
                break
            firing = self.step()
            if firing is None:
                break
            firings.append(firing)
        exhausted = (
            not self.halted
            and not deadline_hit
            and len(firings) >= budget
            and self.strategy.select(self.conflict_set) is not None
        )
        return RunResult(
            cycles=self.cycle,
            halted=self.halted,
            firings=firings,
            output=list(self.output[out_start:]),
            exhausted=exhausted,
            deadline_hit=deadline_hit,
        )

    def run(self, max_cycles: int = 100000) -> RunResult:
        """Run until halt, quiescence, or ``max_cycles``.

        ``output`` holds the full accumulated program output;
        ``result.exhausted`` distinguishes a ``max_cycles`` stop with
        work still pending from genuine quiescence.
        """
        part = self.run_cycles(max_cycles)
        return RunResult(
            cycles=self.cycle,
            halted=self.halted,
            firings=part.firings,
            output=list(self.output),
            exhausted=part.exhausted,
        )

    # -- inspection ----------------------------------------------------------

    def conflict_set_names(self) -> List[str]:
        return sorted(i.production.name for i in self.conflict_set.instantiations())

    @property
    def stats(self):
        return getattr(self.matcher, "stats", None)
