"""RHS evaluation — the paper's threaded-code analogue (§3.3).

Each production's RHS is compiled once, at network-build time, into a
list of small Python closures ("threaded code": an array of operation
addresses walked by a trivial dispatch loop).  Executing an RHS walks
the list, producing a list of :class:`~repro.ops5.wme.WMEChange`
objects plus any output text; the *control process* applies the changes
to working memory and hands them to the matcher.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .astnodes import (
    Action,
    BindAction,
    Constant,
    HaltAction,
    MakeAction,
    ModifyAction,
    Production,
    RemoveAction,
    RhsAccept,
    RhsCompute,
    RhsConst,
    RhsValue,
    RhsVar,
    WriteAction,
)
from .errors import RuntimeOps5Error
from .wme import WME, WMEChange, WorkingMemory
from ..rete.token import Token


@dataclass
class RhsEnv:
    """Execution environment for one RHS firing."""

    wm: WorkingMemory
    token: Token
    bindings: Dict[str, Constant]
    out: List[str] = field(default_factory=list)
    changes: List[WMEChange] = field(default_factory=list)
    halted: bool = False
    #: CE-number -> current WME; updated as modifies replace elements.
    ce_wmes: Dict[int, Optional[WME]] = field(default_factory=dict)
    #: Values consumed by ``(accept)``.
    input_values: List[Constant] = field(default_factory=list)


ThreadedOp = Callable[[RhsEnv], None]


def extract_bindings(production: Production, token: Token) -> Dict[str, Constant]:
    """Variable bindings implied by an instantiation's WMEs.

    Walks the LHS the same way the network compiler does, so a variable
    is bound by its first ``=`` occurrence in a positive CE.
    """
    bindings: Dict[str, Constant] = {}
    pos = 0
    for ce in production.ces:
        if ce.negated:
            continue
        if pos >= len(token.wmes):
            break
        wme = token.wmes[pos]
        for var in ce.variables():
            if var not in bindings:
                value = _first_binding_attr(ce, var)
                if value is not None:
                    bindings[var] = wme.get(value)
        pos += 1
    return bindings


def _first_binding_attr(ce, var: str) -> Optional[str]:
    from .astnodes import Conjunction, Test, Var

    for at in ce.tests:
        tests = at.test.tests if isinstance(at.test, Conjunction) else (at.test,)
        for t in tests:
            if isinstance(t, Test) and t.op == "=" and isinstance(t.operand, Var):
                if t.operand.name == var:
                    return at.attr
    return None


class CompiledRHS:
    """The threaded-code form of one production's RHS."""

    def __init__(self, production: Production) -> None:
        self.production = production
        self._ce_token_pos = _ce_positions(production)
        self.ops: List[ThreadedOp] = [self._compile_action(a) for a in production.actions]

    # -- public ------------------------------------------------------------

    def execute(
        self,
        wm: WorkingMemory,
        token: Token,
        input_values: Optional[Sequence[Constant]] = None,
    ) -> RhsEnv:
        """Run the RHS against ``wm``; returns the populated environment."""
        env = RhsEnv(
            wm=wm,
            token=token,
            bindings=extract_bindings(self.production, token),
            input_values=list(input_values or ()),
        )
        for i, pos in self._ce_token_pos.items():
            env.ce_wmes[i] = token.wmes[pos] if pos < len(token.wmes) else None
        for op in self.ops:
            op(env)
            if env.halted:
                break
        return env

    # -- compilation --------------------------------------------------------

    def _compile_action(self, action: Action) -> ThreadedOp:
        if isinstance(action, MakeAction):
            assigns = [(a, _compile_value(v)) for a, v in action.assigns]
            klass = action.klass

            def op_make(env: RhsEnv) -> None:
                attrs = {a: fn(env) for a, fn in assigns}
                wme = env.wm.add(klass, attrs)
                env.changes.append(WMEChange(sign=1, wme=wme))

            return op_make

        if isinstance(action, ModifyAction):
            assigns = [(a, _compile_value(v)) for a, v in action.assigns]
            index = action.ce_index
            if index not in self._ce_token_pos:
                raise RuntimeOps5Error(
                    f"{self.production.name}: modify {index} refers to a "
                    f"negated or out-of-range condition element"
                )

            def op_modify(env: RhsEnv) -> None:
                target = env.ce_wmes.get(index)
                if target is None:
                    raise RuntimeOps5Error(
                        f"{self.production.name}: modify {index} after the "
                        f"element was removed"
                    )
                updates = {a: fn(env) for a, fn in assigns}
                old, new = env.wm.modify(target, updates)
                env.ce_wmes[index] = new
                env.changes.append(WMEChange(sign=-1, wme=old))
                env.changes.append(WMEChange(sign=1, wme=new))

            return op_modify

        if isinstance(action, RemoveAction):
            index = action.ce_index
            if index not in self._ce_token_pos:
                raise RuntimeOps5Error(
                    f"{self.production.name}: remove {index} refers to a "
                    f"negated or out-of-range condition element"
                )

            def op_remove(env: RhsEnv) -> None:
                target = env.ce_wmes.get(index)
                if target is None:
                    raise RuntimeOps5Error(
                        f"{self.production.name}: remove {index} repeated"
                    )
                env.wm.remove(target)
                env.ce_wmes[index] = None
                env.changes.append(WMEChange(sign=-1, wme=target))

            return op_remove

        if isinstance(action, WriteAction):
            value_fns = [_compile_value(v) for v in action.values]

            def op_write(env: RhsEnv) -> None:
                env.out.append(" ".join(str(fn(env)) for fn in value_fns))

            return op_write

        if isinstance(action, BindAction):
            var = action.var
            fn = _compile_value(action.value)

            def op_bind(env: RhsEnv) -> None:
                env.bindings[var] = fn(env)

            return op_bind

        if isinstance(action, HaltAction):

            def op_halt(env: RhsEnv) -> None:
                env.halted = True

            return op_halt

        raise RuntimeOps5Error(f"unknown action type {type(action).__name__}")


def _ce_positions(production: Production) -> Dict[int, int]:
    """Map 1-based CE numbers to token positions (positive CEs only)."""
    mapping: Dict[int, int] = {}
    pos = 0
    for i, ce in enumerate(production.ces, start=1):
        if not ce.negated:
            mapping[i] = pos
            pos += 1
    return mapping


def _compile_value(value: RhsValue) -> Callable[[RhsEnv], Constant]:
    if isinstance(value, RhsConst):
        v = value.value
        return lambda env: v
    if isinstance(value, RhsVar):
        name = value.name

        def get_var(env: RhsEnv) -> Constant:
            if name not in env.bindings:
                raise RuntimeOps5Error(f"unbound RHS variable <{name}>")
            return env.bindings[name]

        return get_var
    if isinstance(value, RhsCompute):
        operand_fns = [_compile_value(v) for v in value.operands]
        ops = value.ops

        def compute(env: RhsEnv) -> Constant:
            acc = _as_number(operand_fns[0](env))
            for op, fn in zip(ops, operand_fns[1:]):
                rhs = _as_number(fn(env))
                if op == "+":
                    acc = acc + rhs
                elif op == "-":
                    acc = acc - rhs
                elif op == "*":
                    acc = acc * rhs
                elif op == "//":
                    acc = acc // rhs
                elif op == "\\":
                    acc = acc % rhs
                else:  # pragma: no cover - parser rejects unknown ops
                    raise RuntimeOps5Error(f"unknown compute operator {op!r}")
            return acc

        return compute
    if isinstance(value, RhsAccept):

        def accept(env: RhsEnv) -> Constant:
            if not env.input_values:
                raise RuntimeOps5Error("(accept) with no pending input")
            return env.input_values.pop(0)

        return accept
    raise RuntimeOps5Error(f"unknown RHS value type {type(value).__name__}")


def _as_number(v: Constant):
    if isinstance(v, (int, float)):
        return v
    raise RuntimeOps5Error(f"compute applied to non-number {v!r}")
