"""Abstract syntax for OPS5 programs.

A *program* is a sequence of ``literalize`` declarations, productions and
top-level actions (``startup`` blocks).  A *production* has a left-hand
side (ordered condition elements, possibly negated) and a right-hand side
(ordered actions).

The grammar of value tests inside a condition element:

======================  =======================================
syntax                  AST node
======================  =======================================
``red``                 ``Test('=', Lit('red'))``
``<> red``              ``Test('<>', Lit('red'))``
``> 7``                 ``Test('>', Lit(7))``
``<x>``                 ``Test('=', Var('x'))``
``> <x>``               ``Test('>', Var('x'))``
``<< red green >>``     ``Disjunction(('red', 'green'))``
``{ <x> > 2 }``         ``Conjunction((Test('=', Var('x')), Test('>', Lit(2))))``
======================  =======================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

#: The comparison operators OPS5 supports in condition elements.
PREDICATES = ("=", "<>", "<", "<=", ">", ">=", "<=>")

#: Scalar constant values: symbols are Python ``str``.
Constant = Union[str, int, float]


@dataclass(frozen=True)
class Lit:
    """A literal operand in a test, e.g. the ``red`` of ``<> red``."""

    value: Constant


@dataclass(frozen=True)
class Var:
    """A variable operand in a test, e.g. ``<x>``."""

    name: str


Operand = Union[Lit, Var]


@dataclass(frozen=True)
class Test:
    """A single predicate applied to an attribute value.

    ``op`` is one of :data:`PREDICATES`; ``operand`` is a literal or a
    variable reference.  ``Test('=', Var('x'))`` either *binds* ``x`` (on
    the variable's first occurrence in the LHS) or requires consistency
    with the prior binding.
    """

    op: str
    operand: Operand

    #: Keep pytest from trying to collect this dataclass as a test class.
    __test__ = False

    def __post_init__(self) -> None:
        if self.op not in PREDICATES:
            raise ValueError(f"unknown predicate {self.op!r}")


@dataclass(frozen=True)
class Disjunction:
    """``<< a b c >>`` — the attribute must equal one of the constants."""

    values: Tuple[Constant, ...]


@dataclass(frozen=True)
class Conjunction:
    """``{ t1 t2 ... }`` — every contained test must be satisfied."""

    tests: Tuple[Union[Test, Disjunction], ...]


ValueTest = Union[Test, Disjunction, Conjunction]


@dataclass(frozen=True)
class AttrTest:
    """One ``^attr value-test`` pair inside a condition element."""

    attr: str
    test: ValueTest


@dataclass(frozen=True)
class ConditionElement:
    """One condition element of a production's LHS."""

    klass: str
    tests: Tuple[AttrTest, ...]
    negated: bool = False

    def variables(self) -> Tuple[str, ...]:
        """All variable names referenced anywhere in this CE, in order."""
        seen = []

        def visit(t: ValueTest) -> None:
            if isinstance(t, Test):
                if isinstance(t.operand, Var) and t.operand.name not in seen:
                    seen.append(t.operand.name)
            elif isinstance(t, Conjunction):
                for sub in t.tests:
                    visit(sub)

        for at in self.tests:
            visit(at.test)
        return tuple(seen)


# ---------------------------------------------------------------------------
# RHS values and actions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RhsConst:
    """A constant value in an RHS expression."""

    value: Constant


@dataclass(frozen=True)
class RhsVar:
    """A variable reference in an RHS expression (LHS- or ``bind``-bound)."""

    name: str


@dataclass(frozen=True)
class RhsCompute:
    """``(compute a op b ...)`` — left-to-right arithmetic, OPS5 style.

    ``ops`` holds the operator symbols (``+ - * // \\``) between the
    ``len(ops) + 1`` operands.  ``\\`` is modulus in OPS5.
    """

    operands: Tuple["RhsValue", ...]
    ops: Tuple[str, ...]


@dataclass(frozen=True)
class RhsAccept:
    """``(accept)`` — read a value from the program's input stream."""


RhsValue = Union[RhsConst, RhsVar, RhsCompute, RhsAccept]


@dataclass(frozen=True)
class MakeAction:
    """``(make class ^a v ...)`` — add a new WME."""

    klass: str
    assigns: Tuple[Tuple[str, RhsValue], ...]


@dataclass(frozen=True)
class ModifyAction:
    """``(modify k ^a v ...)`` — change attributes of the WME matching CE k.

    ``ce_index`` is 1-based, counting *all* condition elements (negated
    CEs count for numbering but cannot be modified).
    """

    ce_index: int
    assigns: Tuple[Tuple[str, RhsValue], ...]


@dataclass(frozen=True)
class RemoveAction:
    """``(remove k)`` — delete the WME matching CE k (1-based)."""

    ce_index: int


@dataclass(frozen=True)
class WriteAction:
    """``(write v ...)`` — append values to the interpreter's output."""

    values: Tuple[RhsValue, ...]


@dataclass(frozen=True)
class BindAction:
    """``(bind <x> v)`` — bind an RHS variable."""

    var: str
    value: RhsValue


@dataclass(frozen=True)
class HaltAction:
    """``(halt)`` — stop the recognize-act cycle after this RHS."""


Action = Union[MakeAction, ModifyAction, RemoveAction, WriteAction, BindAction, HaltAction]


@dataclass(frozen=True)
class Production:
    """A complete production: name, LHS condition elements, RHS actions."""

    name: str
    ces: Tuple[ConditionElement, ...]
    actions: Tuple[Action, ...]
    line: int = 0

    def __post_init__(self) -> None:
        if not self.ces:
            raise ValueError(f"production {self.name} has an empty LHS")
        if self.ces[0].negated:
            raise ValueError(
                f"production {self.name}: first condition element may not be negated"
            )

    @property
    def positive_ces(self) -> Tuple[ConditionElement, ...]:
        return tuple(ce for ce in self.ces if not ce.negated)

    def specificity(self) -> int:
        """Number of tests in the LHS — the OPS5 specificity measure.

        Counts the class test plus every attribute test (conjunctions
        count each contained test).
        """
        total = 0
        for ce in self.ces:
            total += 1  # class test
            for at in ce.tests:
                if isinstance(at.test, Conjunction):
                    total += len(at.test.tests)
                else:
                    total += 1
        return total


@dataclass(frozen=True)
class Literalize:
    """``(literalize class a1 a2 ...)`` — declares the attributes of a class."""

    klass: str
    attrs: Tuple[str, ...]


@dataclass
class Program:
    """A parsed OPS5 program.

    ``startup`` holds the actions of any top-level ``(startup ...)``
    blocks; they are executed once before the first recognize-act cycle.
    """

    literalizes: Tuple[Literalize, ...] = ()
    productions: Tuple[Production, ...] = ()
    startup: Tuple[Action, ...] = ()
    declared_attrs: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.declared_attrs = {lit.klass: lit.attrs for lit in self.literalizes}
        names = [p.name for p in self.productions]
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise ValueError(f"duplicate production names: {sorted(dupes)}")

    def production(self, name: str) -> Production:
        for p in self.productions:
            if p.name == name:
                return p
        raise KeyError(name)
