"""Tokenizer for the OPS5 production-system language.

OPS5 source is a sequence of parenthesized forms.  The token inventory is
small: parentheses, the curly/angle grouping brackets ``{ }`` and
``<< >>``, the attribute operator ``^``, predicate operators
(``= <> < <= > >= <=>``), the arrow ``-->``, variables (``<name>``),
numbers, and symbolic atoms.

The only delicate part of lexing OPS5 is the overloading of ``<`` and
``>``:

* ``<x>`` (no internal whitespace) is a *variable*;
* ``<`` followed by whitespace or a non-variable continuation is the
  less-than predicate;
* ``<<`` and ``>>`` delimit disjunctions;
* ``<=`` / ``>=`` / ``<>`` / ``<=>`` are predicates.

We resolve this with longest-match scanning anchored on a regular
expression for variables.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum, auto
from typing import Iterator, List, Union

from .errors import LexError


class TokenType(Enum):
    """Kinds of lexical tokens produced by :func:`tokenize`."""

    LPAREN = auto()
    RPAREN = auto()
    LBRACE = auto()         # {
    RBRACE = auto()         # }
    LDOUBLE = auto()        # <<
    RDOUBLE = auto()        # >>
    HAT = auto()            # ^
    ARROW = auto()          # -->
    MINUS = auto()          # - introducing a negated condition element
    PREDICATE = auto()      # = <> < <= > >= <=>
    VARIABLE = auto()       # <x>
    NUMBER = auto()         # 12, -4, 2.5
    SYMBOL = auto()         # any other atom


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position."""

    type: TokenType
    value: Union[str, int, float]
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r}, {self.line}:{self.column})"


# A variable is '<' name '>' with no whitespace; names may contain most
# printing characters but not the delimiters used by the grammar.
_VARIABLE_RE = re.compile(r"<([A-Za-z_][A-Za-z0-9_\-]*)>")

# A symbol atom runs until whitespace or a delimiter character.
_SYMBOL_RE = re.compile(r"[^\s(){}^;]+")

_NUMBER_RE = re.compile(r"[-+]?(\d+\.\d*|\.\d+|\d+)([eE][-+]?\d+)?")

# Multi-character operators, longest first.  '<=>' (same-type) must come
# before '<=' and '<>'.
_OPERATORS = ("<=>", "<=", ">=", "<>", "<<", ">>", "-->", "=", "<", ">")

_OPERATOR_TYPES = {
    "<<": TokenType.LDOUBLE,
    ">>": TokenType.RDOUBLE,
    "-->": TokenType.ARROW,
}


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source`` into a list of :class:`Token`.

    Raises :class:`~repro.ops5.errors.LexError` on an unterminated or
    malformed construct.  Comments run from ``;`` to end of line.
    """
    return list(iter_tokens(source))


def iter_tokens(source: str) -> Iterator[Token]:
    """Yield tokens from ``source`` one at a time (see :func:`tokenize`)."""
    pos = 0
    line = 1
    line_start = 0
    n = len(source)
    while pos < n:
        ch = source[pos]
        if ch == "\n":
            line += 1
            pos += 1
            line_start = pos
            continue
        if ch.isspace():
            pos += 1
            continue
        if ch == ";":
            # Comment to end of line.
            nl = source.find("\n", pos)
            pos = n if nl < 0 else nl
            continue
        col = pos - line_start + 1
        if ch == "(":
            yield Token(TokenType.LPAREN, "(", line, col)
            pos += 1
            continue
        if ch == ")":
            yield Token(TokenType.RPAREN, ")", line, col)
            pos += 1
            continue
        if ch == "{":
            yield Token(TokenType.LBRACE, "{", line, col)
            pos += 1
            continue
        if ch == "}":
            yield Token(TokenType.RBRACE, "}", line, col)
            pos += 1
            continue
        if ch == "^":
            yield Token(TokenType.HAT, "^", line, col)
            pos += 1
            continue

        # Variable?  Must be checked before '<' the predicate.
        m = _VARIABLE_RE.match(source, pos)
        if m:
            yield Token(TokenType.VARIABLE, m.group(1), line, col)
            pos = m.end()
            continue

        # Multi-character / single-character operators.
        matched_op = None
        for op in _OPERATORS:
            if source.startswith(op, pos):
                matched_op = op
                break
        if matched_op == "-->":
            yield Token(TokenType.ARROW, "-->", line, col)
            pos += 3
            continue
        if matched_op in ("<<", ">>"):
            yield Token(_OPERATOR_TYPES[matched_op], matched_op, line, col)
            pos += len(matched_op)
            continue
        if matched_op is not None:
            yield Token(TokenType.PREDICATE, matched_op, line, col)
            pos += len(matched_op)
            continue

        # A bare '-' introducing a negated CE: a minus followed by
        # whitespace or '('.  A minus starting a number is handled by the
        # number branch below.
        if ch == "-" and (pos + 1 >= n or source[pos + 1].isspace() or source[pos + 1] == "("):
            yield Token(TokenType.MINUS, "-", line, col)
            pos += 1
            continue

        # Number?
        m = _NUMBER_RE.match(source, pos)
        if m:
            end = m.end()
            # Guard against symbols that merely start with digits (e.g.
            # '2x'): the match must end at a delimiter.
            if end >= n or source[end].isspace() or source[end] in "(){};^":
                text = m.group(0)
                value: Union[int, float]
                if "." in text or "e" in text or "E" in text:
                    value = float(text)
                else:
                    value = int(text)
                yield Token(TokenType.NUMBER, value, line, col)
                pos = end
                continue

        # Symbol atom.
        m = _SYMBOL_RE.match(source, pos)
        if m:
            yield Token(TokenType.SYMBOL, m.group(0), line, col)
            pos = m.end()
            continue

        raise LexError(f"unexpected character {ch!r}", line, col)
