"""Recursive-descent parser for OPS5 programs.

Top-level forms::

    (literalize class attr1 attr2 ...)
    (p name  <ce>+  -->  <action>* )
    (startup <action>*)

Condition elements::

    [ - ] ( class  { ^attr <value-test> }* )

See :mod:`repro.ops5.astnodes` for the value-test grammar.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from .astnodes import (
    Action,
    AttrTest,
    BindAction,
    ConditionElement,
    Conjunction,
    Disjunction,
    HaltAction,
    Lit,
    Literalize,
    MakeAction,
    ModifyAction,
    Production,
    Program,
    RemoveAction,
    RhsCompute,
    RhsConst,
    RhsAccept,
    RhsValue,
    RhsVar,
    Test,
    Var,
    WriteAction,
)
from .errors import ParseError
from .lexer import Token, TokenType, tokenize

_COMPUTE_OPS = ("+", "-", "*", "//", "\\")


class _TokenStream:
    """A cursor over the token list with one-token lookahead."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    def peek(self) -> Optional[Token]:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def next(self) -> Token:
        tok = self.peek()
        if tok is None:
            raise ParseError("unexpected end of input")
        self._pos += 1
        return tok

    def expect(self, ttype: TokenType) -> Token:
        tok = self.next()
        if tok.type is not ttype:
            raise ParseError(
                f"expected {ttype.name}, found {tok.type.name} {tok.value!r}", tok.line
            )
        return tok

    def at(self, ttype: TokenType) -> bool:
        tok = self.peek()
        return tok is not None and tok.type is ttype


def parse_program(source: str) -> Program:
    """Parse a complete OPS5 program from source text."""
    stream = _TokenStream(tokenize(source))
    literalizes: List[Literalize] = []
    productions: List[Production] = []
    startup: List[Action] = []
    while stream.peek() is not None:
        tok = stream.expect(TokenType.LPAREN)
        head = stream.next()
        if head.type is not TokenType.SYMBOL:
            raise ParseError(f"expected form head, found {head.value!r}", head.line)
        if head.value == "literalize":
            literalizes.append(_parse_literalize(stream))
        elif head.value == "p":
            productions.append(_parse_production(stream, tok.line))
        elif head.value == "startup":
            startup.extend(_parse_actions_until_rparen(stream))
        else:
            raise ParseError(f"unknown top-level form {head.value!r}", head.line)
    return Program(
        literalizes=tuple(literalizes),
        productions=tuple(productions),
        startup=tuple(startup),
    )


def parse_production(source: str) -> Production:
    """Parse a single ``(p ...)`` form — convenience for tests/examples."""
    program = parse_program(source)
    if len(program.productions) != 1:
        raise ParseError("expected exactly one production")
    return program.productions[0]


def _parse_literalize(stream: _TokenStream) -> Literalize:
    klass = stream.expect(TokenType.SYMBOL).value
    attrs: List[str] = []
    while not stream.at(TokenType.RPAREN):
        attrs.append(str(stream.expect(TokenType.SYMBOL).value))
    stream.expect(TokenType.RPAREN)
    return Literalize(klass=str(klass), attrs=tuple(attrs))


def _parse_production(stream: _TokenStream, line: int) -> Production:
    name_tok = stream.next()
    if name_tok.type not in (TokenType.SYMBOL, TokenType.NUMBER):
        raise ParseError(f"bad production name {name_tok.value!r}", name_tok.line)
    name = str(name_tok.value)

    ces: List[ConditionElement] = []
    while not stream.at(TokenType.ARROW):
        negated = False
        if stream.at(TokenType.MINUS):
            stream.next()
            negated = True
        ces.append(_parse_condition_element(stream, negated))
    stream.expect(TokenType.ARROW)

    actions = _parse_actions_until_rparen(stream)
    try:
        return Production(name=name, ces=tuple(ces), actions=tuple(actions), line=line)
    except ValueError as exc:
        raise ParseError(str(exc), line) from exc


def _parse_condition_element(stream: _TokenStream, negated: bool) -> ConditionElement:
    stream.expect(TokenType.LPAREN)
    klass_tok = stream.expect(TokenType.SYMBOL)
    tests: List[AttrTest] = []
    while not stream.at(TokenType.RPAREN):
        stream.expect(TokenType.HAT)
        attr_tok = stream.next()
        if attr_tok.type not in (TokenType.SYMBOL, TokenType.NUMBER):
            raise ParseError(f"bad attribute name {attr_tok.value!r}", attr_tok.line)
        value_test = _parse_value_test(stream)
        tests.append(AttrTest(attr=str(attr_tok.value), test=value_test))
    stream.expect(TokenType.RPAREN)
    return ConditionElement(klass=str(klass_tok.value), tests=tuple(tests), negated=negated)


def _parse_value_test(stream: _TokenStream):
    tok = stream.peek()
    if tok is None:
        raise ParseError("unexpected end of input in condition element")
    if tok.type is TokenType.LBRACE:
        stream.next()
        subtests: List[Union[Test, Disjunction]] = []
        while not stream.at(TokenType.RBRACE):
            sub = _parse_simple_test(stream)
            subtests.append(sub)
        stream.expect(TokenType.RBRACE)
        if not subtests:
            raise ParseError("empty conjunction {}", tok.line)
        return Conjunction(tests=tuple(subtests))
    return _parse_simple_test(stream)


def _parse_simple_test(stream: _TokenStream) -> Union[Test, Disjunction]:
    tok = stream.next()
    if tok.type is TokenType.LDOUBLE:
        values = []
        while not stream.at(TokenType.RDOUBLE):
            v = stream.next()
            if v.type is TokenType.SYMBOL or v.type is TokenType.NUMBER:
                values.append(v.value)
            else:
                raise ParseError(
                    f"disjunctions may contain only constants, found {v.value!r}", v.line
                )
        stream.expect(TokenType.RDOUBLE)
        if not values:
            raise ParseError("empty disjunction << >>", tok.line)
        return Disjunction(values=tuple(values))
    if tok.type is TokenType.PREDICATE:
        operand_tok = stream.next()
        operand = _operand_from(operand_tok)
        return Test(op=str(tok.value), operand=operand)
    if tok.type is TokenType.VARIABLE:
        return Test(op="=", operand=Var(str(tok.value)))
    if tok.type in (TokenType.SYMBOL, TokenType.NUMBER):
        return Test(op="=", operand=Lit(tok.value))
    # A '-' token here is a negative number's sign that the lexer kept
    # separate only for the negated-CE case; treat as error.
    raise ParseError(f"bad value test starting with {tok.value!r}", tok.line)


def _operand_from(tok: Token):
    if tok.type is TokenType.VARIABLE:
        return Var(str(tok.value))
    if tok.type in (TokenType.SYMBOL, TokenType.NUMBER):
        return Lit(tok.value)
    raise ParseError(f"bad predicate operand {tok.value!r}", tok.line)


# ---------------------------------------------------------------------------
# RHS actions
# ---------------------------------------------------------------------------


def _parse_actions_until_rparen(stream: _TokenStream) -> List[Action]:
    actions: List[Action] = []
    while not stream.at(TokenType.RPAREN):
        actions.extend(_parse_action(stream))
    stream.expect(TokenType.RPAREN)
    return actions


def _parse_action(stream: _TokenStream) -> List[Action]:
    stream.expect(TokenType.LPAREN)
    head = stream.expect(TokenType.SYMBOL)
    kind = str(head.value)
    if kind == "make":
        klass = str(stream.expect(TokenType.SYMBOL).value)
        assigns = _parse_assigns(stream)
        stream.expect(TokenType.RPAREN)
        return [MakeAction(klass=klass, assigns=assigns)]
    if kind == "modify":
        idx_tok = stream.expect(TokenType.NUMBER)
        assigns = _parse_assigns(stream)
        stream.expect(TokenType.RPAREN)
        return [ModifyAction(ce_index=int(idx_tok.value), assigns=assigns)]
    if kind == "remove":
        # OPS5 allows several CE numbers per remove: (remove 1 3).
        indices = [int(stream.expect(TokenType.NUMBER).value)]
        while not stream.at(TokenType.RPAREN):
            indices.append(int(stream.expect(TokenType.NUMBER).value))
        stream.expect(TokenType.RPAREN)
        return [RemoveAction(ce_index=i) for i in indices]
    if kind == "write":
        values: List[RhsValue] = []
        while not stream.at(TokenType.RPAREN):
            values.append(_parse_rhs_value(stream))
        stream.expect(TokenType.RPAREN)
        return [WriteAction(values=tuple(values))]
    if kind == "bind":
        var_tok = stream.expect(TokenType.VARIABLE)
        value = _parse_rhs_value(stream)
        stream.expect(TokenType.RPAREN)
        return [BindAction(var=str(var_tok.value), value=value)]
    if kind == "halt":
        stream.expect(TokenType.RPAREN)
        return [HaltAction()]
    raise ParseError(f"unknown action {kind!r}", head.line)


def _parse_assigns(stream: _TokenStream) -> Tuple[Tuple[str, RhsValue], ...]:
    assigns: List[Tuple[str, RhsValue]] = []
    while stream.at(TokenType.HAT):
        stream.next()
        attr_tok = stream.next()
        if attr_tok.type not in (TokenType.SYMBOL, TokenType.NUMBER):
            raise ParseError(f"bad attribute name {attr_tok.value!r}", attr_tok.line)
        value = _parse_rhs_value(stream)
        assigns.append((str(attr_tok.value), value))
    return tuple(assigns)


def _parse_rhs_value(stream: _TokenStream) -> RhsValue:
    tok = stream.next()
    if tok.type is TokenType.VARIABLE:
        return RhsVar(str(tok.value))
    if tok.type in (TokenType.SYMBOL, TokenType.NUMBER):
        return RhsConst(tok.value)
    if tok.type is TokenType.LPAREN:
        head = stream.next()
        if head.type is TokenType.SYMBOL and head.value == "compute":
            return _parse_compute(stream, head.line)
        if head.type is TokenType.SYMBOL and head.value == "accept":
            stream.expect(TokenType.RPAREN)
            return RhsAccept()
        raise ParseError(f"unknown RHS function {head.value!r}", head.line)
    raise ParseError(f"bad RHS value {tok.value!r}", tok.line)


def _parse_compute(stream: _TokenStream, line: int) -> RhsCompute:
    operands: List[RhsValue] = [_parse_compute_operand(stream)]
    ops: List[str] = []
    while not stream.at(TokenType.RPAREN):
        op_tok = stream.next()
        op = str(op_tok.value)
        # '-' between operands lexes as MINUS when followed by whitespace.
        if op_tok.type is TokenType.MINUS:
            op = "-"
        if op not in _COMPUTE_OPS:
            raise ParseError(f"unknown compute operator {op!r}", op_tok.line)
        ops.append(op)
        operands.append(_parse_compute_operand(stream))
    stream.expect(TokenType.RPAREN)
    if not ops:
        raise ParseError("compute needs at least one operator", line)
    return RhsCompute(operands=tuple(operands), ops=tuple(ops))


def _parse_compute_operand(stream: _TokenStream) -> RhsValue:
    tok = stream.peek()
    if tok is not None and tok.type is TokenType.LPAREN:
        return _parse_rhs_value(stream)
    tok = stream.next()
    if tok.type is TokenType.VARIABLE:
        return RhsVar(str(tok.value))
    if tok.type in (TokenType.SYMBOL, TokenType.NUMBER):
        return RhsConst(tok.value)
    raise ParseError(f"bad compute operand {tok.value!r}", tok.line)
