"""Exception hierarchy for the OPS5 implementation.

All errors raised by the lexer, parser, compiler and interpreter derive
from :class:`Ops5Error` so callers can catch one type.
"""

from __future__ import annotations


class Ops5Error(Exception):
    """Base class for every error raised by :mod:`repro.ops5`."""


class LexError(Ops5Error):
    """Raised when the lexer encounters an invalid character sequence."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(Ops5Error):
    """Raised when the parser encounters a malformed program."""

    def __init__(self, message: str, line: int = 0) -> None:
        if line:
            super().__init__(f"{message} (line {line})")
        else:
            super().__init__(message)
        self.line = line


class CompileError(Ops5Error):
    """Raised when a production cannot be compiled into the Rete network."""


class RuntimeOps5Error(Ops5Error):
    """Raised for errors during the recognize-act cycle (bad RHS etc.)."""
