"""The OPS5 language: lexer, parser, AST, working memory, conflict
resolution, RHS evaluation, and the recognize-act interpreter."""

from .astnodes import Production, Program
from .interpreter import Interpreter, RunResult
from .parser import parse_production, parse_program
from .wme import WME, WMEChange, WorkingMemory

__all__ = [
    "Interpreter",
    "Production",
    "Program",
    "RunResult",
    "WME",
    "WMEChange",
    "WorkingMemory",
    "parse_production",
    "parse_program",
]
