"""Conflict set and conflict-resolution strategies (LEX and MEA).

The conflict set holds *instantiations* — (production, ordered WME list)
pairs delivered by the terminal nodes.  Conflict resolution picks the
instantiation to fire:

* **Refraction** — an instantiation fires at most once; firing removes
  it from the conflict set (it becomes eligible again only if match
  re-derives it, e.g. when a negated condition toggles).
* **LEX** — order instantiations by their timetags sorted descending,
  compared lexicographically (most recent first); if one tag list is a
  prefix of the other, the longer dominates; ties broken by
  specificity, then deterministically by name/timetags so runs are
  reproducible.
* **MEA** — like LEX but the timetag of the WME matching the *first*
  condition element is compared before anything else.

In parallel mode conflict-set deltas can arrive out of order (a remove
before its add), so the set is maintained with signed counts; the
control process applies all of a cycle's deltas before selecting, at
which point every count must be 0 or 1 (checked by ``validate``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from .astnodes import Production
from .errors import RuntimeOps5Error
from ..rete.token import Token


@dataclass(frozen=True)
class Instantiation:
    """A satisfied production with the WMEs that satisfy it."""

    production: Production
    token: Token

    @property
    def key(self) -> Tuple[str, Tuple[int, ...]]:
        return (self.production.name, self.token.key)

    def timetags_desc(self) -> Tuple[int, ...]:
        return tuple(sorted(self.token.key, reverse=True))

    def __str__(self) -> str:
        tags = " ".join(str(t) for t in self.token.key)
        return f"{self.production.name} [{tags}]"


class ConflictSet:
    """The set of currently satisfied instantiations, with signed counts."""

    def __init__(self, strict: bool = True) -> None:
        self._strict = strict
        self._entries: Dict[Tuple[str, Tuple[int, ...]], Tuple[Instantiation, int]] = {}
        self._fired: set = set()

    def __len__(self) -> int:
        return sum(1 for _inst, c in self._entries.values() if c > 0)

    def apply(self, production: Production, token: Token, sign: int) -> None:
        inst = Instantiation(production, token)
        key = inst.key
        current = self._entries.get(key)
        count = (current[1] if current else 0) + sign
        if self._strict and (count < 0 or count > 1):
            raise RuntimeOps5Error(
                f"conflict set corrupt: {inst} reached count {count}"
            )
        if count == 0:
            self._entries.pop(key, None)
            # The instantiation left the conflict set; if it re-enters
            # later (e.g. a negated condition toggled), it may fire again.
            self._fired.discard(key)
        else:
            self._entries[key] = (inst, count)

    def mark_fired(self, inst: Instantiation) -> None:
        """Refraction: the instantiation stays in the set but is no
        longer eligible for selection while it remains there."""
        self._fired.add(inst.key)

    def validate(self) -> None:
        """Check that every entry has count exactly 1 (post-cycle invariant)."""
        bad = [(k, c) for k, (_i, c) in self._entries.items() if c != 1]
        if bad:
            raise RuntimeOps5Error(f"conflict set counts out of range: {bad[:5]}")

    def instantiations(self) -> List[Instantiation]:
        """Every present instantiation, fired or not."""
        return [inst for inst, c in self._entries.values() if c > 0]

    def eligible(self) -> List[Instantiation]:
        """Instantiations conflict resolution may select (refraction applied)."""
        return [
            inst
            for inst, c in self._entries.values()
            if c > 0 and inst.key not in self._fired
        ]

    def __contains__(self, key: Tuple[str, Tuple[int, ...]]) -> bool:
        entry = self._entries.get(key)
        return entry is not None and entry[1] > 0


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


def _lex_sort_key(inst: Instantiation):
    # Descending recency, longer-dominates, then specificity; the final
    # name/timetag components exist purely to make selection total and
    # deterministic.
    tags = inst.timetags_desc()
    return (
        tags,
        len(tags),
        inst.production.specificity(),
        inst.production.name,
        inst.token.key,
    )


def _mea_sort_key(inst: Instantiation):
    first = inst.token.key[0] if inst.token.key else 0
    return (first,) + _lex_sort_key(inst)


class Strategy:
    """Base class for conflict-resolution strategies."""

    name = "base"

    def select(self, cs: ConflictSet) -> Optional[Instantiation]:
        raise NotImplementedError


class LexStrategy(Strategy):
    name = "lex"

    def select(self, cs: ConflictSet) -> Optional[Instantiation]:
        insts = cs.eligible()
        if not insts:
            return None
        return max(insts, key=_lex_sort_key)


class MeaStrategy(Strategy):
    name = "mea"

    def select(self, cs: ConflictSet) -> Optional[Instantiation]:
        insts = cs.eligible()
        if not insts:
            return None
        return max(insts, key=_mea_sort_key)


def make_strategy(name: str) -> Strategy:
    if name == "lex":
        return LexStrategy()
    if name == "mea":
        return MeaStrategy()
    raise ValueError(f"unknown strategy {name!r}")
