"""Working memory: elements (WMEs) and the working memory store.

A WME is an immutable record ``(class, {attr: value})`` stamped with a
*timetag* — the monotonically increasing counter OPS5 conflict
resolution uses to rank recency.  ``modify`` is implemented, exactly as
in the paper, as a *remove* followed by a *make* (the new element gets a
fresh timetag).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple, Union

from .astnodes import Constant
from .errors import RuntimeOps5Error


@dataclass(frozen=True)
class WME:
    """A working memory element.

    ``attrs`` is stored as a tuple of sorted ``(attr, value)`` pairs so
    the object is hashable; ``vals`` is a cached dict view of the same
    pairs (excluded from equality/hash) because attribute lookup sits on
    the match inner loop.  Two WMEs with identical class and attributes
    but different timetags are *different* working-memory elements.
    """

    klass: str
    attrs: Tuple[Tuple[str, Constant], ...]
    timetag: int
    vals: Dict[str, Constant] = field(compare=False, repr=False, default_factory=dict)

    def __post_init__(self) -> None:
        if not self.vals and self.attrs:
            object.__setattr__(self, "vals", dict(self.attrs))

    @staticmethod
    def make(klass: str, attrs: Mapping[str, Constant], timetag: int) -> "WME":
        items = tuple(sorted(attrs.items()))
        return WME(klass=klass, attrs=items, timetag=timetag)

    def get(self, attr: str, default: Optional[Constant] = None) -> Optional[Constant]:
        """Value of ``attr``, or ``default`` when the attribute is absent."""
        return self.vals.get(attr, default)

    @property
    def as_dict(self) -> Dict[str, Constant]:
        return dict(self.attrs)

    def with_updates(self, updates: Mapping[str, Constant], timetag: int) -> "WME":
        """A copy with ``updates`` applied and a new timetag (for modify)."""
        merged = self.as_dict
        merged.update(updates)
        return WME.make(self.klass, merged, timetag)

    def __str__(self) -> str:
        parts = " ".join(f"^{a} {v}" for a, v in self.attrs)
        return f"({self.klass} {parts})" if parts else f"({self.klass})"


@dataclass(frozen=True)
class WMEChange:
    """One change to working memory: ``sign`` is ``+1`` (add) or ``-1``."""

    sign: int
    wme: WME

    def __post_init__(self) -> None:
        if self.sign not in (1, -1):
            raise ValueError(f"bad change sign {self.sign}")


class WorkingMemory:
    """The mutable store of WMEs plus the timetag counter.

    The store indexes elements by timetag (for removal by conflict-set
    instantiations) and by class (so naive matchers and tooling can scan
    per class without touching everything).
    """

    def __init__(self) -> None:
        self._by_timetag: Dict[int, WME] = {}
        self._by_class: Dict[str, Dict[int, WME]] = {}
        self._next_timetag = 1

    def __len__(self) -> int:
        return len(self._by_timetag)

    def __iter__(self) -> Iterator[WME]:
        return iter(self._by_timetag.values())

    def __contains__(self, wme: WME) -> bool:
        return self._by_timetag.get(wme.timetag) is wme

    def next_timetag(self) -> int:
        tag = self._next_timetag
        self._next_timetag += 1
        return tag

    def add(self, klass: str, attrs: Mapping[str, Constant]) -> WME:
        """Create a WME with a fresh timetag and insert it."""
        wme = WME.make(klass, attrs, self.next_timetag())
        self._insert(wme)
        return wme

    def _insert(self, wme: WME) -> None:
        if wme.timetag in self._by_timetag:
            raise RuntimeOps5Error(f"duplicate timetag {wme.timetag}")
        self._by_timetag[wme.timetag] = wme
        self._by_class.setdefault(wme.klass, {})[wme.timetag] = wme

    def remove(self, wme: WME) -> None:
        """Delete ``wme``; raises if it is not (or no longer) present."""
        stored = self._by_timetag.pop(wme.timetag, None)
        if stored is None:
            raise RuntimeOps5Error(f"removing absent WME (timetag {wme.timetag})")
        del self._by_class[stored.klass][wme.timetag]

    def modify(self, wme: WME, updates: Mapping[str, Constant]) -> Tuple[WME, WME]:
        """Remove ``wme`` and add its updated copy; returns (old, new)."""
        self.remove(wme)
        new = wme.with_updates(updates, self.next_timetag())
        self._insert(new)
        return wme, new

    def by_timetag(self, timetag: int) -> Optional[WME]:
        return self._by_timetag.get(timetag)

    def of_class(self, klass: str) -> List[WME]:
        return list(self._by_class.get(klass, {}).values())

    def classes(self) -> List[str]:
        return [k for k, v in self._by_class.items() if v]

    def snapshot(self) -> List[WME]:
        """All WMEs ordered by timetag — a stable, copyable view."""
        return [self._by_timetag[t] for t in sorted(self._by_timetag)]
