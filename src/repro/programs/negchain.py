"""Negchain — a deep-chain negation program for the conformance matrix.

A four-level chain rule (``deep-hit``) joins ``c0..c3`` on a shared
variable and is held down by a negated ``blocker`` CE at the end of
the chain — the shape of the pinned deep-chain blow-up regression
(tests/schedck/test_deep_chain.py) with the negation that makes it
interesting for a demand-driven engine:

* **spawn** builds ``n_chains`` complete chains while the blocker
  stands.  Rete derives and stores every partial token up the chain
  anyway (the negation only pinches the last link); an engine with
  hoisted negation gates proves the blocker blocks *before* doing any
  join work;
* **shake** modifies every ``c2`` once, churning the middle of the
  loaded chain — delete/re-derive storms in Rete, O(1) per change
  under a hoisted gate;
* **probe** removes the blocker: every chain instantiation appears at
  once, fires, and consumes its WMEs; then the program reports and
  halts.

As with crossfire, every engine must agree byte-for-byte — the chain
churn is pure match cost.
"""

from __future__ import annotations

_RULES = """
(literalize stage step count limit)
(literalize c0 a)
(literalize c1 a)
(literalize c2 a done)
(literalize c3 a)
(literalize blocker tag)
(literalize hit v)

(p spawn
  (stage ^step spawn ^limit <max> ^count { <c> < <max> })
  -->
  (make c0 ^a <c>)
  (make c1 ^a <c>)
  (make c2 ^a <c> ^done no)
  (make c3 ^a <c>)
  (modify 1 ^count (compute <c> + 1)))

(p spawn-done
  (stage ^step spawn ^limit <max> ^count <max>)
  -->
  (modify 1 ^step shake))

(p deep-hit
  (c0 ^a <x>)
  (c1 ^a <x>)
  (c2 ^a <x>)
  (c3 ^a <x>)
  - (blocker)
  -->
  (make hit ^v <x>)
  (remove 1)
  (remove 2)
  (remove 3)
  (remove 4))

(p shake
  (stage ^step shake)
  (c2 ^done no ^a <x>)
  -->
  (modify 2 ^done yes))

(p unblock
  (stage ^step shake)
  (blocker)
  - (c2 ^done no)
  -->
  (remove 2)
  (modify 1 ^step probe))

(p finish
  (stage ^step probe)
  - (c0)
  -->
  (write negchain all hits fired)
  (halt))
"""


def rules() -> str:
    """The rule set alone (no startup)."""
    return _RULES


def startup_block(n_chains: int = 5) -> str:
    """The blocker is planted *before* the stage WME so the chain rule
    is blocked from the very first spawn."""
    return "\n".join(
        [
            "(startup",
            "  (make blocker ^tag up)",
            f"  (make stage ^step spawn ^count 0 ^limit {n_chains}))",
        ]
    )


def source(n_chains: int = 5) -> str:
    """The negchain program over ``n_chains`` chains."""
    return _RULES + "\n" + startup_block(n_chains)
