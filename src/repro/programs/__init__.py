"""The paper's three benchmark programs — Weaver (637 rules), Rubik
(70 rules), Tourney (17 rules) — plus classic small OPS5 programs used
by the examples and tests."""

from . import blocks, monkey, rubik, tourney, weaver

__all__ = ["blocks", "monkey", "rubik", "tourney", "weaver"]
