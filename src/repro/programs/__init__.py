"""The paper's three benchmark programs — Weaver (637 rules), Rubik
(70 rules), Tourney (17 rules) — plus classic small OPS5 programs used
by the examples and tests, and two adversarial fixtures (crossfire,
negchain) built for the cross-engine conformance matrix."""

from . import blocks, crossfire, monkey, negchain, rubik, tourney, weaver

__all__ = [
    "blocks",
    "crossfire",
    "monkey",
    "negchain",
    "rubik",
    "tourney",
    "weaver",
]
