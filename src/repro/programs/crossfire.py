"""Crossfire — a cross-product stressor for the conformance matrix.

The program walks four phases driven by a ``stage`` WME:

* **spawn** makes ``n_items`` ``item`` WMEs while the cross-product
  rules are dormant (their leading ``stage`` CE fails), so the item
  alpha memories fill up before any join fires;
* **cross** flips the stage: one WM change makes every unordered item
  pair live at once.  ``cross-pair`` materializes all N(N-1)/2 pairs;
  ``needle`` extends the same cross-product with a ``probe`` CE that
  matches exactly one pair — the shape where Rete stores the full
  intermediate token set while a demand-driven engine derives only
  what the probe asks for;
* **probe** deletes the items one by one, storming the deletes back
  through the loaded join memories;
* **tally** counts and consumes the pairs, then reports and halts.

Every engine must produce the same firing trace through all of this —
the blow-up is match-cost pathology, not semantic ambiguity.
"""

from __future__ import annotations

_RULES = """
(literalize stage step count limit)
(literalize item id)
(literalize probe a b)
(literalize pair lo hi)
(literalize tally pairs)

(p spawn-item
  (stage ^step spawn ^limit <max> ^count { <c> < <max> })
  -->
  (make item ^id <c>)
  (modify 1 ^count (compute <c> + 1)))

(p spawn-done
  (stage ^step spawn ^limit <max> ^count <max>)
  -->
  (modify 1 ^step cross))

(p cross-pair
  (stage ^step cross)
  (item ^id <x>)
  (item ^id { <y> > <x> })
  -->
  (make pair ^lo <x> ^hi <y>))

(p needle
  (stage ^step cross)
  (item ^id <x>)
  (item ^id { <y> > <x> })
  (probe ^a <x> ^b <y>)
  -->
  (remove 4)
  (write needle found <x> <y>))

(p cross-done
  (stage ^step cross)
  -->
  (modify 1 ^step probe))

(p probe-item
  (stage ^step probe)
  (item ^id <x>)
  -->
  (remove 2))

(p probe-done
  (stage ^step probe)
  - (item)
  -->
  (make tally ^pairs 0)
  (modify 1 ^step tally))

(p tally-pair
  (stage ^step tally)
  (tally ^pairs <n>)
  (pair ^lo <x> ^hi <y>)
  -->
  (remove 3)
  (modify 2 ^pairs (compute <n> + 1)))

(p finish
  (stage ^step tally)
  (tally ^pairs <n>)
  - (pair)
  -->
  (write crossfire counted <n> pairs)
  (halt))
"""


def rules() -> str:
    """The rule set alone (no startup)."""
    return _RULES


def startup_block(n_items: int = 7, probe: bool = True) -> str:
    """``probe=True`` plants the one probe WME the needle rule will
    find; ``False`` leaves the needle's last CE memory empty forever —
    the pure lazy/unlinked shape."""
    lines = ["(startup"]
    if probe:
        lines.append("  (make probe ^a 0 ^b 1)")
    lines.append(f"  (make stage ^step spawn ^count 0 ^limit {n_items}))")
    return "\n".join(lines)


def source(n_items: int = 7, probe: bool = True) -> str:
    """The crossfire program over ``n_items`` items."""
    return _RULES + "\n" + startup_block(n_items, probe)
