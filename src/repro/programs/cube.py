"""A 3x3x3 Rubik's cube model used to *generate* the Rubik OPS5 program.

The OPS5 rules need, for every face turn, the permutation it induces on
the 54 stickers.  Rather than hand-transcribing the classic tables
(error-prone), the permutations are derived from a 3-D coordinate
model: a sticker is (cubie position, facing normal), a face turn is a
signed 90° rotation applied to the cubies of that face's layer, and
sticker indices come from a fixed (face, row, col) convention.

Sticker numbering: ``face * 9 + row * 3 + col`` with faces ordered
``U D L R F B``; rows/cols follow the conventions listed in `_FACE_AXES`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

Vec = Tuple[int, int, int]

FACES = ("U", "D", "L", "R", "F", "B")

#: Facing normal of each face (x right, y up, z toward viewer).
FACE_NORMALS: Dict[str, Vec] = {
    "U": (0, 1, 0),
    "D": (0, -1, 0),
    "L": (-1, 0, 0),
    "R": (1, 0, 0),
    "F": (0, 0, 1),
    "B": (0, 0, -1),
}

#: For each face: (row axis direction, col axis direction) such that
#: (row, col) = (0, 0) is the face's top-left sticker when looking at it.
_FACE_AXES: Dict[str, Tuple[Vec, Vec]] = {
    "U": ((0, 0, 1), (1, 0, 0)),     # rows go from back to front
    "D": ((0, 0, -1), (1, 0, 0)),
    "L": ((0, -1, 0), (0, 0, 1)),
    "R": ((0, -1, 0), (0, 0, -1)),
    "F": ((0, -1, 0), (1, 0, 0)),
    "B": ((0, -1, 0), (-1, 0, 0)),
}

#: Solved-state color of each face (same symbols the OPS5 program uses).
FACE_COLORS: Dict[str, str] = {
    "U": "white",
    "D": "yellow",
    "L": "orange",
    "R": "red",
    "F": "green",
    "B": "blue",
}

N_STICKERS = 54


def _add(a: Vec, b: Vec) -> Vec:
    return (a[0] + b[0], a[1] + b[1], a[2] + b[2])


def _scale(a: Vec, k: int) -> Vec:
    return (a[0] * k, a[1] * k, a[2] * k)


def _rotate_about(v: Vec, axis: Vec, quarter_turns: int) -> Vec:
    """Rotate ``v`` by ``quarter_turns`` * 90° clockwise when viewed from
    the tip of ``axis`` (right-hand rule gives counter-clockwise, so
    clockwise = rotation by -90° about the axis)."""
    x, y, z = v
    for _ in range(quarter_turns % 4):
        if axis == (0, 1, 0):       # about +y, cw from above: (x,z) -> (-z? ...)
            x, y, z = (-z, y, x)
        elif axis == (0, -1, 0):
            x, y, z = (z, y, -x)
        elif axis == (1, 0, 0):     # about +x, cw from the right
            x, y, z = (x, z, -y)
        elif axis == (-1, 0, 0):
            x, y, z = (x, -z, y)
        elif axis == (0, 0, 1):     # about +z, cw from the front
            x, y, z = (y, -x, z)
        elif axis == (0, 0, -1):
            x, y, z = (-y, x, z)
        else:  # pragma: no cover - axes are face normals only
            raise ValueError(f"bad axis {axis}")
    return (x, y, z)


def _sticker_position(face: str, row: int, col: int) -> Tuple[Vec, Vec]:
    """(cubie position, facing normal) of sticker (face, row, col)."""
    normal = FACE_NORMALS[face]
    row_dir, col_dir = _FACE_AXES[face]
    pos = _add(
        _add(_scale(normal, 1), _scale(row_dir, -(row - 1))),
        _scale(col_dir, col - 1),
    )
    return pos, normal


def _index_of(pos: Vec, normal: Vec) -> int:
    face = next(f for f, n in FACE_NORMALS.items() if n == normal)
    row_dir, col_dir = _FACE_AXES[face]
    # Invert _sticker_position: project pos onto the row/col axes.
    rel = pos
    row = 1 - (rel[0] * row_dir[0] + rel[1] * row_dir[1] + rel[2] * row_dir[2])
    col = 1 + (rel[0] * col_dir[0] + rel[1] * col_dir[1] + rel[2] * col_dir[2])
    return FACES.index(face) * 9 + row * 3 + col


def sticker_index(face: str, row: int, col: int) -> int:
    return FACES.index(face) * 9 + row * 3 + col


def turn_permutation(face: str, quarter_turns: int = 1) -> List[int]:
    """Permutation ``p`` with ``new_colors[i] = old_colors[p[i]]`` for a
    clockwise turn of ``face`` repeated ``quarter_turns`` times."""
    normal = FACE_NORMALS[face]
    perm = list(range(N_STICKERS))
    for f in FACES:
        for row in range(3):
            for col in range(3):
                pos, n = _sticker_position(f, row, col)
                # Stickers on the turning layer: cubies whose coordinate
                # along the face normal is +1.
                if pos[0] * normal[0] + pos[1] * normal[1] + pos[2] * normal[2] != 1:
                    continue
                new_pos = _rotate_about(pos, normal, quarter_turns)
                new_n = _rotate_about(n, normal, quarter_turns)
                perm[_index_of(new_pos, new_n)] = sticker_index(f, row, col)
    return perm


def moved_stickers(face: str) -> List[int]:
    """Sticker indices displaced by a turn of ``face`` (always 20 + the
    fixed center = 21 on-layer stickers; the center maps to itself)."""
    perm = turn_permutation(face, 1)
    return [i for i, src in enumerate(perm) if src != i]


class Cube:
    """A concrete cube state: ``colors[i]`` is sticker *i*'s color."""

    def __init__(self, colors: Sequence[str] | None = None) -> None:
        if colors is None:
            colors = [FACE_COLORS[FACES[i // 9]] for i in range(N_STICKERS)]
        if len(colors) != N_STICKERS:
            raise ValueError("a cube has 54 stickers")
        self.colors = list(colors)

    def turn(self, face: str, quarter_turns: int = 1) -> "Cube":
        perm = turn_permutation(face, quarter_turns)
        self.colors = [self.colors[perm[i]] for i in range(N_STICKERS)]
        return self

    def apply(self, moves: Iterable[Tuple[str, int]]) -> "Cube":
        for face, qt in moves:
            self.turn(face, qt)
        return self

    def is_solved(self) -> bool:
        return all(
            self.colors[f * 9 + i] == self.colors[f * 9]
            for f in range(6)
            for i in range(9)
        )

    def copy(self) -> "Cube":
        return Cube(self.colors)


def inverse_moves(moves: Sequence[Tuple[str, int]]) -> List[Tuple[str, int]]:
    """The move sequence undoing ``moves``."""
    return [(face, (4 - qt) % 4) for face, qt in reversed(moves)]


def scramble_sequence(length: int, seed: int = 1988) -> List[Tuple[str, int]]:
    """A deterministic pseudo-random scramble (no adjacent repeats)."""
    # A tiny LCG keeps this reproducible without the random module.
    state = seed & 0x7FFFFFFF
    moves: List[Tuple[str, int]] = []
    last = None
    while len(moves) < length:
        state = (1103515245 * state + 12345) & 0x7FFFFFFF
        face = FACES[state % 6]
        if face == last:
            continue
        state = (1103515245 * state + 12345) & 0x7FFFFFFF
        qt = 1 + state % 3
        moves.append((face, qt))
        last = face
    return moves
