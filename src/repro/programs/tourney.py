"""Tourney — the 17-rule tournament scheduler (Bill Barabash's in the paper).

A greedy round-robin scheduler: each round, repeatedly pick two free
teams that have not yet played each other, schedule the match, and mark
both busy; when no pickable pair remains the round notes byes, resets
the teams and opens the next round.  After the last round it reports
the match count and halts.

The program's match profile is dominated by ``propose-match`` — the
paper's *cross-product culprit*: its two ``(team ...)`` condition
elements share **no** variables (only a ``>`` ordering test), so the
two-input node joining them has no equality tests, its hash key is
empty, and every token for the node lands in a *single* hash-table
line.  Worse — in the natural OPS5 style of keeping a running count on
the control element — ``propose-match`` modifies the ``(tourney)`` WME
it matches, so *every* firing tears down and re-derives the node's
whole left memory: a burst of ~2·N same-line activations, each
scanning the whole opposite memory.  That is precisely the behaviour
behind the paper's Tourney results: ~2.5× speed-up ceiling that
*declines* as processes are added (Tables 4-5/4-6), extreme
line-lock contention (Table 4-9), and huge token scans under linear
memories (Tables 4-2/4-3).

:func:`fixed_source` applies the paper's §4.2 remedy ("modifying two
such productions using domain specific knowledge"): teams are split
into pools and the pairing rules join on the pool attribute, giving the
node real equality keys that spread its tokens across lines — the
paper reports this lifted 1+13 speed-up from 2.7× to 5.1×.

Rule inventory (17 productions): make-team, end-seed, start-round,
propose-match, round-done, note-bye, byes-done, reset-team, next-round,
report, five verify-* rules, audit-unplayed, audit-done.
"""

from __future__ import annotations

from typing import List

DEFAULT_TEAMS = 20
DEFAULT_ROUNDS = 24

_LITERALIZE = """
(literalize roster id pool)
(literalize team id free pool)
(literalize tourney round state max count)
(literalize phase step)
(literalize match id round t1 t2)
(literalize played lo hi)
(literalize error kind)
"""

# Rules 1-2: seeding phase — turn roster entries into team WMEs.
_SEEDING = """
(p make-team
  (phase ^step seed)
  (roster ^id <i> ^pool <p>)
  -->
  (make team ^id <i> ^free yes ^pool <p>)
  (remove 2))

(p end-seed
  (phase ^step seed)
  - (roster)
  -->
  (modify 1 ^step run))
"""

# Rule 3: open a round.
_START_ROUND = """
(p start-round
  (tourney ^round <r> ^state idle ^max >= <r>)
  (phase ^step run)
  -->
  (modify 1 ^state pairing))
"""

# Rule 4: THE cross-product production.  CE2 and CE3 share no
# variables; the only inter-element test is the `>` ordering, which is
# not an equality, so the join has an empty hash key — and the count
# update on CE1 re-derives the join's left memory every firing.
_PROPOSE = """
(p propose-match
  (tourney ^round <r> ^state pairing ^count <c>)
  (team ^id <t1> ^free yes)
  (team ^id { <t2> > <t1> } ^free yes)
  - (played ^lo <t1> ^hi <t2>)
  -->
  (make match ^id (compute <t1> * 100 + <t2>) ^round <r> ^t1 <t1> ^t2 <t2>)
  (make played ^lo <t1> ^hi <t2>)
  (modify 2 ^free no)
  (modify 3 ^free no)
  (modify 1 ^count (compute <c> + 1)))
"""

# Rule 5: fallback when no pair can be proposed (fewer condition
# elements, so LEX prefers propose-match while any instantiation of it
# exists — the classic OPS5 specificity idiom).
_ROUND_DONE = """
(p round-done
  (tourney ^round <r> ^state pairing)
  -->
  (modify 1 ^state byes))
"""

# Rules 6-7: note the teams left without an opponent, then move on
# (refraction lets note-bye fire once per (tourney, team) pair).
_BYES = """
(p note-bye
  (tourney ^round <r> ^state byes)
  (team ^id <t> ^free yes)
  -->
  (write round <r> bye for team <t>))

(p byes-done
  (tourney ^round <r> ^state byes)
  -->
  (modify 1 ^state reset))
"""

# Rules 8-9: reset for the next round.
_RESET = """
(p reset-team
  (tourney ^round <r> ^state reset)
  (team ^id <t> ^free no)
  -->
  (modify 2 ^free yes))

(p next-round
  (tourney ^round <r> ^state reset ^max <m>)
  - (team ^free no)
  -->
  (modify 1 ^round (compute <r> + 1) ^state idle))
"""

# Rule 10: all rounds done -> report and stop.
_REPORT = """
(p report
  (tourney ^round <r> ^state idle ^max < <r> ^count <c>)
  -->
  (write scheduled <c> matches)
  (modify 1 ^state done)
  (halt))
"""

# Rules 11-15: verification.  These never fire in a correct run; their
# joins (keyed on round/team) contribute realistic match load and would
# catch scheduler bugs.
_VERIFY = """
(p verify-dup-match
  (match ^t1 <a> ^t2 <b> ^id <i>)
  (match ^t1 <a> ^t2 <b> ^id <> <i>)
  -->
  (make error ^kind duplicate-match)
  (write error duplicate match <a> <b>)
  (halt))

(p verify-clash-t1
  (match ^round <r> ^t1 <a> ^id <i>)
  (match ^round <r> ^t1 <a> ^id <> <i>)
  -->
  (make error ^kind team-clash)
  (write error team <a> plays twice in round <r>)
  (halt))

(p verify-clash-t2
  (match ^round <r> ^t2 <a> ^id <i>)
  (match ^round <r> ^t2 <a> ^id <> <i>)
  -->
  (make error ^kind team-clash)
  (write error team <a> plays twice in round <r>)
  (halt))

(p verify-clash-cross
  (match ^round <r> ^t1 <a> ^id <i>)
  (match ^round <r> ^t2 <a> ^id <> <i>)
  -->
  (make error ^kind team-clash)
  (write error team <a> plays twice in round <r>)
  (halt))

(p verify-sym-played
  (played ^lo <a> ^hi <b>)
  (played ^lo <b> ^hi <a>)
  -->
  (make error ^kind asymmetric-played)
  (write error asymmetric played <a> <b>)
  (halt))
"""

# Rules 16-17: unplayed-pair audit (reached only when a test drives the
# tourney WME into the audit state by hand).
_AUDIT = """
(p audit-unplayed
  (tourney ^state audit)
  (team ^id <t1>)
  (team ^id { <t2> > <t1> })
  - (played ^lo <t1> ^hi <t2>)
  -->
  (write unplayed pair <t1> <t2>))

(p audit-done
  (tourney ^state audit)
  -->
  (modify 1 ^state done)
  (halt))
"""


def _fixed_propose(n_pools: int = 4) -> str:
    """The §4.2 rewrite: pairing productions specialized by pool.

    Domain knowledge: teams are organized in pools, so pairing splits
    into a *same-pool* production whose team×team join is keyed on the
    pool equality, plus one production per pool *pair* whose condition
    elements carry constant pool tests — separate alpha memories of
    ~N/pools teams each, on separate hash lines.  The schedule produced
    is identical to the original's; only the match work is spread: the
    count-update burst now re-derives a handful of small left memories
    on distinct lines instead of one huge memory on a single line.
    """
    rules = ["""
(p propose-match
  (tourney ^round <r> ^state pairing ^count <c>)
  (team ^id <t1> ^free yes ^pool <p>)
  (team ^id { <t2> > <t1> } ^free yes ^pool <p>)
  - (played ^lo <t1> ^hi <t2>)
  -->
  (make match ^id (compute <t1> * 100 + <t2>) ^round <r> ^t1 <t1> ^t2 <t2>)
  (make played ^lo <t1> ^hi <t2>)
  (modify 2 ^free no)
  (modify 3 ^free no)
  (modify 1 ^count (compute <c> + 1)))
"""]
    for a in range(n_pools):
        for b in range(a + 1, n_pools):
            rules.append(f"""
(p propose-cross-p{a}-p{b}
  (tourney ^round <r> ^state pairing ^count <c>)
  (team ^id <t1> ^free yes ^pool p{a})
  (team ^id {{ <t2> <> <t1> }} ^free yes ^pool p{b})
  - (played ^lo <t1> ^hi <t2>)
  - (played ^lo <t2> ^hi <t1>)
  -->
  (make match ^id (compute <t1> * 100 + <t2>) ^round <r> ^t1 <t1> ^t2 <t2>)
  (make played ^lo <t1> ^hi <t2>)
  (modify 2 ^free no)
  (modify 3 ^free no)
  (modify 1 ^count (compute <c> + 1)))
""")
    return "\n".join(rules)


def startup_block(n_teams: int, n_rounds: int, n_pools: int = 4) -> str:
    lines = ["(startup"]
    for i in range(1, n_teams + 1):
        pool = (i - 1) % n_pools
        lines.append(f"  (make roster ^id {i} ^pool p{pool})")
    lines.append("  (make phase ^step seed)")
    lines.append(f"  (make tourney ^round 1 ^state idle ^max {n_rounds} ^count 0))")
    return "\n".join(lines)


def rules() -> str:
    """The rule set alone (no startup) — the service layer seeds the
    roster and tourney control WMEs through WM transactions."""
    return "\n".join(
        [
            _LITERALIZE,
            _SEEDING,
            _START_ROUND,
            _PROPOSE,
            _ROUND_DONE,
            _BYES,
            _RESET,
            _REPORT,
            _VERIFY,
            _AUDIT,
        ]
    )


def source(n_teams: int = DEFAULT_TEAMS, n_rounds: int = DEFAULT_ROUNDS) -> str:
    """The original Tourney (cross-product ``propose-match``)."""
    return "\n".join(
        [
            _LITERALIZE,
            _SEEDING,
            _START_ROUND,
            _PROPOSE,
            _ROUND_DONE,
            _BYES,
            _RESET,
            _REPORT,
            _VERIFY,
            _AUDIT,
            startup_block(n_teams, n_rounds),
        ]
    )


def fixed_source(n_teams: int = DEFAULT_TEAMS, n_rounds: int = DEFAULT_ROUNDS) -> str:
    """Tourney with the two culprit productions rewritten (§4.2)."""
    return "\n".join(
        [
            _LITERALIZE,
            _SEEDING,
            _START_ROUND,
            _fixed_propose(),
            _ROUND_DONE,
            _BYES,
            _RESET,
            _REPORT,
            _VERIFY,
            _AUDIT,
            startup_block(n_teams, n_rounds),
        ]
    )


def n_rules() -> int:
    """17 productions, matching the paper (both variants)."""
    return 17


def max_matches(n_teams: int = DEFAULT_TEAMS) -> int:
    return n_teams * (n_teams - 1) // 2
