"""Weaver — the 637-rule VLSI routing program (Joobbani & Siewiorek's
knowledge-based router in the paper).

The original expert system was never distributed; this is a synthetic
equivalent with the same *static shape* (a ~640-production rule base in
which only a small working set is active at a time) and the same
*dynamic shape* the paper reports: the largest of the three programs,
moderate per-node memory sizes, wide per-change fan-out, and mid-range
parallel speed-up (≈4× with one task queue, ≈8× with eight).

The program is a Lee-style maze router driven entirely by rules:

* the grid, blockages and net list live in working memory;
* *expansion* rules grow a cost wavefront from each net's source —
  one rule per (net-class × cost-band × direction), generated exactly
  the way Weaver's knowledge base specialized its routing knowledge by
  region and strategy;
* *acceptance* rules admit candidate cells onto the frontier (in-grid,
  unblocked, unvisited), *rejection* rules discard the rest;
* *arrival* rules detect the wavefront reaching the target, and
  *cleanup* rules sweep the per-net scaffolding before the next net;
* *audit* rules (never firing in a correct run) watch for double
  visits and frontier/visited inconsistencies.

Rule-count arithmetic (defaults): with ``n_classes=8`` net classes,
``n_bands=12`` cost bands and 4 directions the generator emits
8×12×4 = 384 expansion rules + 8×12 = 96 acceptance rules +
12×4 = 48 rejection rules + 8 arrival + 94 audit monitors + 7
control/cleanup rules = **637 productions**, the paper's exact count
matched by construction (see ``n_rules``).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

DEFAULT_CLASSES = 8
DEFAULT_BANDS = 12
DEFAULT_GRID = 11
DEFAULT_NETS = 4

_DIRS = (("north", 0, 1), ("south", 0, -1), ("east", 1, 0), ("west", -1, 0))


def _band_bounds(band: int, band_width: int = 3) -> Tuple[int, int]:
    return band * band_width, band * band_width + band_width - 1


def _band_guard(band: int, n_bands: int) -> str:
    """Cost-band test; the top band is open-ended so depth-first cost
    growth can never escape every rule's coverage."""
    lo, hi = _band_bounds(band)
    if band == n_bands - 1:
        return f"^cost {{ <c> >= {lo} }}"
    return f"^cost {{ <c> >= {lo} <= {hi} }}"


def expansion_rule(klass: int, band: int, n_bands: int, dname: str, dx: int, dy: int) -> str:
    """Grow the wavefront one step in one direction for one cost band."""
    return f"""
(p expand-c{klass}-b{band}-{dname}
  (frontier ^net <n> ^x <x> ^y <y> {_band_guard(band, n_bands)})
  (net ^id <n> ^class c{klass} ^state routing)
  (router ^current <n> ^state expand)
  -->
  (make cand ^net <n> ^x (compute <x> + {dx}) ^y (compute <y> + {dy})
        ^cost (compute <c> + 1)))"""


def acceptance_rule(klass: int, band: int, n_bands: int) -> str:
    """Admit an in-grid, unblocked, unvisited candidate onto the frontier."""
    return f"""
(p accept-c{klass}-b{band}
  (cand ^net <n> ^x <x> ^y <y> {_band_guard(band, n_bands)})
  (cell ^x <x> ^y <y> ^blocked no)
  (net ^id <n> ^class c{klass} ^state routing)
  (router ^current <n> ^state expand)
  - (visited ^net <n> ^x <x> ^y <y>)
  -->
  (remove 1)
  (make visited ^net <n> ^x <x> ^y <y>)
  (make frontier ^net <n> ^x <x> ^y <y> ^cost <c>))"""


def rejection_rules(band: int, n_bands: int, grid: int) -> List[str]:
    """Discard candidates that fall off the grid, hit blockages, or
    land on already-visited cells (per cost band, like Weaver's
    per-region bookkeeping rules)."""
    guard = _band_guard(band, n_bands)
    return [
        f"""
(p reject-blocked-b{band}
  (cand ^net <n> ^x <x> ^y <y> {guard})
  (cell ^x <x> ^y <y> ^blocked yes)
  -->
  (remove 1))""",
        f"""
(p reject-visited-b{band}
  (cand ^net <n> ^x <x> ^y <y> {guard})
  (visited ^net <n> ^x <x> ^y <y>)
  -->
  (remove 1))""",
        f"""
(p reject-low-b{band}
  (cand ^net <n> ^x << -1 {grid} >> {guard})
  -->
  (remove 1))""",
        f"""
(p reject-high-b{band}
  (cand ^net <n> ^y << -1 {grid} >> {guard})
  -->
  (remove 1))""",
    ]


def arrival_rule(klass: int) -> str:
    """The wavefront reached the target: mark the net routed."""
    return f"""
(p arrive-c{klass}
  (net ^id <n> ^class c{klass} ^state routing ^tx <x> ^ty <y>)
  (frontier ^net <n> ^x <x> ^y <y>)
  (router ^current <n> ^state expand)
  -->
  (modify 1 ^state routed)
  (modify 3 ^state cleanup)
  (write net <n> routed at <x> <y>))"""


AUDIT_RULES = 94


def audit_rule(index: int, n_classes: int) -> str:
    """One never-firing consistency monitor.

    Like Rubik's monitor productions, these model the large inactive
    portion of a real expert system's rule base: they take real match
    traffic on every ``visited``/``frontier`` change without ever
    firing (``(never)`` is asserted at startup) and without building up
    join state:

    * even-indexed monitors pair a visited cell with an *impossibly
      cheap* frontier entry on the same cell — the constant test keeps
      the opposite memory empty, so every visited change costs one
      null two-input activation per monitor (wide, cheap fan-out);
    * odd-indexed monitors anchor on the handful of near-source
      frontier cells and scan the visited cells of the same column, so
      they contribute genuine moderate-size opposite-memory scans (the
      paper's Weaver examines ~8-10 tokens per activation).
    """
    klass = index % n_classes
    if index % 2 == 0:
        return f"""
(p audit-{index}
  (visited ^net <n> ^x <a> ^y <b>)
  (frontier ^net <n> ^x <a> ^y <b> ^cost < 0)
  (net ^id <n> ^class c{klass})
  - (never)
  -->
  (make error ^kind audit-{index})
  (halt))"""
    pred = (">", "<", ">=", "<=")[(index // 2) % 4]
    anchor = 2 + (index // 8) % 4
    return f"""
(p audit-{index}
  (frontier ^net <n> ^x <a> ^y <b> ^cost <= {anchor})
  (visited ^net <n> ^x <a> ^y {pred} <b>)
  (net ^id <n> ^class c{klass})
  - (never)
  -->
  (make error ^kind audit-{index})
  (halt))"""


_CONTROL = """
(p pick-net
  (router ^current none ^state idle)
  (net ^id <n> ^state waiting ^sx <x> ^sy <y>)
  -->
  (modify 1 ^current <n> ^state expand)
  (modify 2 ^state routing)
  (make visited ^net <n> ^x <x> ^y <y>)
  (make frontier ^net <n> ^x <x> ^y <y> ^cost 0))

(p expand-exhausted
  (router ^current <n> ^state expand)
  - (cand ^net <n>)
  - (frontier ^net <n>)
  -->
  (modify 1 ^state cleanup)
  (write net <n> unroutable))

(p clear-frontier
  (router ^current <n> ^state cleanup)
  (frontier ^net <n>)
  -->
  (remove 2))

(p clear-cand
  (router ^current <n> ^state cleanup)
  (cand ^net <n>)
  -->
  (remove 2))

(p clear-visited
  (router ^current <n> ^state cleanup)
  (visited ^net <n>)
  -->
  (remove 2))

(p cleanup-done
  (router ^current <n> ^state cleanup)
  - (frontier ^net <n>)
  - (cand ^net <n>)
  - (visited ^net <n>)
  -->
  (modify 1 ^current none ^state idle))

(p all-routed
  (router ^current none ^state idle)
  - (net ^state waiting)
  -->
  (modify 1 ^state done)
  (write routing complete)
  (halt))
"""


def control_rule_names() -> List[str]:
    return [
        "pick-net",
        "expand-exhausted",
        "clear-frontier",
        "clear-cand",
        "clear-visited",
        "cleanup-done",
        "all-routed",
    ]


def startup_block(
    grid: int, nets: Sequence[Tuple[int, int, int, int, int]], blocked: Sequence[Tuple[int, int]]
) -> str:
    """Initial WM: the cell grid, blockages, nets, router control."""
    blocked_set = set(blocked)
    lines = ["(startup"]
    for x in range(grid):
        for y in range(grid):
            b = "yes" if (x, y) in blocked_set else "no"
            lines.append(f"  (make cell ^x {x} ^y {y} ^blocked {b})")
    for i, (klass, sx, sy, tx, ty) in enumerate(nets, start=1):
        lines.append(
            f"  (make net ^id {i} ^class c{klass} ^state waiting"
            f" ^sx {sx} ^sy {sy} ^tx {tx} ^ty {ty})"
        )
    lines.append("  (make never)")
    lines.append("  (make router ^current none ^state idle))")
    return "\n".join(lines)


def default_layout(grid: int = DEFAULT_GRID, n_nets: int = DEFAULT_NETS):
    """A deterministic net list and blockage pattern."""
    nets = []
    for i in range(n_nets):
        klass = i % DEFAULT_CLASSES
        sx, sy = 1 + i % (grid - 2), 1
        tx, ty = grid - 2 - (i % (grid - 3)), grid - 2
        nets.append((klass, sx, sy, tx, ty))
    blocked = [(grid // 2, y) for y in range(2, grid - 3)]
    blocked += [(x, grid // 2) for x in range(grid - 4, grid - 2)]
    return nets, blocked


def source(
    n_classes: int = DEFAULT_CLASSES,
    n_bands: int = DEFAULT_BANDS,
    grid: int = DEFAULT_GRID,
    n_nets: int = DEFAULT_NETS,
) -> str:
    """The complete Weaver program (637 productions at the defaults)."""
    parts: List[str] = [
        "(literalize cell x y blocked)",
        "(literalize net id class state sx sy tx ty)",
        "(literalize frontier net x y cost)",
        "(literalize cand net x y cost)",
        "(literalize visited net x y)",
        "(literalize router current state)",
        "(literalize error kind)",
        "(literalize never)",
    ]
    for klass in range(n_classes):
        for band in range(n_bands):
            for dname, dx, dy in _DIRS:
                parts.append(expansion_rule(klass, band, n_bands, dname, dx, dy))
    for klass in range(n_classes):
        for band in range(n_bands):
            parts.append(acceptance_rule(klass, band, n_bands))
    for band in range(n_bands):
        parts.extend(rejection_rules(band, n_bands, grid))
    for klass in range(n_classes):
        parts.append(arrival_rule(klass))
    for index in range(AUDIT_RULES):
        parts.append(audit_rule(index, n_classes))
    parts.append(_CONTROL)
    nets, blocked = default_layout(grid, n_nets)
    parts.append(startup_block(grid, nets, blocked))
    return "\n".join(parts)


def n_rules(n_classes: int = DEFAULT_CLASSES, n_bands: int = DEFAULT_BANDS) -> int:
    """384 expand + 96 accept + 48 reject + 8 arrive + 94 audit + 7
    control = 637 at the defaults — the paper's Weaver rule count."""
    return (
        n_classes * n_bands * 4
        + n_classes * n_bands
        + n_bands * 4
        + n_classes
        + AUDIT_RULES
        + 7
    )
