"""Monkey and bananas — the canonical OPS5 teaching program.

The monkey must push the ladder under the bananas, climb it, and grab
them.  A compact goal/subgoal formulation exercising MEA-style control
(the first condition element of every rule is the active goal).
"""

from __future__ import annotations

_RULES_CORE = """
(literalize goal status type object)
(literalize monkey at on holds)
(literalize thing name at weight)

(p grab-bananas-sets-subgoals
  (goal ^status active ^type holds ^object bananas)
  (thing ^name bananas ^at <p>)
  (monkey ^at <> <p>)
  - (goal ^status active ^type at ^object ladder)
  -->
  (make goal ^status active ^type at ^object ladder))

(p move-ladder
  (goal ^status active ^type at ^object ladder)
  (thing ^name bananas ^at <p>)
  (thing ^name ladder ^at <> <p> ^weight light)
  (monkey ^holds nil)
  -->
  (modify 3 ^at <p>)
  (modify 4 ^at <p>)
  (modify 1 ^status satisfied)
  (write monkey pushes ladder to <p>))

(p climb-ladder
  (goal ^status active ^type holds ^object bananas)
  (thing ^name bananas ^at <p>)
  (thing ^name ladder ^at <p>)
  (monkey ^at <p> ^on floor)
  -->
  (modify 4 ^on ladder)
  (write monkey climbs ladder))

(p walk-to-ladder
  (goal ^status active ^type at ^object ladder)
  (thing ^name ladder ^at <p>)
  (monkey ^at <> <p>)
  -->
  (modify 3 ^at <p>)
  (write monkey walks to <p>))

"""

# The final rule with and without ``(halt)``: service sessions outlive
# one grab, so their variant just reports success.
_GRAB_HALT = """
(p grab-bananas
  (goal ^status active ^type holds ^object bananas)
  (thing ^name bananas ^at <p>)
  (monkey ^at <p> ^on ladder ^holds nil)
  -->
  (modify 3 ^holds bananas)
  (modify 1 ^status satisfied)
  (write monkey grabs the bananas)
  (halt))
"""

_GRAB_ANNOUNCE = """
(p grab-bananas
  (goal ^status active ^type holds ^object bananas)
  (thing ^name bananas ^at <p>)
  (monkey ^at <p> ^on ladder ^holds nil)
  -->
  (modify 3 ^holds bananas)
  (modify 1 ^status satisfied)
  (write monkey grabs the bananas))
"""

_STARTUP = """
(startup
  (make goal ^status active ^type holds ^object bananas)
  (make monkey ^at 5-7 ^on floor ^holds nil)
  (make thing ^name bananas ^at 2-2 ^weight light)
  (make thing ^name ladder ^at 9-5 ^weight light))
"""

_SOURCE = _RULES_CORE + _GRAB_HALT + _STARTUP


def rules(halt: bool = True) -> str:
    """The rule set alone (no startup) for the service layer."""
    return _RULES_CORE + (_GRAB_HALT if halt else _GRAB_ANNOUNCE)


def source() -> str:
    """The complete monkey-and-bananas program."""
    return _SOURCE
