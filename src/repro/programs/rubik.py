"""Rubik — the 70-rule cube program (James Allen's in the paper).

The original source was never distributed; this is a faithful synthetic
equivalent (see DESIGN.md): a rule-driven cube executor that applies a
scramble sequence and then its inverse, verifying at the end that the
cube returned to the solved state — which also proves the generated
rotation rules are correct.

Why it reproduces the paper's Rubik *match characteristics*:

* every move fires one ``rotate-*`` production whose RHS modifies the
  20 displaced stickers (40 WM changes per cycle, several thousand per
  run) — the paper reports 8350 changes;
* each sticker change cascades through the long (22-CE) chain of the
  active rotation rule and null-activates the chains of the other
  rotation rules that reference the same sticker, giving ~40-80 node
  activations per change with *small memories* (most memories hold one
  token) — the paper reports 66 activations/change and small
  hash-bucket scans (Table 4-2: 3.8 tokens);
* the 40 changes of a cycle cascade independently, which is exactly the
  high intrinsic parallelism that let the paper reach 12.4× speed-up.

Rule inventory (70 productions, matching the paper's count):

* 18 ``rotate-<face>-<qt>`` (6 faces × quarter-turns 1..3, 22 CEs each)
* 15 ``watch-<f>-<g>`` face-pair color-coincidence monitors and
* 30 ``band-*`` row-band monitors: each joins two sticker *groups*
  (``^pos << ... >>`` disjunctions) on color equality, so every sticker
  change spawns a handful of independent activations whose hash-table
  lines are keyed by *color* — the wide, bucket-spread match reaction
  that hand-written rules with real variable bindings produce.  A
  permanently-present ``(never)`` WME behind a negated CE keeps them
  from ever firing, so they shape match load without touching control
  flow.
* 6  ``solved-<face>`` uniform-face checks
* 1  ``all-solved`` final report
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .cube import (
    Cube,
    FACES,
    FACE_COLORS,
    inverse_moves,
    moved_stickers,
    scramble_sequence,
    turn_permutation,
)

DEFAULT_MOVES = 12


def rotation_production(face: str, quarter_turns: int) -> str:
    """One ``rotate-<face>-<qt>`` production (22 CEs, 21 RHS actions).

    The sticker CEs come *first* and the volatile trigger CEs —
    ``(move)`` and ``(ctrl)`` — come *last*: standard OPS5 practice
    (most-frequently-changing conditions at the bottom of the chain),
    so advancing ``ctrl`` between moves touches only the bottom join
    instead of tearing down and serially rebuilding all 21 joins.
    """
    perm = turn_permutation(face, quarter_turns)
    moved = moved_stickers(face)
    lines = [f"(p rotate-{face}-{quarter_turns}"]
    for pos in moved:
        lines.append(f"  (sticker ^pos {pos} ^color <c{pos}>)")
    lines.append(f"  (move ^seq <n> ^face {face} ^turns {quarter_turns})")
    lines.append("  (ctrl ^next <n>)")
    lines.append("  -->")
    # CE k holds the sticker at `moved[k-1]`; its new color comes from
    # the sticker the permutation maps onto it.
    for idx, pos in enumerate(moved):
        ce_number = idx + 1
        src = perm[pos]
        lines.append(f"  (modify {ce_number} ^color <c{src}>)")
    ctrl_ce = len(moved) + 2
    lines.append(f"  (modify {ctrl_ce} ^next (compute <n> + 1)))")
    return "\n".join(lines)


def _group_disjunction(positions: Sequence[int]) -> str:
    return "<< " + " ".join(str(p) for p in positions) + " >>"


def watch_production(name: str, group_a: Sequence[int], group_b: Sequence[int]) -> str:
    """A never-firing monitor joining two sticker groups on color equality.

    The color-equality join means the hash key is the color value, so
    these rules place their (very real) match traffic on per-color
    hash-table lines.  ``(never)`` is asserted at startup, so the
    negated CE blocks the terminal forever.
    """
    return (
        f"(p {name}\n"
        f"  (sticker ^pos {_group_disjunction(group_a)} ^color <c>)\n"
        f"  (sticker ^pos {_group_disjunction(group_b)} ^color <c>)\n"
        f"  - (never)\n"
        f"  -->\n"
        f"  (make off ^face none ^pos 0))"
    )


def monitor_productions() -> List[str]:
    """15 face-pair monitors + 30 row-band monitors (45 productions).

    Face-pair monitors carry 9-token side memories: under linear (vs1)
    memories every probe scans all of them while hash memories cut the
    probe to the ~1.5 tokens sharing the color key — and the per-color
    buckets stay short enough that the parallel line holds match the
    paper's Rubik profile (high intrinsic parallelism, Table 4-5/4-6).
    """
    out: List[str] = []
    face_positions = {f: [FACES.index(f) * 9 + k for k in range(9)] for f in FACES}
    for i in range(6):
        for j in range(i + 1, 6):
            fa, fb = FACES[i], FACES[j]
            out.append(
                watch_production(f"watch-{fa}-{fb}", face_positions[fa], face_positions[fb])
            )
    # Row bands: row r of one face vs row r' of another, walked
    # deterministically to yield 30 distinct band monitors.
    bands = []
    for fi in range(6):
        for r in range(3):
            bands.append([fi * 9 + r * 3 + c for c in range(3)])
    k = 0
    for step in (1, 4, 7):
        for i in range(len(bands)):
            j = (i + step) % len(bands)
            if k >= 30:
                break
            out.append(watch_production(f"band-{k}", bands[i], bands[j]))
            k += 1
        if k >= 30:
            break
    return out


def solved_face_production(face: str) -> str:
    face_idx = FACES.index(face)
    lines = [f"(p solved-{face}", "  (ctrl ^next <n> ^total { <t> < <n> })"]
    lines.append(f"  (sticker ^pos {face_idx * 9} ^color <c>)")
    for i in range(1, 9):
        lines.append(f"  (sticker ^pos {face_idx * 9 + i} ^color <c>)")
    lines.append("  -->")
    lines.append(f"  (make solved ^face {face}))")
    return "\n".join(lines)


def all_solved_production() -> str:
    lines = ["(p all-solved"]
    for face in FACES:
        lines.append(f"  (solved ^face {face})")
    lines.append("  -->")
    lines.append("  (write cube solved)")
    lines.append("  (halt))")
    return "\n".join(lines)


def startup_block(moves: Sequence[Tuple[str, int]]) -> str:
    """Initial working memory: solved stickers + the move agenda."""
    lines = ["(startup"]
    for i in range(54):
        color = FACE_COLORS[FACES[i // 9]]
        lines.append(f"  (make sticker ^pos {i} ^color {color})")
    for seq, (face, qt) in enumerate(moves, start=1):
        lines.append(f"  (make move ^seq {seq} ^face {face} ^turns {qt})")
    lines.append("  (make never)")
    lines.append(f"  (make ctrl ^next 1 ^total {len(moves)}))")
    return "\n".join(lines)


def source(n_moves: int = DEFAULT_MOVES, seed: int = 1988) -> str:
    """The complete Rubik OPS5 program.

    ``n_moves`` scramble moves are applied, then their inverses; the
    run ends with the ``all-solved`` production writing "cube solved".
    """
    scramble = scramble_sequence(n_moves, seed=seed)
    agenda = scramble + inverse_moves(scramble)
    parts: List[str] = [
        "(literalize sticker pos color)",
        "(literalize move seq face turns)",
        "(literalize ctrl next total)",
        "(literalize solved face)",
        "(literalize off face pos)",
        "(literalize never)",
    ]
    for face in FACES:
        for qt in (1, 2, 3):
            parts.append(rotation_production(face, qt))
    parts.extend(monitor_productions())
    for face in FACES:
        parts.append(solved_face_production(face))
    parts.append(all_solved_production())
    parts.append(startup_block(agenda))
    return "\n\n".join(parts)


def n_rules() -> int:
    """Number of productions in the generated program (the paper's 70)."""
    return 18 + 45 + 6 + 1  # = 70, matching the paper


def expected_final_state(n_moves: int = DEFAULT_MOVES, seed: int = 1988) -> bool:
    """Sanity oracle: applying scramble+inverse must solve the cube."""
    scramble = scramble_sequence(n_moves, seed=seed)
    cube = Cube().apply(scramble).apply(inverse_moves(scramble))
    return cube.is_solved()
