"""Blocks world — a classic small OPS5 program for examples and tests.

A goal-driven stacker: given blocks on a table and a list of ``(on A
B)`` goals, it clears and moves blocks until every goal holds.  Small
enough to read in one sitting; exercises negation, modify chains and
multi-CE joins.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

_RULES_CORE = """
(literalize block name on clear)
(literalize goal put onto done)
(literalize phase step)

(p pick-goal
  (phase ^step idle)
  (goal ^put <b> ^onto <t> ^done no)
  -->
  (modify 1 ^step work))

(p goal-already-satisfied
  (phase ^step work)
  (goal ^put <b> ^onto <t> ^done no)
  (block ^name <b> ^on <t>)
  -->
  (modify 2 ^done yes)
  (modify 1 ^step idle))

(p clear-mover
  (phase ^step work)
  (goal ^put <b> ^onto <t> ^done no)
  (block ^name <b> ^clear no)
  (block ^name <o> ^on <b>)
  -->
  (modify 4 ^on table)
  (modify 3 ^clear yes)
  (write unstacked <o> from <b>))

(p clear-target
  (phase ^step work)
  (goal ^put <b> ^onto <t> ^done no)
  (block ^name <b> ^clear yes)
  (block ^name <t> ^clear no)
  (block ^name <o> ^on <t>)
  -->
  (modify 5 ^on table)
  (modify 4 ^clear yes)
  (write unstacked <o> from <t>))

(p move-block
  (phase ^step work)
  (goal ^put <b> ^onto <t> ^done no)
  (block ^name <b> ^clear yes ^on <from>)
  (block ^name <t> ^clear yes)
  -->
  (modify 3 ^on <t>)
  (modify 4 ^clear no)
  (modify 2 ^done yes)
  (modify 1 ^step fix-clear)
  (write moved <b> onto <t>))

(p fix-freed-block
  (phase ^step fix-clear)
  (block ^name <f> ^clear no)
  - (block ^on <f>)
  -->
  (modify 2 ^clear yes))

(p fix-clear-done
  (phase ^step fix-clear)
  -->
  (modify 1 ^step idle))
"""

# The terminal rule in two flavours: the classic program halts when
# every goal is satisfied; service sessions stay alive (new goals keep
# arriving as transactions), so their variant only announces.
_ALL_DONE_HALT = """
(p all-done
  (phase ^step idle)
  - (goal ^done no)
  -->
  (write all goals satisfied)
  (halt))
"""

_ALL_DONE_ANNOUNCE = """
(p all-done
  (phase ^step idle)
  - (goal ^done no)
  -->
  (write all goals satisfied))
"""

_RULES = _RULES_CORE + _ALL_DONE_HALT


def rules(halt: bool = True) -> str:
    """The rule set alone (no startup) — the service layer feeds the
    initial state as WM transactions instead of ``(startup ...)``."""
    return _RULES_CORE + (_ALL_DONE_HALT if halt else _ALL_DONE_ANNOUNCE)


def startup_block(
    blocks: Sequence[Tuple[str, str]], goals: Sequence[Tuple[str, str]]
) -> str:
    """``blocks`` is (name, supports) pairs — ``supports='table'`` for
    ground blocks; ``goals`` is (block, destination) pairs."""
    on_top = {below for _name, below in blocks if below != "table"}
    lines = ["(startup"]
    for name, below in blocks:
        clear = "no" if name in on_top else "yes"
        lines.append(f"  (make block ^name {name} ^on {below} ^clear {clear})")
    for put, onto in goals:
        lines.append(f"  (make goal ^put {put} ^onto {onto} ^done no)")
    lines.append("  (make phase ^step idle))")
    return "\n".join(lines)


def source(
    blocks: Sequence[Tuple[str, str]] = (("a", "table"), ("b", "a"), ("c", "table")),
    goals: Sequence[Tuple[str, str]] = (("a", "c"),),
) -> str:
    """The blocks-world program with the given initial state and goals."""
    return _RULES + "\n" + startup_block(blocks, goals)
