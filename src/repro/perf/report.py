"""Trajectory persistence and rendering.

``benchmarks/trajectory.jsonl`` is the repo's append-only perf history:
one JSON line per ``repro bench run``, carrying the run's identity,
every metric median, and which metrics are headline.  The full
per-sample/per-profile detail lives in the ``BENCH_<runid>.json``
artifact the line points at — the trajectory is the index, the
artifacts are the evidence.

``render_markdown`` turns the trajectory into the summary table
``repro bench report`` prints: one row per run, one column per headline
metric, plus a latest-vs-previous movement section.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional


def trajectory_entry(doc: Dict[str, Any], artifact: str) -> Dict[str, Any]:
    """The trajectory line summarizing one BENCH document."""
    metrics: Dict[str, float] = {}
    headline: List[str] = []
    for sid, scenario in sorted(doc.get("scenarios", {}).items()):
        for name, stats in sorted(scenario.get("metrics", {}).items()):
            key = f"{sid}.{name}"
            metrics[key] = stats["median"]
            if stats.get("headline"):
                headline.append(key)
    return {
        "runid": doc["runid"],
        "created": doc["created"],
        "created_unix": doc["created_unix"],
        "suite": doc["suite"],
        "artifact": artifact,
        "headline": headline,
        "metrics": metrics,
    }


def append_trajectory(path: str, entry: Dict[str, Any]) -> None:
    """Append one line; creates the file (and directory) on first use."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")


def load_trajectory(path: str) -> List[Dict[str, Any]]:
    """All entries, oldest first.  Missing file = empty history."""
    if not os.path.exists(path):
        return []
    entries: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: bad trajectory line: {exc}"
                ) from None
            if not isinstance(entry, dict) or "runid" not in entry:
                raise ValueError(f"{path}:{lineno}: not a trajectory entry")
            entries.append(entry)
    return entries


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    return f"{value:.4g}"


def render_markdown(entries: List[Dict[str, Any]], limit: int = 20) -> str:
    """The trajectory as a markdown summary (most recent runs last)."""
    lines = ["# Performance trajectory", ""]
    if not entries:
        lines.append("No recorded runs yet — start with `repro bench run`.")
        return "\n".join(lines) + "\n"
    window = entries[-limit:]
    # Headline columns: latest declaration wins, so renamed metrics age
    # out of the table without rewriting history.
    columns = list(window[-1].get("headline", []))
    if not columns:
        columns = sorted(window[-1].get("metrics", {}))[:6]
    header = ["run", "date", "suite"] + columns
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "---|" * len(header))
    for entry in window:
        row = [
            str(entry.get("runid", "?")),
            str(entry.get("created", "?")),
            str(entry.get("suite", "?")),
        ] + [_fmt(entry.get("metrics", {}).get(col)) for col in columns]
        lines.append("| " + " | ".join(row) + " |")
    lines.append("")
    if len(window) >= 2:
        prev, last = window[-2], window[-1]
        lines.append(
            f"## Movement: {prev.get('runid')} → {last.get('runid')}"
        )
        lines.append("")
        for col in columns:
            b = prev.get("metrics", {}).get(col)
            c = last.get("metrics", {}).get(col)
            if b is None or c is None:
                lines.append(f"- `{col}`: {_fmt(b)} → {_fmt(c)}")
                continue
            pct = ((c - b) / b * 100.0) if b else 0.0
            lines.append(f"- `{col}`: {_fmt(b)} → {_fmt(c)} ({pct:+.1f}%)")
        lines.append("")
        lines.append(
            "Run `repro bench compare` for the tolerance-aware "
            "classification and hot-spot attribution."
        )
    return "\n".join(lines).rstrip() + "\n"


def render_run_text(doc: Dict[str, Any], path: str) -> str:
    """Console summary of one completed run (what ``bench run`` prints)."""
    lines = [
        f"bench run {doc['runid']} suite={doc['suite']} "
        f"({len(doc['scenarios'])} scenarios)"
    ]
    for sid, scenario in sorted(doc["scenarios"].items()):
        if scenario.get("skipped"):
            lines.append(f"  {sid}: SKIPPED — {scenario['skipped']}")
            continue
        lines.append(
            f"  {sid}: repeat={scenario['repeat']} warmup={scenario['warmup']}"
        )
        for name, stats in sorted(scenario["metrics"].items()):
            marker = "*" if stats.get("headline") else " "
            stable = " [stable]" if stats.get("stable") else ""
            lines.append(
                f"   {marker}{name:<28} {stats['median']:>12.5g} "
                f"{stats['unit']:<6} mad={stats['mad']:.3g}{stable}"
            )
        ratio = scenario.get("counters", {}).get("lock_contention_ratio")
        if ratio is not None:
            lines.append(f"    lock contention ratio: {ratio:.3f}")
        dropped = scenario.get("counters", {}).get("dropped_events", 0)
        if dropped:
            lines.append(f"    dropped obs events: {int(dropped)}")
    lines.append(f"artifact: {path}")
    return "\n".join(lines)
