"""The BENCH artifact schema: identifier, shape, and validator.

One ``repro bench run`` emits one ``BENCH_<runid>.json`` document:

.. code-block:: json

    {
      "schema": "repro.bench/1",
      "runid": "20260806-093012-4f2a",
      "created": "2026-08-06T09:30:12+00:00",
      "created_unix": 1775467812.0,
      "suite": "smoke",
      "note": "",
      "host": {"python": "3.11.8", "platform": "...", "cpus": 16},
      "scenarios": {
        "match-weaver": {
          "title": "...",
          "repeat": 5, "warmup": 1,
          "metrics": {
            "match_hash_s": {
              "samples": [0.081, 0.079],
              "median": 0.080, "mad": 0.001,
              "unit": "s", "direction": "lower",
              "rel_tol": 0.6, "abs_tol": 0.0,
              "stable": false, "headline": true
            }
          },
          "counters": {"lock_contention_ratio": 0.02},
          "profile": {"nodes": [...], "locks": [...], "productions": [...]}
        }
      }
    }

A scenario whose host precondition failed is recorded as
``{"title": ..., "skipped": "<reason>", "metrics": {}, ...}`` — the
reason string is mandatory when ``metrics`` is empty, so an artifact
can never silently contain an unmeasured scenario.

``direction`` declares which way is better (``"lower"`` for seconds and
spins, ``"higher"`` for speed-ups and throughput); ``stable`` marks
metrics that are deterministic for a given tree (simulated instruction
counts, activation totals) and therefore comparable across machines —
the CI gate compares those against a committed seed artifact, while
wall-clock metrics are only compared between runs on the same host.

:func:`validate_bench_doc` is the schema check used by the tests, the
CI ``perf-smoke`` job, and ``repro bench compare`` before trusting a
baseline file; like
:func:`repro.obs.export.validate_chrome_trace` it returns a list of
human-readable problems, empty when the document is valid.
"""

from __future__ import annotations

from typing import Any, List

#: Version tag written into every artifact; compare refuses documents
#: whose major family ("repro.bench") differs.
SCHEMA_ID = "repro.bench/1"

_DIRECTIONS = ("lower", "higher")

_TOP_STR = ("schema", "runid", "created", "suite")
_METRIC_NUM = ("median", "mad", "rel_tol", "abs_tol")


def _is_num(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _check_profile(problems: List[str], where: str, profile: Any) -> None:
    if not isinstance(profile, dict):
        problems.append(f"{where}: profile is not an object")
        return
    for section, keys in (
        ("nodes", ("node_id", "production", "self_ms")),
        ("locks", ("label", "wait_ms")),
        ("productions", ("production", "self_ms")),
    ):
        rows = profile.get(section, [])
        if not isinstance(rows, list):
            problems.append(f"{where}: profile.{section} is not an array")
            continue
        for i, row in enumerate(rows):
            if not isinstance(row, dict):
                problems.append(f"{where}: profile.{section}[{i}] not an object")
                continue
            for key in keys:
                if key not in row:
                    problems.append(
                        f"{where}: profile.{section}[{i}] missing {key!r}"
                    )


def _check_metric(problems: List[str], where: str, stats: Any) -> None:
    if not isinstance(stats, dict):
        problems.append(f"{where}: not an object")
        return
    samples = stats.get("samples")
    if not isinstance(samples, list) or not samples:
        problems.append(f"{where}: samples missing or empty")
    elif not all(_is_num(s) for s in samples):
        problems.append(f"{where}: samples must be numbers")
    for key in _METRIC_NUM:
        if not _is_num(stats.get(key)):
            problems.append(f"{where}: {key} must be a number")
    if _is_num(stats.get("rel_tol")) and stats["rel_tol"] < 0:
        problems.append(f"{where}: rel_tol must be >= 0")
    if _is_num(stats.get("abs_tol")) and stats["abs_tol"] < 0:
        problems.append(f"{where}: abs_tol must be >= 0")
    if stats.get("direction") not in _DIRECTIONS:
        problems.append(
            f"{where}: direction must be one of {_DIRECTIONS}, "
            f"got {stats.get('direction')!r}"
        )
    if not isinstance(stats.get("unit"), str):
        problems.append(f"{where}: unit must be a string")
    for key in ("stable", "headline"):
        if not isinstance(stats.get(key, False), bool):
            problems.append(f"{where}: {key} must be a boolean")


def validate_bench_doc(doc: Any) -> List[str]:
    """Schema-check one BENCH document; empty list means valid."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    for key in _TOP_STR:
        if not isinstance(doc.get(key), str) or not doc.get(key):
            problems.append(f"{key} is missing or not a non-empty string")
    schema = doc.get("schema")
    if isinstance(schema, str) and not schema.startswith("repro.bench/"):
        problems.append(f"unknown schema family {schema!r}")
    if not _is_num(doc.get("created_unix")):
        problems.append("created_unix must be a number")
    host = doc.get("host")
    if not isinstance(host, dict):
        problems.append("host is missing or not an object")
    scenarios = doc.get("scenarios")
    if not isinstance(scenarios, dict):
        problems.append("scenarios is missing or not an object")
        return problems
    for sid, scenario in scenarios.items():
        where = f"scenario {sid!r}"
        if not isinstance(scenario, dict):
            problems.append(f"{where}: not an object")
            continue
        skipped = scenario.get("skipped")
        if skipped is not None and (
            not isinstance(skipped, str) or not skipped
        ):
            problems.append(f"{where}: skipped must be a non-empty string")
        metrics = scenario.get("metrics")
        if not isinstance(metrics, dict) or (not metrics and skipped is None):
            problems.append(f"{where}: metrics missing or empty")
        else:
            for name, stats in metrics.items():
                _check_metric(problems, f"{where} metric {name!r}", stats)
        for key in ("repeat", "warmup"):
            if not isinstance(scenario.get(key), int):
                problems.append(f"{where}: {key} must be an integer")
        counters = scenario.get("counters", {})
        if not isinstance(counters, dict):
            problems.append(f"{where}: counters is not an object")
        elif not all(_is_num(v) for v in counters.values()):
            problems.append(f"{where}: counter values must be numbers")
        profile = scenario.get("profile")
        if profile is not None:
            _check_profile(problems, where, profile)
    return problems
