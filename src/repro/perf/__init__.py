"""``repro.perf`` — the continuous performance observatory.

The paper's contribution is nine tables of measurements; this package
keeps those measurements *alive*.  It runs a declarative registry of
scenarios (:mod:`~repro.perf.scenarios`) with warm-up and repetition
(:mod:`~repro.perf.runner`), emits schema-versioned machine-readable
``BENCH_<runid>.json`` artifacts (:mod:`~repro.perf.schema`), maintains
the append-only ``benchmarks/trajectory.jsonl`` history
(:mod:`~repro.perf.report`), and gates regressions with robust
MAD-based thresholds plus hot-spot attribution from :mod:`repro.obs`
profiles (:mod:`~repro.perf.compare`).  CLI: ``repro bench
run|compare|report``; workflow and schema: docs/PERF.md.
"""

from .compare import CompareResult, MetricDelta, Mover, compare_docs
from .report import load_trajectory, render_markdown, trajectory_entry
from .runner import run_suite
from .scenarios import SCENARIOS, MetricSpec, Scenario, select
from .schema import SCHEMA_ID, validate_bench_doc

__all__ = [
    "SCENARIOS",
    "SCHEMA_ID",
    "CompareResult",
    "MetricDelta",
    "MetricSpec",
    "Mover",
    "Scenario",
    "compare_docs",
    "load_trajectory",
    "render_markdown",
    "run_suite",
    "select",
    "trajectory_entry",
    "validate_bench_doc",
]
