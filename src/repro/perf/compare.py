"""The regression gate: classify metric movement between two runs.

For every metric present in both BENCH documents the engine computes a
direction-aware noise threshold

    tol = max(abs_tol, rel_tol * |baseline median|,
              NOISE_K * (baseline MAD + current MAD))

and classifies the delta as ``improved`` / ``unchanged`` / ``regressed``
(worse-than-tolerance in the metric's declared *bad* direction).
Metrics present in only one run are ``added`` / ``removed`` — reported,
never gating.  The MAD term adapts the band to each run's measured
noise; single-sample metrics (MAD = 0) fall back to the declared
relative/absolute tolerances alone.

When a scenario regresses, :func:`attribute` diffs its captured
hot-spot profiles (per-node / per-production / per-lock, from
:mod:`repro.obs`) and names the top movers — the paper's evidence
style: not just "tourney slowed down" but *which* join node or hash
line absorbed the time.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .schema import validate_bench_doc

#: Multiplier on the summed MADs in the noise band.  3 x MAD ~= 2 sigma
#: for Gaussian noise; wall metrics additionally carry wide rel_tols.
NOISE_K = 3.0

#: Classification labels, in display order.
CLASSES = ("regressed", "improved", "unchanged", "added", "removed")


@dataclass
class MetricDelta:
    """One metric's movement between baseline and current."""

    scenario: str
    metric: str
    unit: str
    direction: str
    stable: bool
    baseline: Optional[float]
    current: Optional[float]
    threshold: float
    classification: str

    @property
    def delta(self) -> Optional[float]:
        if self.baseline is None or self.current is None:
            return None
        return self.current - self.baseline

    @property
    def key(self) -> str:
        return f"{self.scenario}.{self.metric}"


@dataclass
class Mover:
    """One hot-spot entry whose cost moved between the runs."""

    kind: str  # "node" | "production" | "lock"
    label: str
    baseline_ms: float
    current_ms: float

    @property
    def delta_ms(self) -> float:
        return self.current_ms - self.baseline_ms


@dataclass
class CompareResult:
    """Everything one baseline-vs-current comparison produced."""

    baseline_runid: str
    current_runid: str
    deltas: List[MetricDelta] = field(default_factory=list)
    #: scenario id -> top profile movers (only for regressed scenarios)
    movers: Dict[str, List[Mover]] = field(default_factory=dict)

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.classification == "regressed"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def counts(self) -> Dict[str, int]:
        out = {cls: 0 for cls in CLASSES}
        for d in self.deltas:
            out[d.classification] += 1
        return out

    def format(self) -> str:
        lines = [
            f"bench compare: baseline {self.baseline_runid} -> "
            f"current {self.current_runid}"
        ]
        lines.append(
            f"  {'metric':<44} {'baseline':>12} {'current':>12} "
            f"{'delta':>11} {'tol':>10}  class"
        )

        def fmt(v: Optional[float]) -> str:
            return f"{v:.5g}" if v is not None else "-"

        order = {cls: i for i, cls in enumerate(CLASSES)}
        for d in sorted(self.deltas,
                        key=lambda d: (order[d.classification], d.key)):
            lines.append(
                f"  {d.key:<44} {fmt(d.baseline):>12} {fmt(d.current):>12} "
                f"{fmt(d.delta):>11} {fmt(d.threshold):>10}  {d.classification}"
            )
        counts = self.counts()
        lines.append(
            "  summary: "
            + " ".join(f"{cls}={counts[cls]}" for cls in CLASSES)
        )
        for scenario_id, movers in sorted(self.movers.items()):
            lines.append(f"  hot-spot movers for {scenario_id!r} (regressed):")
            if not movers:
                lines.append("    (no profile recorded in one of the runs)")
            for m in movers:
                lines.append(
                    f"    {m.kind:<10} {m.label:<36} "
                    f"{m.baseline_ms:>9.2f}ms -> {m.current_ms:>9.2f}ms "
                    f"({m.delta_ms:+.2f}ms)"
                )
        lines.append(
            "result: "
            + ("OK (no regressions)" if self.ok
               else f"REGRESSED ({len(self.regressions)} metrics)")
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Classification
# ---------------------------------------------------------------------------


def _classify(
    stats_base: Optional[Dict[str, Any]],
    stats_cur: Optional[Dict[str, Any]],
) -> Tuple[Optional[float], Optional[float], float, str, Dict[str, Any]]:
    """Returns ``(baseline, current, threshold, classification, spec)``
    where ``spec`` is the metric entry declaring unit/direction/tols
    (current run's declaration wins when both exist)."""
    spec = stats_cur or stats_base or {}
    if stats_base is None:
        return None, spec.get("median"), 0.0, "added", spec
    if stats_cur is None:
        return stats_base.get("median"), None, 0.0, "removed", spec
    base = float(stats_base["median"])
    cur = float(stats_cur["median"])
    tol = max(
        float(spec.get("abs_tol", 0.0)),
        float(spec.get("rel_tol", 0.0)) * abs(base),
        NOISE_K * (float(stats_base.get("mad", 0.0))
                   + float(stats_cur.get("mad", 0.0))),
    )
    delta = cur - base
    worse = delta if spec.get("direction", "lower") == "lower" else -delta
    if worse > tol:
        classification = "regressed"
    elif worse < -tol:
        classification = "improved"
    else:
        classification = "unchanged"
    return base, cur, tol, classification, spec


def attribute(
    base_scenario: Dict[str, Any],
    cur_scenario: Dict[str, Any],
    limit: int = 5,
) -> List[Mover]:
    """Top profile movers between two scenario entries, by absolute
    self-time delta (locks: wait-time delta)."""
    base_prof = base_scenario.get("profile") or {}
    cur_prof = cur_scenario.get("profile") or {}
    if not base_prof or not cur_prof:
        return []
    movers: List[Mover] = []

    def diff(section: str, kind: str, key_fn, label_fn, ms_field: str) -> None:
        base_rows = {key_fn(r): r for r in base_prof.get(section, [])}
        cur_rows = {key_fn(r): r for r in cur_prof.get(section, [])}
        for key in set(base_rows) | set(cur_rows):
            b = base_rows.get(key)
            c = cur_rows.get(key)
            base_ms = float(b[ms_field]) if b else 0.0
            cur_ms = float(c[ms_field]) if c else 0.0
            if base_ms == cur_ms:
                continue
            movers.append(
                Mover(kind=kind, label=label_fn(c or b),
                      baseline_ms=base_ms, current_ms=cur_ms)
            )

    diff("nodes", "node",
         lambda r: ("node", r.get("node_id"), r.get("production")),
         lambda r: f"#{r.get('node_id')} {r.get('kind', '?')} "
                   f"{r.get('production', '?')}",
         "self_ms")
    diff("productions", "production",
         lambda r: ("prod", r.get("production")),
         lambda r: str(r.get("production")),
         "self_ms")
    diff("locks", "lock",
         lambda r: ("lock", r.get("label")),
         lambda r: str(r.get("label")),
         "wait_ms")
    movers.sort(key=lambda m: abs(m.delta_ms), reverse=True)
    return movers[:limit]


def compare_docs(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    stable_only: bool = False,
    movers_limit: int = 5,
) -> CompareResult:
    """Compare two validated BENCH documents."""
    for label, doc in (("baseline", baseline), ("current", current)):
        problems = validate_bench_doc(doc)
        if problems:
            raise ValueError(f"{label} artifact invalid: {problems[0]}")
    result = CompareResult(
        baseline_runid=baseline["runid"], current_runid=current["runid"]
    )
    base_scenarios = baseline.get("scenarios", {})
    cur_scenarios = current.get("scenarios", {})
    for sid in sorted(set(base_scenarios) | set(cur_scenarios)):
        base_metrics = base_scenarios.get(sid, {}).get("metrics", {})
        cur_metrics = cur_scenarios.get(sid, {}).get("metrics", {})
        scenario_regressed = False
        for name in sorted(set(base_metrics) | set(cur_metrics)):
            stats_base = base_metrics.get(name)
            stats_cur = cur_metrics.get(name)
            spec_probe = stats_cur or stats_base or {}
            if stable_only and not spec_probe.get("stable", False):
                continue
            base, cur, tol, classification, spec = _classify(
                stats_base, stats_cur
            )
            result.deltas.append(
                MetricDelta(
                    scenario=sid,
                    metric=name,
                    unit=str(spec.get("unit", "")),
                    direction=str(spec.get("direction", "lower")),
                    stable=bool(spec.get("stable", False)),
                    baseline=base,
                    current=cur,
                    threshold=tol,
                    classification=classification,
                )
            )
            scenario_regressed = scenario_regressed or (
                classification == "regressed"
            )
        if scenario_regressed:
            result.movers[sid] = attribute(
                base_scenarios.get(sid, {}),
                cur_scenarios.get(sid, {}),
                limit=movers_limit,
            )
    return result


# ---------------------------------------------------------------------------
# Artifact resolution (CLI support)
# ---------------------------------------------------------------------------


def load_doc(path: str) -> Dict[str, Any]:
    """Read and schema-validate one artifact file."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise ValueError(f"cannot read {path}: {exc.strerror}") from None
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path} is not valid JSON: {exc}") from None
    problems = validate_bench_doc(doc)
    if problems:
        raise ValueError(f"{path} failed schema validation: {problems[0]}")
    return doc


def resolve_doc(out_dir: str, spec: str) -> Dict[str, Any]:
    """An artifact named by path, runid, ``latest``, or ``prev``.

    ``latest``/``prev`` index the trajectory file (last and next-to-last
    entries); a bare runid is looked up as ``BENCH_<runid>.json`` in
    ``out_dir``.
    """
    if spec.endswith(".json") or os.path.sep in spec:
        return load_doc(spec)
    if spec in ("latest", "prev"):
        from .report import load_trajectory

        entries = load_trajectory(os.path.join(out_dir, "trajectory.jsonl"))
        need = 1 if spec == "latest" else 2
        if len(entries) < need:
            raise ValueError(
                f"trajectory has {len(entries)} run(s); "
                f"{spec!r} needs at least {need}"
            )
        entry = entries[-need]
        return load_doc(os.path.join(out_dir, entry["artifact"]))
    path = os.path.join(out_dir, f"BENCH_{spec}.json")
    if not os.path.exists(path):
        raise ValueError(
            f"no artifact for runid {spec!r} (looked for {path})"
        )
    return load_doc(path)
