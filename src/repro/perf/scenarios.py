"""The declarative scenario registry driving ``repro bench``.

Each :class:`Scenario` names one measured workload — a paper-table
contrast, a simulated parallel sweep, the threaded engine, or a
service-layer burst — and declares every metric it produces as a
:class:`MetricSpec`: the unit, which direction is *better*, and the
noise tolerances the compare engine applies (see docs/PERF.md).

Two metric families, deliberately separated:

* ``stable=True`` metrics are deterministic functions of the tree —
  simulated Multimax instruction counts, speed-ups, spin counts,
  activation totals.  They carry near-zero tolerances and are the
  cross-machine regression gate (CI compares them against a committed
  seed artifact).
* wall-clock metrics (seconds, txn/s, latency) are host-dependent and
  noisy; they carry generous relative tolerances plus the MAD-based
  noise band, and are only compared between runs on comparable hosts.

The ``smoke`` suite is sized to finish in a few seconds (small weaver
grid, a 3-session service burst); ``full`` adds the paper-table
workloads at the ``repro.harness`` bench sizes.
"""

from __future__ import annotations

import asyncio
import os
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, Optional, Tuple

#: Suite names scenarios may claim membership of.
SUITES = ("smoke", "full")

#: Default tolerance for deterministic (simulator-derived) metrics:
#: wide enough to absorb float formatting, far below any real change.
STABLE_REL_TOL = 1e-3


@dataclass(frozen=True)
class MetricSpec:
    """Declaration of one metric a scenario emits."""

    name: str
    unit: str
    direction: str  # "lower" | "higher" is better
    rel_tol: float
    abs_tol: float = 0.0
    stable: bool = False
    headline: bool = False

    def __post_init__(self) -> None:
        if self.direction not in ("lower", "higher"):
            raise ValueError(f"bad direction {self.direction!r} for {self.name}")
        if self.rel_tol < 0 or self.abs_tol < 0:
            raise ValueError(f"negative tolerance for {self.name}")


@dataclass
class RepResult:
    """What one repetition of a scenario produced."""

    metrics: Dict[str, float]
    #: Compiled network of the run, for node→production attribution in
    #: the captured hot-spot profile (None when not applicable).
    network: object = None


@dataclass(frozen=True)
class Scenario:
    """One registered workload: measurement callable plus metric specs."""

    scenario_id: str
    title: str
    suites: Tuple[str, ...]
    specs: Tuple[MetricSpec, ...]
    run: Callable[[], RepResult] = field(repr=False, default=None)
    #: Capture an obs hot-spot profile in a dedicated extra repetition.
    profiled: bool = True
    #: Fixed repetition count overriding the runner's ``--repeat``
    #: (None = use the runner's).  Stable-only scenarios always run once.
    repeat: Optional[int] = None
    #: Host check run before any repetition: returns ``None`` to
    #: proceed or a human-readable reason string, in which case the
    #: runner records ``{"skipped": reason, "metrics": {}}`` instead of
    #: measuring (e.g. the mp speedup curve on a <4-core host).  The
    #: compare engine treats a skipped side's metrics as added/removed,
    #: which never gates.
    precondition: Optional[Callable[[], Optional[str]]] = field(
        repr=False, default=None
    )

    @property
    def stable_only(self) -> bool:
        return all(spec.stable for spec in self.specs)

    def spec(self, name: str) -> Optional[MetricSpec]:
        for spec in self.specs:
            if spec.name == name:
                return spec
        return None


# ---------------------------------------------------------------------------
# Workload helpers
# ---------------------------------------------------------------------------

#: Smoke-suite weaver sizing: ~0.1 s of match per run — large enough to
#: time, small enough that warm-up + repetitions stay interactive.
_SMOKE_WEAVER = dict(grid=5, n_nets=1)


def _smoke_source() -> str:
    from ..programs import weaver

    return weaver.source(**_SMOKE_WEAVER)


def _run_match(source: str, memory: str):
    """One sequential run; returns ``(match_seconds, stats, network)``."""
    from ..ops5.interpreter import Interpreter

    interp = Interpreter(source, memory=memory)
    interp.run(max_cycles=50000)
    return interp.matcher.match_seconds, interp.stats, interp.network


def _match_weaver() -> RepResult:
    source = _smoke_source()
    hash_s, stats, network = _run_match(source, "hash")
    linear_s, _stats, _net = _run_match(source, "linear")
    return RepResult(
        metrics={
            "match_hash_s": hash_s,
            "match_linear_s": linear_s,
            "linear_hash_ratio": linear_s / hash_s if hash_s else 0.0,
            "activations": float(stats.node_activations),
            "wm_changes": float(stats.wme_changes),
        },
        network=network,
    )


def _sim_weaver() -> RepResult:
    from ..ops5.interpreter import Interpreter
    from ..rete.trace import TraceRecorder
    from ..simulator.engine import simulate

    recorder = TraceRecorder()
    interp = Interpreter(_smoke_source(), recorder=recorder)
    interp.run(max_cycles=50000)
    trace = recorder.trace

    def base(scheme: str):
        return simulate(trace, n_match=1, n_queues=1, lock_scheme=scheme,
                        pipelined=False)

    simple_base = base("simple")
    mrsw_base = base("mrsw")
    s_3_1 = simulate(trace, n_match=3, n_queues=1, lock_scheme="simple")
    s_7_8 = simulate(trace, n_match=7, n_queues=8, lock_scheme="simple")
    m_7_8 = simulate(trace, n_match=7, n_queues=8, lock_scheme="mrsw")
    s_7_1 = simulate(trace, n_match=7, n_queues=1, lock_scheme="simple")
    return RepResult(
        metrics={
            "uniproc_minstr": simple_base.match_instr / 1e6,
            "speedup_1p3_1q": simple_base.match_instr / s_3_1.match_instr,
            "speedup_1p7_8q": simple_base.match_instr / s_7_8.match_instr,
            "speedup_mrsw_1p7_8q": mrsw_base.match_instr / m_7_8.match_instr,
            "queue_spins_1p7_1q": s_7_1.queue_stats.mean_spins,
            "line_spins_1p7_8q": s_7_8.line_left.mean_spins,
        },
        network=interp.network,
    )


def _parallel_weaver() -> RepResult:
    from ..ops5.interpreter import Interpreter
    from ..ops5.parser import parse_program
    from ..parallel.engine import ParallelMatcher
    from ..rete.network import ReteNetwork

    program = parse_program(_smoke_source())
    network = ReteNetwork.compile(program)
    matcher = ParallelMatcher(network, n_workers=2, n_queues=2,
                              lock_scheme="simple")
    interp = Interpreter(program, matcher=matcher, network=network)
    started = perf_counter()
    try:
        interp.run(max_cycles=50000)
    finally:
        interp.close()
    return RepResult(
        metrics={"wall_s": perf_counter() - started},
        network=network,
    )


#: Worker counts of the mp speedup curve — the 1/2/4/8 ladder the
#: paper's speedup tables climb (its 16-CPU Multimax going up in
#: doublings); 1 worker is the self-baseline the ratios divide by.
_MP_WORKER_LADDER = (1, 2, 4, 8)

#: Cores needed before the curve means anything: with fewer than 4 the
#: 4- and 8-worker points just measure oversubscription.
_MP_MIN_CPUS = 4


def _mp_precondition() -> Optional[str]:
    from ..engines import mp_supported

    if not mp_supported():
        return "mp engine unavailable (no 'fork' start method)"
    cpus = os.cpu_count() or 1
    if cpus < _MP_MIN_CPUS:
        return f"host has {cpus} CPU(s); speedup curve needs >= {_MP_MIN_CPUS}"
    return None


def _mp_speedup(source: str) -> RepResult:
    """Match seconds at each rung of the worker ladder, plus ratios.

    Times ``ProcessMatcher.match_seconds`` (dispatch to merge), the
    multiprocess analogue of the quantity the paper's speedup tables
    report — conflict resolution and RHS evaluation stay sequential in
    the control process and are excluded, exactly as in the paper.
    """
    from ..ops5.interpreter import Interpreter
    from ..ops5.parser import parse_program
    from ..parallel.mp import ProcessMatcher
    from ..rete.network import ReteNetwork

    program = parse_program(source)
    network = ReteNetwork.compile(program)
    walls: Dict[int, float] = {}
    for n_workers in _MP_WORKER_LADDER:
        matcher = ProcessMatcher(network, n_workers=n_workers)
        interp = Interpreter(program, matcher=matcher, network=network)
        try:
            interp.run(max_cycles=50000)
        finally:
            interp.close()
        walls[n_workers] = matcher.match_seconds
    base = walls[1] or 1e-9
    metrics = {f"wall_{n}w_s": walls[n] for n in _MP_WORKER_LADDER}
    for n in _MP_WORKER_LADDER[1:]:
        metrics[f"speedup_{n}w"] = base / walls[n] if walls[n] else 0.0
    return RepResult(metrics=metrics, network=network)


def _mp_weaver() -> RepResult:
    return _mp_speedup(_smoke_source())


def _mp_tourney() -> RepResult:
    from ..programs import tourney

    return _mp_speedup(tourney.source(n_teams=8, n_rounds=12))


def _fabric_mp() -> RepResult:
    """Trace-fabric cost and health: a 2-worker mp run with the obs
    bus ON, worker spans shipped over the pipes and stitched into one
    multi-process Chrome trace, an (untrippable) stall watchdog riding
    along.  The fabric counters — ship batches, shipped spans, stitch
    orphans, trace schema problems, watchdog trips — are deterministic
    functions of the run and feed the stable gate; the wall clock is
    the human-readable cost headline.  Manages the bus itself, so it
    must not share a process-wide bus epoch with the profiler
    (``profiled=False``).
    """
    from ..obs import events as _events
    from ..obs.export import validate_chrome_trace
    from ..ops5.interpreter import Interpreter
    from ..ops5.parser import parse_program
    from ..parallel.mp import ProcessMatcher
    from ..rete.network import ReteNetwork

    program = parse_program(_smoke_source())
    network = ReteNetwork.compile(program)
    _events.reset()
    _events.enable()
    started = perf_counter()
    try:
        matcher = ProcessMatcher(network, n_workers=2, watchdog_s=600.0)
        interp = Interpreter(program, matcher=matcher, network=network)
        try:
            interp.run(max_cycles=50000)
            doc, orphans = matcher.obs_stitched_trace()
            trips = matcher.watchdog.trips if matcher.watchdog else 0
            ship_batches = float(matcher.fabric.ship_batches)
            shipped_spans = float(matcher.fabric.shipped_spans)
        finally:
            interp.close()
    finally:
        _events.disable()
        _events.reset()
    wall = perf_counter() - started
    return RepResult(
        metrics={
            "wall_s": wall,
            "ship_batches": ship_batches,
            "shipped_spans": shipped_spans,
            "stitch_orphans": float(orphans),
            "trace_problems": float(len(validate_chrome_trace(doc))),
            "watchdog_trips": float(trips),
        },
        network=network,
    )


def _serve_loadgen() -> RepResult:
    from ..serve.loadgen import run_loadgen

    report = asyncio.run(
        run_loadgen(scenario="blocks", sessions=3, transactions=6, spawn=True)
    )
    wall = report.wall_seconds or 1e-9
    return RepResult(
        metrics={
            "txn_s": report.txns_ok / wall,
            "p95_ms": report.latency.get("p95_ms", 0.0),
            "errors": float(report.errors),
            "busy_retries": float(report.busy_retries),
        }
    )


#: Sizing for the corgi-adversarial contrast: large enough that eager
#: Rete pays a visibly super-linear bill (~10^4..10^5 derived tokens),
#: small enough for the smoke budget.
_ADV_CROSS = dict(n_items=110, n_churn=40)
_ADV_DEEP = dict(n_per_level=13, n_churn=6)

_ADV_CROSS_SOURCE = """
(p needle
  (stage ^step cross)
  (item ^id <x>)
  (item ^id { <y> > <x> })
  (probe ^a <x> ^b <y>)
  -->
  (halt))
"""

_ADV_DEEP_SOURCE = (
    "(p chain (c0 ^a 1) (c1 ^a 1) (c2 ^a 1) - (blocker) --> (halt))"
)


def _adv_cross_batches(n_items: int, n_churn: int):
    """Stage + N items against a forever-empty probe slot, then churn:
    delete/re-add one item per round.  Eager Rete rebuilds ~N pair
    tokens per round; an unlinked lazy engine does O(1)."""
    from ..ops5.wme import WMEChange, WorkingMemory

    wm = WorkingMemory()
    batches = [[WMEChange(1, wm.add("stage", {"step": "cross"}))]
               + [WMEChange(1, wm.add("item", {"id": i}))
                  for i in range(n_items)]]
    victim = None
    for round_no in range(n_churn):
        if victim is not None:
            wm.remove(victim)
        old = victim
        victim = wm.add("item", {"id": round_no % n_items})
        batch = [WMEChange(1, victim)]
        if old is not None:
            batch.insert(0, WMEChange(-1, old))
        batches.append(batch)
    return batches


def _adv_deep_batches(n_per_level: int, n_churn: int):
    """A same-value 3-chain behind a constant blocker: Rete derives
    ~N^3 prefixes that the not-node then discards; a gate-hoisting
    engine prunes at depth 0.  Churn re-adds a c0 each round."""
    from ..ops5.wme import WMEChange, WorkingMemory

    wm = WorkingMemory()
    first = [WMEChange(1, wm.add("blocker", {}))]
    for _ in range(n_per_level):
        for level in range(3):
            first.append(WMEChange(1, wm.add(f"c{level}", {"a": 1})))
    batches = [first]
    victim = None
    for _ in range(n_churn):
        batch = []
        if victim is not None:
            wm.remove(victim)
            batch.append(WMEChange(-1, victim))
        victim = wm.add("c0", {"a": 1})
        batch.append(WMEChange(1, victim))
        batches.append(batch)
    return batches


def _serve_meter() -> RepResult:
    """Meter overhead gate: the identical service burst run twice —
    plain, then with per-session/per-tenant metering on and the
    sessions split across two tenants.  The headline is the wall-clock
    ratio (metering is O(1) counter bumps per unit of work, so the
    ratio should sit inside the noise band); the stable metrics pin
    down that the metered run actually metered — every transaction
    landed in a tenant account and the Prometheus exposition parses
    clean."""
    from ..obs import meter as _meter
    from ..obs.export import validate_prometheus
    from ..serve.loadgen import run_loadgen

    kwargs = dict(scenario="blocks", sessions=3, transactions=6, spawn=True)
    try:
        plain = asyncio.run(run_loadgen(**kwargs))
        metered = asyncio.run(run_loadgen(tenants=2, meter=True, **kwargs))
    finally:
        # The spawned server enables the module-global meter; leave the
        # process clean for whatever scenario runs next.
        _meter.disable()
    plain_wall = plain.wall_seconds or 1e-9
    metered_wall = metered.wall_seconds or 1e-9
    tenant_accounts = metered.meter.get("tenants", {})
    meter_txns = sum(
        a.get("counters", {}).get("txns", 0) for a in tenant_accounts.values()
    )
    prom_problems = len(validate_prometheus(metered.prometheus))
    return RepResult(
        metrics={
            "plain_wall_s": plain_wall,
            "metered_wall_s": metered_wall,
            "meter_overhead_x": metered_wall / plain_wall,
            "meter_txns": float(meter_txns),
            "meter_errors": float(
                plain.errors + metered.errors + prom_problems
            ),
        }
    )


def _corgi_adversarial() -> RepResult:
    """Headline contrast: sequential (eager) Rete vs the corgi lazy
    engine on adversarial cross-product / blocked-chain loads, driven
    at the matcher layer so both engines see identical WMEChange
    batches.  Token counts are deterministic and feed the stable gate;
    the wall seconds and speedups are the human-readable headline."""
    from ..corgi.engine import CorgiMatcher
    from ..ops5.parser import parse_program
    from ..rete.matcher import SequentialMatcher
    from ..rete.network import ReteNetwork

    cases = (
        ("cross", _ADV_CROSS_SOURCE, _adv_cross_batches(**_ADV_CROSS)),
        ("deep", _ADV_DEEP_SOURCE, _adv_deep_batches(**_ADV_DEEP)),
    )
    metrics: Dict[str, float] = {}
    network = None
    for name, source, batches in cases:
        program = parse_program(source)
        for eng, factory in (("rete", SequentialMatcher),
                             ("corgi", CorgiMatcher)):
            net = ReteNetwork.compile(program)
            matcher = factory(net)
            started = perf_counter()
            for batch in batches:
                matcher.process_changes(batch)
            metrics[f"{name}_{eng}_s"] = perf_counter() - started
            metrics[f"{name}_{eng}_tokens"] = float(
                matcher.stats.tokens_emitted)
            if name == "cross" and eng == "rete":
                network = net
        metrics[f"{name}_speedup"] = (
            metrics[f"{name}_rete_s"]
            / max(metrics[f"{name}_corgi_s"], 1e-9)
        )
    return RepResult(metrics=metrics, network=network)


# -- full-suite workloads (paper bench sizes; minutes, not seconds) ---------


def _full_uniproc() -> RepResult:
    """Table 4-1/4-4 contrast at bench sizes, measured fresh (no memo)."""
    from ..harness.workloads import program_source

    metrics: Dict[str, float] = {}
    network = None
    for prog in ("weaver", "rubik", "tourney"):
        source = program_source(prog)
        vs2_s, _stats, network = _run_match(source, "hash")
        vs1_s, _stats, _net = _run_match(source, "linear")
        metrics[f"{prog}_vs1_s"] = vs1_s
        metrics[f"{prog}_vs2_s"] = vs2_s
        metrics[f"{prog}_vs1_vs2"] = vs1_s / vs2_s if vs2_s else 0.0
    return RepResult(metrics=metrics, network=network)


def _full_sim_sweeps() -> RepResult:
    """Endpoint speed-ups/spins of Tables 4-5..4-9 at bench sizes."""
    from ..harness.workloads import sim, speedup

    metrics: Dict[str, float] = {}
    for prog in ("weaver", "rubik", "tourney"):
        metrics[f"{prog}_speedup_1p13_1q"] = speedup(
            prog, n_match=13, n_queues=1, lock_scheme="simple")
        metrics[f"{prog}_speedup_1p13_8q"] = speedup(
            prog, n_match=13, n_queues=8, lock_scheme="simple")
        metrics[f"{prog}_speedup_mrsw_1p13_8q"] = speedup(
            prog, n_match=13, n_queues=8, lock_scheme="mrsw")
        metrics[f"{prog}_queue_spins_1p13_1q"] = sim(
            prog, n_match=13, n_queues=1,
            lock_scheme="simple").queue_stats.mean_spins
    return RepResult(metrics=metrics)


def _policy_metric_key(policy: str) -> str:
    return policy.replace("-", "_")


def _policy_sim_sweep(source: str) -> RepResult:
    """Simulated Multimax speedups under every dispatch policy.

    One trace, one simulator configuration (7 match procs, 8 queues),
    five dispatch policies — the axis Table 4-6 varies by hand
    (queue count) generalised to the policy registry.  Everything is
    deterministic (instruction counts, steal and rebalance totals), so
    the whole matrix feeds the cross-machine stable gate."""
    from ..ops5.interpreter import Interpreter
    from ..parallel.policy import POLICY_NAMES
    from ..rete.trace import TraceRecorder
    from ..simulator.engine import simulate

    recorder = TraceRecorder()
    interp = Interpreter(source, recorder=recorder)
    interp.run(max_cycles=50000)
    trace = recorder.trace

    base = simulate(trace, n_match=1, n_queues=1, lock_scheme="simple",
                    pipelined=False)
    metrics: Dict[str, float] = {}
    for policy in POLICY_NAMES:
        run = simulate(trace, n_match=7, n_queues=8, lock_scheme="simple",
                       policy=policy)
        key = _policy_metric_key(policy)
        metrics[f"{key}_speedup_1p7_8q"] = base.match_instr / run.match_instr
        metrics[f"{key}_steals"] = float(run.steals)
        if policy == "rebalance":
            metrics["rebalance_spills"] = float(run.rebalances)
    return RepResult(metrics=metrics, network=interp.network)


def _policy_sweep_weaver() -> RepResult:
    return _policy_sim_sweep(_smoke_source())


def _policy_sweep_tourney() -> RepResult:
    from ..programs import tourney

    return _policy_sim_sweep(tourney.source(n_teams=8, n_rounds=12))


#: Threaded wall matrix needs real concurrency to say anything.
_POLICY_WALL_MIN_CPUS = 2


def _policy_wall_precondition() -> Optional[str]:
    cpus = os.cpu_count() or 1
    if cpus < _POLICY_WALL_MIN_CPUS:
        return (f"host has {cpus} CPU(s); threaded policy walls need "
                f">= {_POLICY_WALL_MIN_CPUS}")
    return None


def _policy_wall_threaded() -> RepResult:
    """Wall seconds of the threaded engine under each dispatch policy,
    each at its conformance-safe queue count (SAFE_QUEUE_MATRIX)."""
    from ..ops5.interpreter import Interpreter
    from ..parallel.policy import POLICY_NAMES, safe_queues

    source = _smoke_source()
    metrics: Dict[str, float] = {}
    network = None
    for policy in POLICY_NAMES:
        interp = Interpreter(
            source, engine="threaded",
            engine_opts={"n_workers": 2, "n_queues": safe_queues(policy),
                         "policy": policy},
        )
        started = perf_counter()
        try:
            interp.run(max_cycles=50000)
        finally:
            interp.close()
        metrics[f"{_policy_metric_key(policy)}_wall_s"] = (
            perf_counter() - started)
        network = interp.network
    return RepResult(metrics=metrics, network=network)


def _full_serve_throughput() -> RepResult:
    from ..serve.loadgen import run_loadgen

    metrics: Dict[str, float] = {}
    for scenario, sessions in (("blocks", 4), ("tourney", 12)):
        report = asyncio.run(
            run_loadgen(scenario=scenario, sessions=sessions,
                        transactions=15, spawn=True)
        )
        wall = report.wall_seconds or 1e-9
        metrics[f"{scenario}_x{sessions}_txn_s"] = report.txns_ok / wall
        metrics[f"{scenario}_x{sessions}_p95_ms"] = report.latency.get(
            "p95_ms", 0.0)
        metrics[f"{scenario}_x{sessions}_errors"] = float(report.errors)
    return RepResult(metrics=metrics)


# ---------------------------------------------------------------------------
# The registry
# ---------------------------------------------------------------------------


def _wall(name: str, unit: str = "s", direction: str = "lower",
          rel_tol: float = 0.6, headline: bool = False) -> MetricSpec:
    return MetricSpec(name, unit, direction, rel_tol, headline=headline)


def _stable(name: str, unit: str, direction: str,
            headline: bool = False) -> MetricSpec:
    return MetricSpec(name, unit, direction, STABLE_REL_TOL,
                      stable=True, headline=headline)


SCENARIOS: Dict[str, Scenario] = {}


def _register(scenario: Scenario) -> Scenario:
    if scenario.scenario_id in SCENARIOS:
        raise ValueError(f"duplicate scenario {scenario.scenario_id!r}")
    names = [s.name for s in scenario.specs]
    if len(names) != len(set(names)):
        raise ValueError(f"duplicate metric in {scenario.scenario_id!r}")
    unknown = set(scenario.suites) - set(SUITES)
    if unknown:
        raise ValueError(f"unknown suites {unknown} in {scenario.scenario_id!r}")
    SCENARIOS[scenario.scenario_id] = scenario
    return scenario


_register(Scenario(
    scenario_id="match-weaver",
    title="Sequential match, weaver 5x5 grid: hash vs linear memories",
    suites=("smoke", "full"),
    specs=(
        _wall("match_hash_s", headline=True),
        _wall("match_linear_s"),
        MetricSpec("linear_hash_ratio", "x", "higher", 0.6),
        _stable("activations", "count", "lower"),
        _stable("wm_changes", "count", "lower"),
    ),
    run=_match_weaver,
))

_register(Scenario(
    scenario_id="sim-weaver",
    title="Simulated Multimax sweep, weaver 5x5: k procs x queues x locks",
    suites=("smoke", "full"),
    specs=(
        _stable("uniproc_minstr", "Minstr", "lower"),
        _stable("speedup_1p3_1q", "x", "higher"),
        _stable("speedup_1p7_8q", "x", "higher", headline=True),
        _stable("speedup_mrsw_1p7_8q", "x", "higher"),
        _stable("queue_spins_1p7_1q", "spins", "lower"),
        _stable("line_spins_1p7_8q", "spins", "lower"),
    ),
    run=_sim_weaver,
))

_register(Scenario(
    scenario_id="parallel-weaver",
    title="Threaded parallel engine, weaver 5x5, 2 workers / 2 queues",
    suites=("smoke", "full"),
    specs=(
        MetricSpec("wall_s", "s", "lower", 0.75, headline=True),
    ),
    run=_parallel_weaver,
))

def _mp_specs() -> Tuple[MetricSpec, ...]:
    """The speedup-curve metric block, shared by both mp scenarios.

    Everything lives in the wall-clock family (host-dependent by
    definition — the curve's whole point is how many CPUs the host
    gives us), so none of it feeds the cross-machine stable gate.
    """
    specs = [_wall(f"wall_{n}w_s") for n in _MP_WORKER_LADDER]
    for n in _MP_WORKER_LADDER[1:]:
        specs.append(MetricSpec(f"speedup_{n}w", "x", "higher", 0.5,
                                headline=(n == 4)))
    return tuple(specs)


_register(Scenario(
    scenario_id="mp-speedup-weaver",
    title="Multiprocess match speedup curve, weaver 5x5, 1/2/4/8 workers",
    suites=("smoke", "full"),
    specs=_mp_specs(),
    run=_mp_weaver,
    profiled=False,
    repeat=1,
    precondition=_mp_precondition,
))

_register(Scenario(
    scenario_id="mp-speedup-tourney",
    title="Multiprocess match speedup curve, tourney 8x12, 1/2/4/8 workers",
    suites=("full",),
    specs=_mp_specs(),
    run=_mp_tourney,
    profiled=False,
    repeat=1,
    precondition=_mp_precondition,
))

_register(Scenario(
    scenario_id="fabric-mp",
    title="Trace fabric: 2-worker mp run, bus on, stitched Chrome trace",
    suites=("smoke", "full"),
    specs=(
        _wall("wall_s", headline=True),
        _stable("ship_batches", "count", "lower"),
        _stable("shipped_spans", "count", "lower"),
        _stable("stitch_orphans", "count", "lower"),
        _stable("trace_problems", "count", "lower"),
        _stable("watchdog_trips", "count", "lower"),
    ),
    run=_fabric_mp,
    profiled=False,
    repeat=1,
    precondition=_mp_precondition,
))

_register(Scenario(
    scenario_id="serve-loadgen",
    title="Service layer: 3 sessions x 6 transactions, blocks scenario",
    suites=("smoke", "full"),
    specs=(
        MetricSpec("txn_s", "txn/s", "higher", 0.6, headline=True),
        MetricSpec("p95_ms", "ms", "lower", 1.5),
        MetricSpec("errors", "count", "lower", 0.0, stable=True),
        MetricSpec("busy_retries", "count", "lower", 0.0, abs_tol=20.0),
    ),
    run=_serve_loadgen,
    profiled=False,
))

_register(Scenario(
    scenario_id="serve-meter",
    title="Meter overhead: plain vs metered 2-tenant service burst",
    suites=("smoke", "full"),
    specs=(
        _wall("plain_wall_s"),
        _wall("metered_wall_s"),
        MetricSpec("meter_overhead_x", "x", "lower", 0.6, headline=True),
        _stable("meter_txns", "count", "higher"),
        _stable("meter_errors", "count", "lower"),
    ),
    run=_serve_meter,
    profiled=False,
))

_register(Scenario(
    scenario_id="corgi-adversarial",
    title="Lazy corgi vs eager Rete on cross-product / blocked-chain loads",
    suites=("smoke", "full"),
    specs=tuple(
        spec
        for case in ("cross", "deep")
        for spec in (
            _wall(f"{case}_rete_s"),
            _wall(f"{case}_corgi_s"),
            MetricSpec(f"{case}_speedup", "x", "higher", 0.6,
                       headline=(case == "cross")),
            _stable(f"{case}_rete_tokens", "count", "lower"),
            _stable(f"{case}_corgi_tokens", "count", "lower"),
        )
    ),
    run=_corgi_adversarial,
    profiled=False,
))

_register(Scenario(
    scenario_id="tables-uniproc",
    title="Tables 4-1/4-4 contrast at harness bench sizes",
    suites=("full",),
    specs=tuple(
        spec
        for prog in ("weaver", "rubik", "tourney")
        for spec in (
            _wall(f"{prog}_vs1_s", rel_tol=0.5),
            _wall(f"{prog}_vs2_s", rel_tol=0.5,
                  headline=(prog == "tourney")),
            MetricSpec(f"{prog}_vs1_vs2", "x", "higher", 0.5),
        )
    ),
    run=_full_uniproc,
    repeat=1,
))

_register(Scenario(
    scenario_id="sim-sweeps",
    title="Tables 4-5..4-9 endpoints at harness bench sizes",
    suites=("full",),
    specs=tuple(
        spec
        for prog in ("weaver", "rubik", "tourney")
        for spec in (
            _stable(f"{prog}_speedup_1p13_1q", "x", "higher"),
            _stable(f"{prog}_speedup_1p13_8q", "x", "higher",
                    headline=(prog == "rubik")),
            _stable(f"{prog}_speedup_mrsw_1p13_8q", "x", "higher"),
            _stable(f"{prog}_queue_spins_1p13_1q", "spins", "lower"),
        )
    ),
    run=_full_sim_sweeps,
    profiled=False,
))

def _policy_sweep_specs() -> Tuple[MetricSpec, ...]:
    """Stable per-policy metric block shared by both policy sweeps."""
    from ..parallel.policy import POLICY_NAMES

    specs = []
    for policy in POLICY_NAMES:
        key = _policy_metric_key(policy)
        specs.append(_stable(f"{key}_speedup_1p7_8q", "x", "higher",
                             headline=(policy == "rebalance")))
        specs.append(_stable(f"{key}_steals", "count", "lower"))
    specs.append(_stable("rebalance_spills", "count", "lower"))
    return tuple(specs)


_register(Scenario(
    scenario_id="policy-sweep",
    title="Dispatch-policy matrix, simulated Multimax, weaver 5x5, 7p/8q",
    suites=("smoke", "full"),
    specs=_policy_sweep_specs(),
    run=_policy_sweep_weaver,
    profiled=False,
))

_register(Scenario(
    scenario_id="policy-sweep-tourney",
    title="Dispatch-policy matrix, simulated Multimax, tourney 8x12, 7p/8q",
    suites=("full",),
    specs=_policy_sweep_specs(),
    run=_policy_sweep_tourney,
    profiled=False,
))

_register(Scenario(
    scenario_id="policy-wall-threaded",
    title="Threaded walls per dispatch policy at safe queue counts, weaver 5x5",
    suites=("full",),
    specs=tuple(
        _wall(f"{_policy_metric_key(p)}_wall_s",
              headline=(p == "round-robin"))
        for p in ("round-robin", "affinity", "least-loaded",
                  "work-stealing", "rebalance")
    ),
    run=_policy_wall_threaded,
    profiled=False,
    repeat=1,
    precondition=_policy_wall_precondition,
))

_register(Scenario(
    scenario_id="serve-throughput",
    title="Service throughput at scale points (blocks x4, tourney x12)",
    suites=("full",),
    specs=tuple(
        spec
        for scenario, sessions in (("blocks", 4), ("tourney", 12))
        for spec in (
            MetricSpec(f"{scenario}_x{sessions}_txn_s", "txn/s", "higher", 0.6),
            MetricSpec(f"{scenario}_x{sessions}_p95_ms", "ms", "lower", 1.5),
            MetricSpec(f"{scenario}_x{sessions}_errors", "count", "lower",
                       0.0, stable=True),
        )
    ),
    run=_full_serve_throughput,
    profiled=False,
    repeat=1,
))


def select(suite: Optional[str] = None,
           scenario_ids: Optional[Tuple[str, ...]] = None) -> Dict[str, Scenario]:
    """Scenarios for one suite name (``"all"`` = everything) or an
    explicit id list; raises ``ValueError`` for unknown names."""
    if scenario_ids:
        unknown = [sid for sid in scenario_ids if sid not in SCENARIOS]
        if unknown:
            raise ValueError(
                f"unknown scenarios {unknown}; available: {sorted(SCENARIOS)}"
            )
        return {sid: SCENARIOS[sid] for sid in scenario_ids}
    if suite == "all":
        return dict(SCENARIOS)
    if suite not in SUITES:
        raise ValueError(
            f"unknown suite {suite!r}; expected one of {SUITES + ('all',)}"
        )
    return {
        sid: sc for sid, sc in SCENARIOS.items() if suite in sc.suites
    }
