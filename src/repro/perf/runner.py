"""Executes scenario suites and emits BENCH artifacts.

One :func:`run_suite` call is one observatory *run*: every selected
scenario is warmed up, repeated N times with the obs bus **off** (so
wall metrics are clean), then — for profiled scenarios — run once more
with the bus **on** to capture the hot-spot profile the compare engine
uses for regression attribution.  Samples are reduced to median/MAD
(robust to a single noisy repetition), and the whole run is written
atomically as ``BENCH_<runid>.json`` plus one appended line in
``trajectory.jsonl`` (see docs/PERF.md).

Stable-only scenarios (simulated instruction counts and other
deterministic metrics) run a single repetition regardless of
``repeat`` — re-measuring a deterministic quantity buys nothing.
"""

from __future__ import annotations

import json
import os
import platform
import re
import secrets
import time
from typing import Any, Dict, List, Optional, Tuple

from ..obs import events as obs_events
from ..obs import profile as obs_profile
from .scenarios import SCENARIOS, Scenario, select
from .schema import SCHEMA_ID

#: Profile rows kept per section in the artifact (hottest first).
PROFILE_ROWS = 12

_RUNID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def make_runid() -> str:
    """Sortable timestamp plus a short random suffix."""
    return time.strftime("%Y%m%d-%H%M%S") + "-" + secrets.token_hex(2)


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _mad(values: List[float], center: float) -> float:
    return _median([abs(v - center) for v in values])


def _atomic_write_json(path: str, doc: Any) -> None:
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)


def _profile_doc(profile) -> Dict[str, Any]:
    """Truncated, JSON-ready hot-spot tables for the artifact."""
    full = obs_profile.to_json(profile)
    return {
        "nodes": full["nodes"][:PROFILE_ROWS],
        "locks": full["locks"][:PROFILE_ROWS],
        "productions": full["productions"][:PROFILE_ROWS],
        "total_activations": full["total_activations"],
        "dropped": full["dropped"],
    }


def _obs_counters(profile) -> Dict[str, float]:
    """Bus-derived scalars worth trending alongside the metrics."""
    counters: Dict[str, float] = {
        f"obs.{name}": float(n) for name, n in sorted(profile.counters.items())
    }
    acquires = sum(row.acquires for row in profile.locks)
    contended = sum(row.contended for row in profile.locks)
    if acquires:
        counters["lock_acquires"] = float(acquires)
        counters["lock_contention_ratio"] = contended / acquires
    counters["dropped_events"] = float(profile.dropped)
    return counters


def _run_scenario(
    scenario: Scenario, repeat: int, warmup: int
) -> Dict[str, Any]:
    """All repetitions of one scenario, reduced to its artifact entry."""
    if scenario.precondition is not None:
        reason = scenario.precondition()
        if reason is not None:
            # Skipped-with-reason: the entry records *why* instead of
            # pretending a measurement happened; compare treats the
            # missing metrics as added/removed, which never gates.
            return {
                "title": scenario.title,
                "repeat": 0,
                "warmup": 0,
                "skipped": reason,
                "metrics": {},
                "counters": {},
                "profile": None,
            }

    effective_repeat = 1 if scenario.stable_only else (scenario.repeat or repeat)
    effective_warmup = 0 if scenario.stable_only else warmup

    for _ in range(effective_warmup):
        scenario.run()

    samples: Dict[str, List[float]] = {}
    for _ in range(effective_repeat):
        rep = scenario.run()
        produced = set(rep.metrics)
        declared = {spec.name for spec in scenario.specs}
        if produced != declared:
            raise ValueError(
                f"scenario {scenario.scenario_id!r} produced metrics "
                f"{sorted(produced)} but declares {sorted(declared)}"
            )
        for name, value in rep.metrics.items():
            samples.setdefault(name, []).append(float(value))

    entry: Dict[str, Any] = {
        "title": scenario.title,
        "repeat": effective_repeat,
        "warmup": effective_warmup,
        "metrics": {},
        "counters": {},
        "profile": None,
    }
    for spec in scenario.specs:
        values = samples[spec.name]
        median = _median(values)
        entry["metrics"][spec.name] = {
            "samples": values,
            "median": median,
            "mad": _mad(values, median),
            "unit": spec.unit,
            "direction": spec.direction,
            "rel_tol": spec.rel_tol,
            "abs_tol": spec.abs_tol,
            "stable": spec.stable,
            "headline": spec.headline,
        }

    if scenario.profiled:
        obs_events.reset()
        obs_events.enable()
        try:
            rep = scenario.run()
        finally:
            snap = obs_events.snapshot()
            obs_events.disable()
            obs_events.reset()
        profile = obs_profile.build(snap, network=rep.network)
        entry["profile"] = _profile_doc(profile)
        entry["counters"] = _obs_counters(profile)
    return entry


def run_suite(
    suite: str = "smoke",
    scenario_ids: Optional[Tuple[str, ...]] = None,
    repeat: int = 5,
    warmup: int = 1,
    out_dir: str = "benchmarks",
    runid: Optional[str] = None,
    note: str = "",
    trajectory: bool = True,
    registry: Optional[Dict[str, Scenario]] = None,
) -> Tuple[Dict[str, Any], str]:
    """Run a suite; returns ``(document, artifact path)``.

    The artifact is written atomically; with ``trajectory=True`` a
    summary line is appended to ``<out_dir>/trajectory.jsonl``.
    """
    if repeat < 1 or warmup < 0:
        raise ValueError("repeat must be >= 1 and warmup >= 0")
    runid = runid or make_runid()
    if not _RUNID_RE.match(runid):
        raise ValueError(f"bad runid {runid!r}")
    if registry is None:
        registry = SCENARIOS
        selected = select(suite=suite, scenario_ids=scenario_ids)
    else:
        selected = registry

    doc: Dict[str, Any] = {
        "schema": SCHEMA_ID,
        "runid": runid,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "created_unix": time.time(),
        "suite": suite if not scenario_ids else "custom",
        "note": note,
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": os.cpu_count() or 1,
        },
        "scenarios": {},
    }
    for sid, scenario in selected.items():
        doc["scenarios"][sid] = _run_scenario(scenario, repeat, warmup)

    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{runid}.json")
    _atomic_write_json(path, doc)
    if trajectory:
        from .report import append_trajectory, trajectory_entry

        append_trajectory(
            os.path.join(out_dir, "trajectory.jsonl"),
            trajectory_entry(doc, artifact=os.path.basename(path)),
        )
    return doc, path
