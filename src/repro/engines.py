"""Engine registry: one place that knows how to build every matcher.

The interpreter, the CLI, the service layer, the perf scenarios, and
the conformance suite all pick match backends by name through this
module, so adding a fourth engine means adding one entry here (and one
fixture line in ``tests/conformance/``).

Engines:

``sequential``
    :class:`~repro.rete.matcher.SequentialMatcher` — the paper's
    uniprocessor engine.  Options: ``memory``, ``n_lines``,
    ``recorder``.

``threaded``
    :class:`~repro.parallel.engine.ParallelMatcher` — thread-per-worker
    with per-line locks.  Demonstrates the paper's synchronization
    design under real interleavings but no speedup under the GIL.
    Options: ``n_workers``, ``n_queues``, ``lock_scheme``, ``n_lines``,
    ``policy`` (task dispatch, :data:`repro.parallel.policy.POLICY_NAMES`),
    ``watchdog_s``/``watchdog_dump`` (stall watchdog).

``mp``
    :class:`~repro.parallel.mp.engine.ProcessMatcher` —
    process-per-worker with shard-routed lines; the backend that can
    actually use multiple CPUs.  Options: ``n_workers``, ``n_lines``,
    ``policy`` (shard placement), ``watchdog_s``/``watchdog_dump``
    (stall watchdog).
    Requires the ``fork`` start method (see :func:`mp_supported`).

``corgi``
    :class:`~repro.corgi.engine.CorgiMatcher` — bounded-cost matching
    without beta memories: left/right unlinking, lazy (demand-driven)
    join evaluation and hoisted negation gates keep adversarial
    cross-product programs polynomial where Rete goes super-linear.
    Takes no options (it is sequential and memory-less by design).
"""

from __future__ import annotations

from typing import Optional, Tuple

from .rete.network import ReteNetwork

#: Every engine name accepted by ``make_matcher`` / ``--engine`` /
#: the serve ``open`` request, in documentation order.
ENGINE_NAMES: Tuple[str, ...] = ("sequential", "threaded", "mp", "corgi")


def mp_supported() -> bool:
    """Whether the ``mp`` engine can run on this platform."""
    from .parallel.mp import mp_supported as _supported

    return _supported()


def make_matcher(
    engine: str,
    network: ReteNetwork,
    *,
    memory: str = "hash",
    n_lines: int = 1024,
    n_workers: int = 2,
    n_queues: Optional[int] = None,
    lock_scheme: str = "simple",
    policy: Optional[str] = None,
    recorder=None,
    watchdog_s: Optional[float] = None,
    watchdog_dump: Optional[str] = None,
):
    """Build the named match backend over a compiled ``network``.

    Unknown names raise ``ValueError`` listing the valid ones, so CLI
    and serve-layer validation can simply try and re-raise.  ``policy``
    (a :data:`repro.parallel.policy.POLICY_NAMES` name) only applies to
    the parallel engines — passing one to sequential/corgi is an error
    rather than a silent no-op.
    """
    if policy is not None and engine not in ("threaded", "mp"):
        raise ValueError(
            f"policy {policy!r} requires a parallel engine (threaded or mp), "
            f"not {engine!r}"
        )
    if engine == "sequential":
        from .rete.matcher import SequentialMatcher

        return SequentialMatcher(
            network, memory=memory, n_lines=n_lines, recorder=recorder
        )
    if engine == "threaded":
        from .parallel.engine import ParallelMatcher

        return ParallelMatcher(
            network,
            n_workers=n_workers,
            n_queues=n_queues if n_queues is not None else 1,
            lock_scheme=lock_scheme,
            n_lines=n_lines,
            policy=policy if policy is not None else "round-robin",
            watchdog_s=watchdog_s,
            watchdog_dump=watchdog_dump,
        )
    if engine == "mp":
        from .parallel.mp import ProcessMatcher

        return ProcessMatcher(
            network,
            n_workers=n_workers,
            n_lines=n_lines,
            policy=policy if policy is not None else "round-robin",
            watchdog_s=watchdog_s,
            watchdog_dump=watchdog_dump,
        )
    if engine == "corgi":
        from .corgi.engine import CorgiMatcher

        return CorgiMatcher(network)
    raise ValueError(
        f"unknown engine {engine!r}; expected one of {', '.join(ENGINE_NAMES)}"
    )
