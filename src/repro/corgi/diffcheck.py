"""Differential fuzzing: corgi vs the sequential Rete oracle.

The corgi analogue of :mod:`repro.schedck.runner`, minus the scheduler
— corgi is sequential, so there are no interleavings to explore; what
needs fuzzing is the *match algebra*: demand-driven enumeration,
seeded dedup, hoisted negation gates and unlink/relink transitions
against programs the author never wrote.  :func:`run_seed` derives a
random program + WM workload from one seed via
:mod:`repro.schedck.progen`, drives the sequential matcher and
:class:`~repro.corgi.engine.CorgiMatcher` through identical batches in
lockstep, and checks after every batch:

* **conflict set** — the signed fold of both engines' CS deltas must
  be identical (this is the state firing traces are computed from, so
  equality here *is* trace equality for any downstream run);
* **unlink invariant** — every production is linked iff all its
  positive slot memories are non-empty, and unlinked productions hold
  no instantiations;
* **space bound** — corgi's resident tokens never exceed
  ``slots x live WMEs + instantiations`` (there are no beta memories
  to blow up).

Reports are byte-stable per seed and every sweep failure line carries
a paste-ready ``python -m repro corgick --seed N`` replay command,
mirroring the schedck sweep UX.

Seed profiles rotate through three corpora: ``shallow`` (the schedck
default), ``deep`` (4-level chains — the blow-up shape), and ``dense``
(a single value for every attribute: maximal bucket collisions and
cross products).
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..ops5.parser import parse_program
from ..ops5.wme import WMEChange
from ..rete.matcher import SequentialMatcher
from ..rete.network import ReteNetwork
from ..schedck import progen
from .engine import CorgiMatcher

#: Named generator corpora; ``rotate`` cycles through them by seed.
PROFILES: Dict[str, progen.ProgenParams] = {
    "shallow": progen.ProgenParams(),
    "deep": progen.ProgenParams(max_pos_ces=4, max_rules=3),
    "dense": progen.ProgenParams(n_values=1, max_pos_ces=3),
}
PROFILE_ROTATION: Tuple[str, ...] = ("shallow", "deep", "dense")


@dataclass
class Mismatch:
    """One divergence or invariant violation, at one batch index."""

    kind: str
    batch: int
    detail: str

    def format(self) -> str:
        return f"[{self.kind}] batch {self.batch}: {self.detail}"


@dataclass
class DiffReport:
    """Outcome of one seeded differential run; byte-stable per seed."""

    seed: int
    profile: str
    n_rules: int
    n_changes: int
    n_batches: int
    mismatches: List[Mismatch] = field(default_factory=list)
    stats: List[Tuple[str, object]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def format(self) -> str:
        lines = [
            f"corgick seed={self.seed} profile={self.profile}",
            f"program: {self.n_rules} rules, {self.n_changes} WM changes "
            f"in {self.n_batches} batches",
        ]
        for key, value in self.stats:
            lines.append(f"  {key} = {value}")
        if self.mismatches:
            lines.append(f"mismatches: {len(self.mismatches)}")
            lines.extend("  " + m.format() for m in self.mismatches)
        else:
            lines.append("mismatches: 0")
        return "\n".join(lines)


def _fold(cs: Counter, deltas) -> None:
    for delta in deltas:
        cs[(delta.production.name, delta.token.key)] += delta.sign


def profile_for(seed: int, profile: str = "rotate") -> str:
    if profile == "rotate":
        return PROFILE_ROTATION[seed % len(PROFILE_ROTATION)]
    return profile


def check_invariants(corgi: CorgiMatcher, batch: int, live_wmes: int) -> List[Mismatch]:
    """The corgi structural invariants, checkable at any quiescence."""
    out: List[Mismatch] = []
    for plan in corgi.plans:
        sizes = corgi.slot_sizes(plan.name)
        pos_nonempty = all(sizes[s.index] > 0 for s in plan.pos_slots)
        if corgi.linked(plan.name) != pos_nonempty:
            out.append(
                Mismatch(
                    "unlink_invariant",
                    batch,
                    f"{plan.name}: linked={corgi.linked(plan.name)} but "
                    f"positive slot sizes {sizes}",
                )
            )
        if not pos_nonempty and corgi._rules[plan.name].cs:
            out.append(
                Mismatch(
                    "ghost_instantiations",
                    batch,
                    f"{plan.name}: unlinked but holds "
                    f"{len(corgi._rules[plan.name].cs)} instantiations",
                )
            )
    n_slots = sum(len(p.slots) for p in corgi.plans)
    n_insts = sum(len(rs.cs) for rs in corgi._rules.values())
    bound = n_slots * live_wmes + n_insts
    resident = corgi.resident_tokens()
    if resident > bound:
        out.append(
            Mismatch(
                "space_bound",
                batch,
                f"resident tokens {resident} > slots*wmes+insts bound {bound}",
            )
        )
    return out


def run_seed(
    seed: int,
    profile: str = "rotate",
    program: Optional[str] = None,
    batches: Optional[List[List[WMEChange]]] = None,
) -> DiffReport:
    """One seeded differential run; engine divergence comes back as
    report mismatches, never as an exception."""
    prof = profile_for(seed, profile)
    rng = random.Random(seed)
    if program is None:
        program, generated = progen.generate(rng, PROFILES[prof])
        if batches is None:
            batches = generated
    elif batches is None:
        raise ValueError("a pinned program needs pinned batches")
    program_ast = parse_program(program)

    seq = SequentialMatcher(ReteNetwork.compile(program_ast))
    corgi = CorgiMatcher(ReteNetwork.compile(program_ast))
    seq_cs: Counter = Counter()
    corgi_cs: Counter = Counter()
    mismatches: List[Mismatch] = []
    live = 0

    for bi, batch in enumerate(batches):
        live += sum(change.sign for change in batch)
        _fold(seq_cs, seq.process_changes(batch))
        try:
            _fold(corgi_cs, corgi.process_changes(batch))
        except RuntimeError as exc:
            mismatches.append(Mismatch("engine_error", bi, str(exc)))
            break
        if +seq_cs != +corgi_cs:
            extra = sorted(set(+corgi_cs) - set(+seq_cs))
            missing = sorted(set(+seq_cs) - set(+corgi_cs))
            mismatches.append(
                Mismatch(
                    "conflict_set",
                    bi,
                    f"corgi extra={extra} missing={missing}",
                )
            )
            break
        mismatches.extend(check_invariants(corgi, bi, live))
        if mismatches:
            break

    stats = [
        ("tokens_emitted.seq", seq.stats.tokens_emitted),
        ("tokens_emitted.corgi", corgi.stats.tokens_emitted),
        ("node_activations.seq", seq.stats.node_activations),
        ("node_activations.corgi", corgi.stats.node_activations),
        ("corgi.unlinks", corgi.counters["unlinks"]),
        ("corgi.relinks", corgi.counters["relinks"]),
        ("corgi.lazy_skips", corgi.counters["lazy_skips"]),
        ("corgi.gate_prunes", corgi.counters["gate_prunes"]),
    ]
    return DiffReport(
        seed=seed,
        profile=prof,
        n_rules=len(program_ast.productions),
        n_changes=sum(len(b) for b in batches),
        n_batches=len(batches),
        mismatches=mismatches,
        stats=stats,
    )


@dataclass
class DiffSweepResult:
    """Aggregate of a corgi differential fuzz sweep."""

    n_seeds: int
    failures: List[DiffReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def format(self) -> str:
        """Every FAIL line is reproducible from its own replay line."""
        lines = [
            f"corgick sweep: {self.n_seeds} seeds, "
            f"{len(self.failures)} failing"
        ]
        for report in self.failures[:20]:
            first = report.mismatches[0]
            lines.append(
                f"  FAIL seed={report.seed} profile={report.profile} "
                f"— {first.format()}"
            )
            lines.append(
                f"    replay: python -m repro corgick"
                f" --seed {report.seed} --profile {report.profile}"
            )
        if len(self.failures) > 20:
            lines.append(f"  ... and {len(self.failures) - 20} more")
        return "\n".join(lines)


def sweep(
    n_seeds: int,
    base_seed: int = 0,
    profile: str = "rotate",
    on_report: Optional[Callable[[DiffReport], None]] = None,
) -> DiffSweepResult:
    """Run ``n_seeds`` consecutive seeds through :func:`run_seed`."""
    result = DiffSweepResult(n_seeds=n_seeds)
    for i in range(n_seeds):
        report = run_seed(base_seed + i, profile=profile)
        if on_report is not None:
            on_report(report)
        if not report.ok:
            result.failures.append(report)
    return result
