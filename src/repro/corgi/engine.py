"""The corgi match engine: bounded-cost matching without beta memories.

Where Rete stores every partial join result (beta tokens) and pays for
cross-products eagerly, corgi stores only *alpha* memories — per
(production, condition-element) hash-bucketed WME sets — and re-derives
full instantiations on demand, in the TREAT/CORGI tradition
(PAPERS.md).  Three mechanisms bound the cost:

**Left/right unlinking.**  A production is *linked* only while every
positive slot memory is non-empty.  While any one is empty no
instantiation can exist, so the engine skips all join work for that
production — an add costs one hash insert, O(1).  This is what keeps
the cross-product stressors polynomial: Rete builds the full N x N
intermediate token set even when the third CE never matches; corgi
never enumerates until the demand (a complete candidate) exists.

**Lazy join evaluation.**  Adds seed enumeration *from the changed
WME*: only combinations containing the new WME are derived, walking
positive slots in CE order through the same hash keys and residual
tests the Rete two-input nodes use.  When one WME matches several
slots of one production, each combination is generated exactly once —
at the *first* slot it occupies (earlier slots exclude it, later ones
include it).

**Hoisted negation gates.**  A negated slot is checked as soon as the
positive prefix it references is bound (``SlotPlan.needed``), not at
its CE position.  A constant blocker gates the whole production at
depth 0, pruning the entire enumeration — the deep-chain-negation
blow-up becomes O(1) per change while the blocker stands.

Equivalence with Rete (the conformance contract) holds because within
a single WM change an instantiation never transiently appears *and*
disappears in Rete's delta stream, so the net per-change delta corgi
computes leaves the conflict set byte-identical after every change —
and the firing trace follows from the conflict set alone.

Deletes mirror strict Rete semantics: deleting a WME unknown to a slot
memory raises, exactly like a ``-`` token with no stored ``+`` twin.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional, Tuple

from ..obs import events as _obs
from ..obs import flight as _flight
from ..ops5.wme import WME, WMEChange
from ..rete.network import ReteNetwork
from ..rete.nodes import CSDelta
from ..rete.stats import MatchStats
from ..rete.token import ADD, DELETE, Token
from .plan import RulePlan, SlotPlan, compile_plans


class _SlotMem:
    """One slot's alpha memory: eq-join key -> {timetag: WME}."""

    __slots__ = ("buckets", "size")

    def __init__(self) -> None:
        self.buckets: Dict[tuple, Dict[int, WME]] = {}
        self.size = 0

    def insert(self, key: tuple, wme: WME) -> None:
        self.buckets.setdefault(key, {})[wme.timetag] = wme
        self.size += 1

    def remove(self, key: tuple, wme: WME) -> bool:
        bucket = self.buckets.get(key)
        if not bucket or wme.timetag not in bucket:
            return False
        del bucket[wme.timetag]
        if not bucket:
            del self.buckets[key]
        self.size -= 1
        return True


class _RuleState:
    """Mutable per-production state: slot memories + derived matches."""

    __slots__ = ("plan", "mems", "cs", "linked")

    def __init__(self, plan: RulePlan) -> None:
        self.plan = plan
        self.mems = [_SlotMem() for _ in plan.slots]
        #: Current instantiations, token.key -> Token — the engine's
        #: only derived state, and it is exactly the conflict set's
        #: view of this production (no intermediate tokens exist).
        self.cs: Dict[Tuple[int, ...], Token] = {}
        self.linked = False

    def check_linked(self) -> bool:
        self.linked = all(
            self.mems[s.index].size > 0 for s in self.plan.pos_slots
        )
        return self.linked


class CorgiMatcher:
    """Bounded-cost match backend over a compiled Rete network.

    Drop-in for :class:`~repro.rete.matcher.SequentialMatcher`: same
    ``process_changes`` contract, same strict-delete semantics, same
    ``stats``/``match_seconds`` instrumentation.  ``tokens_emitted``
    counts *derived partial combinations* (the engine's unit of join
    work); its growth staying polynomial on cross-product programs is
    the whole point, and what the perf scenario measures.
    """

    def __init__(self, network: ReteNetwork) -> None:
        self.network = network
        _flight.note_engine("corgi", 1)
        self.plans, self._routing = compile_plans(network)
        self._rules: Dict[str, _RuleState] = {
            p.name: _RuleState(p) for p in self.plans
        }
        self.stats = MatchStats()
        self.match_seconds = 0.0
        #: Unlink/relink bookkeeping (also mirrored onto the obs bus).
        self.counters = {
            "unlinks": 0,
            "relinks": 0,
            "lazy_skips": 0,   # adds absorbed in O(1) by an unlinked rule
            "gate_prunes": 0,  # enumeration branches cut by a hoisted gate
        }
        self._examined = 0  # bucket entries scanned (probe for obs)

    # -- public contract -------------------------------------------------

    def process_changes(self, changes: List[WMEChange]) -> List[CSDelta]:
        """Process a batch of changes in order (one RHS's output)."""
        start = perf_counter()
        _flight.record("corgi", "batch", {"changes": len(changes)})
        deltas: List[CSDelta] = []
        for change in changes:
            deltas.extend(self.process_change(change))
        self.match_seconds += perf_counter() - start
        return deltas

    def process_change(self, change: WMEChange) -> List[CSDelta]:
        """Filter one WM change through the plans; returns CS deltas."""
        stats = self.stats
        stats.wme_changes += 1
        obs_on = _obs.ENABLED
        if obs_on:
            change_t0 = _obs.now()

        hits, n_tests = self.network.alpha_dispatch(change.wme)
        stats.constant_tests += n_tests
        stats.alpha_passes += len(hits)

        # Group the touched slots by production, preserving dispatch
        # order (deterministic for a given compiled network).
        per_rule: Dict[str, Tuple[_RuleState, List[SlotPlan]]] = {}
        for terminal in hits:
            for plan, slot in self._routing.get(terminal.alpha_id, ()):
                entry = per_rule.get(plan.name)
                if entry is None:
                    per_rule[plan.name] = (self._rules[plan.name], [slot])
                else:
                    entry[1].append(slot)

        if change.sign == ADD:
            deltas = self._apply_add(change.wme, per_rule, obs_on)
        else:
            deltas = self._apply_delete(change.wme, per_rule, obs_on)

        for _ in deltas:
            stats.record_activation("term")
        stats.cs_changes += len(deltas)
        if obs_on:
            _obs.span(
                "match",
                "wm_change",
                change_t0,
                _obs.now(),
                args={"sign": change.sign, "alpha_hits": len(hits)},
            )
        return deltas

    def close(self) -> None:
        """Nothing to release; present for engine-contract uniformity."""

    # -- introspection (property tests, serve inspect) -------------------

    def linked(self, rule_name: str) -> bool:
        return self._rules[rule_name].linked

    def slot_sizes(self, rule_name: str) -> List[int]:
        return [m.size for m in self._rules[rule_name].mems]

    def resident_tokens(self) -> int:
        """Total stored entries: alpha memberships + instantiations.

        The corgi space invariant — there are no beta memories, so this
        is bounded by (slots x WM size) + live instantiations, never by
        intermediate cross-product size.
        """
        return sum(
            sum(m.size for m in rs.mems) + len(rs.cs)
            for rs in self._rules.values()
        )

    # -- add path --------------------------------------------------------

    def _apply_add(self, wme, per_rule, obs_on) -> List[CSDelta]:
        stats = self.stats
        deltas: List[CSDelta] = []
        # Phase 1: the WME enters every touched slot memory first, so
        # enumeration and gate checks below see a consistent picture.
        for rs, slots in per_rule.values():
            for slot in slots:
                rs.mems[slot.index].insert(slot.right_key(wme), wme)

        for rs, slots in per_rule.values():
            plan = rs.plan
            t0 = _obs.now() if obs_on else 0
            self._examined = 0
            emitted = 0
            # Negated adds can only kill existing instantiations.
            for slot in slots:
                if slot.positive:
                    continue
                stats.record_activation("not")
                key = slot.right_key(wme)
                dead = [
                    k
                    for k, tok in rs.cs.items()
                    if slot.left_key(tok.wmes) == key
                    and slot.tests(tok.wmes, wme)
                ]
                self._examined += len(rs.cs)
                for k in dead:
                    deltas.append(
                        CSDelta(plan.production, rs.cs.pop(k), DELETE)
                    )
                    emitted += 1

            was_linked = rs.linked
            pos_touched = sorted(
                (s for s in slots if s.positive), key=lambda s: s.index
            )
            if pos_touched and rs.check_linked():
                if not was_linked:
                    self.counters["relinks"] += 1
                    if obs_on:
                        _obs.count("corgi.relink")
                for slot in pos_touched:
                    stats.record_activation("join")
                    for token in self._enumerate(rs, slot, wme):
                        rs.cs[token.key] = token
                        deltas.append(CSDelta(plan.production, token, ADD))
                        emitted += 1
            elif pos_touched:
                stats.record_activation("join")
                self.counters["lazy_skips"] += 1
                if obs_on:
                    _obs.count("corgi.lazy_skip")
            if obs_on:
                _obs.node_hit(
                    slots[0].node_id,
                    slots[0].kind,
                    _obs.now() - t0,
                    self._examined,
                    emitted,
                )
        return deltas

    # -- delete path -----------------------------------------------------

    def _apply_delete(self, wme, per_rule, obs_on) -> List[CSDelta]:
        stats = self.stats
        deltas: List[CSDelta] = []
        tt = wme.timetag
        for rs, slots in per_rule.values():
            for slot in slots:
                if not rs.mems[slot.index].remove(slot.right_key(wme), wme):
                    raise RuntimeError(
                        f"delete of unknown wme {tt} at corgi slot "
                        f"{rs.plan.name}[{slot.index}]"
                    )

        for rs, slots in per_rule.values():
            plan = rs.plan
            t0 = _obs.now() if obs_on else 0
            self._examined = 0
            emitted = 0
            pos_touched = any(s.positive for s in slots)
            neg_touched = any(not s.positive for s in slots)
            if pos_touched:
                stats.record_activation("join")
                # Timetags are unique, so key membership means the WME
                # is part of the instantiation, at whatever slot.
                dead = [k for k in rs.cs if tt in k]
                self._examined += len(rs.cs)
                for k in dead:
                    deltas.append(
                        CSDelta(plan.production, rs.cs.pop(k), DELETE)
                    )
                    emitted += 1
                was_linked = rs.linked
                if not rs.check_linked() and was_linked:
                    self.counters["unlinks"] += 1
                    if obs_on:
                        _obs.count("corgi.unlink")
            if neg_touched:
                stats.record_activation("not")
                # Removing a negated-slot WME can only *unblock*: re-sync
                # against a fresh full derivation (skipped while
                # unlinked, where the derivation is empty by definition).
                if rs.linked:
                    fresh = {
                        t.key: t for t in self._enumerate(rs, None, None)
                    }
                    for k, token in fresh.items():
                        if k not in rs.cs:
                            rs.cs[k] = token
                            deltas.append(
                                CSDelta(plan.production, token, ADD)
                            )
                            emitted += 1
                    for k in [k for k in rs.cs if k not in fresh]:
                        deltas.append(
                            CSDelta(plan.production, rs.cs.pop(k), DELETE)
                        )
                        emitted += 1
            if obs_on:
                _obs.node_hit(
                    slots[0].node_id,
                    slots[0].kind,
                    _obs.now() - t0,
                    self._examined,
                    emitted,
                )
        return deltas

    # -- demand-driven enumeration ---------------------------------------

    def _gate_blocked(self, rs: _RuleState, gate: SlotPlan, prefix) -> bool:
        bucket = rs.mems[gate.index].buckets.get(gate.left_key(prefix))
        if not bucket:
            return False
        self._examined += len(bucket)
        for cand in bucket.values():
            if gate.tests(prefix, cand):
                return True
        return False

    def _enumerate(
        self,
        rs: _RuleState,
        seed_slot: Optional[SlotPlan],
        seed: Optional[WME],
    ) -> List[Token]:
        """Derive instantiations by walking positive slots in CE order.

        With a seed, only combinations using ``seed`` at ``seed_slot``
        are produced (slots before the seed exclude it, slots after
        include it — each combination appears exactly once, at the
        first slot the seed occupies).  Without a seed, the complete
        instantiation set is derived (negated-delete re-sync).
        """
        plan = rs.plan
        pos_slots = plan.pos_slots
        gates_at = plan.gates_at
        seed_d = seed_slot.pos_index if seed_slot is not None else -1
        seed_tt = seed.timetag if seed is not None else -1
        stats = self.stats
        counters = self.counters
        out: List[Token] = []
        prefix: List[WME] = []

        def descend(d: int) -> None:
            ptuple = tuple(prefix)
            for gate in gates_at[d]:
                if self._gate_blocked(rs, gate, ptuple):
                    counters["gate_prunes"] += 1
                    return
            if d == plan.n_pos:
                out.append(Token.of(ptuple))
                return
            slot = pos_slots[d]
            if d == seed_d:
                if slot.index != 0 and not (
                    slot.left_key(ptuple) == slot.right_key(seed)
                    and slot.tests(ptuple, seed)
                ):
                    return
                stats.tokens_emitted += 1
                prefix.append(seed)
                descend(d + 1)
                prefix.pop()
                return
            key = () if slot.index == 0 else slot.left_key(ptuple)
            bucket = rs.mems[slot.index].buckets.get(key)
            if not bucket:
                return
            self._examined += len(bucket)
            for cand_tt, cand in list(bucket.items()):
                if d < seed_d and cand_tt == seed_tt:
                    continue
                if slot.index != 0 and not slot.tests(ptuple, cand):
                    continue
                stats.tokens_emitted += 1
                prefix.append(cand)
                descend(d + 1)
                prefix.pop()

        descend(0)
        return out
