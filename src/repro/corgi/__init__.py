"""corgi — the bounded-cost match engine (TREAT/CORGI family).

See :mod:`repro.corgi.engine` for the design and
:mod:`repro.corgi.diffcheck` for the differential-fuzzing harness that
holds it to the sequential Rete engine's behaviour.
"""

from .engine import CorgiMatcher
from .plan import RulePlan, SlotPlan, compile_plans

__all__ = ["CorgiMatcher", "RulePlan", "SlotPlan", "compile_plans"]
