"""Rule plans: the corgi engine's view of a compiled Rete network.

The corgi engine (see :mod:`repro.corgi.engine`) keeps no beta-token
memories at all — it re-derives instantiations on demand from per-slot
alpha memories, in the TREAT/CORGI tradition.  What it needs from the
network is therefore *per-production join plans*, not the node graph:
for each production, the ordered list of condition-element "slots" with
their alpha terminals, hash-key functions and residual join tests.

Rather than re-compiling the OPS5 AST, the plans are lifted from an
already-compiled :class:`~repro.rete.network.ReteNetwork`: beta nodes
are never shared between productions (paper footnote 6), so each
production's two-input nodes appear, in condition-element order, under
its name in ``network.node_owner`` — and each node carries exactly the
``left_key_fn`` / ``right_key_fn`` / ``tests_fn`` closures the engine
needs.  Reusing them guarantees corgi and Rete apply byte-identical
test semantics, which is what the conformance suite holds them to.

Negated slots additionally get a hoisted evaluation depth ``needed``:
the number of leading *positive* WMEs that must be bound before the
slot's join tests can be evaluated.  A negated CE exports no bindings,
so its test may be checked as soon as positions ``0..needed-1`` of a
candidate instantiation are fixed — far earlier than Rete checks it
for CEs late in the chain.  A constant blocker (``needed == 0``) gates
the whole production before any enumeration happens at all, which is
what defeats the deep-chain blow-up programs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from ..ops5.astnodes import Production
from ..rete.network import ReteNetwork
from ..rete.nodes import AlphaTerminal, JoinNode, NotNode


def _no_key(_w) -> tuple:
    return ()


def _no_tests(_wmes, _w) -> bool:
    return True


@dataclass
class SlotPlan:
    """One condition element of one production, as corgi evaluates it."""

    index: int            #: position among all slots (CE order)
    positive: bool        #: False for a negated CE
    pos_index: int        #: position among positive slots; -1 if negated
    needed: int           #: positive prefix length required to test (negated)
    node_id: int          #: beta node this slot's work is attributed to
    kind: str             #: "join" / "not" — mirrors the node kinds
    alpha: AlphaTerminal  #: constant-test chain exit feeding this slot
    right_key: Callable   #: WME -> hash key (eq-join subset)
    left_key: Callable    #: bound-prefix wmes -> hash key
    tests: Callable       #: residual (non-eq) join tests (wmes, w) -> bool


@dataclass
class RulePlan:
    """Everything corgi needs to (re)derive one production's matches."""

    name: str
    production: Production
    terminal_id: int
    slots: List[SlotPlan]
    pos_slots: List[SlotPlan] = field(default_factory=list)
    #: gates_at[d] = negated slots checkable once d positives are bound.
    gates_at: List[List[SlotPlan]] = field(default_factory=list)

    @property
    def n_pos(self) -> int:
        return len(self.pos_slots)


def compile_plans(
    network: ReteNetwork,
) -> Tuple[List[RulePlan], Dict[int, List[Tuple[RulePlan, SlotPlan]]]]:
    """Lift per-production join plans out of a compiled network.

    Returns ``(plans, routing)`` where ``routing`` maps an alpha
    terminal id to every ``(plan, slot)`` pair it feeds — the corgi
    analogue of ``AlphaTerminal.successors``.
    """
    # Reverse alpha edges once: (node_id, side) -> alpha terminal.
    alpha_of: Dict[Tuple[int, str], AlphaTerminal] = {}
    for at in network.alpha_terminals:
        for node, side in at.successors:
            alpha_of[(node.node_id, side)] = at

    # Per-production two-input chains, in CE order (beta_nodes preserves
    # the append order of add_production; nodes are never shared).
    chains: Dict[str, List] = {name: [] for name in network.terminals}
    for node in network.beta_nodes:
        if isinstance(node, (JoinNode, NotNode)):
            chains[network.node_owner[node.node_id]].append(node)

    plans: List[RulePlan] = []
    routing: Dict[int, List[Tuple[RulePlan, SlotPlan]]] = {}
    for prod in network.productions:
        term = network.terminals[prod.name]
        chain = chains[prod.name]
        first_id = chain[0].node_id if chain else term.node_id
        slots = [
            SlotPlan(
                index=0,
                positive=True,
                pos_index=0,
                needed=0,
                node_id=first_id,
                kind="join",
                alpha=alpha_of[(first_id, "L")],
                right_key=_no_key,
                left_key=_no_key,
                tests=_no_tests,
            )
        ]
        pos_index = 1
        for i, node in enumerate(chain):
            negated = isinstance(node, NotNode)
            needed = (
                max(lpos for (_r, _o, lpos, _l) in node.tests) + 1
                if (negated and node.tests)
                else 0
            )
            slots.append(
                SlotPlan(
                    index=i + 1,
                    positive=not negated,
                    pos_index=-1 if negated else pos_index,
                    needed=needed,
                    node_id=node.node_id,
                    kind=node.kind,
                    alpha=alpha_of[(node.node_id, "R")],
                    right_key=node.right_key_fn,
                    left_key=node.left_key_fn,
                    tests=node.tests_fn,
                )
            )
            if not negated:
                pos_index += 1

        plan = RulePlan(
            name=prod.name,
            production=prod,
            terminal_id=term.node_id,
            slots=slots,
            pos_slots=[s for s in slots if s.positive],
        )
        plan.gates_at = [[] for _ in range(plan.n_pos + 1)]
        for s in slots:
            if not s.positive:
                plan.gates_at[s.needed].append(s)
        for s in slots:
            routing.setdefault(s.alpha.alpha_id, []).append((plan, s))
        plans.append(plan)
    return plans, routing
