"""Deterministic per-session transaction streams for the load generator.

A *scenario* turns ``(session_index, n_transactions, seed)`` into a
program text plus an ordered list of :class:`Txn` — so the same tuple
always produces byte-identical traffic, which is what lets the load
generator verify a concurrent run against sequential replay.

The streams mirror how a service ingests a production system: the
``(startup ...)`` block is replaced by WM transactions (some with a
cycle budget of 0, pure ingestion), and recognize-act work is spread
across budgeted, resumable run requests.  Small budgets are chosen on
purpose: some transactions end ``exhausted`` and the next one resumes,
exercising the step-budgeted cycle API under load.

All sessions of one scenario share a single program text, so a
20-session run compiles each network exactly once (see
:mod:`repro.serve.netcache`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Tuple

from ..ops5.interpreter import WMOp
from ..programs import blocks, monkey, tourney

SCENARIOS = ("blocks", "monkey", "tourney", "mix")


@dataclass(frozen=True)
class Txn:
    """One batched WM transaction plus its cycle budget."""

    ops: Tuple[WMOp, ...] = ()
    max_cycles: int = 0


@dataclass
class Traffic:
    """One session's worth of load: the program and its transactions."""

    scenario: str
    program: str
    txns: List[Txn] = field(default_factory=list)


def build(
    scenario: str, session_index: int, n_transactions: int, seed: int = 0
) -> Traffic:
    """The deterministic stream for one session of a scenario."""
    if scenario == "mix":
        # Alternate the two headline programs so one run exercises the
        # network cache with several entries at once.
        inner = "blocks" if session_index % 2 == 0 else "tourney"
        traffic = build(inner, session_index, n_transactions, seed)
        return Traffic(scenario="mix", program=traffic.program, txns=traffic.txns)
    rng = random.Random((seed * 1_000_003 + session_index) & 0x7FFFFFFF)
    if scenario == "blocks":
        return _blocks_traffic(rng, n_transactions)
    if scenario == "monkey":
        return _monkey_traffic(rng, n_transactions)
    if scenario == "tourney":
        return _tourney_traffic(rng, n_transactions)
    raise ValueError(
        f"unknown scenario {scenario!r}; expected one of {', '.join(SCENARIOS)}"
    )


def build_from_source(source: str, n_transactions: int, budget: int = 50) -> Traffic:
    """Generic traffic for an arbitrary program file: startup runs at
    session open, then ``n_transactions`` empty budgeted run requests
    step the program forward."""
    txns = [Txn(ops=(), max_cycles=budget) for _ in range(n_transactions)]
    return Traffic(scenario="file", program=source, txns=txns)


# ---------------------------------------------------------------------------
# blocks: a stream of stacking episodes, one goal per transaction
# ---------------------------------------------------------------------------


def _blocks_traffic(rng: random.Random, n_transactions: int) -> Traffic:
    """Each transaction ships a fresh mini blocks-world episode (two or
    three blocks and a goal) and a small budget; roughly every third
    episode needs un-stacking first, and budgets are tight enough that
    longer episodes spill into the next transaction (resume path)."""
    txns: List[Txn] = [
        # Transaction 0 seeds the control element only.
        Txn(ops=(WMOp.make("phase", {"step": "idle"}),), max_cycles=0)
    ]
    for e in range(1, n_transactions):
        a, b, c = f"a{e}", f"b{e}", f"c{e}"
        if rng.random() < 0.35:
            # Stacked episode: move the buried block, forcing clears.
            ops = (
                WMOp.make("block", {"name": a, "on": "table", "clear": "no"}),
                WMOp.make("block", {"name": b, "on": a, "clear": "yes"}),
                WMOp.make("block", {"name": c, "on": "table", "clear": "yes"}),
                WMOp.make("goal", {"put": a, "onto": c, "done": "no"}),
            )
        else:
            ops = (
                WMOp.make("block", {"name": b, "on": "table", "clear": "yes"}),
                WMOp.make("block", {"name": c, "on": "table", "clear": "yes"}),
                WMOp.make("goal", {"put": b, "onto": c, "done": "no"}),
            )
        txns.append(Txn(ops=ops, max_cycles=rng.choice((3, 4, 8))))
    return Traffic(scenario="blocks", program=blocks.rules(halt=False), txns=txns)


# ---------------------------------------------------------------------------
# monkey: one episode fed in chunks, then budgeted stepping
# ---------------------------------------------------------------------------


def _monkey_traffic(rng: random.Random, n_transactions: int) -> Traffic:
    """Feed the classic four startup WMEs over two ingestion
    transactions (varying the coordinates per session), then step the
    plan forward two cycles at a time."""
    spots = [f"{rng.randint(1, 9)}-{rng.randint(1, 9)}" for _ in range(3)]
    while spots[0] == spots[1]:  # monkey must start away from the bananas
        spots[1] = f"{rng.randint(1, 9)}-{rng.randint(1, 9)}"
    txns: List[Txn] = [
        Txn(
            ops=(
                WMOp.make("goal", {"status": "active", "type": "holds", "object": "bananas"}),
                WMOp.make("monkey", {"at": spots[1], "on": "floor", "holds": "nil"}),
            ),
            max_cycles=0,
        ),
        Txn(
            ops=(
                WMOp.make("thing", {"name": "bananas", "at": spots[0], "weight": "light"}),
                WMOp.make("thing", {"name": "ladder", "at": spots[2], "weight": "light"}),
            ),
            max_cycles=0,
        ),
    ]
    while len(txns) < n_transactions:
        txns.append(Txn(ops=(), max_cycles=2))
    return Traffic(
        scenario="monkey", program=monkey.rules(halt=False), txns=txns[:n_transactions]
    )


# ---------------------------------------------------------------------------
# tourney: roster ingestion, then budgeted rounds (the cross-product load)
# ---------------------------------------------------------------------------


def _tourney_traffic(rng: random.Random, n_transactions: int) -> Traffic:
    """Seed the tournament through transactions — control WMEs first,
    then the roster two teams at a time with budget 0 — and then run
    the rounds in budgeted slices.  ``propose-match`` is the paper's
    cross-product culprit, so this is the scenario that stresses one
    session's budget isolation."""
    n_teams = 6 + 2 * rng.randint(0, 3)  # 6..12, even
    n_rounds = 2 + rng.randint(0, 2)
    txns: List[Txn] = [
        Txn(
            ops=(
                WMOp.make("phase", {"step": "seed"}),
                WMOp.make(
                    "tourney",
                    {"round": 1, "state": "idle", "max": n_rounds, "count": 0},
                ),
            ),
            max_cycles=0,
        )
    ]
    roster = [
        WMOp.make("roster", {"id": i, "pool": f"p{(i - 1) % 4}"})
        for i in range(1, n_teams + 1)
    ]
    for i in range(0, len(roster), 2):
        txns.append(Txn(ops=tuple(roster[i : i + 2]), max_cycles=0))
    while len(txns) < n_transactions:
        txns.append(Txn(ops=(), max_cycles=8))
    return Traffic(
        scenario="tourney", program=tourney.rules(), txns=txns[:n_transactions]
    )
