"""Compile-once network cache, keyed by program content hash.

Compiling a Rete network (and the RHS threaded code) is the expensive,
per-*program* part of session setup; working memory and node memories
are the cheap, per-*session* part.  The cache does the former exactly
once per distinct program text and hands every session the same
:class:`~repro.rete.network.ReteNetwork` and ``CompiledRHS`` table.

Sharing is safe because network nodes hold no per-run token state: all
memories live behind the matcher's :class:`~repro.rete.nodes.MatchContext`
(see ``rete/nodes.py``), and ``CompiledRHS.execute`` builds a fresh
environment per firing.  This is the Hiperfact framing — Rete as an
in-memory fact-processing service — layered over the paper's engine.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..ops5.astnodes import Program
from ..ops5.parser import parse_program
from ..ops5.rhs import CompiledRHS
from ..rete.network import ReteNetwork


@dataclass
class CacheEntry:
    """One compiled program: parsed AST, network, and RHS table."""

    key: str
    program: Program
    network: ReteNetwork
    rhs_table: Dict[str, CompiledRHS]
    sessions_served: int = 0


class NetworkCache:
    """Content-hash keyed cache of compiled networks.

    ``get`` may raise any :class:`~repro.ops5.errors.Ops5Error` the
    parser/compiler raises for a bad program; nothing is cached then.
    """

    def __init__(self, mode: str = "compiled") -> None:
        self.mode = mode
        self._entries: Dict[str, CacheEntry] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, source: str) -> Tuple[CacheEntry, bool]:
        """The entry for ``source``, compiling on first sight.

        Returns ``(entry, cached)`` where ``cached`` says whether the
        network was reused.
        """
        key = ReteNetwork.compile_key(source, self.mode)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
                entry.sessions_served += 1
                return entry, True
        # Compile outside the lock: parsing big programs is slow and
        # a losing race just compiles twice, it never corrupts.
        program = parse_program(source)
        network = ReteNetwork.compile(program, mode=self.mode, key=key)
        rhs_table = {p.name: CompiledRHS(p) for p in program.productions}
        fresh = CacheEntry(
            key=key, program=program, network=network, rhs_table=rhs_table
        )
        with self._lock:
            entry = self._entries.setdefault(key, fresh)
            if entry is fresh:
                self.misses += 1
            else:
                self.hits += 1
            entry.sessions_served += 1
        return entry, entry is not fresh

    def peek(self, source: str) -> Optional[CacheEntry]:
        """The entry for ``source`` if already compiled, else None."""
        key = ReteNetwork.compile_key(source, self.mode)
        with self._lock:
            return self._entries.get(key)

    def stats(self) -> Dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "programs": {
                    entry.key[:12]: {
                        "productions": len(entry.program.productions),
                        "sessions_served": entry.sessions_served,
                    }
                    for entry in self._entries.values()
                },
            }
