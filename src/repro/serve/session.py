"""Sessions: one working memory each, over a shared compiled network.

:class:`SessionCore` is the synchronous engine wrapper — it owns an
:class:`~repro.ops5.interpreter.Interpreter` built on a cached network
and applies batched WM transactions under cycle/deadline budgets.  The
server, the load generator's sequential-replay verifier, and the
session-isolation property tests all drive the same core, which is
what makes "concurrent equals sequential" checkable.

:class:`Session` wraps a core for asyncio: a bounded inbox queue and a
single worker task that applies transactions strictly in arrival
order.  A full inbox rejects immediately with :class:`Busy` (carrying
``retry_after_ms``) — explicit backpressure instead of unbounded
buffering — and :meth:`Session.drain` finishes queued work before
releasing the engine, which is what makes server shutdown graceful.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from time import monotonic, perf_counter
from typing import List, Optional, Sequence

from ..obs import context as _context
from ..obs import events as _events
from ..obs import meter as _meter
from ..ops5.interpreter import Firing, Interpreter, TransactionError, WMOp
from .limits import BudgetError, ServiceLimits
from .metrics import SessionCounters
from .netcache import CacheEntry


@dataclass
class TxnResult:
    """Outcome of one batched WM transaction."""

    outcome: str  # 'halted' | 'quiescent' | 'exhausted' | 'deadline'
    cycles: int  # cycles consumed by this transaction
    total_cycles: int  # session-lifetime cycle count
    firings: List[Firing] = field(default_factory=list)
    output: List[str] = field(default_factory=list)
    created: List[int] = field(default_factory=list)
    wm_size: int = 0


class Busy(Exception):
    """A session inbox is full; retry after ``retry_after_ms``."""

    def __init__(self, retry_after_ms: float) -> None:
        super().__init__(f"session busy; retry after {retry_after_ms:g} ms")
        self.retry_after_ms = retry_after_ms


class SessionCore:
    """The synchronous per-session engine over a cached network.

    Construction runs the program's ``(startup ...)`` actions, so the
    session is matched and ready before its first transaction.
    """

    def __init__(
        self,
        session_id: str,
        entry: CacheEntry,
        limits: Optional[ServiceLimits] = None,
        strategy: str = "lex",
        engine: str = "sequential",
        engine_opts: Optional[dict] = None,
        tenant: str = "default",
    ) -> None:
        self.session_id = session_id
        self.entry = entry
        self.limits = limits or ServiceLimits()
        self.counters = SessionCounters()
        self.engine = engine
        self.tenant = tenant
        _meter.register_session(session_id, tenant)
        self.interp = Interpreter(
            entry.program,
            strategy=strategy,
            network=entry.network,
            rhs_table=entry.rhs_table,
            engine=engine,
            engine_opts=engine_opts,
        )
        self.interp.startup()

    @property
    def wm_size(self) -> int:
        return len(self.interp.wm)

    def transact(
        self,
        ops: Sequence[WMOp],
        max_cycles: Optional[int] = None,
        deadline_ms: Optional[float] = None,
    ) -> TxnResult:
        """Apply ``ops`` atomically, then run budgeted cycles.

        Raises :class:`BudgetError` (before touching anything) when the
        request asks beyond the server caps, and propagates
        :class:`~repro.ops5.interpreter.TransactionError` when the op
        batch fails validation — in both cases the session state is
        exactly as before the call.
        """
        counters = self.counters
        try:
            budget = self.limits.resolve_cycles(max_cycles)
            deadline = monotonic() + self.limits.resolve_deadline_ms(deadline_ms) / 1e3
            self.limits.check_ops_count(len(ops))
        except BudgetError:
            counters.rejected_budget += 1
            if _meter.ENABLED:
                _meter.add(self.session_id, "rejected_budget",
                           tenant=self.tenant)
            raise
        # Attribute obs-bus span drops to the request running while
        # they happened (only measurable when both layers are on).
        drops_before = (
            _events.dropped_total()
            if (_meter.ENABLED and _events.ENABLED) else None
        )
        start = perf_counter()
        try:
            created = self.interp.apply_transaction(ops)
        except TransactionError:
            counters.errors += 1
            raise
        before = self.interp.cycle
        part = self.interp.run_cycles(budget, deadline=deadline)
        elapsed = perf_counter() - start
        if drops_before is not None:
            dropped = _events.dropped_total() - drops_before
            if dropped:
                _meter.add(self.session_id, "dropped_events", dropped,
                           tenant=self.tenant)

        counters.transactions += 1
        counters.wm_ops += len(ops)
        counters.cycles += part.cycles - before
        counters.firings += len(part.firings)
        counters.outcomes[part.outcome] += 1
        counters.latency.record(elapsed)
        return TxnResult(
            outcome=part.outcome,
            cycles=part.cycles - before,
            total_cycles=part.cycles,
            firings=part.firings,
            output=part.output,
            created=created,
            wm_size=self.wm_size,
        )

    def profile(self) -> dict:
        """Live engine profile: the match statistics the paper tables
        are built from, plus per-kind activation counts and the session
        counters.  This is the payload of the server's ``profile`` verb."""
        stats = self.interp.matcher.stats
        return {
            "session": self.session_id,
            "cycle": self.interp.cycle,
            "wm_size": self.wm_size,
            "halted": self.interp.halted,
            "match": stats.summary(),
            "activations_by_kind": dict(stats.activations_by_kind),
            "counters": self.counters.snapshot(),
        }

    def close(self) -> None:
        self.interp.close()


#: Inbox sentinel asking the worker to finish and exit.
_CLOSE = object()


class Session:
    """Asyncio front for a :class:`SessionCore`.

    Transactions enter through :meth:`submit`, which either enqueues
    synchronously (order between two submits is the order of the calls)
    or raises :class:`Busy`.  One worker task consumes the inbox,
    yielding to the event loop between transactions so many sessions
    interleave fairly on one loop.
    """

    def __init__(self, core: SessionCore) -> None:
        self.core = core
        limits = core.limits
        self._inbox: asyncio.Queue = asyncio.Queue(maxsize=limits.inbox_depth)
        self._retry_after_ms = limits.retry_after_ms
        self._worker: Optional[asyncio.Task] = None
        self.closing = False

    @property
    def session_id(self) -> str:
        return self.core.session_id

    @property
    def queue_depth(self) -> int:
        return self._inbox.qsize()

    def start(self) -> None:
        self._worker = asyncio.get_running_loop().create_task(self._run())

    def submit(
        self,
        ops: Sequence[WMOp],
        max_cycles: Optional[int] = None,
        deadline_ms: Optional[float] = None,
        ctx: Optional[_context.RequestContext] = None,
    ) -> "asyncio.Future[TxnResult]":
        """Enqueue one transaction; the future resolves when it ran.

        Never awaits before enqueueing, so callers that submit
        back-to-back get back-to-back execution order.  ``ctx`` is the
        request context the worker activates around the transaction
        (request-scoped spans + meter attribution).
        """
        core = self.core
        if self.closing:
            if _meter.ENABLED:
                _meter.add(core.session_id, "rejected_busy",
                           tenant=core.tenant)
            raise Busy(self._retry_after_ms)
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        try:
            self._inbox.put_nowait(
                (perf_counter(), ctx, ops, max_cycles, deadline_ms, fut)
            )
        except asyncio.QueueFull:
            core.counters.rejected_busy += 1
            if _meter.ENABLED:
                _meter.add(core.session_id, "rejected_busy",
                           tenant=core.tenant)
            raise Busy(self._retry_after_ms) from None
        return fut

    async def _run(self) -> None:
        while True:
            item = await self._inbox.get()
            if item is _CLOSE:
                break
            t_submit, ctx, ops, max_cycles, deadline_ms, fut = item
            core = self.core
            meter_on = _meter.ENABLED
            if meter_on:
                # Inbox wait is part of what the client experiences;
                # account it separately from execution time.
                _meter.add(core.session_id, "queue_wait_s",
                           perf_counter() - t_submit, tenant=core.tenant)
            token = _context.activate(ctx) if ctx is not None else None
            try:
                result = core.transact(ops, max_cycles, deadline_ms)
            except BaseException as exc:  # delivered to the waiter
                if not fut.cancelled():
                    fut.set_exception(exc)
            else:
                if not fut.cancelled():
                    fut.set_result(result)
                if meter_on:
                    # Meter latency is submit→done (inbox wait + exec),
                    # the client-observed quantity loadgen reconciles
                    # against; SessionCounters.latency stays exec-only.
                    _meter.txn(
                        core.session_id, perf_counter() - t_submit,
                        request_id=ctx.request_id if ctx is not None else "",
                        tenant=core.tenant,
                    )
            finally:
                if token is not None:
                    _context.deactivate(token)
            # Fairness: let other sessions' workers run between txns.
            await asyncio.sleep(0)

    async def drain(self) -> int:
        """Refuse new work, finish queued transactions, release the
        engine.  Returns how many queued transactions were completed."""
        self.closing = True
        pending = self._inbox.qsize()
        if self._worker is not None:
            await self._inbox.put(_CLOSE)
            await self._worker
            self._worker = None
        self.core.close()
        return pending

    def snapshot(self) -> dict:
        snap = self.core.counters.snapshot()
        snap["queue_depth"] = self.queue_depth
        snap["wm_size"] = self.core.wm_size
        snap["program"] = self.core.entry.key[:12]
        snap["halted"] = self.core.interp.halted
        return snap

    def profile(self) -> dict:
        prof = self.core.profile()
        prof["queue_depth"] = self.queue_depth
        prof["program"] = self.core.entry.key[:12]
        return prof
