"""``repro.serve`` — the multi-session production-rule service layer.

The paper's PSM-E pipeline (one control process feeding k match
processes) is fundamentally a *server* shape: a stream of
working-memory changes arrives, match runs, results come back.  This
package hosts that shape as an asyncio service:

* :mod:`protocol` — the line-delimited JSON wire format;
* :mod:`netcache` — compile each OPS5 program once, keyed by content
  hash, and share the network across every session running it;
* :mod:`limits` / :mod:`metrics` — budgets, backpressure parameters,
  counters and latency percentiles;
* :mod:`session` — one working memory per session over the shared
  network, with a bounded inbox and an ordered transaction worker;
* :mod:`server` — the TCP server multiplexing sessions, with graceful
  drain-on-shutdown;
* :mod:`traffic` / :mod:`loadgen` — deterministic per-session
  transaction streams and the concurrent load generator that replays
  them and verifies firings against sequential replay.

See ``docs/SERVICE.md`` for the protocol and semantics.
"""

from .limits import BudgetError, ServiceLimits
from .netcache import NetworkCache
from .server import ReproServer
from .session import Busy, Session, SessionCore, TxnResult

__all__ = [
    "BudgetError",
    "Busy",
    "NetworkCache",
    "ReproServer",
    "ServiceLimits",
    "Session",
    "SessionCore",
    "TxnResult",
]
