"""Concurrent load generator and sequential-replay verifier.

Opens N sessions (one connection each), replays each session's
deterministic traffic (see :mod:`traffic`) transaction by transaction,
honouring ``retry_after_ms`` backpressure, and measures client-side
throughput and latency percentiles.

With ``verify=True`` every session's concatenated firings (in wire
form) are compared **byte for byte** against a sequential replay of
the same transactions on a local :class:`~repro.serve.session.SessionCore`
— the service-level analogue of the parallel engine's "identical
conflict sets to sequential" check.
"""

from __future__ import annotations

import asyncio
import json
from collections import Counter
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

from ..obs import events as obs_events
from ..obs import fabric as obs_fabric
from ..obs.export import write_chrome_trace
from .limits import ServiceLimits
from .metrics import nearest_rank
from .netcache import NetworkCache
from .protocol import decode_line, encode, ops_to_wire
from .server import ReproServer
from .session import SessionCore
from .traffic import Traffic, build, build_from_source

#: Give up on one transaction after this many busy retries.
MAX_BUSY_RETRIES = 100


@dataclass
class SessionRun:
    """Client-side record of one session's replay."""

    index: int
    session_id: str = ""
    tenant: str = "default"
    traffic: Optional[Traffic] = None
    firings: List[list] = field(default_factory=list)
    outcomes: Counter = field(default_factory=Counter)
    latencies: List[float] = field(default_factory=list)
    cycles: int = 0
    busy_retries: int = 0
    errors: List[str] = field(default_factory=list)


@dataclass
class LoadReport:
    """What one load-generation run measured."""

    scenario: str
    sessions: int
    transactions: int  # per session
    wall_seconds: float = 0.0
    txns_ok: int = 0
    errors: int = 0
    busy_retries: int = 0
    outcomes: Counter = field(default_factory=Counter)
    total_cycles: int = 0
    total_firings: int = 0
    latency: Dict[str, float] = field(default_factory=dict)
    netcache: Dict[str, Any] = field(default_factory=dict)
    server: Dict[str, Any] = field(default_factory=dict)
    verified: Optional[bool] = None  # None = verification not requested
    mismatches: List[str] = field(default_factory=list)
    error_samples: List[str] = field(default_factory=list)
    tenants: Dict[str, Dict[str, float]] = field(default_factory=dict)
    meter: Dict[str, Any] = field(default_factory=dict)
    prometheus: str = ""

    @property
    def ok(self) -> bool:
        return self.errors == 0 and self.verified is not False

    def format(self) -> str:
        lines = [
            f"loadgen scenario={self.scenario} sessions={self.sessions} "
            f"txns/session={self.transactions} wall={self.wall_seconds:.2f}s",
            f"  transactions: {self.txns_ok} ok, {self.errors} errors, "
            f"{self.busy_retries} busy-retries",
            "  outcomes: "
            + (
                " ".join(f"{k}={v}" for k, v in sorted(self.outcomes.items()))
                or "(none)"
            ),
        ]
        wall = self.wall_seconds or 1e-9
        lines.append(
            f"  throughput: {self.txns_ok / wall:.0f} txn/s, "
            f"{self.total_cycles / wall:.0f} cycles/s, "
            f"{self.total_firings} firings total"
        )
        lat = self.latency
        if lat:
            lines.append(
                f"  latency ms: p50={lat['p50_ms']:.2f} p95={lat['p95_ms']:.2f} "
                f"p99={lat['p99_ms']:.2f} mean={lat['mean_ms']:.2f}"
            )
        else:
            # Zero completed transactions: say so explicitly instead of
            # printing fabricated percentiles.
            lines.append("  latency: no samples")
        if self.netcache:
            lines.append(
                f"  netcache: {self.netcache.get('entries', 0)} entries, "
                f"{self.netcache.get('hits', 0)} hits, "
                f"{self.netcache.get('misses', 0)} misses"
            )
        if len(self.tenants) > 1:
            lines.append("  tenants (client-side fairness):")
            for tenant in sorted(self.tenants):
                t = self.tenants[tenant]
                lines.append(
                    f"    {tenant}: txns={int(t['txns'])} "
                    f"share={t['share']:.2f} p50={t['p50_ms']:.2f}ms "
                    f"p95={t['p95_ms']:.2f}ms p99={t['p99_ms']:.2f}ms"
                )
        if self.verified is not None:
            if self.verified:
                lines.append(
                    f"  verify: {self.sessions}/{self.sessions} sessions "
                    "byte-identical to sequential replay"
                )
            else:
                lines.append("  verify: FAILED")
                lines.extend(f"    {m}" for m in self.mismatches[:5])
        for sample in self.error_samples[:5]:
            lines.append(f"  error: {sample}")
        return "\n".join(lines)


class _Client:
    """One connection speaking the line protocol, request at a time."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer
        self._next_id = 1

    @staticmethod
    async def connect(host: str, port: int) -> "_Client":
        reader, writer = await asyncio.open_connection(host, port)
        return _Client(reader, writer)

    async def request(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        msg = dict(msg)
        msg["id"] = self._next_id
        self._next_id += 1
        self.writer.write(encode(msg))
        await self.writer.drain()
        line = await self.reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return decode_line(line)

    async def close(self) -> None:
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _run_session(
    host: str,
    port: int,
    run: SessionRun,
    engine: str = "sequential",
    workers: int = 2,
) -> None:
    """Open one session and replay its traffic, sequentially."""
    traffic = run.traffic
    assert traffic is not None
    client = await _Client.connect(host, port)
    try:
        resp = await client.request({
            "type": "open",
            "program": traffic.program,
            "engine": engine,
            "workers": workers,
            "tenant": run.tenant,
        })
        if not resp.get("ok"):
            run.errors.append(f"open failed: {resp.get('error')}")
            return
        run.session_id = resp["session"]
        for t, txn in enumerate(traffic.txns):
            msg = {
                "type": "transact",
                "session": run.session_id,
                "ops": ops_to_wire(list(txn.ops)),
                "max_cycles": txn.max_cycles,
            }
            for _attempt in range(MAX_BUSY_RETRIES + 1):
                obs_on = obs_events.ENABLED
                if obs_on:
                    txn_t0 = obs_events.now()
                start = perf_counter()
                resp = await client.request(msg)
                if resp.get("ok"):
                    run.latencies.append(perf_counter() - start)
                    if obs_on:
                        obs_events.span(
                            "loadgen",
                            "txn",
                            txn_t0,
                            obs_events.now(),
                            args={"session": run.session_id, "txn": t,
                                  "outcome": resp["outcome"]},
                        )
                    run.firings.extend(resp["firings"])
                    run.outcomes[resp["outcome"]] += 1
                    run.cycles += resp["cycles"]
                    break
                err = resp.get("error", {})
                if err.get("code") == "busy":
                    run.busy_retries += 1
                    await asyncio.sleep(err.get("retry_after_ms", 50) / 1e3)
                    continue
                run.errors.append(f"txn {t}: {err.get('code')}: {err.get('message')}")
                break
            else:
                run.errors.append(f"txn {t}: still busy after {MAX_BUSY_RETRIES} retries")
        resp = await client.request({"type": "close", "session": run.session_id})
        if not resp.get("ok"):
            run.errors.append(f"close failed: {resp.get('error')}")
    except (ConnectionError, OSError) as exc:
        run.errors.append(f"connection error: {exc}")
    finally:
        await client.close()


def _replay_sequential(run: SessionRun, cache: NetworkCache) -> List[list]:
    """The same traffic, one session at a time, on a local core."""
    traffic = run.traffic
    assert traffic is not None
    entry, _cached = cache.get(traffic.program)
    core = SessionCore(f"replay-{run.index}", entry)
    fired: List[list] = []
    try:
        for txn in traffic.txns:
            result = core.transact(list(txn.ops), max_cycles=txn.max_cycles)
            fired.extend(
                [f.cycle, f.production, list(f.timetags)] for f in result.firings
            )
    finally:
        core.close()
    return fired


def verify_runs(runs: List[SessionRun]) -> Tuple[bool, List[str]]:
    """Byte-compare each session's concurrent firings with sequential
    replay.  One fresh cache serves every replay, so the verification
    path itself exercises cross-session network sharing."""
    cache = NetworkCache()
    mismatches: List[str] = []
    for run in runs:
        expected = json.dumps(_replay_sequential(run, cache), separators=(",", ":"))
        actual = json.dumps(run.firings, separators=(",", ":"))
        if expected != actual:
            mismatches.append(
                f"session {run.index} ({run.session_id or '?'}): "
                f"{len(run.firings)} firings vs {expected.count('[') - 1} expected"
            )
    return not mismatches, mismatches


async def run_loadgen(
    scenario: str = "blocks",
    sessions: int = 20,
    transactions: int = 50,
    host: Optional[str] = None,
    port: Optional[int] = None,
    spawn: bool = False,
    verify: bool = False,
    seed: int = 0,
    program_source: Optional[str] = None,
    limits: Optional[ServiceLimits] = None,
    shutdown_after: bool = False,
    trace_path: Optional[str] = None,
    tenants: int = 1,
    engine: str = "sequential",
    workers: int = 2,
    meter: bool = False,
    meter_out: Optional[str] = None,
    prom_out: Optional[str] = None,
) -> LoadReport:
    """Drive a server with ``sessions`` concurrent replayed streams.

    ``spawn=True`` hosts a :class:`ReproServer` in-process on an
    ephemeral port (the CI- and test-friendly mode); otherwise
    ``host``/``port`` name a running server.  ``shutdown_after`` sends
    a ``shutdown`` request once the run (and stats scrape) is done.
    ``trace_path`` enables the :mod:`repro.obs` event bus for the run
    and writes a Chrome-trace JSON file when it finishes; with
    ``spawn=True`` the trace covers the in-process server's engines,
    not just the client side — and when sessions used the ``mp``
    engine, the file is the causally-stitched multi-process trace
    (control + worker lanes + request flow arrows).

    ``tenants`` partitions sessions round-robin into that many tenant
    labels (``t0..tN-1``); ``engine``/``workers`` pick the match
    backend each session opens with.  ``meter=True`` enables
    :mod:`repro.obs.meter` on a spawned server; the snapshot is
    scraped into ``report.meter`` (and ``meter_out``/``prom_out``
    write the JSON snapshot / Prometheus exposition to files).
    """
    runs: List[SessionRun] = []
    for i in range(sessions):
        if program_source is not None:
            traffic = build_from_source(program_source, transactions)
        else:
            traffic = build(scenario, i, transactions, seed)
        tenant = f"t{i % tenants}" if tenants > 1 else "default"
        runs.append(SessionRun(index=i, tenant=tenant, traffic=traffic))

    server: Optional[ReproServer] = None
    if spawn:
        server = ReproServer(limits=limits, meter=meter)
        host, port = await server.start()
    assert host is not None and port is not None

    want_meter = meter or meter_out is not None or prom_out is not None
    meter_snap: Dict[str, Any] = {}
    prom_body = ""
    if trace_path is not None:
        obs_events.reset()
        obs_events.enable()
    started = perf_counter()
    try:
        await asyncio.gather(
            *(_run_session(host, port, run, engine, workers) for run in runs)
        )
        wall = perf_counter() - started

        stats: Dict[str, Any] = {}
        try:
            client = await _Client.connect(host, port)
            resp = await client.request({"type": "stats"})
            if resp.get("ok"):
                stats = resp
            if want_meter:
                resp = await client.request({"type": "meter"})
                if resp.get("ok"):
                    meter_snap = resp.get("meter", {})
                resp = await client.request(
                    {"type": "stats", "format": "prometheus"}
                )
                if resp.get("ok"):
                    prom_body = resp.get("body", "")
            if shutdown_after:
                await client.request({"type": "shutdown"})
            await client.close()
        except (ConnectionError, OSError):
            pass
    finally:
        if server is not None:
            await server.shutdown()
        if trace_path is not None:
            _write_trace(trace_path, obs_events.snapshot(), server)
            obs_events.disable()

    report = LoadReport(
        scenario=scenario if program_source is None else "file",
        sessions=sessions,
        transactions=transactions,
        wall_seconds=wall,
    )
    latencies: List[float] = []
    for run in runs:
        report.txns_ok += sum(run.outcomes.values())
        report.errors += len(run.errors)
        report.error_samples.extend(run.errors)
        report.busy_retries += run.busy_retries
        report.outcomes.update(run.outcomes)
        report.total_cycles += run.cycles
        report.total_firings += len(run.firings)
        latencies.extend(run.latencies)
    if latencies:
        ordered = sorted(latencies)
        report.latency = {
            "p50_ms": nearest_rank(ordered, 50) * 1e3,
            "p95_ms": nearest_rank(ordered, 95) * 1e3,
            "p99_ms": nearest_rank(ordered, 99) * 1e3,
            "mean_ms": sum(ordered) / len(ordered) * 1e3,
        }
    report.netcache = stats.get("netcache", {})
    report.server = stats.get("server", {})
    report.tenants = _tenant_summary(runs, report.txns_ok)
    report.meter = meter_snap
    report.prometheus = prom_body
    if meter_out is not None:
        with open(meter_out, "w", encoding="utf-8") as fh:
            json.dump(
                {
                    "schema": "repro.meter/1",
                    "meter": meter_snap,
                    "loadgen": {
                        "latency": report.latency,
                        "tenants": report.tenants,
                        "wall_seconds": report.wall_seconds,
                    },
                },
                fh,
                indent=2,
            )
    if prom_out is not None:
        with open(prom_out, "w", encoding="utf-8") as fh:
            fh.write(prom_body)
    if verify:
        report.verified, report.mismatches = verify_runs(runs)
    return report


def _tenant_summary(
    runs: List[SessionRun], txns_total: int
) -> Dict[str, Dict[str, float]]:
    """Client-observed fairness: per-tenant transaction counts, share
    of total throughput, and latency percentiles — the numbers the
    server-side meter must reconcile against."""
    by_tenant: Dict[str, List[float]] = {}
    for run in runs:
        by_tenant.setdefault(run.tenant, []).extend(run.latencies)
    out: Dict[str, Dict[str, float]] = {}
    for tenant, lats in by_tenant.items():
        ordered = sorted(lats)
        n = len(ordered)
        out[tenant] = {
            "txns": float(n),
            "share": n / txns_total if txns_total else 0.0,
            "p50_ms": nearest_rank(ordered, 50) * 1e3 if n else 0.0,
            "p95_ms": nearest_rank(ordered, 95) * 1e3 if n else 0.0,
            "p99_ms": nearest_rank(ordered, 99) * 1e3 if n else 0.0,
        }
    return out


def _write_trace(
    trace_path: str, snap: Any, server: Optional[ReproServer]
) -> None:
    """Plain Chrome trace, or — when the in-process server retired mp
    fabric collectors — the causally-stitched multi-process document."""
    collectors = list(server.retired_fabric) if server is not None else []
    if collectors:
        merged = obs_fabric.merge_collectors(collectors)
        doc, _orphans = obs_fabric.stitch_trace(snap, merged)
        with open(trace_path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
    else:
        write_chrome_trace(trace_path, snap)
