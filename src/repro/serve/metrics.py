"""Counters and latency percentiles for the service layer.

Latencies are kept in a fixed-capacity window of the most recent
samples (a ring buffer); percentiles are nearest-rank over that window,
computed on demand.  Counts are monotonic over the full lifetime.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from time import monotonic
from typing import Dict, List, Optional, Sequence


def nearest_rank(ordered: Sequence[float], p: float) -> float:
    """Nearest-rank percentile over an already-sorted sequence.

    ``p`` must lie in [0, 100]; p=0 returns the minimum (rank clamps to
    1) and p=100 the maximum.  Shared by :class:`LatencyWindow` and the
    loadgen report so the two never disagree.
    """
    if not 0 <= p <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    if not ordered:
        raise ValueError("percentile of an empty sequence")
    rank = max(1, -(-len(ordered) * p // 100))  # ceil without math
    return ordered[int(rank) - 1]


class LatencyWindow:
    """Ring buffer of recent latency samples (seconds)."""

    def __init__(self, capacity: int = 4096) -> None:
        self.capacity = capacity
        self._samples: List[float] = []
        self._next = 0
        self.count = 0  # lifetime total, not window size
        self.total_seconds = 0.0

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total_seconds += seconds
        if len(self._samples) < self.capacity:
            self._samples.append(seconds)
        else:
            self._samples[self._next] = seconds
            self._next = (self._next + 1) % self.capacity

    @property
    def window_size(self) -> int:
        """Number of samples currently held (≤ capacity)."""
        return len(self._samples)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile (``p`` in [0, 100]) over the window.

        Returns 0.0 when the window is empty; raises ``ValueError`` for
        ``p`` outside [0, 100].
        """
        if not self._samples:
            if not 0 <= p <= 100:
                raise ValueError(f"percentile must be in [0, 100], got {p}")
            return 0.0
        return nearest_rank(sorted(self._samples), p)

    def summary(self) -> Dict[str, float]:
        mean = self.total_seconds / self.count if self.count else 0.0
        return {
            "count": self.count,
            "window": self.window_size,
            "mean_ms": mean * 1e3,
            "p50_ms": self.percentile(50) * 1e3,
            "p95_ms": self.percentile(95) * 1e3,
            "p99_ms": self.percentile(99) * 1e3,
        }


@dataclass
class SessionCounters:
    """Per-session request accounting."""

    transactions: int = 0
    cycles: int = 0
    firings: int = 0
    wm_ops: int = 0
    rejected_busy: int = 0
    rejected_budget: int = 0
    errors: int = 0
    outcomes: Counter = field(default_factory=Counter)
    latency: LatencyWindow = field(default_factory=LatencyWindow)

    def snapshot(self) -> Dict:
        return {
            "transactions": self.transactions,
            "cycles": self.cycles,
            "firings": self.firings,
            "wm_ops": self.wm_ops,
            "rejected_busy": self.rejected_busy,
            "rejected_budget": self.rejected_budget,
            "errors": self.errors,
            "outcomes": dict(self.outcomes),
            "latency": self.latency.summary(),
        }


@dataclass
class ServerMetrics:
    """Server-wide accounting, aggregated across sessions and requests."""

    started: float = field(default_factory=monotonic)
    requests: int = 0
    errors: int = 0
    connections: int = 0
    sessions_opened: int = 0
    sessions_closed: int = 0
    rejected_busy: int = 0
    rejected_budget: int = 0
    transactions: int = 0
    cycles: int = 0
    firings: int = 0
    latency: LatencyWindow = field(default_factory=LatencyWindow)

    def snapshot(self) -> Dict:
        return {
            "uptime_s": monotonic() - self.started,
            "requests": self.requests,
            "errors": self.errors,
            "connections": self.connections,
            "sessions_opened": self.sessions_opened,
            "sessions_closed": self.sessions_closed,
            "rejected_busy": self.rejected_busy,
            "rejected_budget": self.rejected_budget,
            "transactions": self.transactions,
            "cycles": self.cycles,
            "firings": self.firings,
            "latency": self.latency.summary(),
        }
