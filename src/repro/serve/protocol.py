"""The service wire format: line-delimited JSON over a byte stream.

One JSON object per UTF-8 line in each direction.  Every request
carries a client-chosen ``id`` which the response echoes, so clients
may pipeline requests on one connection (responses can arrive out of
order across *different* sessions; transactions within one session are
applied in arrival order).

Requests
--------

``{"id": .., "type": "open", "program": "<ops5 text>", "strategy"?: "lex"|"mea",
   "engine"?: "sequential"|"threaded"|"mp"|"corgi", "workers"?: int,
   "tenant"?: str}``
    Compile (or reuse from the network cache) and open a session.
    ``engine`` picks the match backend (default ``sequential``);
    ``workers`` (1..16, default 2) sizes the ``threaded``/``mp``
    engines and is ignored for ``sequential``/``corgi``.  Opening with
    ``engine: "mp"`` on a host without the ``fork`` start method is
    rejected with ``bad_request``.  ``tenant`` (non-empty string,
    default ``"default"``) labels the session for per-tenant metering
    and request-scoped tracing (:mod:`repro.obs.meter`).
    → ``{"ok": true, "session": "s1", "cached": bool, "key": "<hash>"}``

``{"id": .., "type": "transact", "session": .., "ops": [..],
   "max_cycles"?: int, "deadline_ms"?: number}``
    Apply a batched WM transaction atomically, then run up to
    ``max_cycles`` recognize-act cycles (0 = pure ingestion).  Ops:
    ``{"op": "make", "class": C, "attrs": {..}}``,
    ``{"op": "remove", "timetag": T}``,
    ``{"op": "modify", "timetag": T, "attrs": {..}}``.
    → ``{"ok": true, "outcome": "halted"|"quiescent"|"exhausted"|"deadline",
         "cycles": n, "total_cycles": n, "firings": [[cycle, prod, [tags..]]..],
         "output": [..], "created": [timetags..], "wm_size": n}``

``{"id": .., "type": "stats", "session"?: .., "format"?: "json"|"prometheus"}``
    Server-wide counters, netcache stats, and per-session detail.
    With ``"format": "prometheus"`` (server-wide only) the response is
    ``{"ok": true, "format": "prometheus", "body": "<exposition text>"}``
    — the same counters rendered for a scraper; on a metered server
    the body additionally carries the ``repro_meter_*`` families
    (per-scope counters and per-tenant latency histograms with trace
    exemplars).

``{"id": .., "type": "meter"}``
    The metering snapshot (``repro.meter/1``): per-session and
    per-tenant counters (match/select/act seconds, firings, WM
    changes, queue wait, IPC bytes, rejections, dropped events),
    latency histograms with exemplars, percentiles, and SLO burn
    rates.  → ``{"ok": true, "enabled": bool, "meter": {..}}``; an
    unmetered server answers ``enabled: false`` with empty accounts.

``{"id": .., "type": "profile", "session"?: ..}``
    Live engine profiles.  Per session: match-engine statistics
    (activations by node kind, tokens examined, the Table 4-1/4-2
    counters) plus the session's request counters.  Server-wide: every
    session's profile, netcache stats, and — when the
    :mod:`repro.obs` event bus is enabled in the server process — the
    global hot-spot profile (hot nodes/productions/locks/phases).

``{"id": .., "type": "dump"}``
    Flight-recorder snapshot of the server process — the always-on
    ring of recent engine events (see :mod:`repro.obs.flight`) — plus
    event-bus health.  → ``{"ok": true, "flight": {<repro.flight/2
    snapshot>}, "obs_enabled": bool, "dropped_events": n}``.  Cheap
    enough for a crash-time grab: no tracing needs to be enabled.

``{"id": .., "type": "close", "session": ..}``
    Drain the session's queued transactions, then release it.

``{"id": .., "type": "ping"}`` / ``{"id": .., "type": "shutdown"}``
    Liveness probe / graceful server drain-and-stop.

Errors
------

``{"id": .., "ok": false, "error": {"code": .., "message": ..,
   "retry_after_ms"?: number}}`` — ``retry_after_ms`` accompanies
``busy`` (a session inbox is full) and ``session-limit`` so clients
can back off and retry instead of tight-looping.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from ..ops5.interpreter import Firing, WMOp

#: Error codes.
E_BAD_REQUEST = "bad-request"
E_PARSE = "parse-error"
E_UNKNOWN_SESSION = "unknown-session"
E_BUSY = "busy"
E_SESSION_LIMIT = "session-limit"
E_BUDGET = "budget-exceeded"
E_TXN = "txn-rejected"
E_SHUTTING_DOWN = "shutting-down"
E_INTERNAL = "internal"

#: Stream limit for one request/response line.  Program sources travel
#: in ``open`` requests, so this must fit the biggest benchmark text.
MAX_LINE_BYTES = 4 * 1024 * 1024

#: JSON types accepted as OPS5 constants in attribute values.
_CONST_TYPES = (str, int, float)


class ProtocolError(Exception):
    """A malformed or rejectable request, with its wire error code."""

    def __init__(
        self, code: str, message: str, retry_after_ms: Optional[float] = None
    ) -> None:
        super().__init__(message)
        self.code = code
        self.retry_after_ms = retry_after_ms


def encode(msg: Dict[str, Any]) -> bytes:
    """One response/request as a compact JSON line."""
    return json.dumps(msg, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one wire line into a request object."""
    try:
        msg = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(E_BAD_REQUEST, f"invalid JSON: {exc}")
    if not isinstance(msg, dict):
        raise ProtocolError(E_BAD_REQUEST, "request must be a JSON object")
    return msg


def ok_response(req_id: Any, **fields: Any) -> Dict[str, Any]:
    resp: Dict[str, Any] = {"id": req_id, "ok": True}
    resp.update(fields)
    return resp


def error_response(
    req_id: Any,
    code: str,
    message: str,
    retry_after_ms: Optional[float] = None,
) -> Dict[str, Any]:
    err: Dict[str, Any] = {"code": code, "message": message}
    if retry_after_ms is not None:
        err["retry_after_ms"] = retry_after_ms
    return {"id": req_id, "ok": False, "error": err}


def _check_attrs(raw: Any, where: str) -> Dict[str, Any]:
    if not isinstance(raw, dict):
        raise ProtocolError(E_BAD_REQUEST, f"{where}: attrs must be an object")
    for attr, value in raw.items():
        if not isinstance(attr, str) or not attr:
            raise ProtocolError(E_BAD_REQUEST, f"{where}: bad attribute name")
        if isinstance(value, bool) or not isinstance(value, _CONST_TYPES):
            raise ProtocolError(
                E_BAD_REQUEST,
                f"{where}: attribute {attr!r} must be a string or number",
            )
    return raw


def ops_from_wire(raw: Any) -> List[WMOp]:
    """Validate and convert a request's ``ops`` list to :class:`WMOp`."""
    if raw is None:
        return []
    if not isinstance(raw, list):
        raise ProtocolError(E_BAD_REQUEST, "ops must be a list")
    ops: List[WMOp] = []
    for i, item in enumerate(raw):
        where = f"op {i}"
        if not isinstance(item, dict):
            raise ProtocolError(E_BAD_REQUEST, f"{where}: must be an object")
        kind = item.get("op")
        if kind == "make":
            klass = item.get("class")
            if not isinstance(klass, str) or not klass:
                raise ProtocolError(E_BAD_REQUEST, f"{where}: make requires a class")
            ops.append(WMOp.make(klass, _check_attrs(item.get("attrs", {}), where)))
        elif kind in ("remove", "modify"):
            timetag = item.get("timetag")
            if isinstance(timetag, bool) or not isinstance(timetag, int):
                raise ProtocolError(
                    E_BAD_REQUEST, f"{where}: {kind} requires an integer timetag"
                )
            if kind == "remove":
                ops.append(WMOp.remove(timetag))
            else:
                ops.append(
                    WMOp.modify(timetag, _check_attrs(item.get("attrs", {}), where))
                )
        else:
            raise ProtocolError(E_BAD_REQUEST, f"{where}: unknown op {kind!r}")
    return ops


def ops_to_wire(ops: List[WMOp]) -> List[Dict[str, Any]]:
    """The inverse of :func:`ops_from_wire` (used by the load generator)."""
    out: List[Dict[str, Any]] = []
    for op in ops:
        if op.op == "make":
            out.append({"op": "make", "class": op.klass, "attrs": dict(op.attrs)})
        elif op.op == "remove":
            out.append({"op": "remove", "timetag": op.timetag})
        else:
            out.append(
                {"op": "modify", "timetag": op.timetag, "attrs": dict(op.attrs)}
            )
    return out


def firings_to_wire(firings: List[Firing]) -> List[list]:
    """Firings as ``[cycle, production, [timetags..]]`` triples — the
    canonical form the loadgen compares byte-for-byte against replay."""
    return [[f.cycle, f.production, list(f.timetags)] for f in firings]
