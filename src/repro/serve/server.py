"""The asyncio production-rule server.

One TCP listener; line-delimited JSON requests (see :mod:`protocol`).
Each connection's read loop *stages* requests synchronously — parse,
validate, enqueue onto the target session's bounded inbox — then
finishes each response in its own task, so one connection can carry
many sessions concurrently while per-session transaction order is
preserved (staging happens in arrival order, before any await).

Shutdown is graceful: the listener closes, every session drains its
queued transactions, engines release, then connections close.  A
``shutdown`` request triggers the same path remotely, which is how the
CI smoke job stops the server it started.
"""

from __future__ import annotations

import asyncio
from time import perf_counter
from typing import Any, Dict, Optional, Tuple

from ..engines import ENGINE_NAMES, mp_supported
from ..parallel.policy import POLICY_NAMES
from ..obs import context as obs_context
from ..obs import events as obs_events
from ..obs import meter as obs_meter
from ..obs import profile as obs_profile
from ..obs.export import prometheus_text
from ..ops5.errors import Ops5Error
from ..ops5.interpreter import TransactionError
from .limits import BudgetError, ServiceLimits
from .metrics import ServerMetrics
from .netcache import NetworkCache
from .protocol import (
    E_BAD_REQUEST,
    E_BUDGET,
    E_BUSY,
    E_INTERNAL,
    E_PARSE,
    E_SESSION_LIMIT,
    E_SHUTTING_DOWN,
    E_TXN,
    E_UNKNOWN_SESSION,
    MAX_LINE_BYTES,
    ProtocolError,
    decode_line,
    encode,
    error_response,
    firings_to_wire,
    ok_response,
    ops_from_wire,
)
from .session import Busy, Session, SessionCore


class ReproServer:
    """Hosts many sessions over shared compiled networks."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        limits: Optional[ServiceLimits] = None,
        mode: str = "compiled",
        meter: bool = False,
        slo: Optional[list] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.limits = (limits or ServiceLimits()).validate()
        self.netcache = NetworkCache(mode=mode)
        self.metrics = ServerMetrics()
        self.sessions: Dict[str, Session] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: set = set()
        self._next_session = 1
        self._draining = False
        self._stop: Optional[asyncio.Event] = None
        #: Fabric collectors of closed mp sessions, kept so a loadgen
        #: run can stitch one trace covering every session's workers
        #: after shutdown — (session_id, FabricCollector) pairs.
        self.retired_fabric: list = []
        self.meter_enabled = meter
        if meter:
            # Metering is process-global (the engines report into the
            # same module the sessions register with); a fresh epoch per
            # server keeps counters scoped to this server's lifetime.
            obs_meter.enable(slo)

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and listen; returns the actual (host, port)."""
        self._stop = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port, limit=MAX_LINE_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.host, self.port

    async def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` runs (locally or via request)."""
        assert self._stop is not None, "call start() first"
        await self._stop.wait()
        await self.shutdown()

    def request_shutdown(self) -> None:
        if self._stop is not None:
            self._stop.set()

    async def shutdown(self, drain: bool = True) -> None:
        """Stop listening, drain every session, release engines."""
        if self._draining:
            return
        self._draining = True
        if self._stop is not None:
            self._stop.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for session in list(self.sessions.values()):
            if drain:
                await session.drain()
            else:
                session.closing = True
                session.core.close()
            self._retire_fabric(session)
            self.metrics.sessions_closed += 1
        self.sessions.clear()
        # Reap connection handlers: clients that already hung up finish
        # on their own; anything still parked on a read gets cancelled.
        if self._conn_tasks:
            _done, pending = await asyncio.wait(self._conn_tasks, timeout=1.0)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)

    def preload(self, source: str) -> str:
        """Warm the network cache with a program; returns its key."""
        entry, _cached = self.netcache.get(source)
        return entry.key

    # -- connection handling -----------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.connections += 1
        conn_task = asyncio.current_task()
        if conn_task is not None:
            self._conn_tasks.add(conn_task)
            conn_task.add_done_callback(self._conn_tasks.discard)
        write_lock = asyncio.Lock()
        tasks = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError):
                    break  # over-long line or peer reset
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.ensure_future(
                    self._serve_one(line, writer, write_lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
                # Yield so the staged request (everything up to its
                # first await) runs before the next line is read.
                await asyncio.sleep(0)
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_one(
        self, line: bytes, writer: asyncio.StreamWriter, write_lock: asyncio.Lock
    ) -> None:
        req_id: Any = None
        self.metrics.requests += 1
        try:
            msg = decode_line(line)
            req_id = msg.get("id")
            response = await self._dispatch(msg)
        except ProtocolError as exc:
            self.metrics.errors += 1
            response = error_response(
                req_id, exc.code, str(exc), retry_after_ms=exc.retry_after_ms
            )
        except Exception as exc:  # keep the server alive on engine bugs
            self.metrics.errors += 1
            response = error_response(req_id, E_INTERNAL, f"{type(exc).__name__}: {exc}")
        async with write_lock:
            try:
                writer.write(encode(response))
                await writer.drain()
            except (ConnectionError, OSError):
                pass  # client went away; nothing to tell it

    # -- request dispatch --------------------------------------------------

    async def _dispatch(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        req_id = msg.get("id")
        rtype = msg.get("type")
        if rtype == "transact":
            # Stage synchronously (ordering!), then await completion.
            start = perf_counter()
            obs_on = obs_events.ENABLED
            t0 = obs_events.now() if obs_on else 0
            fut, ctx = self._stage_transact(msg)
            try:
                result = await fut
            except BudgetError as exc:
                raise ProtocolError(E_BUDGET, str(exc))
            except TransactionError as exc:
                raise ProtocolError(E_TXN, str(exc))
            finally:
                if obs_on:
                    # The serve-verb span: the root of the request's
                    # causal chain in a stitched trace, and groupable
                    # by session in Perfetto queries.
                    outcome = (
                        "error" if fut.cancelled() or fut.exception()
                        else fut.result().outcome
                    )
                    obs_events.span(
                        "serve", "transact", t0, obs_events.now(),
                        args=dict(ctx.ids(), outcome=outcome),
                    )
            self.metrics.cycles += result.cycles
            self.metrics.firings += len(result.firings)
            self.metrics.transactions += 1
            self.metrics.latency.record(perf_counter() - start)
            return ok_response(
                req_id,
                outcome=result.outcome,
                cycles=result.cycles,
                total_cycles=result.total_cycles,
                firings=firings_to_wire(result.firings),
                output=result.output,
                created=result.created,
                wm_size=result.wm_size,
            )
        if rtype == "open":
            return self._handle_open(msg)
        if rtype == "stats":
            return self._handle_stats(msg)
        if rtype == "profile":
            return self._handle_profile(msg)
        if rtype == "dump":
            return self._handle_dump(msg)
        if rtype == "meter":
            return self._handle_meter(msg)
        if rtype == "close":
            return await self._handle_close(msg)
        if rtype == "ping":
            return ok_response(req_id, pong=True)
        if rtype == "shutdown":
            self.request_shutdown()
            return ok_response(req_id, shutting_down=True)
        raise ProtocolError(E_BAD_REQUEST, f"unknown request type {rtype!r}")

    def _session_for(self, msg: Dict[str, Any]) -> Session:
        sid = msg.get("session")
        session = self.sessions.get(sid)
        if session is None or session.closing:
            raise ProtocolError(E_UNKNOWN_SESSION, f"no session {sid!r}")
        return session

    def _stage_transact(
        self, msg: Dict[str, Any]
    ) -> Tuple["asyncio.Future", obs_context.RequestContext]:
        if self._draining:
            raise ProtocolError(E_SHUTTING_DOWN, "server is draining")
        session = self._session_for(msg)
        ops = ops_from_wire(msg.get("ops"))
        max_cycles = msg.get("max_cycles")
        if max_cycles is not None and (
            isinstance(max_cycles, bool) or not isinstance(max_cycles, int)
        ):
            raise ProtocolError(E_BAD_REQUEST, "max_cycles must be an integer")
        deadline_ms = msg.get("deadline_ms")
        if deadline_ms is not None and not isinstance(deadline_ms, (int, float)):
            raise ProtocolError(E_BAD_REQUEST, "deadline_ms must be a number")
        # Every transact gets a request context; the session worker
        # activates it around the transaction so spans and meter
        # counters attribute to this request end to end.
        ctx = obs_context.new_request(
            session_id=session.session_id, tenant=session.core.tenant
        )
        try:
            return session.submit(ops, max_cycles, deadline_ms, ctx=ctx), ctx
        except Busy as exc:
            self.metrics.rejected_busy += 1
            raise ProtocolError(
                E_BUSY, str(exc), retry_after_ms=exc.retry_after_ms
            ) from None

    def _handle_open(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        req_id = msg.get("id")
        if self._draining:
            raise ProtocolError(E_SHUTTING_DOWN, "server is draining")
        source = msg.get("program")
        if not isinstance(source, str) or not source.strip():
            raise ProtocolError(E_BAD_REQUEST, "open requires a program text")
        strategy = msg.get("strategy", "lex")
        if strategy not in ("lex", "mea"):
            raise ProtocolError(E_BAD_REQUEST, f"unknown strategy {strategy!r}")
        engine = msg.get("engine", "sequential")
        if engine not in ENGINE_NAMES:
            raise ProtocolError(
                E_BAD_REQUEST,
                f"unknown engine {engine!r}; expected one of "
                f"{', '.join(ENGINE_NAMES)}",
            )
        workers = msg.get("workers", 2)
        if not isinstance(workers, int) or not 1 <= workers <= 16:
            raise ProtocolError(
                E_BAD_REQUEST, "workers must be an integer in 1..16"
            )
        tenant = msg.get("tenant", "default")
        if not isinstance(tenant, str) or not tenant:
            raise ProtocolError(
                E_BAD_REQUEST, "tenant must be a non-empty string"
            )
        policy = msg.get("policy")
        if policy is not None:
            if policy not in POLICY_NAMES:
                raise ProtocolError(
                    E_BAD_REQUEST,
                    f"unknown policy {policy!r}; expected one of "
                    f"{', '.join(POLICY_NAMES)}",
                )
            if engine not in ("threaded", "mp"):
                raise ProtocolError(
                    E_BAD_REQUEST,
                    f"policy {policy!r} requires engine 'threaded' or 'mp'",
                )
        if engine == "mp" and not mp_supported():
            raise ProtocolError(
                E_BAD_REQUEST,
                "engine 'mp' needs the 'fork' start method, which this "
                "host lacks; use 'threaded' or 'sequential'",
            )
        # Only the worker-pool engines take n_workers (and optionally a
        # dispatch/placement policy); sequential and corgi are
        # single-threaded by design.
        engine_opts: Optional[Dict[str, Any]] = None
        if engine in ("threaded", "mp"):
            engine_opts = {"n_workers": workers}
            if policy is not None:
                engine_opts["policy"] = policy
        if len(self.sessions) >= self.limits.max_sessions:
            self.metrics.rejected_busy += 1
            raise ProtocolError(
                E_SESSION_LIMIT,
                f"session table full ({self.limits.max_sessions})",
                retry_after_ms=self.limits.retry_after_ms,
            )
        try:
            entry, cached = self.netcache.get(source)
        except Ops5Error as exc:
            raise ProtocolError(E_PARSE, str(exc)) from None
        sid = f"s{self._next_session}"
        self._next_session += 1
        core = SessionCore(
            sid, entry, limits=self.limits, strategy=strategy,
            engine=engine, engine_opts=engine_opts, tenant=tenant,
        )
        session = Session(core)
        session.start()
        self.sessions[sid] = session
        self.metrics.sessions_opened += 1
        return ok_response(req_id, session=sid, cached=cached, key=entry.key)

    def _retire_fabric(self, session: Session) -> None:
        """Keep a closed mp session's fabric collector so one stitched
        trace can still cover its workers after the engine is gone."""
        if session.core.engine != "mp":
            return
        fabric = getattr(session.core.interp.matcher, "fabric", None)
        if fabric is not None and fabric.lanes:
            self.retired_fabric.append((session.session_id, fabric))

    async def _handle_close(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        session = self._session_for(msg)
        self.sessions.pop(session.session_id, None)
        drained = await session.drain()
        self._retire_fabric(session)
        self.metrics.sessions_closed += 1
        return ok_response(
            msg.get("id"), closed=session.session_id, drained=drained
        )

    def _handle_stats(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        req_id = msg.get("id")
        fmt = msg.get("format", "json")
        if fmt not in ("json", "prometheus"):
            raise ProtocolError(E_BAD_REQUEST, f"unknown stats format {fmt!r}")
        sid = msg.get("session")
        if sid is not None:
            session = self._session_for(msg)
            return ok_response(req_id, session=sid, stats=session.snapshot())
        if fmt == "prometheus":
            text = prometheus_text(
                self.metrics.snapshot(),
                sessions={
                    s.session_id: s.snapshot() for s in self.sessions.values()
                },
                netcache=self.netcache.stats(),
                obs={
                    "enabled": obs_events.enabled(),
                    "dropped_events": obs_events.dropped_total(),
                },
                meter=obs_meter.snapshot() if obs_meter.ENABLED else None,
            )
            return ok_response(req_id, format="prometheus", body=text)
        return ok_response(
            req_id,
            server=self.metrics.snapshot(),
            netcache=self.netcache.stats(),
            sessions={s.session_id: s.snapshot() for s in self.sessions.values()},
        )

    def _handle_dump(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        """Flight-recorder snapshot of this server process: the
        always-on ring of recent engine events (every session's engines
        feed it), for diagnosing a live server without restarting it
        with tracing on."""
        from ..obs import flight as obs_flight

        doc = obs_flight.snapshot("serve dump")
        return ok_response(
            msg.get("id"),
            flight=doc,
            obs_enabled=obs_events.enabled(),
            dropped_events=obs_events.dropped_total(),
        )

    def _handle_meter(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        """The metering snapshot: per-session and per-tenant counters,
        latency histograms with exemplars, and SLO burn rates
        (:func:`repro.obs.meter.snapshot`).  Answered even when
        metering is off — ``enabled: false`` with empty account maps —
        so scrapers need no capability probe."""
        return ok_response(
            msg.get("id"),
            enabled=obs_meter.ENABLED,
            meter=obs_meter.snapshot(),
        )

    def _handle_profile(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        """Live engine profiles: per-session match statistics, and —
        when :mod:`repro.obs` is enabled in this process — the global
        hot-spot profile built from the current event-bus snapshot."""
        req_id = msg.get("id")
        sid = msg.get("session")
        if sid is not None:
            session = self._session_for(msg)
            return ok_response(req_id, session=sid, profile=session.profile())
        payload: Dict[str, Any] = {
            "sessions": {
                s.session_id: s.profile() for s in self.sessions.values()
            },
            "netcache": self.netcache.stats(),
            "obs_enabled": obs_events.enabled(),
        }
        if obs_events.enabled():
            payload["obs"] = obs_profile.to_json(
                obs_profile.build(obs_events.snapshot())
            )
        return ok_response(req_id, **payload)
