"""Service budgets and backpressure parameters.

Why budgets: one session's cross-product explosion (e.g. Tourney's
``propose-match``, the paper's §4.2 culprit) must not starve every
other session.  Each transaction gets a *cycle budget* (resumable — an
exhausted request returns and the next one picks up where it stopped)
and a *wall-clock deadline*; each session gets a *bounded inbox* so a
flooding client is pushed back with ``retry_after_ms`` instead of
growing an unbounded queue inside the server.

Budgets above the server cap are **rejected**, not clamped: a client
asking for more than the server will ever grant should learn that
immediately rather than observe silent truncation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


class BudgetError(ValueError):
    """A request asked for more cycles/deadline than the server allows."""


@dataclass(frozen=True)
class ServiceLimits:
    """Tunable per-server limits; the defaults suit tests and demos."""

    #: Concurrent sessions the server will host.
    max_sessions: int = 256
    #: Queued (unstarted) transactions per session before backpressure.
    inbox_depth: int = 16
    #: Hard per-transaction cycle cap; larger requests are rejected.
    max_cycles_per_txn: int = 10_000
    #: Cycle budget used when a transaction does not specify one.
    default_cycles_per_txn: int = 500
    #: Maximum make/remove/modify ops in one transaction.
    max_ops_per_txn: int = 1_000
    #: Wall-clock deadline applied when a transaction names none.
    default_deadline_ms: float = 2_000.0
    #: Hard per-transaction deadline cap; larger requests are rejected.
    max_deadline_ms: float = 30_000.0
    #: Suggested client back-off when an inbox (or the session table)
    #: is full.
    retry_after_ms: float = 50.0

    def validate(self) -> "ServiceLimits":
        for name in (
            "max_sessions",
            "inbox_depth",
            "max_cycles_per_txn",
            "max_ops_per_txn",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if not 0 <= self.default_cycles_per_txn <= self.max_cycles_per_txn:
            raise ValueError(
                "default_cycles_per_txn must be within [0, max_cycles_per_txn]"
            )
        if not 0 < self.default_deadline_ms <= self.max_deadline_ms:
            raise ValueError(
                "default_deadline_ms must be within (0, max_deadline_ms]"
            )
        if self.retry_after_ms <= 0:
            raise ValueError("retry_after_ms must be positive")
        return self

    def resolve_cycles(self, requested: Optional[int]) -> int:
        """The cycle budget for one transaction; rejects over-asks."""
        if requested is None:
            return self.default_cycles_per_txn
        if requested < 0:
            raise BudgetError(f"max_cycles must be >= 0, got {requested}")
        if requested > self.max_cycles_per_txn:
            raise BudgetError(
                f"max_cycles {requested} exceeds the server cap "
                f"{self.max_cycles_per_txn}"
            )
        return requested

    def resolve_deadline_ms(self, requested: Optional[float]) -> float:
        """The wall-clock deadline for one transaction; rejects over-asks."""
        if requested is None:
            return self.default_deadline_ms
        if requested <= 0:
            raise BudgetError(f"deadline_ms must be positive, got {requested}")
        if requested > self.max_deadline_ms:
            raise BudgetError(
                f"deadline_ms {requested} exceeds the server cap "
                f"{self.max_deadline_ms}"
            )
        return requested

    def check_ops_count(self, n_ops: int) -> None:
        if n_ops > self.max_ops_per_txn:
            raise BudgetError(
                f"{n_ops} ops in one transaction exceeds the server cap "
                f"{self.max_ops_per_txn}"
            )
