"""PSM-E reproduction: Parallel OPS5 on the Encore Multimax (ICPP 1988).

A complete Python reproduction of Gupta, Forgy, Kalp, Newell & Tambe's
parallel OPS5 system: the OPS5 language, the Rete match algorithm with
linear (vs1) and global-hash-table (vs2) token memories, interpreted
and compiled test evaluation, a threaded parallel match engine with the
paper's synchronization design, and a deterministic discrete-event
simulator of the 16-processor Encore Multimax that regenerates every
table of the paper's evaluation.

Quickstart::

    from repro import Interpreter

    src = '''
    (p hello (greeting ^to <who>) --> (write hello <who>) (halt))
    (startup (make greeting ^to world))
    '''
    result = Interpreter(src).run()
    assert result.output == ["hello world"]
"""

from .ops5.astnodes import Production, Program
from .ops5.interpreter import Firing, Interpreter, RunResult
from .ops5.parser import parse_production, parse_program
from .ops5.wme import WME, WMEChange, WorkingMemory
from .rete.matcher import SequentialMatcher
from .rete.network import ReteNetwork
from .rete.trace import TraceRecorder

__version__ = "1.0.0"

__all__ = [
    "Firing",
    "Interpreter",
    "Production",
    "Program",
    "ReteNetwork",
    "RunResult",
    "SequentialMatcher",
    "TraceRecorder",
    "WME",
    "WMEChange",
    "WorkingMemory",
    "parse_production",
    "parse_program",
    "__version__",
]
