"""Experiment harness: the paper's published numbers, workload/trace
caching, experiment runners for every table, and report rendering."""

from . import paperdata
from .experiments import ALL_TABLES, ExperimentResult, run_all
from .tables import render_table
from .workloads import baseline, sim, speedup, timed_run, traced_run

__all__ = [
    "ALL_TABLES",
    "ExperimentResult",
    "baseline",
    "paperdata",
    "render_table",
    "run_all",
    "sim",
    "speedup",
    "timed_run",
    "traced_run",
]
