"""Benchmark workloads: the three programs at reproducible sizes, with
cached traces and cached simulation results.

Traces are expensive to record (a full interpreted run of the program)
and each paper table slices the same handful of simulations, so both
are memoized per process.  ``bench`` sizes are chosen so the whole
table suite regenerates in a couple of minutes while preserving the
per-change match statistics that drive every result.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..ops5.interpreter import Interpreter
from ..ops5.parser import parse_program
from ..rete.trace import MatchTrace, TraceRecorder
from ..simulator.engine import SimResult, simulate, uniprocessor_baseline
from ..simulator.machine import DEFAULT_CONFIG, MachineConfig
from ..programs import rubik, tourney, weaver

#: Benchmark sizes (kept modest; statistics per change match the full
#: sizes, see DESIGN.md).
BENCH_SIZES = {
    "weaver": dict(grid=9, n_nets=2),
    "rubik": dict(n_moves=10),
    "tourney": dict(),
    "tourney_fixed": dict(),
}


def program_source(name: str) -> str:
    if name == "weaver":
        return weaver.source(**BENCH_SIZES["weaver"])
    if name == "rubik":
        return rubik.source(**BENCH_SIZES["rubik"])
    if name == "tourney":
        return tourney.source(**BENCH_SIZES["tourney"])
    if name == "tourney_fixed":
        return tourney.fixed_source(**BENCH_SIZES["tourney_fixed"])
    raise ValueError(f"unknown workload {name!r}")


@dataclass
class WorkloadRun:
    """A completed instrumented run of one workload."""

    name: str
    trace: MatchTrace
    stats: object            # MatchStats of the run
    host_seconds: float
    cycles: int
    output: Tuple[str, ...]


_trace_cache: Dict[str, WorkloadRun] = {}
_sim_cache: Dict[tuple, SimResult] = {}
_timing_cache: Dict[tuple, Tuple[float, object]] = {}


def traced_run(name: str, max_cycles: int = 50000) -> WorkloadRun:
    """Run the workload once with trace recording (memoized)."""
    cached = _trace_cache.get(name)
    if cached is not None:
        return cached
    recorder = TraceRecorder()
    interp = Interpreter(program_source(name), recorder=recorder)
    start = time.perf_counter()
    result = interp.run(max_cycles=max_cycles)
    elapsed = time.perf_counter() - start
    run = WorkloadRun(
        name=name,
        trace=recorder.trace,
        stats=interp.stats,
        host_seconds=elapsed,
        cycles=result.cycles,
        output=tuple(result.output),
    )
    _trace_cache[name] = run
    return run


def timed_run(
    name: str, memory: str, mode: str, max_cycles: int = 50000
) -> Tuple[float, object]:
    """Wall-clock a run under the given memory/evaluation mode
    (no trace recording — recording would distort the timing).

    Returns ``(seconds, MatchStats)``, memoized.
    """
    key = (name, memory, mode)
    cached = _timing_cache.get(key)
    if cached is not None:
        return cached
    # Match time only — the paper's uniprocessor comparisons exclude
    # conflict resolution and RHS evaluation.  Best-of-two runs damps
    # host scheduling noise.
    best = None
    for _attempt in range(2):
        interp = Interpreter(program_source(name), memory=memory, mode=mode)
        interp.run(max_cycles=max_cycles)
        if best is None or interp.matcher.match_seconds < best[0]:
            best = (interp.matcher.match_seconds, interp.stats)
    _timing_cache[key] = best
    return _timing_cache[key]


def sim(
    name: str,
    n_match: int,
    n_queues: int = 1,
    lock_scheme: str = "simple",
    pipelined: bool = True,
    config: Optional[MachineConfig] = None,
) -> SimResult:
    """Simulate the workload's trace under one configuration (memoized)."""
    config = config or DEFAULT_CONFIG
    key = (name, n_match, n_queues, lock_scheme, pipelined, config)
    cached = _sim_cache.get(key)
    if cached is not None:
        return cached
    trace = traced_run(name).trace
    result = simulate(
        trace,
        n_match=n_match,
        n_queues=n_queues,
        lock_scheme=lock_scheme,
        pipelined=pipelined,
        config=config,
    )
    _sim_cache[key] = result
    return result


def baseline(name: str, lock_scheme: str = "simple", config: Optional[MachineConfig] = None) -> SimResult:
    """The paper's uniprocessor column: one match process, no
    pipelining, all the parallel machinery's overheads."""
    return sim(name, n_match=1, n_queues=1, lock_scheme=lock_scheme, pipelined=False, config=config)


def speedup(
    name: str,
    n_match: int,
    n_queues: int,
    lock_scheme: str = "simple",
    config: Optional[MachineConfig] = None,
) -> float:
    """Speed-up of a configuration relative to the uniprocessor run
    with the same lock scheme (matching the paper's methodology)."""
    base = baseline(name, lock_scheme=lock_scheme, config=config)
    run = sim(name, n_match=n_match, n_queues=n_queues, lock_scheme=lock_scheme, config=config)
    return base.match_instr / run.match_instr


def clear_caches() -> None:
    _trace_cache.clear()
    _sim_cache.clear()
    _timing_cache.clear()
