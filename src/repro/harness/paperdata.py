"""The paper's published numbers, transcribed from Tables 4-1 … 4-9.

Every benchmark prints its measured values next to these so the
paper-vs-measured comparison is mechanical.  ``PROCS`` / ``QUEUES`` are
the column headers shared by Tables 4-5/4-6/4-8 ("1+k" processes).
"""

from __future__ import annotations

PROGRAMS = ("weaver", "rubik", "tourney")

#: Match-process counts of the "1+k" columns.
PROCS = (1, 3, 5, 7, 11, 13)

#: Task-queue counts per column in the multiple-queue tables (4-6/4-8).
QUEUES_MULTI = (1, 2, 4, 8, 8, 8)

#: Task-queue counts in the single-queue tables (4-5/4-7).
QUEUES_SINGLE = (1, 1, 1, 1, 1, 1)

# Table 4-1: uniprocessor versions on Microvax-II.
TABLE_4_1 = {
    #            vs1 (s)  vs2 (s)  WM changes  node activations
    "weaver": {"vs1_s": 101.5, "vs2_s": 85.8, "wm_changes": 1528, "activations": 371173},
    "rubik": {"vs1_s": 235.2, "vs2_s": 96.9, "wm_changes": 8350, "activations": 554051},
    "tourney": {"vs1_s": 323.7, "vs2_s": 93.5, "wm_changes": 987, "activations": 72040},
}

# Table 4-2: mean tokens examined in the opposite memory (non-empty
# opposite memories only), linear vs hash, left vs right activations.
TABLE_4_2 = {
    "weaver": {"lin_left": 10.1, "hash_left": 7.7, "lin_right": 5.2, "hash_right": 1.0},
    "rubik": {"lin_left": 31.0, "hash_left": 3.8, "lin_right": 1.6, "hash_right": 1.8},
    "tourney": {"lin_left": 47.6, "hash_left": 5.9, "lin_right": 270.1, "hash_right": 23.3},
}

# Table 4-3: mean tokens examined in the same memory for deletes.
TABLE_4_3 = {
    "weaver": {"lin_left": 6.2, "hash_left": 3.6, "lin_right": 7.0, "hash_right": 5.1},
    "rubik": {"lin_left": 23.5, "hash_left": 2.6, "lin_right": 8.1, "hash_right": 3.7},
    "tourney": {"lin_left": 254.4, "hash_left": 40.1, "lin_right": 3.8, "hash_right": 2.9},
}

# Table 4-4: Franz-Lisp-based vs C-based (vs2) implementation.
TABLE_4_4 = {
    "weaver": {"lisp_s": 1104.0, "vs2_s": 85.8, "speedup": 12.9},
    "rubik": {"lisp_s": 1175.0, "vs2_s": 96.9, "speedup": 12.1},
    "tourney": {"lisp_s": 2302.0, "vs2_s": 93.5, "speedup": 24.6},
}

# Table 4-5: speed-ups, single task queue, simple hash-table locks.
TABLE_4_5 = {
    "weaver": {"uniproc_s": 119.9, "speedups": (1.02, 2.55, 3.65, 3.97, 3.91, 3.90)},
    "rubik": {"uniproc_s": 257.9, "speedups": (1.00, 2.80, 4.47, 5.48, 6.18, 6.30)},
    "tourney": {"uniproc_s": 98.0, "speedups": (1.10, 1.90, 2.70, 2.59, 2.43, 2.41)},
}

# Table 4-6: speed-ups, multiple task queues (1/2/4/8/8/8), simple locks.
TABLE_4_6 = {
    "weaver": {"uniproc_s": 118.2, "speedups": (1.02, 2.88, 4.51, 5.80, 7.56, 8.15)},
    "rubik": {"uniproc_s": 253.6, "speedups": (1.07, 3.93, 6.41, 8.49, 10.66, 11.42)},
    "tourney": {"uniproc_s": 97.7, "speedups": (1.12, 2.02, 2.17, 2.33, 2.47, 2.30)},
}

# Table 4-7: contention for the single central task queue — mean spins
# on the queue lock before access.
TABLE_4_7 = {
    "weaver": (1.03, 2.68, 6.31, 11.58, 20.05, 24.62),
    "rubik": (1.01, 2.63, 5.92, 10.58, 22.66, 26.89),
    "tourney": (1.00, 1.57, 2.53, 3.94, 7.22, 8.93),
}

# Table 4-8: speed-ups, multiple queues + MRSW hash-table locks.
TABLE_4_8 = {
    "weaver": {"uniproc_s": 134.9, "speedups": (1.02, 3.02, 4.63, 6.14, 8.18, 9.02)},
    "rubik": {"uniproc_s": 289.4, "speedups": (1.04, 3.98, 6.40, 9.01, 11.33, 12.35)},
    "tourney": {"uniproc_s": 100.8, "speedups": (1.07, 2.06, 2.58, 2.40, 2.57, 2.67)},
}

# Table 4-9: contention for token hash-table line locks — mean spins
# before access, by activation side, 6 vs 12 match processes.
TABLE_4_9 = {
    "weaver": {
        "simple": {6: {"left": 20.4, "right": 1.0}, 12: {"left": 51.2, "right": 1.4}},
        "mrsw": {6: {"left": 4.7, "right": 2.0}, 12: {"left": 15.7, "right": 2.1}},
    },
    "rubik": {
        "simple": {6: {"left": 11.0, "right": 1.1}, 12: {"left": 23.0, "right": 1.5}},
        "mrsw": {6: {"left": 3.7, "right": 2.0}, 12: {"left": 12.9, "right": 2.1}},
    },
    "tourney": {
        "simple": {6: {"left": 137.1, "right": 4.9}, 12: {"left": 377.7, "right": 15.7}},
        "mrsw": {6: {"left": 49.9, "right": 2.9}, 12: {"left": 134.9, "right": 33.3}},
    },
}

#: §4.2: rewriting Tourney's two cross-product productions raised the
#: 1+13 speed-up from 2.7× to 5.1×.
TOURNEY_FIX = {"before": 2.7, "after": 5.1}

#: §4.1: mean task durations (µs on the 0.5 MIPS Microvax-II).
MEAN_TASK_US = {"weaver": 230.0, "rubik": 175.0, "tourney": 1300.0}

#: §5: task lengths range over 100-700 machine instructions.
TASK_INSTR_RANGE = (100, 700)

#: Rule counts (§4 intro).
RULE_COUNTS = {"weaver": 637, "rubik": 70, "tourney": 17}
