"""Plain-text table rendering for paper-vs-measured reports."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """A monospace table with a title bar, aligned on column widths."""
    str_rows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [title, "=" * len(title)]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def paired_row(label: str, paper: Sequence, measured: Sequence) -> List[List[str]]:
    """Two rows per program: the paper's numbers and ours."""
    return [
        [f"{label} (paper)"] + [_fmt(v) for v in paper],
        [f"{label} (ours)"] + [_fmt(v) for v in measured],
    ]
