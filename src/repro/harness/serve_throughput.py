"""Service-layer throughput: transaction rate vs concurrent sessions.

Not one of the paper's tables.  The paper parallelizes *within* one
recognize-act cycle; the service layer multiplexes *independent*
sessions over one shared compiled network (see docs/SERVICE.md).  This
experiment measures that complementary axis: aggregate transactions
per second and p95 latency as the concurrent session count grows, per
scenario, against an in-process server.

Deliberately not in ``ALL_TABLES`` — wall-clock throughput is
machine-dependent, so ``repro tables`` stays reproducible.  Run it via
``python -c "from repro.harness.serve_throughput import serve_throughput;
print(serve_throughput().report)"`` or the benchmark suite.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Sequence

from ..serve.loadgen import run_loadgen
from .experiments import ExperimentResult
from .tables import render_table


def serve_throughput(
    session_counts: Sequence[int] = (1, 4, 12),
    transactions: int = 20,
    scenarios: Sequence[str] = ("blocks", "tourney"),
) -> ExperimentResult:
    """Scale session count per scenario and record aggregate rates."""
    data: Dict = {}
    rows = []
    for scenario in scenarios:
        for n in session_counts:
            report = asyncio.run(
                run_loadgen(
                    scenario=scenario,
                    sessions=n,
                    transactions=transactions,
                    spawn=True,
                )
            )
            wall = report.wall_seconds or 1e-9
            entry = {
                "txn_s": report.txns_ok / wall,
                "cycles_s": report.total_cycles / wall,
                "p95_ms": report.latency.get("p95_ms", 0.0),
                "errors": report.errors,
                "netcache_hits": report.netcache.get("hits", 0),
            }
            data[(scenario, n)] = entry
            rows.append(
                [scenario, n, entry["txn_s"], entry["cycles_s"],
                 entry["p95_ms"], entry["errors"]]
            )
    report_text = render_table(
        "Service throughput: aggregate txn/s vs concurrent sessions",
        ["scenario", "sessions", "txn/s", "cycles/s", "p95 ms", "errors"],
        rows,
    )
    return ExperimentResult("serve-throughput", data, report_text)
