"""Experiment runners: one function per table/figure of the paper.

Each returns an :class:`ExperimentResult` holding the measured data,
the paper's data, and a rendered paper-vs-measured text table.  The
``benchmarks/`` suite calls these and asserts the *shape* criteria
listed in DESIGN.md (who wins, rough factors, crossovers) — absolute
numbers differ because our substrate is a simulator, not the authors'
Multimax (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from . import paperdata
from .paperdata import PROCS, PROGRAMS, QUEUES_MULTI
from .tables import render_table
from .workloads import baseline, sim, speedup, timed_run, traced_run


@dataclass
class ExperimentResult:
    """Measured data for one experiment plus its report."""

    table_id: str
    data: Dict = field(default_factory=dict)
    report: str = ""

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.report


# ---------------------------------------------------------------------------
# Table 4-1: uniprocessor vs1 (linear) vs vs2 (hash)
# ---------------------------------------------------------------------------


def table_4_1() -> ExperimentResult:
    data: Dict[str, Dict] = {}
    rows = []
    for prog in PROGRAMS:
        vs1_s, stats1 = timed_run(prog, memory="linear", mode="compiled")
        vs2_s, stats2 = timed_run(prog, memory="hash", mode="compiled")
        paper = paperdata.TABLE_4_1[prog]
        data[prog] = {
            "vs1_s": vs1_s,
            "vs2_s": vs2_s,
            "wm_changes": stats2.wme_changes,
            "activations": stats2.node_activations,
            "paper": paper,
        }
        rows.append([prog + " (paper)", paper["vs1_s"], paper["vs2_s"],
                     paper["vs1_s"] / paper["vs2_s"],
                     paper["wm_changes"], paper["activations"]])
        rows.append([prog + " (ours)", vs1_s, vs2_s,
                     vs1_s / vs2_s if vs2_s else 0.0,
                     stats2.wme_changes, stats2.node_activations])
    report = render_table(
        "Table 4-1: uniprocessor versions (vs1 linear vs vs2 hash memories)",
        ["program", "vs1 (s)", "vs2 (s)", "vs1/vs2", "WM changes", "activations"],
        rows,
    )
    return ExperimentResult("4-1", data, report)


# ---------------------------------------------------------------------------
# Tables 4-2 / 4-3: tokens examined
# ---------------------------------------------------------------------------


def table_4_2() -> ExperimentResult:
    data: Dict[str, Dict] = {}
    rows = []
    for prog in PROGRAMS:
        _s1, lin = timed_run(prog, memory="linear", mode="compiled")
        _s2, hsh = timed_run(prog, memory="hash", mode="compiled")
        paper = paperdata.TABLE_4_2[prog]
        measured = {
            "lin_left": lin.mean_opp_left,
            "hash_left": hsh.mean_opp_left,
            "lin_right": lin.mean_opp_right,
            "hash_right": hsh.mean_opp_right,
        }
        data[prog] = {"measured": measured, "paper": paper}
        rows.append([prog + " (paper)", paper["lin_left"], paper["hash_left"],
                     paper["lin_right"], paper["hash_right"]])
        rows.append([prog + " (ours)", measured["lin_left"], measured["hash_left"],
                     measured["lin_right"], measured["hash_right"]])
    report = render_table(
        "Table 4-2: mean tokens examined in the opposite memory",
        ["program", "lin left", "hash left", "lin right", "hash right"],
        rows,
    )
    return ExperimentResult("4-2", data, report)


def table_4_3() -> ExperimentResult:
    data: Dict[str, Dict] = {}
    rows = []
    for prog in PROGRAMS:
        _s1, lin = timed_run(prog, memory="linear", mode="compiled")
        _s2, hsh = timed_run(prog, memory="hash", mode="compiled")
        paper = paperdata.TABLE_4_3[prog]
        measured = {
            "lin_left": lin.mean_same_del_left,
            "hash_left": hsh.mean_same_del_left,
            "lin_right": lin.mean_same_del_right,
            "hash_right": hsh.mean_same_del_right,
        }
        data[prog] = {"measured": measured, "paper": paper}
        rows.append([prog + " (paper)", paper["lin_left"], paper["hash_left"],
                     paper["lin_right"], paper["hash_right"]])
        rows.append([prog + " (ours)", measured["lin_left"], measured["hash_left"],
                     measured["lin_right"], measured["hash_right"]])
    report = render_table(
        "Table 4-3: mean tokens examined in the same memory for deletes",
        ["program", "lin left", "hash left", "lin right", "hash right"],
        rows,
    )
    return ExperimentResult("4-3", data, report)


# ---------------------------------------------------------------------------
# Table 4-4: interpreted (Lisp analogue) vs compiled (C analogue)
# ---------------------------------------------------------------------------


def table_4_4() -> ExperimentResult:
    data: Dict[str, Dict] = {}
    rows = []
    for prog in PROGRAMS:
        lisp_s, _ = timed_run(prog, memory="linear", mode="interpreted")
        vs2_s, _ = timed_run(prog, memory="hash", mode="compiled")
        paper = paperdata.TABLE_4_4[prog]
        ratio = lisp_s / vs2_s if vs2_s else 0.0
        data[prog] = {"lisp_s": lisp_s, "vs2_s": vs2_s, "speedup": ratio, "paper": paper}
        rows.append([prog + " (paper)", paper["lisp_s"], paper["vs2_s"], paper["speedup"]])
        rows.append([prog + " (ours)", lisp_s, vs2_s, ratio])
    report = render_table(
        "Table 4-4: interpreted+linear ('Lisp') vs compiled+hash (vs2)",
        ["program", "interp (s)", "vs2 (s)", "speed-up"],
        rows,
    )
    return ExperimentResult("4-4", data, report)


# ---------------------------------------------------------------------------
# Tables 4-5 / 4-6 / 4-8: parallel speed-ups
# ---------------------------------------------------------------------------


def _speedup_table(
    table_id: str,
    title: str,
    queues: Sequence[int],
    lock_scheme: str,
    paper_table: Dict,
) -> ExperimentResult:
    data: Dict[str, Dict] = {}
    rows = []
    for prog in PROGRAMS:
        base = baseline(prog, lock_scheme=lock_scheme)
        speedups = [
            speedup(prog, n_match=k, n_queues=q, lock_scheme=lock_scheme)
            for k, q in zip(PROCS, queues)
        ]
        paper = paper_table[prog]
        data[prog] = {
            "uniproc_s": base.match_seconds,
            "speedups": speedups,
            "paper": paper,
        }
        rows.append([prog + " (paper)", paper["uniproc_s"]] + list(paper["speedups"]))
        rows.append([prog + " (ours)", base.match_seconds] + speedups)
    headers = ["program", "uniproc (s)"] + [
        f"1+{k}/{q}q" for k, q in zip(PROCS, queues)
    ]
    return ExperimentResult(table_id, data, render_table(title, headers, rows))


def table_4_5() -> ExperimentResult:
    return _speedup_table(
        "4-5",
        "Table 4-5: speed-up, single task queue, simple hash-table locks",
        paperdata.QUEUES_SINGLE,
        "simple",
        paperdata.TABLE_4_5,
    )


def table_4_6() -> ExperimentResult:
    return _speedup_table(
        "4-6",
        "Table 4-6: speed-up, multiple task queues, simple hash-table locks",
        QUEUES_MULTI,
        "simple",
        paperdata.TABLE_4_6,
    )


def table_4_8() -> ExperimentResult:
    return _speedup_table(
        "4-8",
        "Table 4-8: speed-up, multiple task queues, MRSW hash-table locks",
        QUEUES_MULTI,
        "mrsw",
        paperdata.TABLE_4_8,
    )


# ---------------------------------------------------------------------------
# Table 4-7: task-queue contention
# ---------------------------------------------------------------------------


def table_4_7() -> ExperimentResult:
    data: Dict[str, Dict] = {}
    rows = []
    for prog in PROGRAMS:
        spins = [
            sim(prog, n_match=k, n_queues=1, lock_scheme="simple").queue_stats.mean_spins
            for k in PROCS
        ]
        paper = paperdata.TABLE_4_7[prog]
        data[prog] = {"spins": spins, "paper": paper}
        rows.append([prog + " (paper)"] + list(paper))
        rows.append([prog + " (ours)"] + spins)
    headers = ["program"] + [f"1+{k}" for k in PROCS]
    report = render_table(
        "Table 4-7: mean spins on the central task-queue lock (1 queue)",
        headers,
        rows,
    )
    return ExperimentResult("4-7", data, report)


# ---------------------------------------------------------------------------
# Table 4-9: hash-table line-lock contention
# ---------------------------------------------------------------------------


def table_4_9() -> ExperimentResult:
    data: Dict[str, Dict] = {}
    rows = []
    for prog in PROGRAMS:
        entry: Dict = {"paper": paperdata.TABLE_4_9[prog]}
        for scheme in ("simple", "mrsw"):
            for procs in (6, 12):
                run = sim(prog, n_match=procs, n_queues=8, lock_scheme=scheme)
                entry[(scheme, procs)] = {
                    "left": run.line_left.mean_spins,
                    "right": run.line_right.mean_spins,
                    "requeues": run.requeues,
                }
        data[prog] = entry
        paper = entry["paper"]
        rows.append(
            [prog + " (paper)",
             paper["simple"][6]["left"], paper["simple"][6]["right"],
             paper["simple"][12]["left"], paper["simple"][12]["right"],
             paper["mrsw"][6]["left"], paper["mrsw"][6]["right"],
             paper["mrsw"][12]["left"], paper["mrsw"][12]["right"]]
        )
        rows.append(
            [prog + " (ours)",
             entry[("simple", 6)]["left"], entry[("simple", 6)]["right"],
             entry[("simple", 12)]["left"], entry[("simple", 12)]["right"],
             entry[("mrsw", 6)]["left"], entry[("mrsw", 6)]["right"],
             entry[("mrsw", 12)]["left"], entry[("mrsw", 12)]["right"]]
        )
    headers = [
        "program",
        "smp6 L", "smp6 R", "smp12 L", "smp12 R",
        "mrsw6 L", "mrsw6 R", "mrsw12 L", "mrsw12 R",
    ]
    report = render_table(
        "Table 4-9: mean spins on token hash-table line locks",
        headers,
        rows,
    )
    return ExperimentResult("4-9", data, report)


# ---------------------------------------------------------------------------
# §4.2: the Tourney cross-product fix
# ---------------------------------------------------------------------------


def tourney_fix() -> ExperimentResult:
    before = speedup("tourney", n_match=13, n_queues=8, lock_scheme="simple")
    after = speedup("tourney_fixed", n_match=13, n_queues=8, lock_scheme="simple")
    paper = paperdata.TOURNEY_FIX
    data = {"before": before, "after": after, "paper": paper}
    rows = [
        ["tourney (paper)", paper["before"], paper["after"], paper["after"] / paper["before"]],
        ["tourney (ours)", before, after, after / before if before else 0.0],
    ]
    report = render_table(
        "§4.2: rewriting Tourney's two cross-product productions (1+13, 8 queues)",
        ["program", "before", "after", "gain"],
        rows,
    )
    return ExperimentResult("tourney-fix", data, report)


# ---------------------------------------------------------------------------
# §4.1: mean task durations
# ---------------------------------------------------------------------------


def task_durations() -> ExperimentResult:
    from ..simulator.machine import DEFAULT_CONFIG, task_cost

    data: Dict[str, Dict] = {}
    rows = []
    for prog in PROGRAMS:
        run = traced_run(prog)
        costs = [task_cost(t, DEFAULT_CONFIG) for t in run.trace.tasks]
        mean_instr = sum(costs) / len(costs) if costs else 0.0
        paper_us = paperdata.MEAN_TASK_US[prog]
        paper_instr = paper_us * 0.5  # 0.5 MIPS Microvax
        data[prog] = {"mean_instr": mean_instr, "paper_instr": paper_instr}
        rows.append([prog, paper_instr, mean_instr])
    report = render_table(
        "§4.1: mean task duration (instructions)",
        ["program", "paper (instr @0.5MIPS)", "ours (instr)"],
        rows,
    )
    return ExperimentResult("task-durations", data, report)


ALL_TABLES = {
    "4-1": table_4_1,
    "4-2": table_4_2,
    "4-3": table_4_3,
    "4-4": table_4_4,
    "4-5": table_4_5,
    "4-6": table_4_6,
    "4-7": table_4_7,
    "4-8": table_4_8,
    "4-9": table_4_9,
    "tourney-fix": tourney_fix,
    "task-durations": task_durations,
}


def run_all() -> List[ExperimentResult]:
    """Regenerate every table (used by ``examples/full_reproduction.py``)."""
    return [fn() for fn in ALL_TABLES.values()]
