"""Rete network node types.

The four node kinds of the paper (§2.2), with memory nodes *coalesced*
into the two-input nodes below them (§3.1) — a node's left/right
memories live in the pluggable memory system, keyed by the node id, not
in separate memory-node objects:

* :class:`ConstantTestNode` — one-input nodes testing constant parts of
  a condition element (shared between productions);
* :class:`AlphaTerminal` — the exit of a constant-test chain, fanning a
  matching WME out to two-input node inputs;
* :class:`JoinNode` — coalesced memory + two-input node for a positive
  condition element;
* :class:`NotNode` — coalesced memory + two-input node for a *negated*
  condition element (keeps match counts on its left tokens);
* :class:`TerminalNode` — one per production; emits conflict-set deltas.

``activate`` methods contain the pure match logic.  They read and write
memories through the context object and *return* the resulting child
activations instead of recursing, so the sequential matcher, the
threaded parallel engine and the trace recorder can each drive
scheduling their own way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..ops5.astnodes import Production
from ..ops5.wme import WME
from .memories import LEFT, RIGHT, NotEntry
from .token import ADD, DELETE, Token


@dataclass
class Activation:
    """One schedulable unit of match work: a token arriving at a node.

    This is the paper's *task*.  ``side`` is ``'L'``/``'R'`` for
    two-input nodes and ``'L'`` for terminals.
    """

    node: "BetaNode"
    side: str
    sign: int
    token: Token

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = "+" if self.sign == ADD else "-"
        return f"<{self.node.kind}#{self.node.node_id} {self.side} {s}{self.token}>"


@dataclass
class CSDelta:
    """A conflict-set change produced by a terminal node."""

    production: Production
    token: Token
    sign: int


class MatchContext:
    """Everything node activation logic needs: memories, stats, CS sink.

    ``strict`` controls what a two-input node does when a ``-`` token
    finds no stored ``+`` twin: in the sequential matcher (in-order
    processing) that is a bug and raises; the parallel engine runs with
    ``strict=False`` and a conjugate-aware memory wrapper that parks the
    early delete on an extra-deletes list (§3.2).
    """

    __slots__ = (
        "memory",
        "stats",
        "cs_deltas",
        "strict",
        "tracing",
        "last_line",
        "last_opp_examined",
        "last_same_examined",
    )

    def __init__(self, memory, stats, strict: bool = True, tracing: bool = False) -> None:
        self.memory = memory
        self.stats = stats
        self.strict = strict
        self.tracing = tracing
        self.cs_deltas: List[CSDelta] = []
        # Per-activation probes consumed by the trace recorder.
        self.last_line = -1
        self.last_opp_examined = 0
        self.last_same_examined = 0


# ---------------------------------------------------------------------------
# Alpha network
# ---------------------------------------------------------------------------


class ConstantTestNode:
    """A one-input node applying one constant/intra-element test."""

    __slots__ = ("node_id", "desc", "test", "children", "terminals")

    def __init__(self, node_id: int, desc: tuple, test: Callable[[WME], bool]) -> None:
        self.node_id = node_id
        self.desc = desc
        self.test = test
        self.children: List[ConstantTestNode] = []
        self.terminals: List[AlphaTerminal] = []


class AlphaTerminal:
    """End of a constant-test chain: routes matching WMEs to beta inputs.

    ``successors`` is a list of ``(node, side)`` pairs; ``side`` says
    whether the WME enters the two-input node's left input (only for the
    *first* CE of a production, whose alpha output feeds the left memory
    of the first two-input node directly, as in Figure 2-2) or its right
    input.
    """

    __slots__ = ("alpha_id", "successors")

    def __init__(self, alpha_id: int) -> None:
        self.alpha_id = alpha_id
        self.successors: List[Tuple["BetaNode", str]] = []


# ---------------------------------------------------------------------------
# Beta network
# ---------------------------------------------------------------------------


class BetaNode:
    """Common base for two-input and terminal nodes."""

    kind = "beta"

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.children: List[BetaNode] = []

    def activate(self, ctx: MatchContext, act: Activation) -> List[Activation]:
        raise NotImplementedError

    def uses_line(self) -> bool:
        """Whether activations of this node touch a hash-table line."""
        return False


class JoinNode(BetaNode):
    """Coalesced memory + two-input node for a positive CE.

    ``tests`` holds the full descriptor list; ``eq_descs`` the subset of
    plain equality tests that form the hash key.  ``tests_fn`` evaluates
    the *residual* tests when hash memories pre-filter on the key, and
    ``all_tests_fn`` evaluates everything for linear memories.
    """

    kind = "join"

    def __init__(
        self,
        node_id: int,
        tests: Sequence[tuple],
        eq_descs: Sequence[tuple],
        tests_fn: Callable,
        all_tests_fn: Callable,
        left_key_fn: Callable,
        right_key_fn: Callable,
    ) -> None:
        super().__init__(node_id)
        self.tests = tuple(tests)
        self.eq_descs = tuple(eq_descs)
        self.tests_fn = tests_fn
        self.all_tests_fn = all_tests_fn
        self.left_key_fn = left_key_fn
        self.right_key_fn = right_key_fn

    def uses_line(self) -> bool:
        return True

    def key_for(self, side: str, token: Token) -> tuple:
        if side == LEFT:
            return self.left_key_fn(token.wmes)
        return self.right_key_fn(token.wmes[-1])

    def _filter_fn(self, memory) -> Callable:
        # Hash memories already guarantee the equality tests via the
        # bucket key; linear memories must re-check everything.
        return self.tests_fn if memory.kind == "hash" else self.all_tests_fn

    def activate(self, ctx: MatchContext, act: Activation) -> List[Activation]:
        key = self.key_for(act.side, act.token)
        proceed = self.update_memory(ctx, act, key)
        if not proceed:
            return []
        return self.search_opposite(ctx, act, key)

    def update_memory(self, ctx: MatchContext, act: Activation, key: tuple) -> bool:
        """Phase 1 (under the modification lock in the parallel engine):
        add/delete the token in this node's memory.  Returns False when
        the activation should stop (conjugate-pair annihilation or a
        parked early delete)."""
        memory = ctx.memory
        stats = ctx.stats
        side = act.side
        token = act.token
        stats.record_activation("join")
        if ctx.tracing:
            ctx.last_line = memory.line_of(self.node_id, key)
            ctx.last_opp_examined = 0
            ctx.last_same_examined = 0

        if act.sign == ADD:
            live = memory.insert(self.node_id, side, key, token)
            if live is False:
                # Annihilated by a parked early delete (conjugate pair).
                return False
        else:
            found, examined = memory.remove(self.node_id, side, key, token.key)
            if examined:
                stats.record_same_delete(side, examined)
            if ctx.tracing:
                ctx.last_same_examined = examined
            if found is None:
                if ctx.strict:
                    raise RuntimeError(
                        f"delete of unknown token {token} at join node {self.node_id}"
                    )
                # Parked on the extra-deletes list by the conjugate
                # memory wrapper; do not join.
                return False
        return True

    def search_opposite(self, ctx: MatchContext, act: Activation, key: tuple) -> List[Activation]:
        """Phase 2 (outside the modification lock): scan the opposite
        memory for consistent tokens and build child activations."""
        memory = ctx.memory
        stats = ctx.stats
        side = act.side
        token = act.token
        opposite, examined = memory.lookup_opposite(self.node_id, side, key)
        if ctx.tracing:
            ctx.last_opp_examined = examined
        other = RIGHT if side == LEFT else LEFT
        if memory.side_size(self.node_id, other) > 0:
            stats.record_opposite(side, examined)
        if not opposite:
            return []

        passes = self._filter_fn(memory)
        out: List[Activation] = []
        if side == LEFT:
            wmes = token.wmes
            for item in list(opposite):
                w = item.wmes[0]
                if passes(wmes, w):
                    out.extend(
                        Activation(child, _input_side(child, self), act.sign, token.extend(w))
                        for child in self.children
                    )
        else:
            w = token.wmes[-1]
            for item in list(opposite):
                if passes(item.wmes, w):
                    out.extend(
                        Activation(child, _input_side(child, self), act.sign, item.extend(w))
                        for child in self.children
                    )
        stats.tokens_emitted += len(out)
        return out


class NotNode(BetaNode):
    """Coalesced memory + two-input node for a negated CE.

    Left tokens are stored wrapped in :class:`NotEntry` carrying the
    count of matching right WMEs; a left token is live downstream iff
    its count is zero.
    """

    kind = "not"

    def __init__(
        self,
        node_id: int,
        tests: Sequence[tuple],
        eq_descs: Sequence[tuple],
        tests_fn: Callable,
        all_tests_fn: Callable,
        left_key_fn: Callable,
        right_key_fn: Callable,
    ) -> None:
        super().__init__(node_id)
        self.tests = tuple(tests)
        self.eq_descs = tuple(eq_descs)
        self.tests_fn = tests_fn
        self.all_tests_fn = all_tests_fn
        self.left_key_fn = left_key_fn
        self.right_key_fn = right_key_fn

    def uses_line(self) -> bool:
        return True

    def key_for(self, side: str, token: Token) -> tuple:
        if side == LEFT:
            return self.left_key_fn(token.wmes)
        return self.right_key_fn(token.wmes[-1])

    def _filter_fn(self, memory) -> Callable:
        return self.tests_fn if memory.kind == "hash" else self.all_tests_fn

    def _emit(self, sign: int, token: Token) -> List[Activation]:
        return [
            Activation(child, _input_side(child, self), sign, token)
            for child in self.children
        ]

    def activate(self, ctx: MatchContext, act: Activation) -> List[Activation]:
        memory = ctx.memory
        stats = ctx.stats
        side = act.side
        token = act.token
        key = self.key_for(side, token)
        stats.record_activation("not")
        if ctx.tracing:
            ctx.last_line = memory.line_of(self.node_id, key)
            ctx.last_opp_examined = 0
            ctx.last_same_examined = 0
        passes = self._filter_fn(memory)
        out: List[Activation] = []

        if side == LEFT:
            if act.sign == ADD:
                opposite, examined = memory.lookup_opposite(self.node_id, side, key)
                if ctx.tracing:
                    ctx.last_opp_examined = examined
                if memory.side_size(self.node_id, RIGHT) > 0:
                    stats.record_opposite(side, examined)
                wmes = token.wmes
                count = sum(1 for item in opposite if passes(wmes, item.wmes[0]))
                live = memory.insert(self.node_id, side, key, NotEntry(token, count))
                if live is False:
                    return []
                if count == 0:
                    out = self._emit(ADD, token)
            else:
                entry, examined = memory.remove(self.node_id, side, key, token.key)
                if examined:
                    stats.record_same_delete(side, examined)
                if ctx.tracing:
                    ctx.last_same_examined = examined
                if entry is None:
                    if ctx.strict:
                        raise RuntimeError(
                            f"delete of unknown token {token} at not node {self.node_id}"
                        )
                    return []
                if entry.count == 0:
                    out = self._emit(DELETE, token)
        else:
            w = token.wmes[-1]
            if act.sign == ADD:
                live = memory.insert(self.node_id, side, key, token)
                if live is False:
                    return []
            else:
                found, examined = memory.remove(self.node_id, side, key, token.key)
                if examined:
                    stats.record_same_delete(side, examined)
                if ctx.tracing:
                    ctx.last_same_examined = examined
                if found is None:
                    if ctx.strict:
                        raise RuntimeError(
                            f"delete of unknown token {token} at not node {self.node_id}"
                        )
                    return []
            lefts, examined = memory.lookup_opposite(self.node_id, side, key)
            if ctx.tracing:
                ctx.last_opp_examined = examined
            if memory.side_size(self.node_id, LEFT) > 0:
                stats.record_opposite(side, examined)
            for entry in lefts:
                if passes(entry.token.wmes, w):
                    if act.sign == ADD:
                        entry.count += 1
                        if entry.count == 1:
                            out.extend(self._emit(DELETE, entry.token))
                    else:
                        entry.count -= 1
                        if entry.count == 0:
                            out.extend(self._emit(ADD, entry.token))
        stats.tokens_emitted += len(out)
        return out


class TerminalNode(BetaNode):
    """One per production: converts arriving tokens into CS deltas."""

    kind = "term"

    def __init__(self, node_id: int, production: Production) -> None:
        super().__init__(node_id)
        self.production = production

    def activate(self, ctx: MatchContext, act: Activation) -> List[Activation]:
        ctx.stats.record_activation("term")
        ctx.stats.cs_changes += 1
        if ctx.tracing:
            ctx.last_line = -1
            ctx.last_opp_examined = 0
            ctx.last_same_examined = 0
        ctx.cs_deltas.append(CSDelta(self.production, act.token, act.sign))
        return []


def _input_side(child: BetaNode, parent: BetaNode) -> str:
    """Beta-to-beta edges always feed the child's *left* input."""
    return LEFT
