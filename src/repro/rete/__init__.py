"""The Rete match algorithm: network compiler, node types, linear (vs1)
and hash-table (vs2) token memories, interpreted and compiled test
evaluation, instrumentation, and task-trace capture."""

from .explain import describe_network, sharing_report, to_dot
from .matcher import SequentialMatcher
from .memories import HashMemorySystem, LinearMemorySystem, make_memory
from .network import ReteNetwork
from .stats import MatchStats
from .token import ADD, DELETE, Token
from .trace import MatchTrace, TraceRecorder

__all__ = [
    "ADD",
    "describe_network",
    "sharing_report",
    "to_dot",
    "DELETE",
    "HashMemorySystem",
    "LinearMemorySystem",
    "MatchStats",
    "MatchTrace",
    "ReteNetwork",
    "SequentialMatcher",
    "Token",
    "TraceRecorder",
    "make_memory",
]
