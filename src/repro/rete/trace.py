"""Task-graph capture for trace-driven multiprocessor simulation.

While the sequential matcher runs, a :class:`TraceRecorder` records one
:class:`TaskRecord` per node activation — the paper's schedulable unit
of work — preserving the parent/child structure (which activation's
output tokens spawned which tasks), the hash-table line each two-input
activation touches, and the size features (tokens examined, output
tokens) that the simulator's instruction-cost model consumes.

The recorded trace is a faithful *task DAG* of the real match: the
Encore simulator replays it under different process counts, task-queue
counts and lock schemes.  This mirrors the methodology of Gupta's
thesis (ref [4] of the paper), where parallel OPS5 performance was
first studied by trace-driven simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

# Task kinds
ROOT = "root"      # a WM change entering the network (constant-test work)
JOIN = "join"
NOT = "not"
TERM = "term"


@dataclass
class TaskRecord:
    """One node activation = one schedulable task."""

    tid: int
    parent: int              # -1 for first-level tasks (children of a change)
    kind: str
    node_id: int
    side: str                # 'L' or 'R' ('-' for terminals)
    sign: int
    line: int                # hash-table line touched (-1 if none)
    opp_examined: int        # tokens scanned in the opposite memory
    same_examined: int       # tokens scanned locating a delete target
    n_children: int
    change_seq: int          # index of the owning WM change within its cycle


@dataclass
class ChangeRecord:
    """One WM change: the root of a subtree of tasks."""

    seq: int                 # position within the cycle (RHS action order)
    n_const_tests: int
    n_alpha_hits: int
    first_level: List[int] = field(default_factory=list)   # tids


@dataclass
class CycleRecord:
    """One recognize-act cycle."""

    index: int
    production: str
    n_rhs_actions: int
    changes: List[ChangeRecord] = field(default_factory=list)
    cs_deltas: int = 0


@dataclass
class MatchTrace:
    """The full task DAG of one program run."""

    cycles: List[CycleRecord] = field(default_factory=list)
    tasks: List[TaskRecord] = field(default_factory=list)

    @property
    def n_tasks(self) -> int:
        return len(self.tasks)

    @property
    def n_changes(self) -> int:
        return sum(len(c.changes) for c in self.cycles)

    def children_index(self) -> List[List[int]]:
        """tid -> list of child tids (built on demand for the simulator)."""
        children: List[List[int]] = [[] for _ in self.tasks]
        for task in self.tasks:
            if task.parent >= 0:
                children[task.parent].append(task.tid)
        return children

    def summary(self) -> dict:
        per_kind: dict = {}
        for t in self.tasks:
            per_kind[t.kind] = per_kind.get(t.kind, 0) + 1
        return {
            "cycles": len(self.cycles),
            "changes": self.n_changes,
            "tasks": self.n_tasks,
            "by_kind": per_kind,
        }


class TraceRecorder:
    """Collects a :class:`MatchTrace`; wired into the sequential matcher."""

    def __init__(self) -> None:
        self.trace = MatchTrace()
        self._cycle: Optional[CycleRecord] = None
        self._change: Optional[ChangeRecord] = None

    # -- cycle / change boundaries (called by the interpreter/matcher) ----

    def begin_cycle(self, production: str, n_rhs_actions: int) -> None:
        self._cycle = CycleRecord(
            index=len(self.trace.cycles),
            production=production,
            n_rhs_actions=n_rhs_actions,
        )
        self.trace.cycles.append(self._cycle)

    def end_cycle(self, cs_deltas: int) -> None:
        if self._cycle is not None:
            self._cycle.cs_deltas = cs_deltas
        self._cycle = None
        self._change = None

    def begin_change(self, n_const_tests: int, n_alpha_hits: int) -> ChangeRecord:
        if self._cycle is None:
            # Startup changes run outside any production firing; give
            # them a synthetic cycle so the simulator sees them.
            self.begin_cycle("<startup>", 0)
        assert self._cycle is not None
        change = ChangeRecord(
            seq=len(self._cycle.changes),
            n_const_tests=n_const_tests,
            n_alpha_hits=n_alpha_hits,
        )
        self._cycle.changes.append(change)
        self._change = change
        return change

    # -- task recording (called by the matcher's scheduling loop) ---------

    def add_task(
        self,
        parent: int,
        kind: str,
        node_id: int,
        side: str,
        sign: int,
        line: int,
        opp_examined: int,
        same_examined: int,
        n_children: int,
    ) -> int:
        tid = len(self.trace.tasks)
        assert self._change is not None, "task recorded outside a change"
        self.trace.tasks.append(
            TaskRecord(
                tid=tid,
                parent=parent,
                kind=kind,
                node_id=node_id,
                side=side,
                sign=sign,
                line=line,
                opp_examined=opp_examined,
                same_examined=same_examined,
                n_children=n_children,
                change_seq=self._change.seq,
            )
        )
        if parent < 0:
            self._change.first_level.append(tid)
        return tid
