"""Token memories: the paper's vs1 (linear lists) and vs2 (global hash
tables) designs.

Both designs expose the same interface so the matcher and the node code
are memory-agnostic:

* ``insert(node_id, side, key, item)``
* ``remove(node_id, side, key, token_key)`` → ``(item | None, examined)``
* ``lookup_opposite(node_id, side, key)`` → ``(items, examined)``
* ``side_size(node_id, side)`` — total tokens stored for that node/side
  (used for the paper's "opposite memory non-empty" statistic guard)
* ``line_of(node_id, key)`` — the hash-table *line* (pair of
  corresponding left/right buckets) an operation touches; this is what
  the parallel implementations lock.

``side`` is ``'L'`` or ``'R'``.  ``key`` is the tuple of values of the
equality-tested variables (empty for cross-product nodes — which is
precisely why cross-product productions pile into a single line and
serialize, the Tourney phenomenon of §4.2).

Items must expose a ``.key`` attribute (a tuple of WME timetags) used to
locate them for deletion: plain :class:`~repro.rete.token.Token` for
join memories, :class:`NotEntry` for negated-node left memories.
"""

from __future__ import annotations

import zlib
from typing import Dict, Hashable, Iterator, List, Optional, Tuple

from .token import Token

LEFT = "L"
RIGHT = "R"


class NotEntry:
    """A left token of a negated node together with its match count."""

    __slots__ = ("token", "count", "key")

    def __init__(self, token: Token, count: int = 0) -> None:
        self.token = token
        self.count = count
        self.key = token.key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NotEntry({self.token}, count={self.count})"


def stable_hash(value: Hashable) -> int:
    """A deterministic (cross-process, cross-run) hash for key tuples.

    Python's built-in ``hash`` of strings is salted per process, which
    would make hash-line assignment — and therefore simulated lock
    contention — irreproducible.
    """
    if isinstance(value, tuple):
        h = 0x811C9DC5
        for item in value:
            h = (h * 0x01000193) ^ (stable_hash(item) & 0xFFFFFFFF)
            h &= 0xFFFFFFFF
        return h
    if isinstance(value, str):
        return zlib.crc32(value.encode("utf-8"))
    if isinstance(value, bool):  # pragma: no cover - bools unused in OPS5
        return int(value)
    if isinstance(value, int):
        return value & 0xFFFFFFFF
    if isinstance(value, float):
        return zlib.crc32(repr(value).encode("ascii"))
    if value is None:
        return 0x9E3779B9
    return zlib.crc32(repr(value).encode("utf-8"))


class LinearMemorySystem:
    """vs1: each node side keeps its tokens in one unordered linear list.

    Every opposite-memory probe examines the *entire* opposite list;
    every delete scans the same-side list to find its victim.  These
    scan lengths are exactly the counts reported in Tables 4-2/4-3.
    """

    kind = "linear"

    def __init__(self) -> None:
        self._mem: Dict[Tuple[int, str], List] = {}

    def clear(self) -> None:
        self._mem.clear()

    def insert(self, node_id: int, side: str, key: tuple, item) -> bool:
        self._mem.setdefault((node_id, side), []).append(item)
        return True

    def remove(self, node_id: int, side: str, key: tuple, token_key: tuple):
        bucket = self._mem.get((node_id, side))
        if not bucket:
            return None, 0
        for i, item in enumerate(bucket):
            if item.key == token_key:
                bucket.pop(i)
                return item, i + 1
        return None, len(bucket)

    def lookup_opposite(self, node_id: int, side: str, key: tuple):
        other = RIGHT if side == LEFT else LEFT
        bucket = self._mem.get((node_id, other), ())
        return bucket, len(bucket)

    def side_size(self, node_id: int, side: str) -> int:
        return len(self._mem.get((node_id, side), ()))

    def items(self, node_id: int, side: str) -> Iterator:
        return iter(self._mem.get((node_id, side), ()))

    def line_of(self, node_id: int, key: tuple) -> int:
        # Linear memories have no hash lines; per-node pseudo-lines keep
        # the trace machinery uniform.
        return node_id

    def total_tokens(self) -> int:
        return sum(len(v) for v in self._mem.values())


class HashMemorySystem:
    """vs2: two global hash tables (left and right) for the whole network.

    Buckets are keyed by ``(node_id, eq-values)``; a *line* is the pair
    of corresponding left/right buckets, obtained by hashing the bucket
    key into ``n_lines`` slots — multiple keys can collide into one
    line, exactly like the fixed-size table of the C implementation.
    """

    kind = "hash"

    def __init__(self, n_lines: int = 1024) -> None:
        if n_lines < 1:
            raise ValueError("n_lines must be >= 1")
        self.n_lines = n_lines
        self._left: Dict[Tuple[int, tuple], List] = {}
        self._right: Dict[Tuple[int, tuple], List] = {}
        self._side_counts: Dict[Tuple[int, str], int] = {}

    def clear(self) -> None:
        self._left.clear()
        self._right.clear()
        self._side_counts.clear()

    def _table(self, side: str) -> Dict[Tuple[int, tuple], List]:
        return self._left if side == LEFT else self._right

    def insert(self, node_id: int, side: str, key: tuple, item) -> bool:
        self._table(side).setdefault((node_id, key), []).append(item)
        sk = (node_id, side)
        self._side_counts[sk] = self._side_counts.get(sk, 0) + 1
        return True

    def remove(self, node_id: int, side: str, key: tuple, token_key: tuple):
        table = self._table(side)
        bucket = table.get((node_id, key))
        if not bucket:
            return None, 0
        for i, item in enumerate(bucket):
            if item.key == token_key:
                bucket.pop(i)
                if not bucket:
                    del table[(node_id, key)]
                sk = (node_id, side)
                self._side_counts[sk] -= 1
                return item, i + 1
        return None, len(bucket)

    def lookup_opposite(self, node_id: int, side: str, key: tuple):
        other = RIGHT if side == LEFT else LEFT
        bucket = self._table(other).get((node_id, key), ())
        return bucket, len(bucket)

    def side_size(self, node_id: int, side: str) -> int:
        return self._side_counts.get((node_id, side), 0)

    def items(self, node_id: int, side: str) -> Iterator:
        table = self._table(side)
        for (nid, _key), bucket in table.items():
            if nid == node_id:
                yield from bucket

    def line_of(self, node_id: int, key: tuple) -> int:
        return stable_hash((node_id, key)) % self.n_lines

    def total_tokens(self) -> int:
        return sum(self._side_counts.values())

    def bucket_sizes(self, side: str) -> List[int]:
        """Chain lengths per bucket — used by the hash-size ablation."""
        return [len(b) for b in self._table(side).values()]


def make_memory(kind: str, n_lines: int = 1024):
    """Factory: ``kind`` is ``'linear'`` (vs1) or ``'hash'`` (vs2)."""
    if kind == "linear":
        return LinearMemorySystem()
    if kind == "hash":
        return HashMemorySystem(n_lines=n_lines)
    raise ValueError(f"unknown memory kind {kind!r}")
