"""Compilation of productions into the Rete network.

Mirrors the paper's compiler (§2.2/§3.1):

* constant tests go into a shared tree of one-input nodes under a
  per-class dispatch (node sharing happens here, as in Figure 2-2);
* each positive condition element beyond the first becomes a coalesced
  memory/two-input :class:`~repro.rete.nodes.JoinNode`;
* negated condition elements become :class:`~repro.rete.nodes.NotNode`;
* every production gets one :class:`~repro.rete.nodes.TerminalNode`.

Beta (two-input) nodes are deliberately *not* shared between
productions: footnote 6 of the paper explains memory nodes cannot be
shared in the parallel implementation, so vs1/vs2/PSM-E all keep them
private — and so do we.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..ops5.astnodes import (
    AttrTest,
    ConditionElement,
    Conjunction,
    Disjunction,
    Lit,
    Production,
    Program,
    Test,
    Var,
)
from ..ops5.errors import CompileError
from ..ops5.wme import WME
from .evaluators import make_evaluator
from .nodes import AlphaTerminal, BetaNode, ConstantTestNode, JoinNode, NotNode, TerminalNode


@dataclass
class _ClassEntry:
    """Alpha-network state under one class-dispatch slot."""

    children: Dict[tuple, ConstantTestNode] = field(default_factory=dict)
    terminal: Optional[AlphaTerminal] = None


@dataclass
class _CECompilation:
    """Per-condition-element compilation products."""

    alpha_descs: List[tuple]
    join_descs: List[tuple]
    exported: Dict[str, str]  # var -> attr (bindings this CE can export)


class ReteNetwork:
    """The compiled network for one program.

    ``mode`` selects the test-evaluation strategy (``'compiled'`` or
    ``'interpreted'``) — see :mod:`repro.rete.evaluators`.
    """

    def __init__(self, mode: str = "compiled") -> None:
        self.mode = mode
        #: Content hash identifying this compiled network (set when the
        #: caller knows the source text, e.g. the service network cache).
        self.key: Optional[str] = None
        self.evaluator = make_evaluator(mode)
        self._classes: Dict[str, _ClassEntry] = {}
        self._next_node_id = 1
        self._next_alpha_id = 1
        self.beta_nodes: List[BetaNode] = []
        self.terminals: Dict[str, TerminalNode] = {}
        self.alpha_terminals: List[AlphaTerminal] = []
        self.constant_nodes: List[ConstantTestNode] = []
        self.productions: List[Production] = []
        #: beta node id -> owning production name.  Exact attribution:
        #: beta nodes are never shared between productions (paper
        #: footnote 6), so the observability layer can roll node
        #: hot-spots up into per-production profiles.
        self.node_owner: Dict[int, str] = {}

    # -- construction ----------------------------------------------------

    @staticmethod
    def compile(
        program: Program, mode: str = "compiled", key: Optional[str] = None
    ) -> "ReteNetwork":
        net = ReteNetwork(mode=mode)
        net.key = key
        for prod in program.productions:
            net.add_production(prod)
        return net

    @staticmethod
    def compile_key(source: str, mode: str = "compiled") -> str:
        """Stable content hash for (program source, compile mode).

        Two texts with the same hash compile to interchangeable
        networks, so caches may hand out one compiled network for every
        session running that program.  Line endings are normalized;
        anything else (whitespace, comments) is deliberately *not* — a
        cheap, collision-safe key beats a clever one.
        """
        digest = hashlib.sha256()
        digest.update(mode.encode("ascii"))
        digest.update(b"\x00")
        digest.update(source.replace("\r\n", "\n").encode("utf-8"))
        return digest.hexdigest()

    def add_production(self, prod: Production) -> TerminalNode:
        """Compile one production into the network."""
        if prod.name in self.terminals:
            raise CompileError(f"production {prod.name!r} already compiled")
        bindings: Dict[str, Tuple[int, str]] = {}
        beta_source: Optional[BetaNode] = None
        first_alpha: Optional[AlphaTerminal] = None
        positive_seen = 0

        for ce in prod.ces:
            comp = self._compile_ce(ce, bindings, prod)
            alpha = self._alpha_chain(ce.klass, comp.alpha_descs)
            if not ce.negated and positive_seen == 0:
                first_alpha = alpha
                positive_seen = 1
                # Export bindings at token position 0.
                for var, attr in comp.exported.items():
                    bindings.setdefault(var, (0, attr))
                continue

            node = self._make_two_input(ce, comp)
            self.node_owner[node.node_id] = prod.name
            # Left input: previous beta node, or the first CE's alpha.
            if beta_source is None:
                assert first_alpha is not None
                first_alpha.successors.append((node, "L"))
            else:
                beta_source.children.append(node)
            alpha.successors.append((node, "R"))
            beta_source = node
            if not ce.negated:
                for var, attr in comp.exported.items():
                    bindings.setdefault(var, (positive_seen, attr))
                positive_seen += 1

        term = TerminalNode(self._new_node_id(), prod)
        self.node_owner[term.node_id] = prod.name
        if beta_source is None:
            assert first_alpha is not None
            first_alpha.successors.append((term, "L"))
        else:
            beta_source.children.append(term)
        self.beta_nodes.append(term)
        self.terminals[prod.name] = term
        self.productions.append(prod)
        return term

    def _new_node_id(self) -> int:
        nid = self._next_node_id
        self._next_node_id += 1
        return nid

    def _make_two_input(self, ce: ConditionElement, comp: _CECompilation) -> BetaNode:
        descs = tuple(comp.join_descs)
        eq_descs = tuple(d for d in descs if d[1] == "=")
        noneq_descs = tuple(d for d in descs if d[1] != "=")
        tests_fn = self.evaluator.join_tests(noneq_descs)
        all_tests_fn = self.evaluator.join_tests(descs)
        left_key_fn, right_key_fn = self.evaluator.key_fns(eq_descs)
        cls = NotNode if ce.negated else JoinNode
        node = cls(
            self._new_node_id(),
            tests=descs,
            eq_descs=eq_descs,
            tests_fn=tests_fn,
            all_tests_fn=all_tests_fn,
            left_key_fn=left_key_fn,
            right_key_fn=right_key_fn,
        )
        self.beta_nodes.append(node)
        return node

    def _compile_ce(
        self,
        ce: ConditionElement,
        bindings: Dict[str, Tuple[int, str]],
        prod: Production,
    ) -> _CECompilation:
        alpha_descs: List[tuple] = []
        join_descs: List[tuple] = []
        local: Dict[str, str] = {}

        def handle(attr: str, test) -> None:
            if isinstance(test, Disjunction):
                alpha_descs.append(("disj", attr, frozenset(test.values)))
                return
            if isinstance(test, Conjunction):
                for sub in test.tests:
                    handle(attr, sub)
                return
            assert isinstance(test, Test)
            operand = test.operand
            if isinstance(operand, Lit):
                alpha_descs.append(("const", attr, test.op, operand.value))
                return
            assert isinstance(operand, Var)
            var = operand.name
            if var in local:
                # Second occurrence inside this CE: intra-element test.
                alpha_descs.append(("intra", attr, test.op, local[var]))
                return
            if var in bindings:
                pos, lattr = bindings[var]
                join_descs.append((attr, test.op, pos, lattr))
                # Also remember locally so a later occurrence in this CE
                # can be checked intra-element (cheaper than a join).
                if test.op == "=":
                    local.setdefault(var, attr)
                return
            if test.op == "=":
                local[var] = attr
                return
            raise CompileError(
                f"production {prod.name}: predicate {test.op!r} applied to "
                f"unbound variable <{var}> in CE of class {ce.klass}"
            )

        for at in ce.tests:
            handle(at.attr, at.test)

        exported = {} if ce.negated else dict(local)
        return _CECompilation(
            alpha_descs=alpha_descs, join_descs=join_descs, exported=exported
        )

    def _alpha_chain(self, klass: str, descs: Sequence[tuple]) -> AlphaTerminal:
        """Find-or-build the shared constant-test chain for one CE."""
        entry = self._classes.setdefault(klass, _ClassEntry())
        # Canonical order maximizes sharing between CEs that list the
        # same tests in different orders.
        ordered = sorted(descs, key=repr)
        children = entry.children
        node: Optional[ConstantTestNode] = None
        for desc in ordered:
            child = children.get(desc)
            if child is None:
                child = ConstantTestNode(
                    self._new_node_id(), desc, self.evaluator.alpha_test(desc)
                )
                children[desc] = child
                self.constant_nodes.append(child)
                if node is not None:
                    node.children.append(child)
            node = child
            children = {c.desc: c for c in node.children}

        if node is None:
            if entry.terminal is None:
                entry.terminal = self._new_alpha_terminal()
            return entry.terminal
        term = next((t for t in node.terminals), None)
        if term is None:
            term = self._new_alpha_terminal()
            node.terminals.append(term)
        return term

    def _new_alpha_terminal(self) -> AlphaTerminal:
        term = AlphaTerminal(self._next_alpha_id)
        self._next_alpha_id += 1
        self.alpha_terminals.append(term)
        return term

    # -- alpha dispatch ---------------------------------------------------

    def alpha_dispatch(self, wme: WME) -> Tuple[List[AlphaTerminal], int]:
        """Run ``wme`` through the constant-test network.

        Returns the alpha terminals whose chains the WME satisfies and
        the number of constant tests evaluated (including the class
        dispatch, which the paper counts as a constant-test node).
        """
        entry = self._classes.get(wme.klass)
        tests = 1  # the class test
        if entry is None:
            return [], tests
        hits: List[AlphaTerminal] = []
        if entry.terminal is not None:
            hits.append(entry.terminal)
        stack = list(entry.children.values())
        while stack:
            node = stack.pop()
            tests += 1
            if node.test(wme):
                hits.extend(node.terminals)
                stack.extend(node.children)
        return hits, tests

    # -- introspection ----------------------------------------------------

    def node_counts(self) -> Dict[str, int]:
        joins = sum(1 for n in self.beta_nodes if isinstance(n, JoinNode))
        nots = sum(1 for n in self.beta_nodes if isinstance(n, NotNode))
        return {
            "constant_test": len(self.constant_nodes),
            "alpha_terminal": len(self.alpha_terminals),
            "join": joins,
            "not": nots,
            "terminal": len(self.terminals),
        }

    def two_input_nodes(self) -> List[BetaNode]:
        return [n for n in self.beta_nodes if n.uses_line()]
