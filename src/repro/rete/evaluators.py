"""Test evaluation strategies: interpreted vs compiled.

The paper's central uniprocessor point (Table 4-4) is that compiling the
Rete network "directly into machine code" removes the per-node
interpretation overhead of the Lisp OPS5.  The Python analogue:

* :class:`InterpretedEvaluator` keeps the tests as *descriptor tuples*
  and walks them at match time with a generic dispatch function — one
  indirection and one operator dispatch per test, like an interpreter.
* :class:`CompiledEvaluator` generates Python source for every node's
  test set and compiles it once with :func:`compile`/``exec`` — the
  match inner loop then runs straight-line code with no dispatch.

Descriptor formats
------------------

Alpha (constant-test) descriptors, applied to a single WME ``w``::

    ('const', attr, op, value)      value of attr  OP  constant
    ('intra', attr, op, attr2)      value of attr  OP  value of attr2
    ('disj',  attr, values)         value of attr in frozenset(values)

Join descriptors, applied to (left token wmes, right WME ``w``)::

    (rattr, op, lpos, lattr)        w.rattr  OP  wmes[lpos].lattr

``op`` is one of ``= <> < <= > >= <=>``.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from ..ops5.wme import WME

_NUMERIC = (int, float)

AlphaDesc = Tuple
JoinDesc = Tuple[str, str, int, str]


def compare(a, op: str, b) -> bool:
    """OPS5 comparison semantics.

    Equality/inequality work across all types.  Ordering predicates
    require both operands to be numbers or both to be symbols; a type
    mismatch (or a missing attribute) simply fails the test.  ``<=>``
    tests that both values have the same type class.
    """
    if op == "=":
        return a == b
    if op == "<>":
        return a != b
    if op == "<=>":
        a_num = isinstance(a, _NUMERIC)
        b_num = isinstance(b, _NUMERIC)
        if a is None or b is None:
            return False
        return a_num == b_num
    if a is None or b is None:
        return False
    a_num = isinstance(a, _NUMERIC)
    b_num = isinstance(b, _NUMERIC)
    if a_num != b_num:
        return False
    if op == "<":
        return a < b
    if op == "<=":
        return a <= b
    if op == ">":
        return a > b
    if op == ">=":
        return a >= b
    raise ValueError(f"unknown predicate {op!r}")


# ---------------------------------------------------------------------------
# Interpreted evaluation
# ---------------------------------------------------------------------------


def _eval_alpha(desc: AlphaDesc, w: WME) -> bool:
    kind = desc[0]
    if kind == "const":
        return compare(w.vals.get(desc[1]), desc[2], desc[3])
    if kind == "intra":
        return compare(w.vals.get(desc[1]), desc[2], w.vals.get(desc[3]))
    if kind == "disj":
        return w.vals.get(desc[1]) in desc[2]
    raise ValueError(f"unknown alpha descriptor {desc!r}")


def _eval_joins(descs: Sequence[JoinDesc], wmes: Tuple[WME, ...], w: WME) -> bool:
    for rattr, op, lpos, lattr in descs:
        if not compare(w.vals.get(rattr), op, wmes[lpos].vals.get(lattr)):
            return False
    return True


class InterpretedEvaluator:
    """Walks test descriptors at match time (the 'Lisp interpreter' analogue)."""

    name = "interpreted"

    def alpha_test(self, desc: AlphaDesc) -> Callable[[WME], bool]:
        def test(w: WME, _desc=desc) -> bool:
            return _eval_alpha(_desc, w)

        return test

    def join_tests(self, descs: Sequence[JoinDesc]) -> Callable:
        descs = tuple(descs)
        if not descs:
            return _always_true

        def test(wmes: Tuple[WME, ...], w: WME, _descs=descs) -> bool:
            return _eval_joins(_descs, wmes, w)

        return test

    def key_fns(self, eq_descs: Sequence[JoinDesc]):
        """(left_key_fn, right_key_fn) for the hash-memory eq-test key."""
        eq_descs = tuple(eq_descs)
        if not eq_descs:
            return _empty_key_token, _empty_key_wme

        def left_key(wmes: Tuple[WME, ...], _descs=eq_descs) -> tuple:
            return tuple(wmes[lpos].vals.get(lattr) for (_r, _o, lpos, lattr) in _descs)

        def right_key(w: WME, _descs=eq_descs) -> tuple:
            return tuple(w.vals.get(rattr) for (rattr, _o, _p, _a) in _descs)

        return left_key, right_key


def _always_true(wmes, w) -> bool:
    return True


def _empty_key_token(wmes) -> tuple:
    return ()


def _empty_key_wme(w) -> tuple:
    return ()


# ---------------------------------------------------------------------------
# Compiled evaluation
# ---------------------------------------------------------------------------


def _py_const(value) -> str:
    return repr(value)


_SIMPLE_OPS = {"=": "==", "<>": "!="}
_ORDER_OPS = {"<": "<", "<=": "<=", ">": ">", ">=": ">="}


def _alpha_expr(desc: AlphaDesc) -> str:
    kind = desc[0]
    if kind == "const":
        _, attr, op, value = desc
        lhs = f"w.vals.get({attr!r})"
        if op in _SIMPLE_OPS:
            return f"({lhs} {_SIMPLE_OPS[op]} {_py_const(value)})"
        if op in _ORDER_OPS:
            return f"_ord({lhs}, {op!r}, {_py_const(value)})"
        return f"_cmp({lhs}, {op!r}, {_py_const(value)})"
    if kind == "intra":
        _, attr, op, attr2 = desc
        lhs = f"w.vals.get({attr!r})"
        rhs = f"w.vals.get({attr2!r})"
        if op in _SIMPLE_OPS:
            return f"({lhs} {_SIMPLE_OPS[op]} {rhs})"
        return f"_cmp({lhs}, {op!r}, {rhs})"
    if kind == "disj":
        _, attr, values = desc
        return f"(w.vals.get({attr!r}) in {set(values)!r})"
    raise ValueError(f"unknown alpha descriptor {desc!r}")


def _join_expr(desc: JoinDesc) -> str:
    rattr, op, lpos, lattr = desc
    lhs = f"w.vals.get({rattr!r})"
    rhs = f"wmes[{lpos}].vals.get({lattr!r})"
    if op in _SIMPLE_OPS:
        return f"({lhs} {_SIMPLE_OPS[op]} {rhs})"
    return f"_cmp({lhs}, {op!r}, {rhs})"


def _ordered(a, op: str, b) -> bool:
    # Constant ordering test against a known-numeric/known-str constant:
    # only the WME side's type needs checking.
    if type(a) is type(b) or (isinstance(a, _NUMERIC) and isinstance(b, _NUMERIC)):
        if op == "<":
            return a < b
        if op == "<=":
            return a <= b
        if op == ">":
            return a > b
        return a >= b
    return False


class CompiledEvaluator:
    """Generates and compiles straight-line Python per node (the 'machine
    code' analogue)."""

    name = "compiled"

    def __init__(self) -> None:
        self._counter = 0

    def _exec(self, src: str, fn_name: str):
        self._counter += 1
        namespace = {"_cmp": compare, "_ord": _ordered}
        code = compile(src, f"<rete-codegen-{self._counter}>", "exec")
        exec(code, namespace)
        return namespace[fn_name]

    def alpha_test(self, desc: AlphaDesc) -> Callable[[WME], bool]:
        src = f"def _t(w):\n    return {_alpha_expr(desc)}\n"
        return self._exec(src, "_t")

    def join_tests(self, descs: Sequence[JoinDesc]) -> Callable:
        descs = tuple(descs)
        if not descs:
            return _always_true
        body = " and ".join(_join_expr(d) for d in descs)
        src = f"def _t(wmes, w):\n    return {body}\n"
        return self._exec(src, "_t")

    def key_fns(self, eq_descs: Sequence[JoinDesc]):
        eq_descs = tuple(eq_descs)
        if not eq_descs:
            return _empty_key_token, _empty_key_wme
        lparts = ", ".join(
            f"wmes[{lpos}].vals.get({lattr!r})" for (_r, _o, lpos, lattr) in eq_descs
        )
        rparts = ", ".join(f"w.vals.get({rattr!r})" for (rattr, _o, _p, _a) in eq_descs)
        lsrc = f"def _lk(wmes):\n    return ({lparts},)\n"
        rsrc = f"def _rk(w):\n    return ({rparts},)\n"
        return self._exec(lsrc, "_lk"), self._exec(rsrc, "_rk")


def make_evaluator(mode: str):
    """Factory: ``mode`` is ``'compiled'`` or ``'interpreted'``."""
    if mode == "compiled":
        return CompiledEvaluator()
    if mode == "interpreted":
        return InterpretedEvaluator()
    raise ValueError(f"unknown evaluation mode {mode!r}")
