"""Tokens — the objects that flow through the Rete network.

A token is a tag (``+`` add / ``-`` delete) plus an ordered list of WMEs
matching a prefix of a production's *positive* condition elements.  As
in the paper, a beta token is identified by the sequence of timetags of
its WMEs: a ``-`` token deletes the stored ``+`` token with the same
timetag sequence at the same node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..ops5.wme import WME

ADD = 1
DELETE = -1


@dataclass(frozen=True)
class Token:
    """An ordered list of WMEs (the tag travels separately as ``sign``).

    ``key`` — the tuple of timetags — is what memories use to locate a
    token for deletion; it is precomputed because it is consulted on
    every memory operation.
    """

    wmes: Tuple[WME, ...]
    key: Tuple[int, ...]

    @staticmethod
    def of(wmes: Tuple[WME, ...]) -> "Token":
        return Token(wmes=wmes, key=tuple(w.timetag for w in wmes))

    @staticmethod
    def single(wme: WME) -> "Token":
        return Token(wmes=(wme,), key=(wme.timetag,))

    def extend(self, wme: WME) -> "Token":
        return Token(wmes=self.wmes + (wme,), key=self.key + (wme.timetag,))

    def __len__(self) -> int:
        return len(self.wmes)

    def __str__(self) -> str:
        return "[" + " ".join(str(w.timetag) for w in self.wmes) + "]"


#: The empty token that seeds the left input of a first two-input node
#: when a production's first CE is negated is never needed in this
#: implementation (grammar forbids a leading negated CE), but single-CE
#: productions still flow 1-WME tokens to their terminal node.
EMPTY = Token(wmes=(), key=())
