"""Match instrumentation.

Collects exactly the statistics the paper reports:

* total WM changes processed and total node activations (Table 4-1),
* tokens examined in the *opposite* memory per two-input activation,
  split by side, counted only when the opposite memory is non-empty
  (Table 4-2),
* tokens examined in the *same* memory when locating the target of a
  delete, split by side (Table 4-3).

The counters are plain integers bumped from the match inner loop, so
keeping them cheap matters; derived means are computed on demand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class MatchStats:
    """Counter block attached to a matcher for one run."""

    wme_changes: int = 0
    node_activations: int = 0
    activations_by_kind: Dict[str, int] = field(default_factory=dict)

    # Constant-test (alpha) network.
    constant_tests: int = 0
    alpha_passes: int = 0

    # Tokens examined in the opposite memory (only when non-empty).
    opp_examined_left: int = 0
    opp_count_left: int = 0
    opp_examined_right: int = 0
    opp_count_right: int = 0

    # Tokens examined in the same memory while locating a delete target.
    same_del_examined_left: int = 0
    same_del_count_left: int = 0
    same_del_examined_right: int = 0
    same_del_count_right: int = 0

    # Output tokens produced by two-input nodes.
    tokens_emitted: int = 0

    # Conflict-set insertions/deletions.
    cs_changes: int = 0

    def record_activation(self, kind: str) -> None:
        self.node_activations += 1
        self.activations_by_kind[kind] = self.activations_by_kind.get(kind, 0) + 1

    def record_opposite(self, side: str, examined: int) -> None:
        """Record an opposite-memory scan of ``examined`` tokens.

        Matches the paper's convention: activations finding an *empty*
        opposite memory are excluded from the average.
        """
        if examined <= 0:
            return
        if side == "L":
            self.opp_examined_left += examined
            self.opp_count_left += 1
        else:
            self.opp_examined_right += examined
            self.opp_count_right += 1

    def record_same_delete(self, side: str, examined: int) -> None:
        if side == "L":
            self.same_del_examined_left += examined
            self.same_del_count_left += 1
        else:
            self.same_del_examined_right += examined
            self.same_del_count_right += 1

    # -- derived means (the numbers printed in Tables 4-2 / 4-3) --------

    @property
    def mean_opp_left(self) -> float:
        return self.opp_examined_left / self.opp_count_left if self.opp_count_left else 0.0

    @property
    def mean_opp_right(self) -> float:
        return self.opp_examined_right / self.opp_count_right if self.opp_count_right else 0.0

    @property
    def mean_same_del_left(self) -> float:
        return (
            self.same_del_examined_left / self.same_del_count_left
            if self.same_del_count_left
            else 0.0
        )

    @property
    def mean_same_del_right(self) -> float:
        return (
            self.same_del_examined_right / self.same_del_count_right
            if self.same_del_count_right
            else 0.0
        )

    def summary(self) -> Dict[str, float]:
        """A flat dict of every derived statistic, for reports/tests."""
        return {
            "wme_changes": self.wme_changes,
            "node_activations": self.node_activations,
            "constant_tests": self.constant_tests,
            "tokens_emitted": self.tokens_emitted,
            "cs_changes": self.cs_changes,
            "mean_opp_left": self.mean_opp_left,
            "mean_opp_right": self.mean_opp_right,
            "mean_same_del_left": self.mean_same_del_left,
            "mean_same_del_right": self.mean_same_del_right,
        }
