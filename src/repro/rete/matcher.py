"""The sequential Rete matcher — the paper's uniprocessor vs1/vs2 engines.

Processes working-memory changes one at a time, driving node
activations from an explicit LIFO stack (the sequential twin of the
parallel task queue).  Configurable along the two axes the paper
evaluates:

* ``memory='linear'`` (vs1) or ``'hash'`` (vs2);
* ``mode='interpreted'`` (the Lisp-implementation analogue) or
  ``'compiled'`` (the machine-code analogue) — set on the network.

Optionally records the full task DAG via a
:class:`~repro.rete.trace.TraceRecorder` for the Encore simulator.
"""

from __future__ import annotations

from time import perf_counter
from typing import List, Optional

from ..obs import events as _obs
from ..obs import flight as _flight
from ..ops5.wme import WMEChange
from .memories import make_memory
from .network import ReteNetwork
from .nodes import Activation, CSDelta, MatchContext, TerminalNode
from .stats import MatchStats
from .token import Token
from .trace import TraceRecorder


class SequentialMatcher:
    """Single-process match engine over a compiled network."""

    def __init__(
        self,
        network: ReteNetwork,
        memory: str = "hash",
        n_lines: int = 1024,
        recorder: Optional[TraceRecorder] = None,
    ) -> None:
        self.network = network
        self.memory = make_memory(memory, n_lines=n_lines)
        self.stats = MatchStats()
        _flight.note_engine("sequential", 1)
        self.recorder = recorder
        self.ctx = MatchContext(
            self.memory, self.stats, strict=True, tracing=recorder is not None
        )
        #: Wall-clock seconds spent inside match (the paper times match
        #: alone, excluding conflict resolution and RHS evaluation).
        self.match_seconds = 0.0

    def process_change(self, change: WMEChange) -> List[CSDelta]:
        """Filter one WM change through the network; returns CS deltas."""
        ctx = self.ctx
        ctx.cs_deltas = []
        stats = self.stats
        stats.wme_changes += 1

        # Observability: read the flag once per change; the disabled
        # path adds one local-bool test per activation and nothing else.
        obs_on = _obs.ENABLED
        if obs_on:
            change_t0 = _obs.now()
            # Nodes populate ctx.last_* probes only under `tracing`.
            ctx.tracing = True
        elif self.recorder is None:
            ctx.tracing = False

        hits, n_tests = self.network.alpha_dispatch(change.wme)
        stats.constant_tests += n_tests
        stats.alpha_passes += len(hits)

        recorder = self.recorder
        if recorder is not None:
            recorder.begin_change(n_const_tests=n_tests, n_alpha_hits=len(hits))

        token = Token.single(change.wme)
        sign = change.sign
        # Each stack entry: (activation, parent task id).
        stack: List[tuple] = []
        for terminal in hits:
            for node, side in terminal.successors:
                stack.append((Activation(node, side, sign, token), -1))

        while stack:
            act, parent = stack.pop()
            if obs_on:
                act_t0 = _obs.now()
                children = act.node.activate(ctx, act)
                _obs.node_hit(
                    act.node.node_id,
                    act.node.kind,
                    _obs.now() - act_t0,
                    ctx.last_opp_examined + ctx.last_same_examined,
                    len(children),
                )
            else:
                children = act.node.activate(ctx, act)
            if recorder is not None:
                tid = recorder.add_task(
                    parent=parent,
                    kind=act.node.kind,
                    node_id=act.node.node_id,
                    side=act.side,
                    sign=act.sign,
                    line=ctx.last_line if act.node.uses_line() else -1,
                    opp_examined=ctx.last_opp_examined,
                    same_examined=ctx.last_same_examined,
                    n_children=len(children),
                )
                parent_for_children = tid
            else:
                parent_for_children = -1
            for child in children:
                stack.append((child, parent_for_children))

        if obs_on:
            _obs.span(
                "match",
                "wm_change",
                change_t0,
                _obs.now(),
                args={"sign": sign, "alpha_hits": len(hits)},
            )
        return ctx.cs_deltas

    def process_changes(self, changes: List[WMEChange]) -> List[CSDelta]:
        """Process a batch of changes in order (one RHS's output)."""
        start = perf_counter()
        _flight.record("sequential", "batch", {"changes": len(changes)})
        deltas: List[CSDelta] = []
        for change in changes:
            deltas.extend(self.process_change(change))
        self.match_seconds += perf_counter() - start
        return deltas
