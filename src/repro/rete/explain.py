"""Network introspection: text summaries and Graphviz export.

``describe_network`` gives the one-screen structural view (what the
paper's Figure 2-2 shows); ``to_dot`` emits the network as a Graphviz
``dot`` graph for rendering; ``sharing_report`` quantifies constant-test
node sharing — the paper's point that "when two left-hand sides require
identical nodes, the algorithm shares part of the network".
"""

from __future__ import annotations

from typing import Dict, List

from .network import ReteNetwork
from .nodes import JoinNode, NotNode, TerminalNode


def describe_network(network: ReteNetwork) -> str:
    """Human-readable structural summary."""
    counts = network.node_counts()
    lines = [
        f"productions: {len(network.productions)}",
        "node counts: "
        + ", ".join(f"{kind}={n}" for kind, n in counts.items()),
    ]
    shared = [t for t in network.alpha_terminals if len(t.successors) > 1]
    lines.append(f"shared alpha terminals: {len(shared)}")
    for term in shared:
        feeds = ", ".join(
            f"{node.kind}#{node.node_id}.{side}" for node, side in term.successors
        )
        lines.append(f"  alpha {term.alpha_id} -> {feeds}")
    cross = [
        n
        for n in network.two_input_nodes()
        if isinstance(n, JoinNode) and not n.eq_descs
    ]
    lines.append(f"cross-product joins (empty hash key): {len(cross)}")
    return "\n".join(lines)


def sharing_report(network: ReteNetwork) -> Dict[str, float]:
    """How much the alpha network is shared between productions.

    ``tests_without_sharing`` counts the *constant* tests (literal
    operands and disjunctions — the ones that compile to constant-test
    nodes) as if each CE compiled its own chain; the ratio against the
    actual node count is the compression the paper's network sharing
    achieves.
    """
    actual = len(network.constant_nodes)
    from ..ops5.astnodes import Conjunction, Disjunction, Lit, Test

    def is_constant(test) -> bool:
        if isinstance(test, Disjunction):
            return True
        return isinstance(test, Test) and isinstance(test.operand, Lit)

    without = 0
    for prod in network.productions:
        for ce in prod.ces:
            for at in ce.tests:
                subtests = (
                    at.test.tests if isinstance(at.test, Conjunction) else (at.test,)
                )
                without += sum(1 for t in subtests if is_constant(t))
    return {
        "constant_nodes": actual,
        "tests_without_sharing": without,
        "sharing_factor": (without / actual) if actual else 1.0,
    }


def to_dot(network: ReteNetwork, title: str = "rete") -> str:
    """The network as a Graphviz digraph (Figure 2-2 style)."""
    out: List[str] = [f'digraph "{title}" {{', "  rankdir=TB;", '  root [shape=box];']

    def alpha_name(aid: int) -> str:
        return f"alpha{aid}"

    def beta_name(node) -> str:
        return f"{node.kind}{node.node_id}"

    for node in network.constant_nodes:
        label = str(node.desc).replace('"', "'")
        out.append(f'  c{node.node_id} [label="{label}", shape=ellipse];')
    for term in network.alpha_terminals:
        out.append(f'  {alpha_name(term.alpha_id)} [label="mem", shape=cylinder];')
    for node in network.beta_nodes:
        if isinstance(node, TerminalNode):
            out.append(
                f'  {beta_name(node)} [label="{node.production.name}", shape=box];'
            )
        else:
            shape = "diamond" if isinstance(node, NotNode) else "trapezium"
            out.append(f'  {beta_name(node)} [label="{node.kind}", shape={shape}];')

    # Edges: root -> class-level constant chains -> alpha terminals.
    emitted = set()
    for node in network.constant_nodes:
        parentless = True
        for other in network.constant_nodes:
            if node in other.children:
                out.append(f"  c{other.node_id} -> c{node.node_id};")
                parentless = False
        if parentless:
            out.append(f"  root -> c{node.node_id};")
        for term in node.terminals:
            out.append(f"  c{node.node_id} -> {alpha_name(term.alpha_id)};")
            emitted.add(term.alpha_id)
    for term in network.alpha_terminals:
        if term.alpha_id not in emitted:
            out.append(f"  root -> {alpha_name(term.alpha_id)};")
        for succ, side in term.successors:
            out.append(
                f'  {alpha_name(term.alpha_id)} -> {beta_name(succ)} [label="{side}"];'
            )
    for node in network.beta_nodes:
        for child in getattr(node, "children", ()):
            out.append(f'  {beta_name(node)} -> {beta_name(child)} [label="L"];')
    out.append("}")
    return "\n".join(out)
