"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``run FILE``
    Run an OPS5 program file; print its output (``--stats``, ``--trace``
    and ``--strategy`` control detail).

``network FILE``
    Compile a program and dump its Rete network structure.

``simulate FILE``
    Run a program, record its match-task trace, and simulate it on the
    Encore Multimax across a grid of process/queue counts.

``tables [IDS...]``
    Regenerate the paper's tables (all of them by default).

``schedck``
    Deterministic schedule exploration for the threaded parallel
    engine: replay one seeded schedule (``--seed N``) with its full
    invariant report, or fuzz a seed range across the engine
    configuration grid (``--sweep N``).  Same seed, same report —
    byte for byte — so a failing CI seed can be replayed locally.

``corgick``
    Differential fuzzing of the corgi bounded-cost engine against the
    sequential Rete oracle: replay one seeded case (``--seed N``) or
    fuzz a seed range (``--sweep N``) over the generator profile
    rotation.  Byte-stable reports, paste-ready replay lines — the
    corgi twin of ``schedck``.

``policyck``
    Differential policy-conformance battery: every registered
    dispatch/placement policy (``repro.parallel.policy``) runs the
    conformance programs on the threaded and mp engines and must
    match the sequential reference byte for byte.  ``--policies``,
    ``--engines``, ``--programs`` select a sub-matrix; failures print
    paste-ready replay lines.

``trace FILE|BUILTIN``
    Run a program under the :mod:`repro.obs` event bus; write a
    Chrome-trace JSON file (load it at https://ui.perfetto.dev) and
    print the hot-spot profile.  ``--parallel K`` traces the threaded
    engine's worker timelines; ``--engine mp`` produces one causally
    stitched trace across the control process and every match process
    (see docs/OBSERVABILITY.md).

``top FILE|BUILTIN``
    Run a program and print one hot-spot table — ``--by
    production|node|lock|phase`` — hottest entries first.

``obs flight|stitch|slo``
    Flight-recorder and trace-fabric tools: ``flight`` runs a program
    and dumps the always-on ring of recent engine events as a
    schema-versioned snapshot; ``stitch`` re-stitches a saved fabric
    capture (``trace --engine mp --fabric-out``) into a Chrome trace
    offline; ``slo`` renders a saved meter snapshot (``loadgen
    --meter-out`` or the server's ``meter`` verb) as a per-tenant
    latency/burn-rate report, optionally reconciling the server-side
    percentiles against loadgen's client-observed latency summary.

``serve``
    Host OPS5 sessions over a line-delimited JSON protocol: many
    concurrent working memories over shared compiled Rete networks,
    with batched WM transactions, backpressure, and cycle budgets
    (see docs/SERVICE.md).

``loadgen``
    Drive a server (``--connect HOST:PORT`` or in-process via
    ``--spawn``) with N concurrent sessions replaying deterministic
    scenario traffic; print a throughput/latency report and, with
    ``--verify``, byte-compare each session's firings against a
    sequential replay.

``bench run|compare|report``
    The performance observatory (see docs/PERF.md): ``run`` executes a
    scenario suite with warm-up and repetitions, writes a
    schema-versioned ``BENCH_<runid>.json`` artifact, and appends to
    the ``trajectory.jsonl`` history; ``compare`` classifies every
    metric against a baseline run with MAD-based noise thresholds and
    attributes regressions to hot-spot movers; ``report`` renders the
    trajectory as markdown.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import closing
from typing import List, Optional

from .engines import ENGINE_NAMES
from .ops5.interpreter import Interpreter
from .ops5.parser import parse_program
from .rete.network import ReteNetwork
from .rete.trace import TraceRecorder


def _read_program(path: str):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
    except OSError as exc:
        raise SystemExit(f"repro: cannot read {path}: {exc.strerror}")
    return parse_program(source)


def _read_source(path: str, verb: str) -> str:
    """Raw program text for the service verbs (they parse server-side)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return fh.read()
    except OSError as exc:
        raise SystemExit(f"repro {verb}: cannot read {path}: {exc.strerror}")


def cmd_run(args: argparse.Namespace) -> int:
    program = _read_program(args.file)
    engine_opts: dict = {}
    if args.engine in ("threaded", "mp"):
        engine_opts["n_workers"] = args.workers
        if args.policy is not None:
            from .parallel.policy import POLICY_NAMES

            if args.policy not in POLICY_NAMES:
                raise SystemExit(
                    f"repro run: unknown policy {args.policy!r}; expected "
                    f"one of {', '.join(POLICY_NAMES)}"
                )
            engine_opts["policy"] = args.policy
        if args.watchdog:
            engine_opts["watchdog_s"] = args.watchdog
            engine_opts["watchdog_dump"] = args.watchdog_dump
    elif args.policy is not None:
        raise SystemExit(
            "repro run: --policy needs --engine threaded or mp"
        )
    elif args.watchdog:
        raise SystemExit(
            "repro run: --watchdog needs --engine threaded or mp"
        )
    if args.engine == "threaded":
        engine_opts["n_queues"] = args.queues
        engine_opts["lock_scheme"] = args.locks
    if args.engine == "mp":
        from .engines import mp_supported

        if not mp_supported():
            raise SystemExit(
                "repro run: --engine mp needs the 'fork' start method "
                "(unavailable on this platform); try --engine threaded"
            )
    if args.flight_dump:
        from .obs import flight as obs_flight

        obs_flight.set_dump_path(args.flight_dump)
    interp = Interpreter(
        program,
        strategy=args.strategy,
        memory=args.memory,
        mode=args.mode,
        engine=args.engine,
        engine_opts=engine_opts,
    )
    with closing(interp):
        result = interp.run(max_cycles=args.max_cycles)
        watchdog = getattr(interp.matcher, "watchdog", None)
    if watchdog is not None and watchdog.tripped:
        print(
            f"repro run: watchdog tripped {watchdog.trips}x "
            f"(stuck queue: {watchdog.bundles[-1].get('stuck_queue')})",
            file=sys.stderr,
        )
    for line in result.output:
        print(line)
    if args.trace:
        print("\nfirings:", file=sys.stderr)
        for firing in result.firings:
            print(
                f"  {firing.cycle:5d}  {firing.production}  {firing.timetags}",
                file=sys.stderr,
            )
    if args.stats:
        stats = interp.stats
        print(
            f"\ncycles={result.cycles} halted={result.halted} "
            f"wm_changes={stats.wme_changes} "
            f"activations={stats.node_activations} "
            f"match_seconds={interp.matcher.match_seconds:.3f}",
            file=sys.stderr,
        )
    return 0


def cmd_network(args: argparse.Namespace) -> int:
    network = ReteNetwork.compile(_read_program(args.file), mode=args.mode)
    counts = network.node_counts()
    print(f"productions:        {len(network.productions)}")
    for kind, n in counts.items():
        print(f"{kind + ':':<19} {n}")
    if args.verbose:
        print("\nconstant-test nodes:")
        for node in network.constant_nodes:
            print(f"  #{node.node_id}: {node.desc}")
        print("\ntwo-input nodes:")
        for node in network.two_input_nodes():
            print(f"  {node.kind} #{node.node_id}: tests={list(node.tests)}")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from .simulator.engine import simulate, uniprocessor_baseline

    program = _read_program(args.file)
    recorder = TraceRecorder()
    interp = Interpreter(program, recorder=recorder)
    result = interp.run(max_cycles=args.max_cycles)
    print(f"run: {result.cycles} cycles, {recorder.trace.n_tasks} match tasks")
    base = uniprocessor_baseline(recorder.trace)
    print(f"uniprocessor match (simulated Encore Multimax): {base.match_seconds:.3f}s")
    print(f"{'config':>12} {'speed-up':>9} {'queue spins':>12}")
    for k in args.processes:
        for q in args.queues:
            run = simulate(recorder.trace, n_match=k, n_queues=q, lock_scheme=args.locks)
            print(
                f"{f'1+{k}/{q}q':>12} "
                f"{base.match_instr / run.match_instr:>9.2f} "
                f"{run.queue_stats.mean_spins:>12.2f}"
            )
    return 0


def cmd_tables(args: argparse.Namespace) -> int:
    from .harness.experiments import ALL_TABLES

    selected = args.ids or list(ALL_TABLES)
    unknown = [t for t in selected if t not in ALL_TABLES]
    if unknown:
        print(f"unknown tables: {unknown}; available: {sorted(ALL_TABLES)}", file=sys.stderr)
        return 2
    for table_id in selected:
        print(ALL_TABLES[table_id]().report)
        print()
    return 0


def cmd_schedck(args: argparse.Namespace) -> int:
    from .schedck.runner import EngineConfig, run_schedule, sweep
    from .schedck.workloads import WORKLOADS

    try:
        if args.sweep:
            result = sweep(
                args.sweep, base_seed=args.seed, max_steps=args.max_steps
            )
            print(result.format())
            return 0 if result.ok else 1
        program = batches = None
        if args.workload is not None:
            if args.workload not in WORKLOADS:
                raise SystemExit(
                    f"repro schedck: unknown workload {args.workload!r}; "
                    f"expected one of {', '.join(sorted(WORKLOADS))}"
                )
            program, batches = WORKLOADS[args.workload]()
        config = EngineConfig(
            n_workers=args.workers,
            n_queues=args.queues,
            lock_scheme=args.locks,
            n_lines=args.lines,
            dispatch=args.dispatch,
        )
        report = run_schedule(
            args.seed, config=config, policy_spec=args.policy,
            program=program, batches=batches, max_steps=args.max_steps,
        )
    except ValueError as exc:
        raise SystemExit(f"repro schedck: {exc}")
    print(report.format())
    return 0 if report.ok and not report.truncated else 1


def cmd_policyck(args: argparse.Namespace) -> int:
    from .parallel.policy import POLICY_NAMES
    from .parallel.policyck import PROGRAMS, POLICY_ENGINES, run_battery

    for policy in args.policies or ():
        if policy not in POLICY_NAMES:
            raise SystemExit(
                f"repro policyck: unknown policy {policy!r}; expected "
                f"one of {', '.join(POLICY_NAMES)}"
            )
    for engine in args.engines or ():
        if engine not in POLICY_ENGINES:
            raise SystemExit(
                f"repro policyck: engine {engine!r} takes no policy; "
                f"expected one of {', '.join(POLICY_ENGINES)}"
            )
    for name in args.programs or ():
        if name not in PROGRAMS:
            raise SystemExit(
                f"repro policyck: unknown program {name!r}; expected "
                f"one of {', '.join(sorted(PROGRAMS))}"
            )
    result = run_battery(
        programs=args.programs or None,
        engines=args.engines or None,
        policies=args.policies or None,
        n_workers=args.workers,
        n_queues=args.queues,
    )
    print(result.format())
    return 0 if result.ok else 1


def cmd_corgick(args: argparse.Namespace) -> int:
    from .corgi.diffcheck import PROFILES, run_seed, sweep

    if args.profile != "rotate" and args.profile not in PROFILES:
        raise SystemExit(
            f"repro corgick: unknown profile {args.profile!r}; expected "
            f"rotate or one of {', '.join(sorted(PROFILES))}"
        )
    if args.sweep:
        result = sweep(args.sweep, base_seed=args.seed, profile=args.profile)
        print(result.format())
        return 0 if result.ok else 1
    report = run_seed(args.seed, profile=args.profile)
    print(report.format())
    return 0 if report.ok else 1


#: Program names ``trace``/``top`` resolve when the argument is not a file.
_BUILTIN_PROGRAMS = (
    "blocks", "monkey", "tourney", "rubik", "weaver", "crossfire", "negchain"
)


def _resolve_program_source(name_or_path: str, verb: str) -> str:
    """Program text from a file path or a builtin benchmark name."""
    import os

    if os.path.exists(name_or_path):
        return _read_source(name_or_path, verb)
    if name_or_path in _BUILTIN_PROGRAMS:
        from . import programs

        return getattr(programs, name_or_path).source()
    raise SystemExit(
        f"repro {verb}: {name_or_path!r} is neither a file nor a builtin "
        f"program ({', '.join(_BUILTIN_PROGRAMS)})"
    )


def _build_traced_matcher(args: argparse.Namespace, verb: str, network):
    """The matcher for a traced run: ``--engine`` picks any backend,
    the older ``--parallel K`` spelling still means threaded."""
    engine = getattr(args, "engine", "sequential")
    if args.parallel:
        engine = "threaded"
    if engine == "sequential":
        return None, engine
    if engine == "mp":
        from .engines import mp_supported

        if not mp_supported():
            raise SystemExit(
                f"repro {verb}: --engine mp needs the 'fork' start "
                "method (unavailable on this platform)"
            )
    from .engines import make_matcher

    opts: dict = {}
    if engine in ("threaded", "mp"):
        opts["n_workers"] = args.parallel or args.workers
    if engine == "threaded":
        opts["n_queues"] = args.queues
        opts["lock_scheme"] = args.locks
    return make_matcher(engine, network, **opts), engine


def _traced_run(args: argparse.Namespace, verb: str):
    """Run one program with the event bus on; returns
    ``(run result, match stats, network, snapshot, matcher)``.

    The snapshot is the *control-process* capture; an mp matcher
    additionally carries worker-shipped telemetry on ``matcher.fabric``
    (merge with :func:`_profile_snapshot` before building profiles).
    """
    from .obs import events as obs_events

    program = parse_program(_resolve_program_source(args.file, verb))
    network = ReteNetwork.compile(program)
    matcher, _engine = _build_traced_matcher(args, verb, network)
    if matcher is not None:
        interp = Interpreter(program, matcher=matcher, network=network)
    else:
        interp = Interpreter(program, network=network)
    obs_events.reset()
    obs_events.enable(max_events_per_worker=args.max_events)
    try:
        result = interp.run(max_cycles=args.max_cycles)
        stats = interp.stats
    finally:
        interp.close()
        snap = obs_events.snapshot()
        obs_events.disable()
    return result, stats, network, snap, interp.matcher


def _profile_snapshot(snap, matcher):
    """Fold mp worker lanes into the snapshot, when there are any."""
    fabric_collector = getattr(matcher, "fabric", None)
    if fabric_collector is None:
        return snap
    from .obs import fabric as obs_fabric

    return obs_fabric.merged_snapshot(snap, fabric_collector)


def cmd_trace(args: argparse.Namespace) -> int:
    import json

    from .obs import profile as obs_profile
    from .obs.export import write_chrome_trace

    result, stats, network, snap, matcher = _traced_run(args, "trace")
    fabric_collector = getattr(matcher, "fabric", None)
    if fabric_collector is not None:
        # mp: one stitched trace — control pid plus one pid lane per
        # worker, with dispatch→batch flow arrows.
        from .obs import fabric as obs_fabric

        doc, orphans = obs_fabric.stitch_trace(snap, fabric_collector)
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
        n_events = len(doc["traceEvents"])
        if args.fabric_out:
            obs_fabric.write_capture(args.fabric_out, snap, fabric_collector)
            print(f"fabric capture -> {args.fabric_out}")
        if orphans:
            print(f"warning: {orphans} stitch orphans", file=sys.stderr)
    else:
        n_events = write_chrome_trace(args.out, snap)
    profile = obs_profile.build(_profile_snapshot(snap, matcher), network=network)
    print(obs_profile.render_text(profile, limit=args.limit))
    agreement = (
        "equal"
        if profile.total_activations == stats.node_activations
        else "MISMATCH"
    )
    print()
    print(f"run: cycles={result.cycles} halted={result.halted}")
    print(
        f"profile activations={profile.total_activations} "
        f"match node_activations={stats.node_activations} ({agreement})"
    )
    print(f"trace: {n_events} events -> {args.out}")
    return 0 if agreement == "equal" else 1


def cmd_top(args: argparse.Namespace) -> int:
    from .obs import profile as obs_profile

    _result, _stats, network, snap, matcher = _traced_run(args, "top")
    profile = obs_profile.build(_profile_snapshot(snap, matcher), network=network)
    pruned = obs_profile.Profile(
        nodes=profile.nodes if args.by == "node" else [],
        productions=profile.productions if args.by == "production" else [],
        locks=profile.locks if args.by == "lock" else [],
        phases=profile.phases if args.by == "phase" else [],
        dropped=profile.dropped,
    )
    print(obs_profile.render_text(pruned, limit=args.limit))
    return 0


def cmd_obs_flight(args: argparse.Namespace) -> int:
    """Run a program (event bus *off* — the flight recorder is always
    on) and dump the flight-recorder snapshot."""
    from .obs import flight as obs_flight

    if args.ring:
        obs_flight.configure(args.ring)
    else:
        obs_flight.reset()
    program = parse_program(_resolve_program_source(args.file, "obs flight"))
    network = ReteNetwork.compile(program)
    matcher, engine = _build_traced_matcher(args, "obs flight", network)
    if matcher is not None:
        interp = Interpreter(program, matcher=matcher, network=network)
    else:
        interp = Interpreter(program, network=network)
    with closing(interp):
        result = interp.run(max_cycles=args.max_cycles)
        # mp workers' tails arrive piggybacked on flush replies even
        # with the bus off.
        fabric_collector = getattr(interp.matcher, "fabric", None)
        workers = (
            fabric_collector.flight_tails() if fabric_collector is not None else None
        )
    doc = obs_flight.write_snapshot(args.out, "cli", workers=workers)
    problems = obs_flight.validate_flight(doc)
    print(
        f"run: engine={engine} cycles={result.cycles} halted={result.halted}"
    )
    print(
        f"flight: {len(doc['events'])} events "
        f"(ring {doc['ring_capacity']}, {doc['recorded_total']} recorded, "
        f"{len(doc.get('workers') or {})} worker tails) -> {args.out}"
    )
    for problem in problems:
        print(f"invalid snapshot: {problem}", file=sys.stderr)
    return 1 if problems else 0


def cmd_obs_stitch(args: argparse.Namespace) -> int:
    """Re-stitch a saved fabric capture into a Chrome trace offline."""
    import json

    from .obs import fabric as obs_fabric
    from .obs.export import validate_chrome_trace

    try:
        with open(args.capture, "r", encoding="utf-8") as fh:
            capture = json.load(fh)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"repro obs stitch: cannot read {args.capture}: {exc}")
    try:
        snap, collector = obs_fabric.load_capture(capture)
    except ValueError as exc:
        raise SystemExit(f"repro obs stitch: {exc}")
    doc, orphans = obs_fabric.stitch_trace(snap, collector)
    problems = validate_chrome_trace(doc)
    for problem in problems:
        print(f"invalid trace: {problem}", file=sys.stderr)
    if problems:
        return 1
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    pids = sorted({e["pid"] for e in doc["traceEvents"]})
    print(
        f"stitched: {len(doc['traceEvents'])} events across "
        f"{len(pids)} pids ({len(collector.lanes)} worker lanes, "
        f"{orphans} orphans) -> {args.out}"
    )
    return 0


def _load_meter_doc(path: str):
    """A meter snapshot plus (optionally) the loadgen summary it was
    captured with.  Accepts both the raw ``meter`` verb response body
    and the ``loadgen --meter-out`` wrapper."""
    import json

    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"repro obs slo: cannot read {path}: {exc}")
    if not isinstance(doc, dict):
        raise SystemExit(f"repro obs slo: {path} is not a JSON object")
    if isinstance(doc.get("meter"), dict):  # loadgen wrapper
        return doc["meter"], doc.get("loadgen") or {}
    if "sessions" in doc and "tenants" in doc:  # raw snapshot
        return doc, {}
    raise SystemExit(
        f"repro obs slo: {path} is neither a meter snapshot nor a "
        "loadgen --meter-out file"
    )


def _slo_from_latency(lat: dict, objective) -> dict:
    """Recompute one objective's report from a snapshot's histogram
    JSON (counts are per-bucket, +Inf last)."""
    buckets = lat.get("buckets_ms") or []
    counts = lat.get("counts") or []
    total = lat.get("count", 0)
    good = sum(
        c for le, c in zip(buckets, counts) if le <= objective.target_ms
    )
    achieved = (good / total) if total else 1.0
    violation = 1.0 - achieved
    budget = 1.0 - objective.goal
    burn = (violation / budget) if budget > 0 else (
        0.0 if violation == 0 else float("inf"))
    return {
        "objective": objective.to_json(),
        "total": total,
        "good": good,
        "achieved": achieved,
        "burn_rate": burn,
        "met": achieved >= objective.goal,
    }


def cmd_obs_slo(args: argparse.Namespace) -> int:
    """Render a saved meter snapshot as an SLO report."""
    from .obs import meter as obs_meter

    snap, loadgen = _load_meter_doc(args.file)
    tenants = snap.get("tenants") or {}
    if not tenants:
        print("repro obs slo: snapshot has no tenant accounts", file=sys.stderr)
        return 1

    if args.target_ms is not None or args.goal is not None:
        target = args.target_ms if args.target_ms is not None else 250.0
        goal = args.goal if args.goal is not None else 0.99
        objectives = [obs_meter.SLObjective("cli", target, goal)]
        recompute = True
    else:
        objectives = [
            obs_meter.SLObjective(o["name"], o["target_ms"], o["goal"])
            for o in snap.get("objectives", [])
        ]
        recompute = False

    failures: List[str] = []
    obj_text = ", ".join(
        f"{o.name} ({o.goal * 100:g}% under {o.target_ms:g}ms)"
        for o in objectives
    ) or "(none)"
    print(f"slo report ({snap.get('schema', '?')}) — objectives: {obj_text}")
    client_tenants = loadgen.get("tenants") or {}
    for tenant in sorted(tenants):
        acct = tenants[tenant]
        counters = acct.get("counters", {})
        print(
            f"tenant {tenant}: txns={int(counters.get('txns', 0))} "
            f"p50={acct.get('p50_ms', 0):.2f}ms "
            f"p95={acct.get('p95_ms', 0):.2f}ms "
            f"p99={acct.get('p99_ms', 0):.2f}ms"
        )
        print(
            f"  work: match={counters.get('match_s', 0):.3f}s "
            f"select={counters.get('select_s', 0):.3f}s "
            f"act={counters.get('act_s', 0):.3f}s "
            f"firings={int(counters.get('firings', 0))} "
            f"wm={int(counters.get('wm_changes', 0))} "
            f"queue_wait={counters.get('queue_wait_s', 0):.3f}s "
            f"ipc={int(counters.get('ipc_bytes', 0))}B "
            f"rejected={int(counters.get('rejected_busy', 0))}/"
            f"{int(counters.get('rejected_budget', 0))} "
            f"dropped={int(counters.get('dropped_events', 0))}"
        )
        if recompute:
            reports = [
                _slo_from_latency(acct.get("latency", {}), o)
                for o in objectives
            ]
        else:
            reports = acct.get("slo", [])
        for rep in reports:
            obj = rep["objective"]
            verdict = "OK" if rep["burn_rate"] <= args.max_burn else "BURNING"
            if verdict != "OK":
                failures.append(
                    f"tenant {tenant}: {obj['name']} burn "
                    f"{rep['burn_rate']:.2f}x > {args.max_burn:g}x"
                )
            print(
                f"  {obj['name']}: achieved {rep['achieved'] * 100:.2f}% "
                f"({rep['good']}/{rep['total']} under {obj['target_ms']:g}ms), "
                f"burn {rep['burn_rate']:.2f}x — {verdict}"
            )
        if args.reconcile:
            client = client_tenants.get(tenant)
            if client is None:
                failures.append(
                    f"tenant {tenant}: no client-side latency to reconcile"
                )
                print("  reconcile: no loadgen summary for this tenant — FAIL")
                continue
            meter_p99 = acct.get("p99_ms", 0.0)
            client_p99 = client.get("p99_ms", 0.0)
            delta = abs(meter_p99 - client_p99)
            # Client latency adds wire round-trip + JSON on top of the
            # meter's submit→done; allow the larger of the absolute and
            # relative slack.
            allowed = max(args.tolerance_ms, 0.5 * client_p99)
            ok = delta <= allowed
            if not ok:
                failures.append(
                    f"tenant {tenant}: meter p99 {meter_p99:.2f}ms vs "
                    f"client p99 {client_p99:.2f}ms (Δ{delta:.2f}ms > "
                    f"{allowed:.2f}ms)"
                )
            print(
                f"  reconcile: meter p99 {meter_p99:.2f}ms vs client p99 "
                f"{client_p99:.2f}ms (Δ{delta:.2f}ms <= {allowed:.2f}ms) — "
                f"{'OK' if ok else 'FAIL'}"
            )
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .ops5.errors import Ops5Error
    from .serve.limits import ServiceLimits
    from .serve.server import ReproServer

    if not 0 <= args.port <= 65535:
        raise SystemExit(
            f"repro serve: invalid port {args.port}; expected 0-65535"
        )
    preload_sources = [_read_source(p, "serve") for p in args.preload]
    limits = ServiceLimits(
        max_sessions=args.max_sessions, inbox_depth=args.inbox_depth
    )
    try:
        limits.validate()
    except ValueError as exc:
        raise SystemExit(f"repro serve: {exc}")
    slo_objectives = None
    if args.slo:
        from .obs.meter import parse_objective

        try:
            slo_objectives = [parse_objective(spec) for spec in args.slo]
        except ValueError as exc:
            raise SystemExit(f"repro serve: {exc}")

    async def _serve() -> None:
        server = ReproServer(
            host=args.host, port=args.port, limits=limits, mode=args.mode,
            meter=args.meter or bool(slo_objectives), slo=slo_objectives,
        )
        host, port = await server.start()
        try:
            for source in preload_sources:
                server.preload(source)
        except Ops5Error as exc:
            await server.shutdown()
            raise SystemExit(f"repro serve: preload failed: {exc}")
        print(f"repro serve: listening on {host}:{port}", flush=True)
        await server.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio

    from .serve.loadgen import run_loadgen
    from .serve.traffic import SCENARIOS

    if args.scenario not in SCENARIOS:
        raise SystemExit(
            f"repro loadgen: unknown scenario {args.scenario!r}; "
            f"expected one of {', '.join(SCENARIOS)}"
        )
    if args.sessions < 1 or args.transactions < 1:
        raise SystemExit(
            "repro loadgen: --sessions and --transactions must be positive"
        )
    host = port = None
    if args.connect and args.spawn:
        raise SystemExit("repro loadgen: --connect and --spawn are exclusive")
    if args.connect:
        host, _, port_text = args.connect.rpartition(":")
        try:
            port = int(port_text)
        except ValueError:
            port = -1
        if not host or not 0 < port <= 65535:
            raise SystemExit(
                f"repro loadgen: bad --connect {args.connect!r}; "
                "expected HOST:PORT"
            )
    elif not args.spawn:
        raise SystemExit("repro loadgen: need --connect HOST:PORT or --spawn")
    program_source = (
        _read_source(args.program, "loadgen") if args.program else None
    )
    if args.tenants < 1:
        raise SystemExit("repro loadgen: --tenants must be positive")
    report = asyncio.run(
        run_loadgen(
            scenario=args.scenario,
            sessions=args.sessions,
            transactions=args.transactions,
            host=host,
            port=port,
            spawn=args.spawn,
            verify=args.verify,
            seed=args.seed,
            program_source=program_source,
            shutdown_after=args.shutdown_after,
            trace_path=args.trace_out,
            tenants=args.tenants,
            engine=args.engine,
            workers=args.workers,
            meter=args.meter,
            meter_out=args.meter_out,
            prom_out=args.prom_out,
        )
    )
    print(report.format())
    return 0 if report.ok else 1


def cmd_bench_run(args: argparse.Namespace) -> int:
    from .perf.report import render_run_text
    from .perf.runner import run_suite

    try:
        doc, path = run_suite(
            suite=args.suite,
            scenario_ids=tuple(args.scenario) or None,
            repeat=args.repeat,
            warmup=args.warmup,
            out_dir=args.out_dir,
            runid=args.runid,
            note=args.note,
            trajectory=not args.no_trajectory,
        )
    except ValueError as exc:
        raise SystemExit(f"repro bench run: {exc}")
    print(render_run_text(doc, path))
    return 0


def cmd_bench_compare(args: argparse.Namespace) -> int:
    from .perf.compare import compare_docs, resolve_doc

    try:
        baseline = resolve_doc(args.out_dir, args.baseline)
        current = resolve_doc(args.out_dir, args.current)
        result = compare_docs(
            baseline,
            current,
            stable_only=args.stable_only,
            movers_limit=args.movers,
        )
    except ValueError as exc:
        raise SystemExit(f"repro bench compare: {exc}")
    print(result.format())
    return 0 if result.ok else 1


def cmd_bench_report(args: argparse.Namespace) -> int:
    import os

    from .perf.report import load_trajectory, render_markdown

    try:
        entries = load_trajectory(
            os.path.join(args.out_dir, "trajectory.jsonl")
        )
    except ValueError as exc:
        raise SystemExit(f"repro bench report: {exc}")
    text = render_markdown(entries, limit=args.limit)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.out} ({len(entries)} runs)")
    else:
        print(text, end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run an OPS5 program")
    p_run.add_argument("file")
    p_run.add_argument("--strategy", choices=["lex", "mea"], default="lex")
    p_run.add_argument("--memory", choices=["hash", "linear"], default="hash")
    p_run.add_argument("--mode", choices=["compiled", "interpreted"], default="compiled")
    p_run.add_argument("--engine", choices=list(ENGINE_NAMES), default="sequential",
                       help="match backend: sequential, threaded (GIL-bound), "
                            "or mp (one process per worker, real speedup)")
    p_run.add_argument("--workers", type=int, default=2,
                       help="match workers for --engine threaded/mp")
    p_run.add_argument("--run-queues", type=int, default=1, dest="queues",
                       help="task queues for --engine threaded")
    p_run.add_argument("--run-locks", choices=["simple", "mrsw"], default="simple",
                       dest="locks", help="line-lock scheme for --engine threaded")
    p_run.add_argument("--policy", default=None,
                       help="dispatch/placement policy for --engine "
                            "threaded/mp (round-robin, affinity, "
                            "least-loaded, work-stealing, rebalance)")
    p_run.add_argument("--max-cycles", type=int, default=100000)
    p_run.add_argument("--stats", action="store_true")
    p_run.add_argument("--trace", action="store_true")
    p_run.add_argument("--watchdog", type=float, default=0.0, metavar="S",
                       help="stall watchdog for threaded/mp: trip after S "
                            "seconds of pending work with no progress")
    p_run.add_argument("--watchdog-dump", metavar="FILE",
                       help="write the watchdog diagnostic bundle here on trip")
    p_run.add_argument("--flight-dump", metavar="FILE",
                       help="write a flight-recorder snapshot here on "
                            "unhandled engine error")
    p_run.set_defaults(func=cmd_run)

    p_net = sub.add_parser("network", help="dump the compiled Rete network")
    p_net.add_argument("file")
    p_net.add_argument("--mode", choices=["compiled", "interpreted"], default="compiled")
    p_net.add_argument("-v", "--verbose", action="store_true")
    p_net.set_defaults(func=cmd_network)

    p_sim = sub.add_parser("simulate", help="simulate a program on the Encore Multimax")
    p_sim.add_argument("file")
    p_sim.add_argument("--processes", type=int, nargs="+", default=[1, 3, 7, 13])
    p_sim.add_argument("--queues", type=int, nargs="+", default=[1, 8])
    p_sim.add_argument("--locks", choices=["simple", "mrsw"], default="simple")
    p_sim.add_argument("--max-cycles", type=int, default=100000)
    p_sim.set_defaults(func=cmd_simulate)

    p_tab = sub.add_parser("tables", help="regenerate the paper's tables")
    p_tab.add_argument("ids", nargs="*")
    p_tab.set_defaults(func=cmd_tables)

    p_sck = sub.add_parser(
        "schedck", help="deterministic schedule exploration of the parallel engine"
    )
    p_sck.add_argument("--seed", type=int, default=0,
                       help="schedule seed (sweep: first seed of the range)")
    p_sck.add_argument("--policy", default="random",
                       help="random | pct[:depth] | adversarial:{delay-plus,"
                            "delay-deletes,starve-quiescence,starve-worker}")
    p_sck.add_argument("--workers", type=int, default=2)
    p_sck.add_argument("--queues", type=int, default=1)
    p_sck.add_argument("--locks", choices=["simple", "mrsw"], default="simple")
    p_sck.add_argument("--lines", type=int, default=64)
    p_sck.add_argument("--dispatch", default="round-robin",
                       help="task-dispatch policy (round-robin, affinity, "
                            "least-loaded, work-stealing, rebalance) — "
                            "distinct from --policy, which picks the "
                            "thread schedule")
    p_sck.add_argument("--workload", default=None, metavar="NAME",
                       help="replay a pinned workload (deep-chain, "
                            "conjugate-storm) instead of generating one "
                            "from the seed")
    p_sck.add_argument("--sweep", type=int, default=0, metavar="N",
                       help="fuzz N seeds across the config/policy grid")
    p_sck.add_argument("--max-steps", type=int, default=200_000)
    p_sck.set_defaults(func=cmd_schedck)

    p_cck = sub.add_parser(
        "corgick", help="differential fuzzing of the corgi engine vs sequential"
    )
    p_cck.add_argument("--seed", type=int, default=0,
                       help="case seed (sweep: first seed of the range)")
    p_cck.add_argument("--profile", default="rotate",
                       help="rotate | shallow | deep | dense")
    p_cck.add_argument("--sweep", type=int, default=0, metavar="N",
                       help="fuzz N consecutive seeds")
    p_cck.set_defaults(func=cmd_corgick)

    p_pck = sub.add_parser(
        "policyck",
        help="differential policy battery: every dispatch/placement "
             "policy must match sequential byte for byte",
    )
    p_pck.add_argument("--policies", nargs="*", metavar="POLICY",
                       help="policies to check (default: all registered)")
    p_pck.add_argument("--engines", nargs="*", metavar="ENGINE",
                       help="threaded and/or mp (default: all supported)")
    p_pck.add_argument("--programs", nargs="*", metavar="NAME",
                       help="conformance programs (default: all eight)")
    p_pck.add_argument("--workers", type=int, default=2)
    p_pck.add_argument("--queues", type=int, default=None,
                       help="threaded queue-count override (default: the "
                            "per-policy safe-queue matrix)")
    p_pck.set_defaults(func=cmd_policyck)

    def _engine_flags(p: argparse.ArgumentParser, obs_flags: bool = True) -> None:
        p.add_argument("--engine", choices=list(ENGINE_NAMES),
                       default="sequential",
                       help="match backend (mp produces a stitched "
                            "multi-process trace)")
        p.add_argument("--workers", type=int, default=2,
                       help="match workers for --engine threaded/mp")
        p.add_argument("--parallel", type=int, default=0, metavar="K",
                       help="shorthand for --engine threaded --workers K")
        p.add_argument("--queues", type=int, default=1)
        p.add_argument("--locks", choices=["simple", "mrsw"], default="simple")
        p.add_argument("--max-cycles", type=int, default=100000)
        if obs_flags:
            p.add_argument("--max-events", type=int, default=200_000,
                           help="per-worker span buffer cap")
            p.add_argument("--limit", type=int, default=15,
                           help="rows per hot-spot table")

    p_trc = sub.add_parser(
        "trace",
        help="run a program under the obs event bus; export a Chrome trace",
    )
    p_trc.add_argument("file",
                       help="program file, or builtin: "
                            "blocks | monkey | tourney | rubik | weaver | "
                            "crossfire | negchain")
    p_trc.add_argument("--out", default="trace.json",
                       help="Chrome-trace JSON output path (Perfetto-loadable)")
    p_trc.add_argument("--fabric-out", metavar="FILE",
                       help="with --engine mp: also write the raw fabric "
                            "capture (re-stitch with `repro obs stitch`)")
    _engine_flags(p_trc)
    p_trc.set_defaults(func=cmd_trace)

    p_top = sub.add_parser(
        "top", help="run a program and print one hot-spot table"
    )
    p_top.add_argument("file",
                       help="program file, or builtin: "
                            "blocks | monkey | tourney | rubik | weaver | "
                            "crossfire | negchain")
    p_top.add_argument("--by", choices=["production", "node", "lock", "phase"],
                       default="production")
    _engine_flags(p_top)
    p_top.set_defaults(func=cmd_top)

    p_obs = sub.add_parser(
        "obs", help="flight recorder and trace-fabric tools"
    )
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)

    o_flight = obs_sub.add_parser(
        "flight",
        help="run a program and dump the always-on flight-recorder ring",
    )
    o_flight.add_argument("file",
                          help="program file, or builtin: "
                               "blocks | monkey | tourney | rubik | weaver | "
                               "crossfire | negchain")
    o_flight.add_argument("--out", default="flight.json",
                          help="flight snapshot output path")
    o_flight.add_argument("--ring", type=int, default=0, metavar="N",
                          help="resize the flight ring to N events first")
    _engine_flags(o_flight, obs_flags=False)
    o_flight.set_defaults(func=cmd_obs_flight)

    o_stitch = obs_sub.add_parser(
        "stitch",
        help="re-stitch a saved fabric capture into a Chrome trace",
    )
    o_stitch.add_argument("capture",
                          help="fabric capture file "
                               "(`repro trace --engine mp --fabric-out`)")
    o_stitch.add_argument("--out", default="stitched.json",
                          help="Chrome-trace JSON output path")
    o_stitch.set_defaults(func=cmd_obs_stitch)

    o_slo = obs_sub.add_parser(
        "slo",
        help="render a saved meter snapshot as a per-tenant SLO report",
    )
    o_slo.add_argument("file",
                       help="meter JSON: `loadgen --meter-out` file or a "
                            "saved `meter` verb response body")
    o_slo.add_argument("--target-ms", type=float, default=None,
                       help="recompute against this latency target "
                            "instead of the snapshot's objectives")
    o_slo.add_argument("--goal", type=float, default=None,
                       help="good fraction for --target-ms "
                            "(default 0.99)")
    o_slo.add_argument("--max-burn", type=float, default=1.0,
                       help="fail (exit 1) when any tenant burns error "
                            "budget faster than this (default 1.0)")
    o_slo.add_argument("--reconcile", action="store_true",
                       help="check meter per-tenant p99 against the "
                            "loadgen client-side p99 in the same file")
    o_slo.add_argument("--tolerance-ms", type=float, default=25.0,
                       help="absolute reconcile slack (relative slack "
                            "of 50%% applies on top)")
    o_slo.set_defaults(func=cmd_obs_slo)

    p_srv = sub.add_parser(
        "serve", help="host OPS5 sessions over a line-JSON protocol"
    )
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=0,
                       help="TCP port (0 = ephemeral)")
    p_srv.add_argument("--mode", choices=["compiled", "interpreted"],
                       default="compiled")
    p_srv.add_argument("--preload", action="append", default=[],
                       metavar="FILE",
                       help="warm the network cache with a program file "
                            "(repeatable)")
    p_srv.add_argument("--max-sessions", type=int, default=256)
    p_srv.add_argument("--inbox-depth", type=int, default=16)
    p_srv.add_argument("--meter", action="store_true",
                       help="enable per-session/per-tenant resource "
                            "metering (the `meter` verb)")
    p_srv.add_argument("--slo", action="append", default=[],
                       metavar="NAME:TARGET_MS:GOAL",
                       help="SLO objective, e.g. txn_p99:250:0.99 "
                            "(repeatable; implies --meter)")
    p_srv.set_defaults(func=cmd_serve)

    p_lg = sub.add_parser(
        "loadgen", help="drive a server with concurrent session traffic"
    )
    p_lg.add_argument("--scenario", default="mix",
                      help="blocks | monkey | tourney | mix")
    p_lg.add_argument("--sessions", type=int, default=20)
    p_lg.add_argument("--transactions", type=int, default=50,
                      help="transactions per session")
    p_lg.add_argument("--connect", metavar="HOST:PORT",
                      help="drive a running server")
    p_lg.add_argument("--spawn", action="store_true",
                      help="host an in-process server on an ephemeral port")
    p_lg.add_argument("--program", metavar="FILE",
                      help="replay budgeted runs of this program file "
                           "instead of a scenario")
    p_lg.add_argument("--verify", action="store_true",
                      help="byte-compare firings with a sequential replay")
    p_lg.add_argument("--seed", type=int, default=0)
    p_lg.add_argument("--shutdown-after", action="store_true",
                      help="send a shutdown request when the run is done")
    p_lg.add_argument("--trace-out", metavar="FILE",
                      help="enable the obs event bus for the run and write "
                           "a Chrome-trace JSON file (stitched across "
                           "processes when sessions use --engine mp)")
    p_lg.add_argument("--tenants", type=int, default=1,
                      help="partition sessions round-robin into N tenant "
                           "labels t0..tN-1 (default 1 = all 'default')")
    p_lg.add_argument("--engine", choices=list(ENGINE_NAMES),
                      default="sequential",
                      help="match backend each session opens with")
    p_lg.add_argument("--workers", type=int, default=2,
                      help="match workers for --engine threaded/mp")
    p_lg.add_argument("--meter", action="store_true",
                      help="enable metering on the spawned server and "
                           "scrape the snapshot into the report")
    p_lg.add_argument("--meter-out", metavar="FILE",
                      help="write the meter snapshot + client latency "
                           "summary as JSON (feed to `repro obs slo`)")
    p_lg.add_argument("--prom-out", metavar="FILE",
                      help="write the server's Prometheus exposition here")
    p_lg.set_defaults(func=cmd_loadgen)

    p_bench = sub.add_parser(
        "bench", help="performance observatory (see docs/PERF.md)"
    )
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)

    b_run = bench_sub.add_parser(
        "run", help="run a scenario suite; write a BENCH_<runid>.json"
    )
    b_run.add_argument("--suite", default="smoke",
                       help="smoke | full | all (default smoke)")
    b_run.add_argument("--scenario", action="append", default=[],
                       metavar="ID",
                       help="run this scenario instead of a suite "
                            "(repeatable)")
    b_run.add_argument("--repeat", type=int, default=5,
                       help="timed repetitions per scenario "
                            "(deterministic scenarios always run once)")
    b_run.add_argument("--warmup", type=int, default=1,
                       help="discarded warm-up repetitions")
    b_run.add_argument("--out-dir", default="benchmarks",
                       help="artifact + trajectory directory")
    b_run.add_argument("--runid", help="override the generated run id")
    b_run.add_argument("--note", default="",
                       help="free-form note stored in the artifact")
    b_run.add_argument("--no-trajectory", action="store_true",
                       help="write the artifact only; skip the "
                            "trajectory append")
    b_run.set_defaults(func=cmd_bench_run)

    b_cmp = bench_sub.add_parser(
        "compare", help="classify metric movement vs a baseline run"
    )
    b_cmp.add_argument("--out-dir", default="benchmarks")
    b_cmp.add_argument("--baseline", default="prev",
                       help="runid, artifact path, 'latest', or 'prev' "
                            "(default: prev)")
    b_cmp.add_argument("--current", default="latest",
                       help="runid, artifact path, 'latest', or 'prev' "
                            "(default: latest)")
    b_cmp.add_argument("--stable-only", action="store_true",
                       help="compare deterministic metrics only "
                            "(cross-machine safe)")
    b_cmp.add_argument("--movers", type=int, default=5,
                       help="hot-spot movers listed per regressed scenario")
    b_cmp.set_defaults(func=cmd_bench_compare)

    b_rep = bench_sub.add_parser(
        "report", help="render the trajectory as markdown"
    )
    b_rep.add_argument("--out-dir", default="benchmarks")
    b_rep.add_argument("--limit", type=int, default=20,
                       help="most recent runs shown")
    b_rep.add_argument("--out", metavar="FILE",
                       help="write the markdown here instead of stdout")
    b_rep.set_defaults(func=cmd_bench_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
