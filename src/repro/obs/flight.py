"""The flight recorder: an always-on black box of recent engine events.

The structured event bus (:mod:`repro.obs.events`) is opt-in and
unbounded-in-detail — great for a deliberate capture, useless for the
crash you did not predict.  The flight recorder is the complement: a
**fixed-size ring** of coarse, recent events (batch boundaries, worker
lifecycle, watchdog trips, errors) that every engine feeds
unconditionally, because one ``perf_counter_ns`` call plus one
``deque.append`` per *batch* (never per token or per task) is cheap
enough to leave enabled in production.

The ring is per *process* — forked mp workers inherit a copy and then
diverge; their tails travel back to the control process over the
fabric (:mod:`repro.obs.fabric`) piggybacked on flush replies, so a
dead worker's last moments survive it.

Snapshots are schema-versioned JSON (:data:`FLIGHT_SCHEMA`) and are
produced three ways:

* on demand — ``repro obs flight`` and the serve ``dump`` verb;
* on unhandled engine error — when a dump path is configured
  (:func:`set_dump_path` or ``REPRO_FLIGHT_DUMP``), the interpreter
  writes the snapshot before re-raising;
* on watchdog trip — the stall bundle embeds the ring tail
  (:mod:`repro.obs.watchdog`).
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from time import perf_counter_ns, time
from typing import Any, Deque, Dict, List, Optional, Tuple

#: Schema identifier stamped into every snapshot; bump on breaking
#: changes to the snapshot layout.  /2 added the ``engines`` metadata
#: map (engine name -> worker count) so crash dumps from mixed-engine
#: serve deployments are self-identifying.
FLIGHT_SCHEMA = "repro.flight/2"

#: Default ring capacity — sized so a stuck engine still shows several
#: complete recognize-act cycles of context, while the ring itself
#: stays a few tens of KB.
DEFAULT_RING_SIZE = 256

#: Environment variable naming where to dump a snapshot on unhandled
#: engine error (see :func:`dump_on_error`).
DUMP_ENV = "REPRO_FLIGHT_DUMP"

_EVENT = Tuple[int, str, str, Optional[dict]]

_ring: Deque[_EVENT] = deque(maxlen=DEFAULT_RING_SIZE)
_recorded_total = 0
_dump_path: Optional[str] = None
# Engines that have run in this process (name -> last-seen worker
# count; sequential engines register 1).  Process identity, not run
# history: configure()/reset() leave it alone so a snapshot taken
# after a ring resize still names the engines that fed it.
_engines: Dict[str, int] = {}
# Serializes snapshot/configure against concurrent recorders; record()
# itself stays lock-free (deque.append is atomic under the GIL).
_snap_lock = threading.Lock()


def configure(capacity: int = DEFAULT_RING_SIZE) -> None:
    """Resize the ring (drops current contents)."""
    global _ring, _recorded_total
    if capacity < 1:
        raise ValueError("flight ring capacity must be >= 1")
    with _snap_lock:
        _ring = deque(maxlen=capacity)
        _recorded_total = 0


def reset() -> None:
    """Empty the ring without changing its capacity."""
    global _recorded_total
    with _snap_lock:
        _ring.clear()
        _recorded_total = 0


def note_engine(name: str, workers: int = 1) -> None:
    """Register an engine running in this process for snapshot
    metadata.  Called once per matcher construction — last worker
    count per engine name wins."""
    _engines[name] = int(workers)


def engines() -> Dict[str, int]:
    return dict(_engines)


def record(engine: str, event: str, detail: Optional[dict] = None) -> None:
    """Append one event.  Always on; callers must keep this at batch /
    lifecycle granularity (never per token) so the cost stays one
    clock read and one bounded append."""
    global _recorded_total
    _recorded_total += 1
    _ring.append((perf_counter_ns(), engine, event, detail))


def tail(n: Optional[int] = None) -> List[Dict[str, Any]]:
    """The most recent ``n`` events (all, if None), oldest first,
    JSON-ready."""
    with _snap_lock:
        events = list(_ring)
    if n is not None and n >= 0:
        events = events[-n:]
    return [
        {"t_ns": t, "engine": engine, "event": event, "detail": detail}
        for t, engine, event, detail in events
    ]


def snapshot(reason: str, workers: Optional[Dict[str, List[dict]]] = None) -> Dict[str, Any]:
    """The ring as a schema-versioned JSON document.

    ``workers`` optionally attaches remote tails — e.g. the last-known
    flight events each mp worker shipped over the fabric — keyed by a
    display name.
    """
    doc: Dict[str, Any] = {
        "schema": FLIGHT_SCHEMA,
        "reason": reason,
        "pid": os.getpid(),
        "process": "control",
        "captured_unix": time(),
        "ring_capacity": _ring.maxlen,
        "recorded_total": _recorded_total,
        "engines": dict(_engines),
        "events": tail(),
    }
    if workers:
        doc["workers"] = {
            name: list(events) for name, events in sorted(workers.items())
        }
    return doc


def write_snapshot(
    path: str, reason: str, workers: Optional[Dict[str, List[dict]]] = None
) -> Dict[str, Any]:
    """Serialize :func:`snapshot` to ``path``; returns the document."""
    doc = snapshot(reason, workers=workers)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    return doc


# -- crash dumps -------------------------------------------------------------


def set_dump_path(path: Optional[str]) -> None:
    """Configure (or clear, with None) the on-error dump destination.
    The ``REPRO_FLIGHT_DUMP`` environment variable is the fallback when
    no explicit path is set."""
    global _dump_path
    _dump_path = path


def dump_path() -> Optional[str]:
    return _dump_path or os.environ.get(DUMP_ENV) or None


def dump_on_error(reason: str) -> Optional[str]:
    """Write a snapshot to the configured dump path, if any.

    Returns the path written, or None when no path is configured.
    Never raises: this runs on the unhandled-error path, where a
    secondary failure must not mask the original exception.
    """
    path = dump_path()
    if not path:
        return None
    try:
        write_snapshot(path, reason)
    except OSError:  # pragma: no cover - disk full / bad path
        return None
    return path


# -- schema validation -------------------------------------------------------


def _check_events(events: Any, where: str, problems: List[str]) -> None:
    if not isinstance(events, list):
        problems.append(f"{where} is not an array")
        return
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"{where}[{i}]: not an object")
            continue
        for key, types in (("t_ns", (int,)), ("engine", (str,)), ("event", (str,))):
            if not isinstance(event.get(key), types):
                problems.append(f"{where}[{i}]: bad {key!r}")
        detail = event.get("detail")
        if detail is not None and not isinstance(detail, dict):
            problems.append(f"{where}[{i}]: detail must be an object or null")


def validate_flight(doc: Any) -> List[str]:
    """Schema-check a flight snapshot; returns human-readable problems
    (empty list = valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("schema") != FLIGHT_SCHEMA:
        problems.append(
            f"schema is {doc.get('schema')!r}, expected {FLIGHT_SCHEMA!r}"
        )
    for key, types in (
        ("reason", (str,)),
        ("pid", (int,)),
        ("ring_capacity", (int,)),
        ("recorded_total", (int,)),
        ("captured_unix", (int, float)),
    ):
        if not isinstance(doc.get(key), types):
            problems.append(f"missing or bad {key!r}")
    engines_meta = doc.get("engines")
    if not isinstance(engines_meta, dict):
        problems.append("missing or bad 'engines'")
    else:
        for name, count in engines_meta.items():
            if not isinstance(name, str) or not isinstance(count, int):
                problems.append(f"engines[{name!r}]: name->count must be str->int")
    _check_events(doc.get("events"), "events", problems)
    workers = doc.get("workers")
    if workers is not None:
        if not isinstance(workers, dict):
            problems.append("workers is not an object")
        else:
            for name, events in workers.items():
                _check_events(events, f"workers[{name}]", problems)
    return problems
