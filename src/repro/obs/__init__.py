"""repro.obs — unified tracing, metrics, and profiling.

One observability layer shared by every engine in the repository: the
sequential Rete matcher, the threaded parallel runtime, the OPS5
recognize-act interpreter, and the service layer all report into the
same structured event bus (:mod:`repro.obs.events`), which feeds

* hot-spot profiles (:mod:`repro.obs.profile`) — per-node,
  per-production, per-lock, and per-phase tables, and
* exporters (:mod:`repro.obs.export`) — Chrome-trace JSON for
  ``chrome://tracing``/Perfetto, and a Prometheus-style text
  exposition of the service counters.

Around the opt-in bus sit three always-available diagnostics:

* the flight recorder (:mod:`repro.obs.flight`) — a fixed-size
  always-on ring of recent engine events, dumped as a schema-versioned
  snapshot on demand, on unhandled engine error, or on watchdog trip;
* the trace fabric (:mod:`repro.obs.fabric`) — worker-side spans and
  node profiles from the mp backend's forked match processes, shipped
  over the existing pipes and causally stitched into one multi-process
  Chrome trace;
* the stall watchdog (:mod:`repro.obs.watchdog`) — no-progress
  detection for the parallel engines, emitting a self-describing
  diagnostic bundle (queue depths, lock holders, flight tails).

The paper's contribution is *measured* — nine tables of timings and
contention counts — and this package is the runtime evidence chain for
our own measurements: every instrumentation point is guarded by a
module-level enabled flag so a disabled build pays one attribute read
per probe and allocates nothing (see docs/OBSERVABILITY.md for the
overhead guarantee).
"""

from .events import disable, enable, enabled, reset, snapshot

__all__ = ["enable", "disable", "enabled", "reset", "snapshot"]
