"""repro.obs — unified tracing, metrics, and profiling.

One observability layer shared by every engine in the repository: the
sequential Rete matcher, the threaded parallel runtime, the OPS5
recognize-act interpreter, and the service layer all report into the
same structured event bus (:mod:`repro.obs.events`), which feeds

* hot-spot profiles (:mod:`repro.obs.profile`) — per-node,
  per-production, per-lock, and per-phase tables, and
* exporters (:mod:`repro.obs.export`) — Chrome-trace JSON for
  ``chrome://tracing``/Perfetto, and a Prometheus-style text
  exposition of the service counters.

The paper's contribution is *measured* — nine tables of timings and
contention counts — and this package is the runtime evidence chain for
our own measurements: every instrumentation point is guarded by a
module-level enabled flag so a disabled build pays one attribute read
per probe and allocates nothing (see docs/OBSERVABILITY.md for the
overhead guarantee).
"""

from .events import disable, enable, enabled, reset, snapshot

__all__ = ["enable", "disable", "enabled", "reset", "snapshot"]
