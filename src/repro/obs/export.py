"""Exporters: Chrome-trace JSON and Prometheus-style text exposition.

``chrome_trace`` turns an :class:`~repro.obs.events.ObsSnapshot` into
the Trace Event Format consumed by ``chrome://tracing`` and Perfetto
(https://ui.perfetto.dev): one timeline row per worker thread, complete
duration events (``"ph": "X"``) with microsecond timestamps, and
thread-name metadata events so the control process and each match
process are labelled.  ``validate_chrome_trace`` is the schema check
the CI ``obs-smoke`` job runs on exported files.

``prometheus_text`` renders the service layer's counters (server,
netcache, per-session) in the Prometheus exposition format, so a
scraper — or ``curl`` piped through the ``stats`` verb — sees standard
``# TYPE``-annotated families.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Optional, Tuple

from .events import ObsSnapshot

#: Required keys of a complete ("X") trace event.
_X_KEYS = ("name", "cat", "ph", "ts", "dur", "pid", "tid")

#: Required keys of a flow ("s"/"f") event — the fabric's
#: dispatch→worker arrows (see :mod:`repro.obs.fabric`).
_FLOW_KEYS = ("name", "cat", "ph", "id", "ts", "pid", "tid")

#: Metadata event names we emit: per-thread labels everywhere, and
#: per-process labels in stitched multi-process traces.
_META_NAMES = ("thread_name", "process_name")


def chrome_trace(snap: ObsSnapshot) -> Dict[str, Any]:
    """The snapshot as a Trace Event Format document (JSON object form)."""
    events: List[Dict[str, Any]] = []
    for tid, (worker, spans) in enumerate(sorted(snap.workers.items())):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": worker},
            }
        )
        for t0, dur, cat, name, args in spans:
            event: Dict[str, Any] = {
                "name": name,
                "cat": cat,
                "ph": "X",
                "ts": t0 / 1e3,  # ns -> us, the format's unit
                "dur": dur / 1e3,
                "pid": 1,
                "tid": tid,
            }
            if args:
                event["args"] = args
            events.append(event)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs", "dropped_spans": snap.dropped},
    }


def write_chrome_trace(path: str, snap: ObsSnapshot) -> int:
    """Serialize :func:`chrome_trace` to ``path``; returns event count."""
    doc = chrome_trace(snap)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return len(doc["traceEvents"])


def validate_chrome_trace(doc: Any) -> List[str]:
    """Schema-check a trace document; returns human-readable problems
    (empty list = valid).  Checks exactly what Perfetto needs to load
    the file: the ``traceEvents`` array, per-event required keys,
    numeric non-negative timestamps, and known phase codes."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not an array"]
    if not events:
        problems.append("traceEvents is empty")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = event.get("ph")
        if ph == "M":
            if event.get("name") not in _META_NAMES:
                problems.append(f"event {i}: unexpected metadata event")
            continue
        if ph in ("s", "f"):
            for key in _FLOW_KEYS:
                if key not in event:
                    problems.append(f"event {i}: missing {key!r}")
            value = event.get("ts")
            if not isinstance(value, (int, float)) or value < 0:
                problems.append(f"event {i}: ts must be a non-negative number")
            if ph == "f" and event.get("bp") != "e":
                # Without binding-point "e" Perfetto attaches the arrow
                # to the *next* slice after ts, detaching it from the
                # worker batch span it belongs to.
                problems.append(f"event {i}: flow finish must carry bp='e'")
            continue
        if ph != "X":
            problems.append(f"event {i}: unknown phase {ph!r}")
            continue
        for key in _X_KEYS:
            if key not in event:
                problems.append(f"event {i}: missing {key!r}")
        for key in ("ts", "dur"):
            value = event.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                problems.append(f"event {i}: {key} must be a non-negative number")
        for key in ("name", "cat"):
            if key in event and not isinstance(event[key], str):
                problems.append(f"event {i}: {key} must be a string")
    return problems


# -- Prometheus exposition ---------------------------------------------------


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def prometheus_text(
    server: Dict[str, Any],
    sessions: Optional[Dict[str, Dict[str, Any]]] = None,
    netcache: Optional[Dict[str, Any]] = None,
    obs: Optional[Dict[str, Any]] = None,
    meter: Optional[Dict[str, Any]] = None,
) -> str:
    """Serve counters in the Prometheus text exposition format.

    ``server`` is a :meth:`~repro.serve.metrics.ServerMetrics.snapshot`,
    ``sessions`` a ``{sid: session snapshot}`` map, ``netcache`` a
    :meth:`~repro.serve.netcache.NetworkCache.stats` dict, and ``obs``
    event-bus health (``enabled`` flag plus the ``dropped_events``
    span-buffer-saturation count from
    :func:`repro.obs.events.dropped_total`).  ``meter`` is a
    :func:`repro.obs.meter.snapshot` document; its per-scope counters
    render as labelled counter families and its per-tenant latency
    histograms as ``repro_meter_txn_latency_ms`` buckets carrying
    OpenMetrics-style trace exemplars (``# {request_id="rN"} value ts``).
    """
    lines: List[str] = []

    def family(name: str, kind: str, help_text: str) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")

    family("repro_uptime_seconds", "gauge", "Server uptime.")
    lines.append(f"repro_uptime_seconds {server.get('uptime_s', 0.0):.3f}")

    counter_fields = (
        ("requests", "Requests received."),
        ("errors", "Requests answered with an error."),
        ("connections", "Connections accepted."),
        ("sessions_opened", "Sessions opened."),
        ("sessions_closed", "Sessions closed."),
        ("rejected_busy", "Requests rejected for backpressure."),
        ("rejected_budget", "Requests rejected for budget caps."),
        ("transactions", "WM transactions applied."),
        ("cycles", "Recognize-act cycles executed."),
        ("firings", "Production firings."),
    )
    for fieldname, help_text in counter_fields:
        metric = f"repro_{fieldname}_total"
        family(metric, "counter", help_text)
        lines.append(f"{metric} {server.get(fieldname, 0)}")

    latency = server.get("latency") or {}
    family("repro_latency_ms", "summary", "Transaction latency (recent window).")
    for quantile in ("p50", "p95", "p99"):
        value = latency.get(f"{quantile}_ms")
        if value is not None:
            lines.append(
                f'repro_latency_ms{{quantile="{quantile}"}} {value:.4f}'
            )
    if latency.get("mean_ms") is not None:
        lines.append(f"repro_latency_mean_ms {latency['mean_ms']:.4f}")

    if netcache:
        family("repro_netcache_entries", "gauge", "Compiled networks cached.")
        lines.append(f"repro_netcache_entries {netcache.get('entries', 0)}")
        for fieldname in ("hits", "misses"):
            metric = f"repro_netcache_{fieldname}_total"
            family(metric, "counter", f"Network cache {fieldname}.")
            lines.append(f"{metric} {netcache.get(fieldname, 0)}")

    if obs is not None:
        family(
            "repro_obs_enabled", "gauge",
            "Whether the obs event bus is collecting (1) or idle (0).",
        )
        lines.append(f"repro_obs_enabled {1 if obs.get('enabled') else 0}")
        family(
            "repro_obs_dropped_events_total", "counter",
            "Spans dropped by the obs event-bus per-worker buffer caps.",
        )
        lines.append(
            f"repro_obs_dropped_events_total {obs.get('dropped_events', 0)}"
        )

    if sessions:
        session_fields = (
            "transactions", "cycles", "firings", "wm_ops", "errors",
            "rejected_busy", "rejected_budget",
        )
        for fieldname in session_fields:
            metric = f"repro_session_{fieldname}_total"
            family(metric, "counter", f"Per-session {fieldname}.")
            for sid, snap in sorted(sessions.items()):
                lines.append(
                    f'{metric}{{session="{_escape_label(sid)}"}} '
                    f"{snap.get(fieldname, 0)}"
                )
        family("repro_session_wm_size", "gauge", "Working-memory elements.")
        for sid, snap in sorted(sessions.items()):
            lines.append(
                f'repro_session_wm_size{{session="{_escape_label(sid)}"}} '
                f"{snap.get('wm_size', 0)}"
            )

    if meter:
        _append_meter(lines, family, meter)
    return "\n".join(lines) + "\n"


def _meter_metric_name(counter: str) -> str:
    if counter.endswith("_s"):
        return f"repro_meter_{counter[:-2]}_seconds_total"
    return f"repro_meter_{counter}_total"


def _append_meter(lines: List[str], family, meter: Dict[str, Any]) -> None:
    """Meter accounts as labelled families: one counter family per
    meter counter (scope=session|tenant), plus a per-tenant latency
    histogram with exemplars."""
    scopes = (("session", meter.get("sessions") or {}),
              ("tenant", meter.get("tenants") or {}))
    counter_names: List[str] = []
    for _scope, accounts in scopes:
        for acct in accounts.values():
            for name in (acct.get("counters") or {}):
                if name not in counter_names:
                    counter_names.append(name)
    for counter in sorted(counter_names):
        metric = _meter_metric_name(counter)
        family(metric, "counter", f"Metered {counter} per scope.")
        for scope, accounts in scopes:
            for key, acct in sorted(accounts.items()):
                value = (acct.get("counters") or {}).get(counter, 0)
                label = _escape_label(key)
                if isinstance(value, float):
                    lines.append(
                        f'{metric}{{scope="{scope}",id="{label}"}} {value:.6f}'
                    )
                else:
                    lines.append(
                        f'{metric}{{scope="{scope}",id="{label}"}} {value}'
                    )

    metric = "repro_meter_txn_latency_ms"
    family(metric, "histogram",
           "Per-tenant transaction latency (submit to done).")
    for tenant, acct in sorted((meter.get("tenants") or {}).items()):
        hist = acct.get("latency") or {}
        bounds = hist.get("buckets_ms") or []
        counts = hist.get("counts") or []
        exemplars = hist.get("exemplars") or {}
        label = _escape_label(tenant)
        acc = 0
        for i, le in enumerate(list(bounds) + ["+Inf"]):
            acc += counts[i] if i < len(counts) else 0
            le_str = "+Inf" if le == "+Inf" else f"{float(le):g}"
            line = f'{metric}_bucket{{tenant="{label}",le="{le_str}"}} {acc}'
            ex = exemplars.get(str(i))
            if ex:
                line += (
                    f' # {{request_id="{_escape_label(ex["request_id"])}"}}'
                    f' {ex["value_ms"]:.4f} {ex["unix"]:.3f}'
                )
            lines.append(line)
        lines.append(f'{metric}_sum{{tenant="{label}"}} '
                     f"{hist.get('sum_ms', 0.0):.4f}")
        lines.append(f'{metric}_count{{tenant="{label}"}} '
                     f"{hist.get('count', 0)}")


# -- Prometheus exposition validation ---------------------------------------

_METRIC_LINE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s#]+)"
    r"(?P<rest>.*)$"
)

_EXEMPLAR_RE = re.compile(
    r"^ # \{(?:[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")"
    r"(?:,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\}"
    r" -?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?"
    r"(?: \d+(?:\.\d+)?)?$"
)

_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"')


def _parse_labels(raw: Optional[str]) -> Dict[str, str]:
    return dict(_LABEL_RE.findall(raw)) if raw else {}


def validate_prometheus(text: str) -> List[str]:
    """Schema-check a Prometheus text exposition; returns problems
    (empty list = valid).

    Checks what a scraper needs: every sample line parses (name,
    optional labels, float value), exemplars are well-formed
    OpenMetrics ``# {labels} value [timestamp]`` suffixes attached only
    to histogram buckets, and each histogram series has monotone
    non-decreasing cumulative buckets ending in ``le="+Inf"`` whose
    count equals the series' ``_count`` sample.
    """
    problems: List[str] = []
    types: Dict[str, str] = {}
    # (hist family, frozen non-le labels) -> list of (le, value) in order
    buckets: Dict[Tuple[str, frozenset], List[Tuple[float, float]]] = {}
    counts: Dict[Tuple[str, frozenset], float] = {}

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) >= 4:
                types[parts[2]] = parts[3]
            else:
                problems.append(f"line {lineno}: malformed TYPE comment")
            continue
        if line.startswith("#"):
            continue
        m = _METRIC_LINE_RE.match(line)
        if not m:
            problems.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        name, raw_labels = m.group("name"), m.group("labels")
        rest = m.group("rest")
        try:
            value = float(m.group("value"))
        except ValueError:
            problems.append(f"line {lineno}: non-numeric value")
            continue
        is_bucket = name.endswith("_bucket")
        if rest:
            if not is_bucket:
                problems.append(
                    f"line {lineno}: exemplar on non-bucket sample"
                )
            elif not _EXEMPLAR_RE.match(rest):
                problems.append(f"line {lineno}: malformed exemplar {rest!r}")
        labels = _parse_labels(raw_labels)
        base = name[:-len("_bucket")] if is_bucket else None
        if is_bucket:
            if types.get(base) != "histogram":
                problems.append(
                    f"line {lineno}: bucket for undeclared histogram {base!r}"
                )
            le = labels.pop("le", None)
            if le is None:
                problems.append(f"line {lineno}: bucket without 'le' label")
                continue
            le_f = float("inf") if le == "+Inf" else None
            if le_f is None:
                try:
                    le_f = float(le)
                except ValueError:
                    problems.append(f"line {lineno}: bad le={le!r}")
                    continue
            key = (base, frozenset(labels.items()))
            buckets.setdefault(key, []).append((le_f, value))
        elif name.endswith("_count") and types.get(name[:-6]) == "histogram":
            counts[(name[:-6], frozenset(labels.items()))] = value

    for (base, labelset), series in sorted(
        buckets.items(), key=lambda kv: (kv[0][0], sorted(kv[0][1]))
    ):
        label_desc = dict(labelset)
        prev_le, prev_v = None, None
        for le, v in series:
            if prev_le is not None and le <= prev_le:
                problems.append(
                    f"{base}{label_desc}: le values not increasing"
                )
            if prev_v is not None and v < prev_v:
                problems.append(
                    f"{base}{label_desc}: bucket counts not monotone"
                )
            prev_le, prev_v = le, v
        if prev_le != float("inf"):
            problems.append(f"{base}{label_desc}: missing le=\"+Inf\" bucket")
        have_count = counts.get((base, labelset))
        if have_count is not None and prev_v is not None and have_count != prev_v:
            problems.append(
                f"{base}{label_desc}: _count {have_count} != +Inf bucket {prev_v}"
            )
    return problems
