"""The cross-process trace fabric: worker-side obs, shipped and stitched.

The mp backend's match workers are forked processes, so their event
buffers (:mod:`repro.obs.events` is per-process module state) die with
them — before this module, a ``repro trace --engine mp`` run showed
the control process's dispatch/quiesce/merge spans and nothing from
the processes doing the actual matching.

The fabric closes that hole with three pieces:

* **Shipping** (worker side, :func:`build_ship`): at every flush —
  the existing per-batch synchronization point, so no new IPC round
  trips — a worker snapshots its local bus (spans, per-node hot-spot
  aggregates, counters, drop count), bounds the span payload
  (:data:`SHIP_MAX_SPANS`; overflow is *counted*, never silently cut),
  attaches its flight-recorder tail, and resets the local bus so each
  ship is a delta.

* **Collection** (control side, :class:`FabricCollector`): one
  :class:`WorkerLane` per worker accumulates the shipped deltas,
  bounded again at :data:`LANE_MAX_SPANS` per lane.  Absorption bumps
  ``fabric.ship_batches`` / ``fabric.ship_spans`` /
  ``fabric.ship_dropped`` on the control bus, so the perf runner's
  counter capture trends fabric health alongside the match metrics.

* **Stitching** (:func:`stitch_trace`): one Chrome trace with the
  control process on pid 1 and each worker on its own pid lane, plus
  flow arrows from every control ``dispatch`` span to the worker
  ``batch`` spans it triggered (matched on the batch sequence number
  both sides stamp into span args).  Worker spans whose sequence
  number matches no dispatch are counted as ``stitch_orphans`` —
  present in the document *and* returned, because a nonzero orphan
  count means the causal story is incomplete.

Timestamps stitch without translation: both sides use
``time.perf_counter_ns``, which on the fork-capable platforms the mp
backend supports (Linux ``CLOCK_MONOTONIC``, macOS
``mach_absolute_time``) is a system-wide clock shared across
processes.

:func:`write_capture` / :func:`load_capture` round-trip the raw fabric
state (control snapshot + lanes) as a schema-versioned JSON file, so
``repro obs stitch`` can re-stitch a capture offline.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Tuple

from . import events as _events
from . import flight
from .events import ObsSnapshot

#: Schema identifier of the raw capture file format.
FABRIC_SCHEMA = "repro.fabric/1"

#: Span cap per flush reply (worker side).  A conformance-scale batch
#: ships a handful of spans; a runaway batch ships the most recent
#: SHIP_MAX_SPANS and counts the rest in ``ship_dropped``.
SHIP_MAX_SPANS = 20_000

#: Control-side span cap per worker lane (mirrors the per-thread cap
#: of the local bus).
LANE_MAX_SPANS = 200_000

#: Flight-recorder events attached to each ship (the worker's black
#: box tail travels with every flush, so the control process always
#: holds a dead worker's last moments).
SHIP_FLIGHT_TAIL = 20

#: Chrome-trace pid offset for worker lanes (control is pid 1).
WORKER_PID_BASE = 100

#: Flow-id floor for request-scoped arrows (serve verb → interpreter
#: phase).  Far above any ``seq * (WORKER_PID_BASE + 1) + wid``
#: dispatch flow id a real run can reach, so the two arrow families
#: never collide in one document.
REQUEST_FLOW_BASE = 1_000_000_007


# -- worker side -------------------------------------------------------------


def build_ship(
    max_spans: int = SHIP_MAX_SPANS, tail_n: int = SHIP_FLIGHT_TAIL
) -> Dict[str, Any]:
    """Snapshot-and-reset this process's bus into one ship payload.

    Called in the *worker* process at flush time.  The local bus is
    reset afterwards so consecutive ships are deltas; the worker's
    retired drop counts stay monotonic locally (see
    :func:`repro.obs.events.dropped_total`) and the per-window drop
    count travels in the payload.
    """
    snap = _events.snapshot()
    _events.reset()
    spans = [span for spans in snap.workers.values() for span in spans]
    ship_dropped = 0
    if len(spans) > max_spans:
        ship_dropped = len(spans) - max_spans
        spans = spans[-max_spans:]
    return {
        "pid": os.getpid(),
        "spans": spans,
        "nodes": snap.nodes,
        "counters": snap.counters,
        "dropped": snap.dropped,
        "ship_dropped": ship_dropped,
        "flight": flight.tail(tail_n),
    }


# -- control side ------------------------------------------------------------


class WorkerLane:
    """One worker's accumulated shipped telemetry."""

    __slots__ = ("wid", "name", "pid", "spans", "nodes", "counters",
                 "dropped", "ship_batches", "flight_tail")

    def __init__(self, wid: int, name: str) -> None:
        self.wid = wid
        self.name = name
        self.pid = 0
        self.spans: List[tuple] = []
        #: node_id -> [kind, activations, self_ns, examined, emitted]
        self.nodes: Dict[int, list] = {}
        self.counters: Dict[str, int] = {}
        self.dropped = 0
        self.ship_batches = 0
        self.flight_tail: List[dict] = []


class FabricCollector:
    """Accumulates worker ships in the control process."""

    def __init__(self) -> None:
        self.lanes: Dict[int, WorkerLane] = {}

    def absorb(self, wid: int, ship: Dict[str, Any]) -> None:
        """Fold one flush's ship payload into the worker's lane.  Bumps
        the ``fabric.*`` counters on the control bus while it is
        enabled, so fabric health rides the normal profile capture."""
        lane = self.lanes.get(wid)
        if lane is None:
            lane = self.lanes[wid] = WorkerLane(wid, f"match-{wid}")
        lane.pid = ship.get("pid", lane.pid)
        lane.ship_batches += 1
        incoming = ship.get("spans") or []
        dropped = int(ship.get("dropped", 0)) + int(ship.get("ship_dropped", 0))
        room = LANE_MAX_SPANS - len(lane.spans)
        if len(incoming) > room:
            dropped += len(incoming) - room
            incoming = incoming[:room]
        lane.spans.extend(incoming)
        lane.dropped += dropped
        for node_id, agg in (ship.get("nodes") or {}).items():
            have = lane.nodes.get(node_id)
            if have is None:
                lane.nodes[node_id] = list(agg)
            else:
                have[1] += agg[1]
                have[2] += agg[2]
                have[3] += agg[3]
                have[4] += agg[4]
        for key, n in (ship.get("counters") or {}).items():
            lane.counters[key] = lane.counters.get(key, 0) + n
        lane.flight_tail = list(ship.get("flight") or lane.flight_tail)
        if _events.ENABLED:
            _events.count("fabric.ship_batches")
            if incoming:
                _events.count("fabric.ship_spans", len(incoming))
            if dropped:
                _events.count("fabric.ship_dropped", dropped)

    @property
    def ship_batches(self) -> int:
        return sum(lane.ship_batches for lane in self.lanes.values())

    @property
    def shipped_spans(self) -> int:
        return sum(len(lane.spans) for lane in self.lanes.values())

    def flight_tails(self) -> Dict[str, List[dict]]:
        """Last-known flight tail per worker, for watchdog bundles and
        crash snapshots."""
        return {
            lane.name: list(lane.flight_tail)
            for lane in self.lanes.values()
            if lane.flight_tail
        }


def merged_snapshot(snap: ObsSnapshot, collector: FabricCollector) -> ObsSnapshot:
    """A copy of ``snap`` with every worker lane folded in: lane spans
    become extra worker timelines, node/counter aggregates merge, and
    shipped drop counts add up — so profiles built from an mp run see
    the workers' match work, not just the control process's."""
    merged = ObsSnapshot(
        workers={name: list(spans) for name, spans in snap.workers.items()},
        nodes={node_id: list(agg) for node_id, agg in snap.nodes.items()},
        locks={label: list(agg) for label, agg in snap.locks.items()},
        counters=dict(snap.counters),
        dropped=snap.dropped,
    )
    for wid in sorted(collector.lanes):
        lane = collector.lanes[wid]
        name = f"mp:{lane.name}"
        if name in merged.workers:  # pragma: no cover - defensive
            name = f"{name}#{wid}"
        merged.workers[name] = list(lane.spans)
        merged.dropped += lane.dropped
        for node_id, agg in lane.nodes.items():
            have = merged.nodes.get(node_id)
            if have is None:
                merged.nodes[node_id] = list(agg)
            else:
                have[1] += agg[1]
                have[2] += agg[2]
                have[3] += agg[3]
                have[4] += agg[4]
        for key, n in lane.counters.items():
            merged.counters[key] = merged.counters.get(key, 0) + n
    return merged


# -- stitching ---------------------------------------------------------------


def stitch_trace(
    snap: ObsSnapshot, collector: FabricCollector
) -> Tuple[Dict[str, Any], int]:
    """One causally-stitched Chrome trace across all processes.

    Returns ``(document, stitch_orphans)``.  The control process's
    threads render exactly as :func:`repro.obs.export.chrome_trace`
    renders them (pid 1); each worker lane gets its own pid; every
    control ``dispatch`` span flows to the worker ``batch`` spans that
    carry the same batch sequence number.
    """
    from .export import chrome_trace

    doc = chrome_trace(snap)
    events = doc["traceEvents"]
    events.insert(
        0,
        {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
         "args": {"name": "control"}},
    )
    # Control dispatch spans, keyed by batch seq.  Tids here must match
    # chrome_trace's assignment (enumerate over sorted worker names).
    dispatch: Dict[int, Tuple[int, float]] = {}
    # Request-scoped arrows: each serve-verb span flows to the
    # interpreter phase spans carrying the same request id ("req" from
    # repro.obs.context), completing the serve → phase → worker-batch
    # causal chain (the last hop is the seq-keyed dispatch arrows,
    # whose dispatch spans nest inside the phase).
    serve_spans: Dict[str, Tuple[int, float]] = {}
    phase_hops: List[Tuple[str, int, float]] = []
    for tid, (_worker, spans) in enumerate(sorted(snap.workers.items())):
        for t0, dur, cat, name, args in spans:
            if cat == "mp" and name == "dispatch" and args and "seq" in args:
                dispatch[args["seq"]] = (tid, (t0 + dur) / 1e3)
            elif cat == "serve" and args and "req" in args:
                serve_spans[args["req"]] = (tid, t0 / 1e3)
            elif (cat == "phase" and name == "match"
                  and args and "req" in args):
                phase_hops.append((args["req"], tid, t0 / 1e3))
    request_flows = 0
    for req, tid, ts in phase_hops:
        src = serve_spans.get(req)
        if src is None:
            continue
        flow_id = REQUEST_FLOW_BASE + request_flows
        events.append(
            {"name": "request", "cat": "fabric", "ph": "s",
             "id": flow_id, "pid": 1, "tid": src[0], "ts": src[1]}
        )
        events.append(
            {"name": "request", "cat": "fabric", "ph": "f", "bp": "e",
             "id": flow_id, "pid": 1, "tid": tid, "ts": ts}
        )
        request_flows += 1

    orphans = 0
    for wid in sorted(collector.lanes):
        lane = collector.lanes[wid]
        pid = WORKER_PID_BASE + wid
        events.append(
            {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
             "args": {"name": f"{lane.name} (pid {lane.pid})"}}
        )
        events.append(
            {"name": "thread_name", "ph": "M", "pid": pid, "tid": 0,
             "args": {"name": lane.name}}
        )
        for t0, dur, cat, name, args in lane.spans:
            event: Dict[str, Any] = {
                "name": name,
                "cat": cat,
                "ph": "X",
                "ts": t0 / 1e3,
                "dur": dur / 1e3,
                "pid": pid,
                "tid": 0,
            }
            if args:
                event["args"] = args
            events.append(event)
            if cat == "mp.worker" and name == "batch" and args and "seq" in args:
                seq = args["seq"]
                src = dispatch.get(seq)
                if src is None:
                    orphans += 1
                    continue
                # One flow per (seq, worker): Chrome flow ids must be
                # unique per arrow, and one dispatch fans out to every
                # worker's batch span.
                flow_id = seq * (WORKER_PID_BASE + 1) + wid
                events.append(
                    {"name": "dispatch", "cat": "fabric", "ph": "s",
                     "id": flow_id, "pid": 1, "tid": src[0], "ts": src[1]}
                )
                events.append(
                    {"name": "dispatch", "cat": "fabric", "ph": "f",
                     "bp": "e", "id": flow_id, "pid": pid, "tid": 0,
                     "ts": t0 / 1e3}
                )
    other = doc["otherData"]
    other["stitch_orphans"] = orphans
    other["request_flows"] = request_flows
    other["fabric_lanes"] = len(collector.lanes)
    other["dropped_spans"] = other.get("dropped_spans", 0) + sum(
        lane.dropped for lane in collector.lanes.values()
    )
    return doc, orphans


def merge_collectors(
    collectors: List[Tuple[str, FabricCollector]]
) -> FabricCollector:
    """Fold several matchers' collectors into one, re-keying worker
    lanes with unique wids (and ``label:`` name prefixes) so a server
    hosting many mp sessions can stitch them all into a single trace.
    Batch seqs are process-unique (``repro.parallel.mp.engine``'s
    global counter), so dispatch arrows keep pairing correctly after
    the merge.  Lanes are shallow-shared, not copied: treat the merged
    collector as read-only."""
    merged = FabricCollector()
    next_wid = 0
    for label, collector in collectors:
        for wid in sorted(collector.lanes):
            lane = collector.lanes[wid]
            clone = WorkerLane(
                next_wid, f"{label}:{lane.name}" if label else lane.name
            )
            clone.pid = lane.pid
            clone.spans = lane.spans
            clone.nodes = lane.nodes
            clone.counters = lane.counters
            clone.dropped = lane.dropped
            clone.ship_batches = lane.ship_batches
            clone.flight_tail = lane.flight_tail
            merged.lanes[next_wid] = clone
            next_wid += 1
    return merged


# -- raw capture round-trip --------------------------------------------------


def _spans_to_json(spans: List[tuple]) -> List[list]:
    return [list(span) for span in spans]


def _spans_from_json(spans: Any) -> List[tuple]:
    return [tuple(span) for span in spans or []]


def capture_doc(snap: ObsSnapshot, collector: FabricCollector) -> Dict[str, Any]:
    """The raw fabric state as a JSON-serializable document."""
    return {
        "schema": FABRIC_SCHEMA,
        "control": {
            "workers": {
                name: _spans_to_json(spans)
                for name, spans in sorted(snap.workers.items())
            },
            "nodes": {str(k): list(v) for k, v in snap.nodes.items()},
            "locks": {k: list(v) for k, v in snap.locks.items()},
            "counters": dict(snap.counters),
            "dropped": snap.dropped,
        },
        "lanes": [
            {
                "wid": lane.wid,
                "name": lane.name,
                "pid": lane.pid,
                "spans": _spans_to_json(lane.spans),
                "nodes": {str(k): list(v) for k, v in lane.nodes.items()},
                "counters": dict(lane.counters),
                "dropped": lane.dropped,
                "ship_batches": lane.ship_batches,
                "flight": list(lane.flight_tail),
            }
            for _wid, lane in sorted(collector.lanes.items())
        ],
    }


def write_capture(path: str, snap: ObsSnapshot, collector: FabricCollector) -> None:
    doc = capture_doc(snap, collector)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
        fh.write("\n")
    os.replace(tmp, path)


def validate_capture(doc: Any) -> List[str]:
    """Schema-check a raw fabric capture; returns problems (empty = valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("schema") != FABRIC_SCHEMA:
        problems.append(
            f"schema is {doc.get('schema')!r}, expected {FABRIC_SCHEMA!r}"
        )
    control = doc.get("control")
    if not isinstance(control, dict) or not isinstance(
        control.get("workers"), dict
    ):
        problems.append("control.workers is missing or not an object")
    lanes = doc.get("lanes")
    if not isinstance(lanes, list):
        problems.append("lanes is missing or not an array")
    else:
        for i, lane in enumerate(lanes):
            if not isinstance(lane, dict) or not isinstance(lane.get("wid"), int):
                problems.append(f"lanes[{i}]: needs an integer wid")
                continue
            if not isinstance(lane.get("spans"), list):
                problems.append(f"lanes[{i}]: spans must be an array")
    return problems


def load_capture(doc: Dict[str, Any]) -> Tuple[ObsSnapshot, FabricCollector]:
    """Reconstitute ``(control snapshot, collector)`` from a capture
    document (raises ValueError on schema problems)."""
    problems = validate_capture(doc)
    if problems:
        raise ValueError("bad fabric capture: " + "; ".join(problems))
    control = doc["control"]
    snap = ObsSnapshot(
        workers={
            name: _spans_from_json(spans)
            for name, spans in control["workers"].items()
        },
        nodes={int(k): list(v) for k, v in (control.get("nodes") or {}).items()},
        locks={k: list(v) for k, v in (control.get("locks") or {}).items()},
        counters=dict(control.get("counters") or {}),
        dropped=int(control.get("dropped", 0)),
    )
    collector = FabricCollector()
    for entry in doc["lanes"]:
        lane = WorkerLane(entry["wid"], entry.get("name", f"match-{entry['wid']}"))
        lane.pid = int(entry.get("pid", 0))
        lane.spans = _spans_from_json(entry.get("spans"))
        lane.nodes = {
            int(k): list(v) for k, v in (entry.get("nodes") or {}).items()
        }
        lane.counters = dict(entry.get("counters") or {})
        lane.dropped = int(entry.get("dropped", 0))
        lane.ship_batches = int(entry.get("ship_batches", 0))
        lane.flight_tail = list(entry.get("flight") or [])
        collector.lanes[lane.wid] = lane
    return snap, collector
