"""The stall watchdog: no-progress detection for the parallel engines.

The documented failure mode it exists for: the threaded engine's
multi-queue rubik livelock — tasks queued, TaskCount stuck above zero,
every worker spinning — which until now could only be *found* offline
by schedck, never diagnosed in a live run.  The watchdog turns that
(and any future cousin) into a reproducible, self-describing dump.

Mechanics: a daemon thread samples a *probe* — a cheap callable the
engine supplies returning :class:`ProbeSample` (cumulative tasks done,
per-queue depths, currently-held locks) — every ``interval_s``.  A
**stall** is "work is pending but the done-counter has not advanced
for ``stall_after_s``"; an idle-but-quiescent engine (no pending work)
never trips.  On a stall the watchdog emits one schema-versioned
diagnostic **bundle** (:data:`WATCHDOG_SCHEMA`): the probe history,
per-queue depths naming the stuck queue, the lock-holder table, and
the flight-recorder tail (local ring plus any shipped worker tails),
then re-arms only after progress resumes, so one stall episode is one
bundle.

The trip-evaluation core (:meth:`StallWatchdog.evaluate`) is callable
synchronously, so unit tests drive it with a fabricated clock instead
of sleeping.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from dataclasses import dataclass, field
from time import monotonic, time
from typing import Any, Callable, Dict, List, Optional, Tuple

from . import events as _obs
from . import flight

#: Schema identifier stamped into every diagnostic bundle.
WATCHDOG_SCHEMA = "repro.watchdog/1"

#: Probe samples kept for the bundle's history section.
HISTORY = 8


@dataclass
class ProbeSample:
    """One reading of an engine's progress counters.

    ``tasks_done`` is cumulative (monotonic while the engine makes
    progress); ``queues`` is ``[(name, depth), ...]`` where a negative
    depth means "unknown but non-empty" (the mp backend's OS pipes
    expose no length); ``lock_holders`` maps a lock label to whoever
    holds it right now; ``extra`` carries engine-specific detail
    (worker liveness, TaskCount, ...).
    """

    tasks_done: int
    queues: List[Tuple[str, int]] = field(default_factory=list)
    lock_holders: Dict[str, str] = field(default_factory=dict)
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def pending(self) -> int:
        """Total queued work; unknown-but-non-empty depths count as 1."""
        return sum(d if d > 0 else (1 if d < 0 else 0) for _n, d in self.queues)

    def to_json(self) -> Dict[str, Any]:
        return {
            "tasks_done": self.tasks_done,
            "queues": [{"name": n, "depth": d} for n, d in self.queues],
            "lock_holders": dict(self.lock_holders),
            "extra": dict(self.extra),
        }


class StallWatchdog:
    """Watches one engine instance for no-progress intervals.

    Parameters
    ----------
    probe:
        Zero-argument callable returning a :class:`ProbeSample`.  Must
        be cheap and safe to call from a foreign thread at any time.
    engine:
        Display name stamped into bundles ("threaded", "mp", ...).
    stall_after_s:
        How long pending work may sit with no progress before tripping.
    interval_s:
        Sampling period; defaults to ``stall_after_s / 4`` (clamped to
        at least 10 ms) so a stall is seen within ~1.25x its threshold.
    on_trip:
        Optional callback receiving the bundle dict.
    dump_path:
        When set, each bundle is also written there as JSON (the
        last trip wins — by then you are reading a broken run anyway).
    worker_tails:
        Optional callable returning ``{worker name: [flight events]}``
        — the mp control process passes the last-known shipped tails.
    """

    def __init__(
        self,
        probe: Callable[[], ProbeSample],
        engine: str = "engine",
        stall_after_s: float = 1.0,
        interval_s: Optional[float] = None,
        on_trip: Optional[Callable[[Dict[str, Any]], None]] = None,
        dump_path: Optional[str] = None,
        worker_tails: Optional[Callable[[], Dict[str, List[dict]]]] = None,
    ) -> None:
        if stall_after_s <= 0:
            raise ValueError("stall_after_s must be positive")
        self.probe = probe
        self.engine = engine
        self.stall_after_s = stall_after_s
        self.interval_s = (
            interval_s if interval_s is not None else max(stall_after_s / 4.0, 0.01)
        )
        self.on_trip = on_trip
        self.dump_path = dump_path
        self.worker_tails = worker_tails
        self.bundles: List[Dict[str, Any]] = []
        self.trips = 0
        self._history: deque = deque(maxlen=HISTORY)
        self._last_done: Optional[int] = None
        self._progress_t: Optional[float] = None
        self._armed = True
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "StallWatchdog":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name=f"watchdog-{self.engine}", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                sample = self.probe()
            except Exception:  # engine mid-teardown; skip this tick
                continue
            self.evaluate(monotonic(), sample)

    # -- the trip decision (synchronously testable) -------------------------

    @property
    def tripped(self) -> bool:
        return self.trips > 0

    def evaluate(self, now_s: float, sample: ProbeSample) -> Optional[Dict[str, Any]]:
        """Feed one probe sample at clock ``now_s``; returns the bundle
        if this sample tripped the watchdog, else None."""
        self._history.append((now_s, sample))
        progressed = (
            self._last_done is None or sample.tasks_done != self._last_done
        )
        self._last_done = sample.tasks_done
        if progressed or sample.pending == 0:
            # Fresh progress, or idle-but-quiescent: never a stall.
            self._progress_t = now_s
            self._armed = True
            return None
        if self._progress_t is None:  # pragma: no cover - first-sample guard
            self._progress_t = now_s
            return None
        stalled_for = now_s - self._progress_t
        if stalled_for < self.stall_after_s or not self._armed:
            return None
        self._armed = False  # one bundle per stall episode
        bundle = self._make_bundle(sample, stalled_for)
        self.trips += 1
        self.bundles.append(bundle)
        flight.record(
            self.engine,
            "watchdog.trip",
            {"stuck_queue": bundle["stuck_queue"], "stalled_for_s": round(stalled_for, 3)},
        )
        if _obs.ENABLED:
            _obs.count("watchdog.trips")
        if self.dump_path:
            try:
                tmp = f"{self.dump_path}.tmp.{os.getpid()}"
                with open(tmp, "w", encoding="utf-8") as fh:
                    json.dump(bundle, fh, indent=1, sort_keys=True)
                    fh.write("\n")
                os.replace(tmp, self.dump_path)
            except OSError:  # pragma: no cover - disk full / bad path
                pass
        if self.on_trip is not None:
            self.on_trip(bundle)
        return bundle

    def _make_bundle(self, sample: ProbeSample, stalled_for: float) -> Dict[str, Any]:
        stuck = None
        deepest = 0
        for name, depth in sample.queues:
            weight = depth if depth > 0 else (1 if depth < 0 else 0)
            if weight > deepest:
                deepest = weight
                stuck = name
        tails: Dict[str, List[dict]] = {}
        if self.worker_tails is not None:
            try:
                tails = self.worker_tails()
            except Exception:  # pragma: no cover - engine mid-teardown
                tails = {}
        return {
            "schema": WATCHDOG_SCHEMA,
            "engine": self.engine,
            "reason": "stall",
            "tripped_unix": time(),
            "stalled_for_s": stalled_for,
            "stall_after_s": self.stall_after_s,
            "tasks_done": sample.tasks_done,
            "queues": [{"name": n, "depth": d} for n, d in sample.queues],
            "stuck_queue": stuck,
            "lock_holders": dict(sample.lock_holders),
            "extra": dict(sample.extra),
            "history": [
                {"t_s": t, **s.to_json()} for t, s in list(self._history)
            ],
            "flight": flight.tail(),
            "worker_flight": tails,
        }


def validate_bundle(doc: Any) -> List[str]:
    """Schema-check a watchdog bundle; returns problems (empty = valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("schema") != WATCHDOG_SCHEMA:
        problems.append(
            f"schema is {doc.get('schema')!r}, expected {WATCHDOG_SCHEMA!r}"
        )
    for key, types in (
        ("engine", (str,)),
        ("reason", (str,)),
        ("tripped_unix", (int, float)),
        ("stalled_for_s", (int, float)),
        ("stall_after_s", (int, float)),
        ("tasks_done", (int,)),
        ("lock_holders", (dict,)),
        ("extra", (dict,)),
        ("worker_flight", (dict,)),
    ):
        if not isinstance(doc.get(key), types):
            problems.append(f"missing or bad {key!r}")
    queues = doc.get("queues")
    if not isinstance(queues, list):
        problems.append("queues is not an array")
    else:
        for i, q in enumerate(queues):
            if (
                not isinstance(q, dict)
                or not isinstance(q.get("name"), str)
                or not isinstance(q.get("depth"), int)
            ):
                problems.append(f"queues[{i}]: needs string name and int depth")
        if any(
            isinstance(q, dict) and isinstance(q.get("depth"), int) and q["depth"] != 0
            for q in queues
        ) and not isinstance(doc.get("stuck_queue"), str):
            problems.append("stuck_queue must name a queue when work is pending")
    history = doc.get("history")
    if not isinstance(history, list):
        problems.append("history is not an array")
    if not isinstance(doc.get("flight"), list):
        problems.append("flight is not an array")
    return problems
